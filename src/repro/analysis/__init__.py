"""Analysis layer: assembly of every paper table and figure."""

from repro.analysis import (
    attitude_study,
    flops,
    perception_study,
    relpose_study,
    resilience_study,
    tables,
)

__all__ = [
    "attitude_study",
    "flops",
    "perception_study",
    "relpose_study",
    "resilience_study",
    "tables",
]
