"""Case Study 3 analytics: is FLOP counting a good model? (Table VIII).

Compares, for the sensor-fusion and control kernels:

* the *static FLOP tally* the robotics literature would quote (each
  problem's :meth:`flop_estimate`),
* the FLOP-and-datasheet *estimated energy* (FLOPs x one cycle each x
  nominal energy per cycle), and
* the *measured* cycles and energy from the simulated characterization.

The systematic gap between the two energy columns — and its wild variance
across kernels — is the case study's headline result.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.mcu.arch import ArchSpec, get_arch
from repro.mcu.cache import CACHE_ON

#: Table VIII kernels.
TABLE8_KERNELS = (
    "fly-ekf (seq)",
    "fly-ekf (trunc)",
    "bee-ceekf",
    "fly-lqr",
    "fly-tiny-mpc",
)

TABLE8_ARCHS = ("m4", "m33", "m7")


def datasheet_energy_per_flop_j(arch: ArchSpec) -> float:
    """The naive estimate: nominal active power / clock, one FLOP per cycle.

    This is exactly the "FLOPs + datasheet" methodology the paper
    critiques: it assumes ideal single-cycle float throughput and ignores
    memory, control flow, and library overhead entirely.
    """
    return (arch.power.active_mw / 1e3) / arch.clock_hz


def flop_estimated_energy_j(arch: ArchSpec, flops: int) -> float:
    return flops * datasheet_energy_per_flop_j(arch)


def table8_flops(
    kernels: Iterable[str] = TABLE8_KERNELS,
    config: Optional[HarnessConfig] = None,
) -> List[Dict]:
    """Table VIII rows: FLOPs, cycles, estimated vs measured energy."""
    config = config if config is not None else HarnessConfig(reps=1, warmup_reps=0)
    harnesses = {a: Harness(get_arch(a), config) for a in TABLE8_ARCHS}
    rows: List[Dict] = []
    for kernel in kernels:
        probe = registry.create(kernel)
        probe.ensure_setup()
        flops_total = probe.flop_estimate()
        flops_per_unit = flops_total / max(probe.work_units, 1)
        row = {"kernel": kernel, "flops": int(flops_per_unit)}
        for arch_name in TABLE8_ARCHS:
            problem = registry.create(kernel)
            result = harnesses[arch_name].run(problem, CACHE_ON)
            est_j = flop_estimated_energy_j(get_arch(arch_name), int(flops_per_unit))
            row[f"cycles_{arch_name}"] = result.unit_cycles
            row[f"est_energy_{arch_name}_uj"] = est_j * 1e6
            row[f"meas_energy_{arch_name}_uj"] = result.unit_energy_uj
            row[f"gap_{arch_name}"] = (
                result.unit_energy_uj / (est_j * 1e6) if est_j > 0 else float("inf")
            )
        rows.append(row)
    return rows


def render_table8(rows: List[Dict]) -> str:
    header = (
        f"{'Kernel':16s} {'FLOPs':>7s} "
        + "".join(f"{'cyc ' + a:>10s} " for a in TABLE8_ARCHS)
        + "".join(f"{'Eest ' + a:>9s} " for a in TABLE8_ARCHS)
        + "".join(f"{'Emeas ' + a:>9s} " for a in TABLE8_ARCHS)
        + f"{'gap m4':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        line = f"{r['kernel']:16s} {r['flops']:7d} "
        for a in TABLE8_ARCHS:
            line += f"{r[f'cycles_{a}']:10.0f} "
        for a in TABLE8_ARCHS:
            line += f"{r[f'est_energy_{a}_uj']:9.3f} "
        for a in TABLE8_ARCHS:
            line += f"{r[f'meas_energy_{a}_uj']:9.3f} "
        line += f"{r['gap_m4']:7.1f}x"
        lines.append(line)
    return "\n".join(lines)
