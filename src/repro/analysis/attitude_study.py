"""Case Study 2 analytics: the precision-energy frontier (Table VII, Fig. 4).

* :func:`fixed_point_failure_sweep` — run each attitude filter across the
  full range of Q formats on each maneuver dataset and count failure
  events (overflow, near-zero divisors, quaternion norm drift, attitude
  error beyond 2.5 degrees) — the data behind Figure 4.
* :func:`table7_attitude` — latency/energy/peak-power of each filter in
  f32 and q7.24 on Cortex-M0+, M4 and M33 — Table VII.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.mcu.arch import get_arch
from repro.mcu.cache import CACHE_ON
from repro.scalar import F32, ScalarType, parse_scalar

#: Filter variants of Case Study 2: (registry name, label).
FILTER_VARIANTS = [
    ("mahony", "mahony (I)"),
    ("madgwick", "madgwick (I)"),
    ("mahony (marg)", "mahony (M)"),
    ("madgwick (marg)", "madgwick (M)"),
    ("fourati", "fourati (M)"),
]

#: The three motion profiles (Fig. 4's solid/dashed/dotted lines).
DATASETS = ("bee-hover", "strider-straight", "strider-steer")

#: Table VII cores.
TABLE7_ARCHS = ("m0plus", "m4", "m33")


def fixed_point_failure_sweep(
    filters: Optional[Iterable] = None,
    datasets: Iterable[str] = DATASETS,
    int_bits_range: Iterable[int] = range(1, 29),
    n_samples: int = 150,
    seed: int = 0,
) -> List[Dict]:
    """Failure rate of each filter/dataset across the Q-format sweep.

    Returns one row per (filter, dataset, q format): the failure flag, the
    event breakdown, and the mean attitude error.  "The full range of
    possible values" of Fig. 4 maps to ``int_bits_range``.
    """
    rows: List[Dict] = []
    import numpy as np

    for name, label in (filters if filters is not None else FILTER_VARIANTS):
        for dataset in datasets:
            for int_bits in int_bits_range:
                scalar = parse_scalar(f"q{int_bits}.{31 - int_bits}")
                problem = registry.create(
                    name, scalar=scalar, dataset=dataset, n_samples=n_samples,
                    seed=seed,
                )
                problem.ensure_setup()
                from repro.mcu.ops import OpCounter

                problem.solve(OpCounter())
                events = problem.failure_events()
                failed = not problem.validate(None)
                rows.append(
                    {
                        "filter": label,
                        "dataset": dataset,
                        "q_int": int_bits,
                        "q_frac": 31 - int_bits,
                        "failed": failed,
                        "events": events,
                        "mean_error_deg": float(
                            np.mean(problem.last_errors_deg[n_samples // 2 :])
                        ),
                    }
                )
    return rows


def failure_rate_by_format(rows: List[Dict]) -> Dict:
    """Aggregate sweep rows into Fig. 4's series.

    Returns ``{(filter, dataset): [(q_int, failed), ...]}`` sorted by
    integer bits.
    """
    series: Dict = {}
    for row in rows:
        key = (row["filter"], row["dataset"])
        series.setdefault(key, []).append((row["q_int"], row["failed"]))
    for key in series:
        series[key].sort()
    return series


def feasible_window(rows: List[Dict], filter_label: str, dataset: str) -> List[int]:
    """Integer-bit counts where the filter does NOT fail (Fig. 4's dips)."""
    return sorted(
        row["q_int"]
        for row in rows
        if row["filter"] == filter_label
        and row["dataset"] == dataset
        and not row["failed"]
    )


def table7_attitude(
    scalars: Iterable = (F32, parse_scalar("q7.24")),
    dataset: str = "bee-hover",
    n_samples: int = 150,
    config: Optional[HarnessConfig] = None,
) -> List[Dict]:
    """Table VII: per-update latency (us), energy (nJ), peak power (mW)."""
    config = config if config is not None else HarnessConfig(reps=1, warmup_reps=0)
    rows: List[Dict] = []
    harnesses = {a: Harness(get_arch(a), config) for a in TABLE7_ARCHS}
    for name, label in FILTER_VARIANTS:
        for scalar in scalars:
            scalar = parse_scalar(scalar) if not isinstance(scalar, ScalarType) else scalar
            row = {"filter": label, "format": scalar.name}
            for arch_name in TABLE7_ARCHS:
                problem = registry.create(
                    name, scalar=scalar, dataset=dataset, n_samples=n_samples
                )
                result = harnesses[arch_name].run(problem, CACHE_ON)
                row[f"latency_{arch_name}_us"] = result.unit_latency_us
                row[f"energy_{arch_name}_nj"] = result.unit_energy_uj * 1e3
                row[f"pmax_{arch_name}_mw"] = result.peak_power_mw
            rows.append(row)
    return rows


def render_table7(rows: List[Dict]) -> str:
    header = (
        f"{'Filter':14s} {'Fmt':6s} "
        + "".join(f"{'lat ' + a:>12s} " for a in TABLE7_ARCHS)
        + "".join(f"{'E(nJ) ' + a:>12s} " for a in TABLE7_ARCHS)
        + "".join(f"{'Pmax ' + a:>10s} " for a in TABLE7_ARCHS)
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        line = f"{r['filter']:14s} {r['format']:6s} "
        for a in TABLE7_ARCHS:
            line += f"{r[f'latency_{a}_us']:11.1f}us "
        for a in TABLE7_ARCHS:
            line += f"{r[f'energy_{a}_nj']:12.0f} "
        for a in TABLE7_ARCHS:
            line += f"{r[f'pmax_{a}_mw']:10.0f} "
        lines.append(line)
    return "\n".join(lines)
