"""Resilience study: how gracefully each core degrades under adversity.

The fault-injection counterpart of the characterization tables: instead of
asking "how fast is each core", it asks "how much adversity can each core
absorb before the *task* fails" — the question that actually decides
whether an insect-scale platform survives a gust-induced current spike or
the last 20 % of its battery.

* :func:`resilience_matrix` — run one campaign per fault model over a
  common severity grid and collect per-core resilience scores into a
  cores x faults matrix.
* :func:`brownout_envelope` — sweep brownout severity finely and report,
  per core, the first severity at which the hover mission is lost and at
  which kernel peak power exceeds the sagged supply's budget.
* :func:`render_matrix` — text table of the matrix for the CLI / docs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.api import CampaignSpec, build_report, get_fault, run_campaign

#: Fault models the study sweeps by default (one campaign each).
STUDY_FAULTS: Tuple[str, ...] = ("brownout", "battery", "dvfs", "imu-dropout")

#: Common severity grid (0 is implied by the campaign planner).
STUDY_SEVERITIES: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)

#: Closed-loop kernels priced in the kernel grid of each campaign.
STUDY_KERNELS: Tuple[str, ...] = ("mahony", "se3 controller")


def resilience_matrix(
    faults: Iterable[str] = STUDY_FAULTS,
    severities: Iterable[float] = STUDY_SEVERITIES,
    missions: Tuple[str, ...] = ("hover",),
    archs: Tuple[str, ...] = ("m4", "m33", "m7"),
    kernels: Tuple[str, ...] = STUDY_KERNELS,
    seed: int = 0,
    jobs: int = 1,
) -> List[Dict]:
    """Per-core resilience score for each fault model.

    Returns one row per fault: ``{"fault": ..., "scores": {arch: score},
    "report": <full resilience report>}``.  Fault models without an arch
    seam (pure sensor faults) skip the kernel grid automatically.
    """
    rows: List[Dict] = []
    for fault_name in faults:
        fault = get_fault(fault_name)
        spec = CampaignSpec(
            fault=fault_name,
            severities=tuple(severities),
            missions=missions,
            kernels=kernels if "arch" in fault.kinds else (),
            archs=archs,
            seed=seed,
        )
        report = build_report(run_campaign(spec, jobs=jobs))
        rows.append({
            "fault": fault_name,
            "scores": {
                core["arch"]: core["resilience_score"]
                for core in report["cores"]
            },
            "overall": report["overall_resilience_score"],
            "report": report,
        })
    return rows


def brownout_envelope(
    archs: Tuple[str, ...] = ("m4", "m33", "m7"),
    severities: Optional[Iterable[float]] = None,
    kernels: Tuple[str, ...] = STUDY_KERNELS,
    seed: int = 0,
    jobs: int = 1,
) -> List[Dict]:
    """Per-core brownout survival envelope.

    For each core: the first severity at which the hover mission fails,
    and the first at which any studied kernel's peak power exceeds the
    sagged supply's deliverable budget — the two edges of the platform's
    brownout envelope.
    """
    grid = tuple(severities) if severities is not None else (
        0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0
    )
    spec = CampaignSpec(
        fault="brownout", severities=grid, missions=("hover",),
        kernels=kernels, archs=archs, seed=seed,
    )
    report = build_report(run_campaign(spec, jobs=jobs))
    rows: List[Dict] = []
    for arch in archs:
        mission_fail = None
        for entry in report["missions"]:
            if entry["arch"] == arch:
                mission_fail = entry["first_failing_severity"]
        budget_fail = None
        for entry in report["kernels"]:
            if entry["arch"] != arch:
                continue
            for point in entry["curve"]:
                if point.get("within_budget") is False:
                    if budget_fail is None or point["severity"] < budget_fail:
                        budget_fail = point["severity"]
                    break
        rows.append({
            "arch": arch,
            "mission_fails_at": mission_fail,
            "budget_fails_at": budget_fail,
        })
    return rows


def render_matrix(rows: List[Dict]) -> str:
    """Text table: fault models down, cores across, resilience in cells."""
    if not rows:
        return "(no campaigns run)"
    archs = sorted({arch for row in rows for arch in row["scores"]})
    header = f"{'fault':14s}" + "".join(f"{a:>12s}" for a in archs) + \
        f"{'overall':>12s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = "".join(
            f"{row['scores'].get(a, float('nan')):12.3f}" for a in archs
        )
        lines.append(f"{row['fault']:14s}{cells}{row['overall']:12.3f}")
    return "\n".join(lines)
