"""Assembly and text rendering of the paper's tables.

Each ``table_*`` function returns structured rows (list of dicts) plus a
``render_*`` companion that prints the same layout the paper uses.  The
benchmark harness (`benchmarks/`) calls these to regenerate Tables III,
IV, V, VI, VII, and VIII.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.api import EngineOptions, SweepResults, SweepSpec, sweep
from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.results import si_format
from repro.mcu.arch import CHARACTERIZATION_ARCHS, ArchSpec, get_arch
from repro.mcu.cache import CACHE_OFF, CACHE_ON
from repro.mcu.memory import check_fit
from repro.mcu.static import static_profile

#: The 31 suite rows of Tables III/IV, in paper order.
TABLE_KERNELS = [
    "fastbrief", "orb", "sift", "lkof", "iiof", "bbof",
    "mahony", "madgwick", "fourati",
    "fly-ekf (sync)", "fly-ekf (seq)", "fly-ekf (trunc)", "bee-ceekf",
    "p3p", "up2p", "dlt", "absgoldstd",
    "up2pt", "up3pt", "u3pt", "5pt", "8pt", "relgoldstd", "homography",
    "abs-lo-ransac", "rel-lo-ransac",
    "fly-tiny-mpc", "fly-lqr", "bee-mpc", "bee-geom", "bee-smac",
]


def table3_static(kernels: Optional[Iterable[str]] = None) -> List[Dict]:
    """Table III: flash size and static F/I/M/B mix per kernel per core."""
    rows = []
    for name in (kernels if kernels is not None else TABLE_KERNELS):
        problem = registry.create(name)
        base = problem.static_mix_base()
        fits = {
            arch.name: check_fit(problem.footprint(), arch).fits
            for arch in CHARACTERIZATION_ARCHS
        }
        row = {
            "stage": problem.stage,
            "kernel": name,
            "category": problem.category,
            "dataset": problem.dataset_name,
            "flash": base.flash_bytes,
        }
        for arch in CHARACTERIZATION_ARCHS:
            if not fits[arch.name]:
                row[arch.name] = None
                continue
            mix = static_profile(name, base, arch)
            row[arch.name] = {"F": mix.f, "I": mix.i, "M": mix.m, "B": mix.b}
        rows.append(row)
    return rows


def render_table3(rows: List[Dict]) -> str:
    header = (
        f"{'St':2s} {'Kernel':17s} {'Category':14s} {'Flash':>7s} "
        + "".join(
            f"| {a.name.upper():>5s}:F {'I':>6s} {'M':>6s} {'B':>6s} "
            for a in CHARACTERIZATION_ARCHS
        )
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        line = (
            f"{row['stage']:2s} {row['kernel']:17s} {row['category']:14s} "
            f"{row['flash']:7d} "
        )
        for arch in CHARACTERIZATION_ARCHS:
            mix = row[arch.name]
            if mix is None:
                line += f"| {'-':>7s} {'-':>6s} {'-':>6s} {'-':>6s} "
            else:
                line += (
                    f"| {mix['F']:7d} {mix['I']:6d} {mix['M']:6d} {mix['B']:6d} "
                )
        lines.append(line)
    return "\n".join(lines)


def table4_dynamic(
    kernels: Optional[Iterable[str]] = None,
    config: Optional[HarnessConfig] = None,
    archs: Optional[List[ArchSpec]] = None,
    jobs: int = 1,
    cache_dir=None,
    telemetry=None,
) -> SweepResults:
    """Table IV: latency/energy/peak power, caches on and off, per core.

    ``jobs``/``cache_dir``/``telemetry`` thread through to the execution
    engine: the table regenerates from cached traces when available.
    """
    spec = SweepSpec(
        kernels=list(kernels) if kernels is not None else list(TABLE_KERNELS),
        archs=archs if archs is not None else list(CHARACTERIZATION_ARCHS),
        caches=(CACHE_ON, CACHE_OFF),
        config=config if config is not None else HarnessConfig(reps=1, warmup_reps=0),
    )
    return sweep(
        spec,
        options=EngineOptions(jobs=jobs, cache_dir=cache_dir),
        telemetry=telemetry,
    )


def render_table4(results: SweepResults,
                  kernels: Optional[Iterable[str]] = None) -> str:
    archs = [a.name for a in CHARACTERIZATION_ARCHS]
    header = f"{'Kernel':17s} " + "".join(
        f"| lat {a.upper()} C/NC (us) " for a in archs
    ) + "".join(f"| E {a.upper()} C/NC (uJ) " for a in archs) + "| Pmax C/NC (mW) per arch"
    lines = [header, "-" * len(header)]
    for kernel in (kernels if kernels is not None else results.kernels()):
        parts = [f"{kernel:17s} "]
        for metric in ("lat", "energy", "pmax"):
            for arch in archs:
                on = results.get(kernel, arch, "C")
                off = results.get(kernel, arch, "NC")
                if on is None or not on.fits:
                    parts.append("|      -/-      ")
                    continue
                if metric == "lat":
                    a, b = on.unit_latency_us, off.unit_latency_us
                elif metric == "energy":
                    a, b = on.unit_energy_uj, off.unit_energy_uj
                else:
                    a, b = on.peak_power_mw, off.peak_power_mw
                parts.append(f"| {si_format(a):>6s}/{si_format(b):<6s} ")
        lines.append("".join(parts))
    return "\n".join(lines)


def table5_architectures() -> List[Dict]:
    """Table V: the considered Cortex-M architectures."""
    rows = []
    for name in ("m4", "m33", "m7"):
        arch = get_arch(name)
        rows.append(
            {
                "core": arch.core,
                "board": arch.board,
                "isa": arch.isa,
                "pipeline_stages": arch.pipeline_stages,
                "clock_mhz": arch.clock_mhz,
                "fpu": "DP" if arch.fpu.double else ("SP" if arch.fpu.single else "none"),
                "icache_kb": arch.cache.icache_bytes // 1024,
                "dcache_kb": arch.cache.dcache_bytes // 1024,
                "sram_kb": arch.memory.sram_bytes // 1024,
                "flash_kb": arch.memory.flash_bytes // 1024,
                "process_nm": arch.process_node_nm,
            }
        )
    return rows


def render_table5(rows: List[Dict]) -> str:
    lines = [
        f"{'Core':12s} {'ISA':18s} {'Pipe':>4s} {'MHz':>5s} {'FPU':>4s} "
        f"{'I$KB':>5s} {'D$KB':>5s} {'SRAM':>6s} {'Flash':>6s} {'Node':>5s}"
    ]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append(
            f"{r['core']:12s} {r['isa']:18s} {r['pipeline_stages']:4d} "
            f"{r['clock_mhz']:5.0f} {r['fpu']:>4s} {r['icache_kb']:5d} "
            f"{r['dcache_kb']:5d} {r['sram_kb']:6d} {r['flash_kb']:6d} "
            f"{r['process_nm']:4d}nm"
        )
    return "\n".join(lines)


def table6_perception(
    datasets: Iterable[str] = ("midd", "lights", "april"),
    config: Optional[HarnessConfig] = None,
    jobs: int = 1,
    cache_dir=None,
) -> List[Dict]:
    """Table VI: perception energy/Pmax across datasets (Case Study 1).

    Feature detectors sweep all three datasets; flow kernels run on midd,
    with the bbof-vec DSP variant included.  One engine sweep per dataset
    group: each kernel configuration solves once and re-prices across the
    three cores (the pre-engine driver re-executed it per core).
    """
    config = config if config is not None else HarnessConfig(reps=1, warmup_reps=0)
    options = EngineOptions(jobs=jobs, cache_dir=cache_dir)

    def run_group(kernels: List[str], dataset: str) -> Dict[str, Dict]:
        spec = SweepSpec(
            kernels=kernels,
            archs=list(CHARACTERIZATION_ARCHS),
            caches=(CACHE_ON,),
            config=config,
            overrides={"*": {"dataset": dataset}},
        )
        results = sweep(spec, options=options)
        group_rows: Dict[str, Dict] = {}
        for kernel in kernels:
            row = {"kernel": kernel, "data": dataset}
            for arch in CHARACTERIZATION_ARCHS:
                result = results.get(kernel, arch.name, "C")
                fits = result is not None and result.fits
                row[f"energy_{arch.name}_uj"] = result.unit_energy_uj if fits else None
                row[f"pmax_{arch.name}_mw"] = result.peak_power_mw if fits else None
                row[f"cycles_{arch.name}"] = result.unit_cycles if fits else None
            group_rows[kernel] = row
        return group_rows

    rows: List[Dict] = []
    detector_rows = {
        dataset: run_group(["fastbrief", "orb"], dataset) for dataset in datasets
    }
    for kernel in ("fastbrief", "orb"):
        for dataset in datasets:
            rows.append(detector_rows[dataset][kernel])
    flow_rows = run_group(["lkof", "bbof", "bbof-vec", "iiof"], "midd")
    for kernel in ("lkof", "bbof", "bbof-vec", "iiof"):
        rows.append(flow_rows[kernel])
    return rows


def render_table6(rows: List[Dict]) -> str:
    archs = [a.name for a in CHARACTERIZATION_ARCHS]
    header = (
        f"{'Kernel':10s} {'Data':7s} "
        + "".join(f"{'E ' + a.upper() + ' (uJ)':>12s} " for a in archs)
        + "".join(f"{'Pmax ' + a.upper():>9s} " for a in archs)
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        line = f"{r['kernel']:10s} {r['data']:7s} "
        for a in archs:
            v = r[f"energy_{a}_uj"]
            line += f"{si_format(v) if v is not None else '-':>12s} "
        for a in archs:
            v = r[f"pmax_{a}_mw"]
            line += f"{v:9.0f} " if v is not None else f"{'-':>9s} "
        lines.append(line)
    return "\n".join(lines)
