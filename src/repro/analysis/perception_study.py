"""Case Study 1 analytics: exteroception under tight budgets (Figure 3).

Cycle counts for the feature detectors across the three datasets and for
the four optical-flow kernels — the data behind Fig. 3(a) and 3(b) — plus
the dataset-ordering check (lights < midd < april) the study highlights.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.mcu.arch import CHARACTERIZATION_ARCHS, M4
from repro.mcu.cache import CACHE_ON

DETECTORS = ("fastbrief", "orb")
DATASETS = ("midd", "lights", "april")
FLOW_KERNELS = ("lkof", "bbof", "bbof-vec", "iiof")


def fig3a_detection_cycles(
    detectors: Iterable[str] = DETECTORS,
    datasets: Iterable[str] = DATASETS,
    config: Optional[HarnessConfig] = None,
) -> List[Dict]:
    """Fig. 3(a): detector cycle counts per dataset per core."""
    config = config if config is not None else HarnessConfig(reps=1, warmup_reps=0)
    rows: List[Dict] = []
    for detector in detectors:
        for dataset in datasets:
            row = {"kernel": detector, "dataset": dataset}
            for arch in CHARACTERIZATION_ARCHS:
                problem = registry.create(detector, dataset=dataset)
                result = Harness(arch, config).run(problem, CACHE_ON)
                row[f"cycles_{arch.name}"] = (
                    result.unit_cycles if result.fits else None
                )
                if arch is M4:
                    row["n_features"] = problem.last_n_features
            rows.append(row)
    return rows


def fig3b_flow_cycles(
    kernels: Iterable[str] = FLOW_KERNELS,
    config: Optional[HarnessConfig] = None,
) -> List[Dict]:
    """Fig. 3(b): optical-flow kernel cycle counts per core."""
    config = config if config is not None else HarnessConfig(reps=1, warmup_reps=0)
    rows: List[Dict] = []
    for kernel in kernels:
        row = {"kernel": kernel}
        for arch in CHARACTERIZATION_ARCHS:
            problem = registry.create(kernel)
            result = Harness(arch, config).run(problem, CACHE_ON)
            row[f"cycles_{arch.name}"] = result.unit_cycles
        rows.append(row)
    return rows


def dataset_cost_ordering(rows: List[Dict], detector: str,
                          arch: str = "m4") -> List[str]:
    """Datasets sorted cheapest-first for one detector (Case Study 1's
    'lights runs fastest' observation)."""
    relevant = [r for r in rows if r["kernel"] == detector]
    relevant.sort(key=lambda r: r[f"cycles_{arch}"])
    return [r["dataset"] for r in relevant]


def vectorization_speedup(rows: List[Dict], arch: str = "m4") -> float:
    """bbof / bbof-vec cycle ratio — the Case Study 1 SIMD headline (~4x)."""
    by_kernel = {r["kernel"]: r for r in rows}
    return by_kernel["bbof"][f"cycles_{arch}"] / by_kernel["bbof-vec"][f"cycles_{arch}"]
