"""Case Study 4 analytics: minimal solver & robust estimation trade-offs
(Figure 5).

* :func:`accuracy_vs_noise`   — Fig. 5(a): rotation error of the minimal
  and linear relative solvers as pixel noise grows, float vs double.
* :func:`solver_costs`        — Fig. 5(b, c): cycles and peak power of
  each solver at 0.1 px noise across the three cores.
* :func:`ransac_iterations`   — Fig. 5(d): mean LO-RANSAC iterations to
  convergence by inner minimal solver, 25% outliers / 0.5 px noise.
* :func:`ransac_costs`        — Fig. 5(e, f): LO-RANSAC cycles and peak
  power by minimal solver across cores.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.datasets import pose as posedata
from repro.mcu.arch import CHARACTERIZATION_ARCHS
from repro.mcu.cache import CACHE_ON
from repro.mcu.ops import OpCounter
from repro.pose.fivept import five_point
from repro.pose.ransac import RansacConfig, RelativePoseAdapter, lo_ransac
from repro.pose.relative import eight_point
from repro.pose.upright import u3pt, up2pt, up3pt
from repro.scalar import F32, F64, ScalarType

#: The relative solvers of Fig. 5 (8pt excluded from the RANSAC panels,
#: as in the paper: "excluded due to its computational overhead").
SOLVER_KERNELS = ("up2pt", "up3pt", "u3pt", "5pt", "8pt")
RANSAC_MINIMALS = ("up2pt", "u3pt", "5pt")


def _run_solver(counter: OpCounter, name: str, prob) -> Optional[tuple]:
    """One minimal/linear solve on a synthetic problem; best candidate."""
    try:
        if name == "5pt":
            poses = five_point(counter, prob.x1[:5], prob.x2[:5],
                               validate_with=(prob.x1, prob.x2))
        elif name == "u3pt":
            poses = u3pt(counter, prob.x1[:3], prob.x2[:3])
        elif name == "up2pt":
            poses = up2pt(counter, prob.x1[:2], prob.x2[:2])
        elif name == "up3pt":
            poses = up3pt(counter, prob.x1, prob.x2)
        elif name == "8pt":
            poses = eight_point(counter, prob.x1[:8], prob.x2[:8])
        else:
            raise ValueError(f"unknown solver {name!r}")
    except np.linalg.LinAlgError:
        return None
    if not poses:
        return None
    best = min(
        poses,
        key=lambda p: posedata.rotation_angle_deg(p[0], prob.r_true),
    )
    return best


def accuracy_vs_noise(
    solvers: Iterable[str] = SOLVER_KERNELS,
    noise_levels_px: Iterable[float] = (0.0, 0.1, 0.25, 0.5, 1.0),
    scalars: Iterable[ScalarType] = (F32, F64),
    n_problems: int = 50,
    seed: int = 0,
) -> List[Dict]:
    """Fig. 5(a): median rotation error vs pixel noise, float vs double."""
    rows: List[Dict] = []
    for solver in solvers:
        upright = solver in ("u3pt", "up2pt", "up3pt")
        planar = solver in ("up2pt", "up3pt")
        for scalar in scalars:
            for noise in noise_levels_px:
                errors = []
                for i in range(n_problems):
                    prob = posedata.make_relative_problem(
                        n_points=16, noise_px=noise, upright=upright,
                        planar=planar, seed=seed + i,
                    )
                    prob.x1 = prob.x1.astype(scalar.dtype)
                    prob.x2 = prob.x2.astype(scalar.dtype)
                    pose = _run_solver(OpCounter(), solver, prob)
                    if pose is not None:
                        errors.append(
                            posedata.rotation_angle_deg(
                                np.asarray(pose[0], dtype=np.float64),
                                prob.r_true,
                            )
                        )
                rows.append(
                    {
                        "solver": solver,
                        "scalar": scalar.name,
                        "noise_px": noise,
                        "median_rot_err_deg": float(np.median(errors)) if errors else float("inf"),
                        "n_solved": len(errors),
                        "n_problems": n_problems,
                    }
                )
    return rows


def solver_costs(
    solvers: Iterable[str] = SOLVER_KERNELS,
    noise_px: float = 0.1,
    config: Optional[HarnessConfig] = None,
) -> List[Dict]:
    """Fig. 5(b, c): per-solve cycles and peak power, per core."""
    config = config if config is not None else HarnessConfig(reps=1, warmup_reps=0)
    rows: List[Dict] = []
    for solver in solvers:
        row = {"solver": solver}
        for arch in CHARACTERIZATION_ARCHS:
            problem = registry.create(solver, noise_px=noise_px)
            result = Harness(arch, config).run(problem, CACHE_ON)
            row[f"cycles_{arch.name}"] = result.unit_cycles
            row[f"pmax_{arch.name}_mw"] = result.peak_power_mw
        rows.append(row)
    return rows


def ransac_iterations(
    minimals: Iterable[str] = RANSAC_MINIMALS,
    n_problems: int = 20,
    outlier_ratio: float = 0.25,
    noise_px: float = 0.5,
    seed: int = 0,
) -> List[Dict]:
    """Fig. 5(d): mean LO-RANSAC iterations until convergence."""
    rows: List[Dict] = []
    cfg = RansacConfig(threshold_px=2.0, seed=seed)
    for minimal in minimals:
        upright = minimal in ("u3pt", "up2pt")
        planar = minimal == "up2pt"
        iters, successes = [], 0
        for i in range(n_problems):
            prob = posedata.make_relative_problem(
                n_points=24, noise_px=noise_px, outlier_ratio=outlier_ratio,
                upright=upright, planar=planar, seed=seed + i,
            )
            result = lo_ransac(
                OpCounter(),
                RelativePoseAdapter(prob.x1, prob.x2, minimal=minimal),
                cfg,
            )
            iters.append(result.iterations)
            if result.model is not None:
                err = posedata.rotation_angle_deg(result.model[0], prob.r_true)
                if err < 3.0:
                    successes += 1
        rows.append(
            {
                "minimal": minimal,
                "mean_iterations": float(np.mean(iters)),
                "success_rate": successes / n_problems,
            }
        )
    return rows


def ransac_costs(
    minimals: Iterable[str] = RANSAC_MINIMALS,
    config: Optional[HarnessConfig] = None,
) -> List[Dict]:
    """Fig. 5(e, f): LO-RANSAC cycles and peak power by minimal solver."""
    config = config if config is not None else HarnessConfig(reps=1, warmup_reps=0)
    rows: List[Dict] = []
    for minimal in minimals:
        row = {"minimal": minimal}
        for arch in CHARACTERIZATION_ARCHS:
            problem = registry.create("rel-lo-ransac", minimal=minimal)
            result = Harness(arch, config).run(problem, CACHE_ON)
            row[f"cycles_{arch.name}"] = result.unit_cycles
            row[f"pmax_{arch.name}_mw"] = result.peak_power_mw
        rows.append(row)
    return rows
