"""AXLE-style chain factor-graph trajectory smoothing [50].

The paper's "planned near-term expansions" list opens with "lightweight
factor graph optimization [50]" — Olson's AXLE: computationally efficient
trajectory smoothing over *chain-structured* factor graphs.  A robot's
trajectory with odometry factors between consecutive poses and sparse
absolute fixes yields a block-tridiagonal normal-equation system, which a
block Thomas solver factors in O(N) — the property that makes smoothing
feasible on a microcontroller at all (a dense solve is O(N^3)).

Poses are planar (x, y, theta).  The solver is a Gauss-Newton loop:
linearize all factors, assemble the block-tridiagonal system, solve by
block elimination, update, repeat.  All real math, all operation-counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.mcu import linalg
from repro.mcu.ops import OpCounter

POSE_DIM = 3


def wrap_angle(a):
    """Wrap angles to (-pi, pi]."""
    return (a + np.pi) % (2.0 * np.pi) - np.pi


def _rot2(theta: float) -> np.ndarray:
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s], [s, c]])


def relative_pose(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pose b expressed in frame a (the odometry measurement model)."""
    dp = _rot2(a[2]).T @ (b[:2] - a[:2])
    return np.array([dp[0], dp[1], wrap_angle(b[2] - a[2])])


@dataclass(frozen=True)
class OdometryFactor:
    """Relative-motion constraint between poses i and i+1."""

    index: int  # connects pose index -> index + 1
    measurement: np.ndarray  # (dx, dy, dtheta) in frame i
    information: np.ndarray  # (3, 3)


@dataclass(frozen=True)
class PriorFactor:
    """Absolute pose fix (anchor, intermittent GPS/mocap/loop anchor)."""

    index: int
    measurement: np.ndarray
    information: np.ndarray


@dataclass
class ChainFactorGraph:
    """A chain of planar poses with odometry and sparse prior factors."""

    n_poses: int
    odometry: List[OdometryFactor] = field(default_factory=list)
    priors: List[PriorFactor] = field(default_factory=list)

    def add_odometry(self, index: int, measurement, information=None) -> None:
        if not 0 <= index < self.n_poses - 1:
            raise ValueError(f"odometry index {index} out of range")
        info = (np.asarray(information, dtype=np.float64)
                if information is not None else np.diag([100.0, 100.0, 400.0]))
        self.odometry.append(
            OdometryFactor(index, np.asarray(measurement, dtype=np.float64), info)
        )

    def add_prior(self, index: int, measurement, information=None) -> None:
        if not 0 <= index < self.n_poses:
            raise ValueError(f"prior index {index} out of range")
        info = (np.asarray(information, dtype=np.float64)
                if information is not None else np.diag([400.0, 400.0, 40.0]))
        self.priors.append(
            PriorFactor(index, np.asarray(measurement, dtype=np.float64), info)
        )


@dataclass
class SmoothingResult:
    poses: np.ndarray  # (N, 3)
    iterations: int
    initial_cost: float
    final_cost: float
    converged: bool


def _odometry_residual_and_jacobians(
    counter: OpCounter, xi: np.ndarray, xj: np.ndarray, z: np.ndarray
):
    """Residual r = rel(xi, xj) - z, with Jacobians wrt xi and xj."""
    c, s = np.cos(xi[2]), np.sin(xi[2])
    counter.ffunc(2)
    r_t = np.array([[c, s], [-s, c]])  # R(theta_i)^T
    dp = xj[:2] - xi[:2]
    local = r_t @ dp
    counter.flop_mix(add=4, mul=6)
    residual = np.array(
        [local[0] - z[0], local[1] - z[1], wrap_angle(xj[2] - xi[2] - z[2])]
    )
    counter.flop_mix(add=4)

    # d(local)/d(theta_i) = dR^T/dtheta @ dp
    dr_t = np.array([[-s, c], [-c, -s]])
    dlocal_dtheta = dr_t @ dp
    counter.flop_mix(add=2, mul=4)
    ji = np.zeros((3, 3))
    ji[:2, :2] = -r_t
    ji[:2, 2] = dlocal_dtheta
    ji[2, 2] = -1.0
    jj = np.zeros((3, 3))
    jj[:2, :2] = r_t
    jj[2, 2] = 1.0
    counter.store(18)
    return residual, ji, jj


def smooth(
    counter: OpCounter,
    graph: ChainFactorGraph,
    initial: np.ndarray,
    max_iterations: int = 10,
    tol: float = 1e-8,
) -> SmoothingResult:
    """Gauss-Newton smoothing with a block-tridiagonal (Thomas) solve."""
    n = graph.n_poses
    x = np.asarray(initial, dtype=np.float64).copy()
    if x.shape != (n, POSE_DIM):
        raise ValueError(f"initial must be ({n}, {POSE_DIM})")

    initial_cost = _total_cost(counter, graph, x)
    cost = initial_cost
    converged = False
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        counter.loop_overhead(1)
        diag, off, rhs = _assemble(counter, graph, x)
        delta = _solve_block_tridiagonal(counter, diag, off, rhs)
        x = x + delta.reshape(n, POSE_DIM)
        x[:, 2] = wrap_angle(x[:, 2])
        counter.vec_add(3 * n)
        new_cost = _total_cost(counter, graph, x)
        counter.fcmp()
        if abs(cost - new_cost) < tol * max(cost, 1.0):
            cost = new_cost
            converged = True
            counter.branch()
            break
        cost = new_cost
    return SmoothingResult(x, iterations, initial_cost, cost, converged)


def _total_cost(counter: OpCounter, graph: ChainFactorGraph, x: np.ndarray) -> float:
    cost = 0.0
    for f in graph.odometry:
        r, _, _ = _odometry_residual_and_jacobians(
            counter, x[f.index], x[f.index + 1], f.measurement
        )
        cost += float(r @ f.information @ r)
        counter.mat_vec(3, 3)
        counter.vec_dot(3)
    for f in graph.priors:
        r = x[f.index] - f.measurement
        r[2] = wrap_angle(r[2])
        counter.vec_add(3)
        cost += float(r @ f.information @ r)
        counter.mat_vec(3, 3)
        counter.vec_dot(3)
    return cost


def _assemble(counter: OpCounter, graph: ChainFactorGraph, x: np.ndarray):
    """Normal equations in block-tridiagonal form: (diag, off, rhs).

    ``off[i]`` couples pose i to pose i+1 (upper blocks; the lower are the
    transposes).
    """
    n = graph.n_poses
    diag = np.zeros((n, POSE_DIM, POSE_DIM))
    off = np.zeros((n - 1, POSE_DIM, POSE_DIM))
    rhs = np.zeros((n, POSE_DIM))

    for f in graph.odometry:
        r, ji, jj = _odometry_residual_and_jacobians(
            counter, x[f.index], x[f.index + 1], f.measurement
        )
        w = f.information
        diag[f.index] += ji.T @ w @ ji
        diag[f.index + 1] += jj.T @ w @ jj
        off[f.index] += ji.T @ w @ jj
        rhs[f.index] -= ji.T @ (w @ r)
        rhs[f.index + 1] -= jj.T @ (w @ r)
        counter.mat_mat(3, 3, 3)
        counter.mat_mat(3, 3, 3)
        counter.mat_mat(3, 3, 3)
        counter.mat_mat(3, 3, 3)
        counter.mat_mat(3, 3, 3)
        counter.mat_mat(3, 3, 3)
        counter.mat_vec(3, 3)
        counter.mat_vec(3, 3)
        counter.mat_vec(3, 3)
        counter.mat_add(3, 3)
        counter.mat_add(3, 3)
        counter.mat_add(3, 3)
    for f in graph.priors:
        r = x[f.index] - f.measurement
        r[2] = wrap_angle(r[2])
        diag[f.index] += f.information
        rhs[f.index] -= f.information @ r
        counter.mat_add(3, 3)
        counter.mat_vec(3, 3)
        counter.vec_add(3)
    return diag, off, rhs


def _solve_block_tridiagonal(
    counter: OpCounter,
    diag: np.ndarray,
    off: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Block Thomas algorithm: O(N) forward elimination + back substitution.

    This is AXLE's efficiency argument — the chain structure keeps the
    factorization linear in trajectory length.
    """
    n = len(diag)
    d = diag.copy()
    r = rhs.copy()
    # Forward elimination.
    for i in range(n - 1):
        counter.loop_overhead(1)
        # gain = off[i]^T @ inv(d[i])
        inv_d = linalg.inverse(counter, d[i])
        gain = off[i].T @ inv_d
        counter.mat_mat(3, 3, 3)
        d[i + 1] = d[i + 1] - gain @ off[i]
        counter.mat_mat(3, 3, 3)
        counter.mat_add(3, 3)
        r[i + 1] = r[i + 1] - gain @ r[i]
        counter.mat_vec(3, 3)
        counter.vec_add(3)
    # Back substitution.
    out = np.zeros_like(r)
    out[n - 1] = linalg.lu_solve(counter, d[n - 1], r[n - 1])
    for i in range(n - 2, -1, -1):
        counter.loop_overhead(1)
        out[i] = linalg.lu_solve(counter, d[i], r[i] - off[i] @ out[i + 1])
        counter.mat_vec(3, 3)
        counter.vec_add(3)
    return out.reshape(-1)


def solve_dense_for_reference(
    counter: OpCounter,
    graph: ChainFactorGraph,
    x: np.ndarray,
) -> np.ndarray:
    """One dense Gauss-Newton step (the O(N^3) baseline AXLE avoids)."""
    n = graph.n_poses
    diag, off, rhs = _assemble(counter, graph, x)
    big = np.zeros((n * POSE_DIM, n * POSE_DIM))
    for i in range(n):
        big[3 * i : 3 * i + 3, 3 * i : 3 * i + 3] = diag[i]
    for i in range(n - 1):
        big[3 * i : 3 * i + 3, 3 * i + 3 : 3 * i + 6] = off[i]
        big[3 * i + 3 : 3 * i + 6, 3 * i : 3 * i + 3] = off[i].T
    counter.store(9 * (3 * n - 2))
    return linalg.lu_solve(counter, big, rhs.reshape(-1))
