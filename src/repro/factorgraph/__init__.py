"""Factor-graph trajectory smoothing (the paper's first planned expansion)."""

from repro.factorgraph.axle import (
    ChainFactorGraph,
    OdometryFactor,
    PriorFactor,
    SmoothingResult,
    relative_pose,
    smooth,
    solve_dense_for_reference,
    wrap_angle,
)

__all__ = [
    "ChainFactorGraph",
    "OdometryFactor",
    "PriorFactor",
    "SmoothingResult",
    "relative_pose",
    "smooth",
    "solve_dense_for_reference",
    "wrap_angle",
]
