"""Benchmark problem for the AXLE trajectory-smoothing kernel.

The first of the paper's "planned near-term expansions", registered as
``axle-smooth`` so it participates in every sweep like the original 31.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.problem import EntoProblem
from repro.core.registry import register
from repro.factorgraph.axle import (
    ChainFactorGraph,
    SmoothingResult,
    relative_pose,
    smooth,
    wrap_angle,
)
from repro.mcu.memory import Footprint
from repro.mcu.ops import OpCounter
from repro.mcu.static import StaticMix, compose
from repro.scalar import F32, ScalarType


def make_smoothing_problem(
    n_poses: int = 40,
    odom_noise: tuple = (0.01, 0.01, 0.02),
    prior_every: int = 10,
    prior_noise: float = 0.005,
    seed: int = 0,
):
    """A wandering planar trajectory with noisy odometry + sparse fixes.

    Returns (graph, initial_guess, ground_truth).  The initial guess is
    dead-reckoned from the noisy odometry — exactly what a robot has
    before smoothing.
    """
    rng = np.random.default_rng(seed)
    truth = np.zeros((n_poses, 3))
    for i in range(1, n_poses):
        step = np.array([0.05, 0.0, rng.uniform(-0.15, 0.15)])
        theta = truth[i - 1, 2]
        truth[i, 0] = truth[i - 1, 0] + step[0] * np.cos(theta)
        truth[i, 1] = truth[i - 1, 1] + step[0] * np.sin(theta)
        truth[i, 2] = wrap_angle(theta + step[2])

    graph = ChainFactorGraph(n_poses)
    dead_reckoned = np.zeros_like(truth)
    for i in range(n_poses - 1):
        z = relative_pose(truth[i], truth[i + 1])
        z = z + rng.normal(0.0, odom_noise)
        z[2] = wrap_angle(z[2])
        graph.add_odometry(i, z)
        # Integrate the noisy odometry for the initial guess.
        theta = dead_reckoned[i, 2]
        c, s = np.cos(theta), np.sin(theta)
        dead_reckoned[i + 1, 0] = dead_reckoned[i, 0] + c * z[0] - s * z[1]
        dead_reckoned[i + 1, 1] = dead_reckoned[i, 1] + s * z[0] + c * z[1]
        dead_reckoned[i + 1, 2] = wrap_angle(theta + z[2])

    for i in range(0, n_poses, prior_every):
        fix = truth[i] + rng.normal(0.0, prior_noise, 3)
        graph.add_prior(i, fix)
    return graph, dead_reckoned, truth


class AxleSmoothingProblem(EntoProblem):
    """Chain-graph smoothing of a dead-reckoned trajectory."""

    name = "axle-smooth"
    stage = "S"
    category = "Traj. Smooth."
    dataset_name = "smooth-synth"

    def __init__(self, scalar: ScalarType = F32, seed: int = 0, n_poses: int = 40):
        super().__init__(scalar, seed)
        self.n_poses = n_poses
        self.result: Optional[SmoothingResult] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.graph, self.initial, self.truth = make_smoothing_problem(
            n_poses=self.n_poses, seed=self.seed
        )

    def solve(self, counter: OpCounter):
        self.result = smooth(counter, self.graph, self.initial)
        return self.result

    def validate(self, result: SmoothingResult) -> bool:
        if not result.converged or result.final_cost > result.initial_cost:
            return False
        before = float(np.sqrt(np.mean(
            (self.initial[:, :2] - self.truth[:, :2]) ** 2)))
        after = float(np.sqrt(np.mean(
            (result.poses[:, :2] - self.truth[:, :2]) ** 2)))
        return after < 0.6 * before

    def static_mix_base(self) -> StaticMix:
        return compose(("levenberg_step", "small_matmul",
                        "matrix_inverse_small", "lu_solver",
                        "experiment_io", "harness_runtime"))

    def footprint(self) -> Footprint:
        # Poses + block-tridiagonal workspace scale linearly with N.
        per_pose = (3 + 9 * 2 + 3) * 4
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes,
                         data_bytes=self.n_poses * per_pose + 1024)

    def flop_estimate(self) -> int:
        # Idealized: ~3 GN iterations x (assemble + Thomas) ~ 400 flops/pose.
        return 3 * 400 * self.n_poses


register("axle-smooth")(AxleSmoothingProblem)
