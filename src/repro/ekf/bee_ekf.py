"""The 10-state RoboBee complementary EKF [47].

State: ``x = [p(3), v(3), att(3), tof_bias]``.  IMU body rates and specific
force drive the prediction; a biased time-of-flight range is the update.

Faithful to the paper's characterization, this filter runs inside the
*generic* EKF framework with **numerical** dynamics Jacobians and dense
10x10 covariance algebra — no sparsity, no constant-Jacobian shortcut.
That is why its measured cost exceeds its idealized FLOP tally by orders of
magnitude (Table VIII: ~1k FLOPs vs hundreds of thousands of cycles).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ekf.base import ExtendedKalmanFilter
from repro.mcu.ops import OpCounter

GRAVITY = 9.81


def _derivative(x: np.ndarray, u: Optional[np.ndarray]) -> np.ndarray:
    """Continuous-time strapdown derivative with full trig rotation."""
    v, att = x[3:6], x[6:9]
    rates = u[0:3] if u is not None else np.zeros(3)
    accel = u[3:6] if u is not None else np.zeros(3)
    roll, pitch, yaw = att

    cr, sr = np.cos(roll), np.sin(roll)
    cp, sp = np.cos(pitch), np.sin(pitch)
    cy, sy = np.cos(yaw), np.sin(yaw)
    r_wb = np.array(
        [
            [cy * cp, cy * sp * sr - sy * cr, cy * sp * cr + sy * sr],
            [sy * cp, sy * sp * sr + cy * cr, sy * sp * cr - cy * sr],
            [-sp, cp * sr, cp * cr],
        ]
    )
    a_world = r_wb @ accel - np.array([0.0, 0.0, GRAVITY])
    return np.concatenate([v, a_world, rates, [0.0]])


def _dynamics(x: np.ndarray, u: Optional[np.ndarray], dt: float) -> np.ndarray:
    """RK4 strapdown propagation — the conservative generic-framework
    integrator the HIL deployment uses (4 full model evaluations/step)."""
    k1 = _derivative(x, u)
    k2 = _derivative(x + 0.5 * dt * k1, u)
    k3 = _derivative(x + 0.5 * dt * k2, u)
    k4 = _derivative(x + dt * k3, u)
    return x + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)


class BeeComplementaryEkf:
    """RoboBee 10-state complementary EKF (generic-framework deployment)."""

    STATE_DIM = 10

    def __init__(self, z0: float = 0.4):
        x0 = np.zeros(10)
        x0[2] = z0
        self.ekf = ExtendedKalmanFilter(
            x0=x0,
            p0=np.eye(10) * 0.02,
            dynamics=_dynamics,
            dynamics_jacobian=None,  # numeric: the generic-framework path
            process_noise=np.diag(
                [1e-6] * 3 + [4e-4] * 3 + [1e-5] * 3 + [1e-9]
            ),
            central_differences=True,
            eval_cost=self._rk4_eval_cost,
            joseph_form=True,
        )

    @staticmethod
    def _rk4_eval_cost(counter: OpCounter, n_evals: int) -> None:
        """Each dynamics call is an RK4 step: 4 derivative evaluations,
        each with a full trig rotation matrix (9 transcendental calls)."""
        derivative_evals = 4 * n_evals
        counter.flop_mix(
            add=derivative_evals * 45,
            mul=derivative_evals * 60,
            func=derivative_evals * 9,
        )
        # RK4 combination arithmetic per call.
        counter.flop_mix(add=n_evals * 40, mul=n_evals * 44)

    @property
    def state(self) -> np.ndarray:
        return self.ekf.x

    def step(
        self,
        dt: float,
        counter: OpCounter,
        imu: np.ndarray,
        tof: Optional[float] = None,
    ) -> np.ndarray:
        """One predict (IMU-driven) + optional ToF update."""
        self.ekf.predict(imu, dt, counter)
        if tof is not None:
            x = self.ekf.x
            roll, pitch = x[6], x[7]

            def h_fn(s: np.ndarray) -> np.ndarray:
                denom = np.cos(s[6]) * np.cos(s[7])
                return np.array([s[2] / max(denom, 1e-3) + s[9]])

            # Numeric measurement Jacobian, consistent with the generic
            # framework (one extra h evaluation per state).
            h_jac = np.zeros((1, 10))
            h0 = h_fn(x)[0]
            eps = 1e-6
            for j in range(10):
                xp = x.copy()
                xp[j] += eps
                h_jac[0, j] = (h_fn(xp)[0] - h0) / eps
            counter.flop_mix(add=10 * 6, mul=10 * 8, div=10 * 2, func=10 * 2)
            self.ekf.update_sync(
                np.array([tof]), h_fn, h_jac, np.array([[2e-5]]), counter
            )
        return self.ekf.x

    # -- Case Study 3: the idealized FLOP tally --------------------------

    @staticmethod
    def flops_per_update() -> int:
        """FLOPs of the mathematically minimal sparse formulation, as the
        HIL paper's feasibility analysis counts them."""
        n = 10
        # Sparse F (identity + few dt couplings): ~6n; sparse P propagate
        # exploiting block structure: ~8n; scalar ToF update: ~5n.
        return 6 * n + 8 * n + 5 * n + 3 * n * 3  # ~ 1.1k
