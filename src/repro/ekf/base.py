"""Generic Extended Kalman Filter framework.

Mirrors the paper's "generic EKF wrapper" that "supports synchronous or
asynchronous updates, implementing the sequential update and truncated
update logic presented in [65]".  It is deliberately *generic*: dense
matrices sized at run time, no exploitation of sparsity or constant
Jacobians — which is exactly why measured cost exceeds static FLOP tallies
(Case Study 3).  The overhead a dynamic-dimension C++ framework pays
(dispatch, bounds checks, copies) is recorded per matrix operation.

Update strategies:

* **sync**       — stack all pending measurements; one m x m innovation
  inverse.
* **sequential** — process each scalar measurement independently: no
  matrix inverse (scalar divide) but a full covariance update per scalar.
* **truncated**  — sequential, but each scalar update only touches the
  ``truncate_to`` most strongly coupled states, cutting the covariance
  update cost (the logic of [65]).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.mcu import linalg
from repro.mcu.ops import OpCounter

SYNC = "sync"
SEQUENTIAL = "seq"
TRUNCATED = "trunc"
STRATEGIES = (SYNC, SEQUENTIAL, TRUNCATED)


def _framework_overhead(counter: OpCounter, n_ops: int, dim: int) -> None:
    """Per-matrix-op cost of a dynamic-dimension framework.

    Size checks, stride arithmetic, and (for Eigen with dynamic sizes)
    heap bookkeeping, all integer/branch work proportional to the number of
    library calls and weakly to the dimension.
    """
    counter.ialu(n_ops * (14 + 2 * dim))
    counter.icmp(n_ops * 6)
    counter.branch(n_ops * 4)
    counter.branch(n_ops * 2, taken=False)
    counter.call(n_ops * 3)
    counter.load(n_ops * 8)
    counter.store(n_ops * 4)


class ExtendedKalmanFilter:
    """Dense EKF with pluggable dynamics/measurement models."""

    def __init__(
        self,
        x0: np.ndarray,
        p0: np.ndarray,
        dynamics: Callable[[np.ndarray, Optional[np.ndarray], float], np.ndarray],
        dynamics_jacobian: Optional[Callable[[np.ndarray, Optional[np.ndarray], float], np.ndarray]] = None,
        process_noise: Optional[np.ndarray] = None,
        numeric_jacobian_eps: float = 1e-6,
        central_differences: bool = False,
        eval_cost: Optional[Callable[[OpCounter, int], None]] = None,
        joseph_form: bool = False,
    ):
        self.x = np.asarray(x0, dtype=np.float64).copy()
        self.p = np.asarray(p0, dtype=np.float64).copy()
        self.dynamics = dynamics
        self.dynamics_jacobian = dynamics_jacobian
        self.q = (
            np.asarray(process_noise, dtype=np.float64)
            if process_noise is not None
            else np.eye(len(self.x)) * 1e-4
        )
        self.eps = numeric_jacobian_eps
        self.central = central_differences
        self.joseph_form = joseph_form
        self._eval_cost = eval_cost if eval_cost is not None else self._default_eval_cost

    def _default_eval_cost(self, counter: OpCounter, n_evals: int) -> None:
        """Operation cost of ``n_evals`` dynamics-model evaluations."""
        n = self.dim
        counter.flop_mix(add=n_evals * 3 * n, mul=n_evals * 4 * n, func=n_evals)

    @property
    def dim(self) -> int:
        return len(self.x)

    # -- jacobians ---------------------------------------------------------

    def _numeric_jacobian_f(self, u: Optional[np.ndarray], dt: float,
                            counter: OpCounter) -> np.ndarray:
        """Finite-difference dynamics Jacobian — n+1 dynamics evaluations.

        This is what a generic framework does when no analytic Jacobian is
        supplied, and a large part of the FLOP-count gap for bee-ceekf.
        """
        n = self.dim
        jac = np.zeros((n, n))
        if self.central:
            # Central differences: 2n evaluations, better accuracy, twice
            # the cost — the conservative generic-framework default.
            for j in range(n):
                xp, xm = self.x.copy(), self.x.copy()
                xp[j] += self.eps
                xm[j] -= self.eps
                fp = self.dynamics(xp, u, dt)
                fm = self.dynamics(xm, u, dt)
                jac[:, j] = (fp - fm) / (2 * self.eps)
                counter.vec_add(n)
                counter.vec_scale(n)
            n_evals = 2 * n
        else:
            f0 = self.dynamics(self.x, u, dt)
            for j in range(n):
                xp = self.x.copy()
                xp[j] += self.eps
                fj = self.dynamics(xp, u, dt)
                jac[:, j] = (fj - f0) / self.eps
                counter.vec_add(n)
                counter.vec_scale(n)
            n_evals = n + 1
        self._eval_cost(counter, n_evals)
        _framework_overhead(counter, n_ops=n_evals, dim=n)
        return jac

    # -- predict ------------------------------------------------------------

    def predict(self, u: Optional[np.ndarray], dt: float, counter: OpCounter) -> None:
        n = self.dim
        if self.dynamics_jacobian is not None:
            f_jac = self.dynamics_jacobian(self.x, u, dt)
            counter.flop_mix(add=2 * n, mul=3 * n)  # analytic jacobian fill
        else:
            f_jac = self._numeric_jacobian_f(u, dt, counter)
        self.x = self.dynamics(self.x, u, dt)
        counter.flop_mix(add=3 * n, mul=4 * n)
        # P = F P F^T + Q  (two dense products + add)
        fp = linalg.matmul(counter, f_jac, self.p)
        self.p = linalg.matmul(counter, fp, f_jac.T)
        self.p = linalg.add(counter, self.p, self.q)
        _framework_overhead(counter, n_ops=4, dim=n)

    # -- updates --------------------------------------------------------------

    def update_sync(
        self,
        z: np.ndarray,
        h_fn: Callable[[np.ndarray], np.ndarray],
        h_jac: np.ndarray,
        r: np.ndarray,
        counter: OpCounter,
    ) -> None:
        """Stacked (synchronous) measurement update."""
        n, m = self.dim, len(z)
        y = z - h_fn(self.x)
        counter.flop_mix(add=m * (n + 2), mul=m * n)
        ph_t = linalg.matmul(counter, self.p, h_jac.T)
        s = linalg.add(counter, linalg.matmul(counter, h_jac, ph_t), r)
        k = linalg.matmul(counter, ph_t, linalg.inverse(counter, s))
        self.x = self.x + k @ y
        counter.mat_vec(n, m)
        counter.vec_add(n)
        ikh = np.eye(n) - k @ h_jac
        counter.mat_mat(n, m, n)
        counter.vec_add(n * n)
        if self.joseph_form:
            # P = (I-KH) P (I-KH)^T + K R K^T — numerically safe, 3x cost.
            p1 = linalg.matmul(counter, ikh, self.p)
            p2 = linalg.matmul(counter, p1, ikh.T)
            krk = linalg.matmul(counter, linalg.matmul(counter, k, r), k.T)
            self.p = linalg.add(counter, p2, krk)
        else:
            self.p = linalg.matmul(counter, ikh, self.p)
        _framework_overhead(counter, n_ops=7, dim=n)

    def update_sequential(
        self,
        z: np.ndarray,
        h_fn: Callable[[np.ndarray], np.ndarray],
        h_jac: np.ndarray,
        r_diag: np.ndarray,
        counter: OpCounter,
        truncate_to: Optional[int] = None,
    ) -> None:
        """Scalar-at-a-time update; optionally truncated to ``truncate_to``
        most strongly coupled states per measurement."""
        n = self.dim
        m = len(z)
        for i in range(m):
            h_row = h_jac[i]
            resid = float(z[i] - h_fn(self.x)[i])
            if truncate_to is None:
                # The generic sequential path re-evaluates the full stacked
                # measurement model and re-enters the framework for every
                # scalar — the reason sequential updates measure *slower*
                # than synchronous ones despite fewer arithmetic ops
                # (Table IV's fly-ekf rows).
                counter.flop_mix(add=m * (n + 2), mul=m * n, func=m)
                _framework_overhead(counter, n_ops=18, dim=n)
            else:
                # The truncated logic of [65] evaluates only its own row
                # and keeps the bookkeeping minimal.
                counter.flop_mix(add=n + 2, mul=n, func=1)
                _framework_overhead(counter, n_ops=6, dim=truncate_to)
            ph = self.p @ h_row
            counter.mat_vec(n, n)
            s = float(h_row @ ph) + float(r_diag[i])
            counter.vec_dot(n)
            counter.fadd()
            if abs(s) < 1e-12:
                counter.branch()
                continue
            k = ph / s
            counter.vec_scale(n)
            counter.fdiv()
            if truncate_to is not None and truncate_to < n:
                # Keep only the most strongly corrected states.
                keep = np.argsort(np.abs(k))[::-1][:truncate_to]
                mask = np.zeros(n, dtype=bool)
                mask[keep] = True
                k = np.where(mask, k, 0.0)
                counter.icmp(n)
                counter.branch(n)
                active = truncate_to
            else:
                active = n
            self.x = self.x + k * resid
            counter.vec_axpy(n)
            # Rank-1 covariance update restricted to the active states:
            # P -= k (h P) with k sparse when truncated.
            self.p = self.p - np.outer(k, ph)
            counter.flop_mix(add=active * n, mul=active * n)
            _framework_overhead(counter, n_ops=4, dim=active)

    # -- diagnostics -------------------------------------------------------------

    def covariance_trace(self) -> float:
        return float(np.trace(self.p))

    def is_covariance_psd(self, tol: float = -1e-6) -> bool:
        eigs = np.linalg.eigvalsh((self.p + self.p.T) / 2.0)
        return bool(eigs.min() >= tol)
