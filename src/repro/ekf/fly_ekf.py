"""The 4-state RoboFly EKF [65].

State: ``x = [z, vx, vz, theta]`` — altitude, horizontal velocity,
vertical velocity, pitch.  Fuses asynchronous time-of-flight range,
ventral optical flow, and IMU pitch observations.  The dynamics Jacobian is
*constant* (the filter's headline efficiency trick), and the three update
strategies from [65] — synchronous, sequential, truncated — are selectable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ekf.base import SEQUENTIAL, SYNC, TRUNCATED, ExtendedKalmanFilter
from repro.mcu.ops import OpCounter

GRAVITY = 9.81


def _dynamics(x: np.ndarray, u: Optional[np.ndarray], dt: float) -> np.ndarray:
    """Constant-Jacobian longitudinal model.

    ``u = [pitch_rate]`` from the gyro drives the pitch state; horizontal
    velocity couples to pitch through gravity (small-angle thrust tilt).
    """
    z, vx, vz, theta = x
    rate = float(u[0]) if u is not None else 0.0
    return np.array(
        [
            z + vz * dt,
            vx - GRAVITY * theta * dt,
            vz,
            theta + rate * dt,
        ]
    )


def _dynamics_jacobian(x: np.ndarray, u: Optional[np.ndarray], dt: float) -> np.ndarray:
    return np.array(
        [
            [1.0, 0.0, dt, 0.0],
            [0.0, 1.0, 0.0, -GRAVITY * dt],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )


class FlyEkf:
    """RoboFly 4-state EKF with selectable update strategy."""

    STATE_DIM = 4

    def __init__(self, strategy: str = SYNC, z0: float = 0.5):
        if strategy not in (SYNC, SEQUENTIAL, TRUNCATED):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.ekf = ExtendedKalmanFilter(
            x0=np.array([z0, 0.0, 0.0, 0.0]),
            p0=np.eye(4) * 0.05,
            dynamics=_dynamics,
            dynamics_jacobian=_dynamics_jacobian,
            process_noise=np.diag([1e-6, 5e-4, 5e-4, 1e-5]),
        )
        # Hover-linearized (constant) measurement Jacobians, as RoboFly's
        # flat-ground/hover assumptions allow.
        self._z_lin = z0

    @property
    def state(self) -> np.ndarray:
        return self.ekf.x

    def _measurement_rows(self, tof: Optional[float], flow: Optional[float],
                          imu_pitch: Optional[float]):
        """Assemble whichever measurements arrived this step."""
        z_lin = self._z_lin
        rows, zs, r_diag, h_parts = [], [], [], []
        x = self.ekf.x
        if tof is not None:
            rows.append(np.array([1.0, 0.0, 0.0, 0.0]))  # range ~ z at hover
            zs.append(tof)
            r_diag.append(3e-5)
            h_parts.append(lambda s: s[0])
        if flow is not None:
            # flow = vx / z - theta_dot; theta_dot handled as input, so the
            # hover-linearized row observes vx/z_lin.
            rows.append(np.array([0.0, 1.0 / z_lin, 0.0, 0.0]))
            zs.append(flow)
            r_diag.append(4e-3)
            h_parts.append(lambda s: s[1] / z_lin)
        if imu_pitch is not None:
            rows.append(np.array([0.0, 0.0, 0.0, 1.0]))
            zs.append(imu_pitch)
            r_diag.append(2e-4)
            h_parts.append(lambda s: s[3])
        return rows, zs, r_diag, h_parts

    def step(
        self,
        dt: float,
        counter: OpCounter,
        imu: np.ndarray,
        tof: Optional[float] = None,
        flow: Optional[float] = None,
    ) -> np.ndarray:
        """One predict + (possibly empty) update; returns the state."""
        pitch_rate, imu_pitch = float(imu[0]), float(imu[1])
        flow_comp = flow + pitch_rate if flow is not None else None

        self.ekf.predict(np.array([pitch_rate]), dt, counter)
        rows, zs, r_diag, h_parts = self._measurement_rows(tof, flow_comp, imu_pitch)
        if not rows:
            return self.ekf.x

        h_jac = np.vstack(rows)
        z_vec = np.array(zs)
        r_vec = np.array(r_diag)

        def h_fn(s: np.ndarray) -> np.ndarray:
            return np.array([part(s) for part in h_parts])

        if self.strategy == SYNC:
            self.ekf.update_sync(z_vec, h_fn, h_jac, np.diag(r_vec), counter)
        elif self.strategy == SEQUENTIAL:
            self.ekf.update_sequential(z_vec, h_fn, h_jac, r_vec, counter)
        else:  # truncated: each scalar corrects only 2 states
            self.ekf.update_sequential(
                z_vec, h_fn, h_jac, r_vec, counter, truncate_to=2
            )
        return self.ekf.x

    # -- Case Study 3: the static FLOP tally the literature would quote --

    @staticmethod
    def flops_per_update(strategy: str) -> int:
        """Idealized per-update FLOPs, counting only the mathematical ops of
        the hand-optimized sparse formulation (as [65]'s supplement does)."""
        n, m = 4, 3
        predict = 2 * n * n + 2 * n  # sparse F P F^T + Q, x propagate
        if strategy == SYNC:
            update = 2 * n * n * m + m * m * m + 2 * n * m + 30
            return 4 * (predict + update)  # ~2.7k, matching Table VIII scale
        if strategy == SEQUENTIAL:
            update = m * (3 * n + 2 * n) + m * 8
            return 4 * (predict + update)
        # truncated
        update = m * (3 * n + 2 * 2) + m * 8
        return 3 * (predict + update)
