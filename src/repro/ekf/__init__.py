"""Extended Kalman Filter kernels: RoboFly 4-state, RoboBee 10-state."""

from repro.ekf.base import SEQUENTIAL, STRATEGIES, SYNC, TRUNCATED, ExtendedKalmanFilter
from repro.ekf.bee_ekf import BeeComplementaryEkf
from repro.ekf.fly_ekf import FlyEkf

__all__ = [
    "SEQUENTIAL",
    "STRATEGIES",
    "SYNC",
    "TRUNCATED",
    "ExtendedKalmanFilter",
    "BeeComplementaryEkf",
    "FlyEkf",
]
