"""Benchmark problems for the Kalman-filter kernels.

Registers ``fly-ekf (sync)``, ``fly-ekf (seq)``, ``fly-ekf (trunc)``, and
``bee-ceekf`` — the Table III Kalman Filt. rows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.problem import EntoProblem
from repro.core.registry import register
from repro.datasets import fusion
from repro.ekf.bee_ekf import BeeComplementaryEkf
from repro.ekf.fly_ekf import FlyEkf
from repro.mcu.memory import Footprint
from repro.mcu.ops import OpCounter
from repro.mcu.static import StaticMix, compose
from repro.scalar import F32, ScalarType


class FlyEkfProblem(EntoProblem):
    """RoboFly 4-state EKF over the fly-synth sequence."""

    stage = "S"
    category = "Kalman Filt."
    dataset_name = "fly-synth"
    strategy = "sync"

    #: Acceptable tracking error (meters / radians) for validation.
    MAX_Z_RMSE = 0.02
    MAX_THETA_RMSE = 0.02

    def __init__(self, scalar: ScalarType = F32, seed: int = 0, n_samples: int = 200):
        super().__init__(scalar, seed)
        self.n_samples = n_samples
        self.sequence: Optional[fusion.FusionSequence] = None
        self.last_errors: Optional[np.ndarray] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.sequence = fusion.fly_synth(n=self.n_samples, seed=self.seed)
        self.work_units = len(self.sequence)

    def solve(self, counter: OpCounter):
        seq = self.sequence
        filt = FlyEkf(strategy=self.strategy)
        errors = np.empty((len(seq), 4))
        for i, s in enumerate(seq.samples):
            x = filt.step(seq.dt, counter, s.imu, s.tof, s.flow)
            errors[i] = x - s.true_state
        self.last_errors = errors
        return filt.state

    def validate(self, result) -> bool:
        tail = self.last_errors[len(self.last_errors) // 2 :]
        z_rmse = float(np.sqrt(np.mean(tail[:, 0] ** 2)))
        theta_rmse = float(np.sqrt(np.mean(tail[:, 3] ** 2)))
        return z_rmse <= self.MAX_Z_RMSE and theta_rmse <= self.MAX_THETA_RMSE

    def static_mix_base(self) -> StaticMix:
        return compose(
            ("ekf_predict", "ekf_update", "small_matmul", "matrix_inverse_small",
             "experiment_io", "harness_runtime")
        )

    def footprint(self) -> Footprint:
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes, data_bytes=1024)

    def flop_estimate(self) -> int:
        return FlyEkf.flops_per_update(self.strategy) * self.work_units


class FlyEkfSyncProblem(FlyEkfProblem):
    name = "fly-ekf (sync)"
    strategy = "sync"


class FlyEkfSeqProblem(FlyEkfProblem):
    name = "fly-ekf (seq)"
    strategy = "seq"


class FlyEkfTruncProblem(FlyEkfProblem):
    name = "fly-ekf (trunc)"
    strategy = "trunc"


class BeeCeekfProblem(EntoProblem):
    """RoboBee 10-state complementary EKF over the bee-hil sequence."""

    name = "bee-ceekf"
    stage = "S"
    category = "Kalman Filt."
    dataset_name = "bee-hil"

    MAX_POS_RMSE = 0.12
    MAX_ATT_RMSE = 0.05

    def __init__(self, scalar: ScalarType = F32, seed: int = 0, n_samples: int = 60):
        super().__init__(scalar, seed)
        self.n_samples = n_samples
        self.sequence: Optional[fusion.FusionSequence] = None
        self.last_errors: Optional[np.ndarray] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.sequence = fusion.bee_hil(n=self.n_samples, seed=self.seed)
        self.work_units = len(self.sequence)

    def solve(self, counter: OpCounter):
        seq = self.sequence
        filt = BeeComplementaryEkf()
        errors = np.empty((len(seq), 10))
        for i, s in enumerate(seq.samples):
            x = filt.step(seq.dt, counter, s.imu, s.tof)
            errors[i] = x - s.true_state
        self.last_errors = errors
        return filt.state

    def validate(self, result) -> bool:
        tail = self.last_errors[len(self.last_errors) // 2 :]
        pos_rmse = float(np.sqrt(np.mean(tail[:, 0:3] ** 2)))
        att_rmse = float(np.sqrt(np.mean(tail[:, 6:9] ** 2)))
        return pos_rmse <= self.MAX_POS_RMSE and att_rmse <= self.MAX_ATT_RMSE

    def static_mix_base(self) -> StaticMix:
        return compose(
            ("ekf_predict", "ekf_update", "dense_matmul", "lu_solver",
             "matrix_inverse_small", "experiment_io", "harness_runtime"),
            repeat={"dense_matmul": 2},
        )

    def footprint(self) -> Footprint:
        # 10x10 covariance + Jacobian workspaces (doubles in the generic
        # framework) plus the dynamic-allocation arena.
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes, data_bytes=6144)

    def flop_estimate(self) -> int:
        return BeeComplementaryEkf.flops_per_update() * self.work_units


register("fly-ekf (sync)")(FlyEkfSyncProblem)
register("fly-ekf (seq)")(FlyEkfSeqProblem)
register("fly-ekf (trunc)")(FlyEkfTruncProblem)
register("bee-ceekf")(BeeCeekfProblem)
