"""Probe-fault injectors for the simulated measurement chain.

BEEBS-style measurement pitfalls, made injectable: the *instruments* can
lie too, and an evaluation framework should know how its analysis pipeline
degrades when they do.

* :func:`corrupt_trace` / :func:`make_capture_filter` — current-probe
  faults applied through :class:`~repro.instrumentation.power_monitor.
  PowerMonitor`'s ``capture_filter`` seam: dropped samples (USB backlog),
  clock-skew *drift* (a skew that itself wanders over the capture, which
  a single-coefficient sync correction cannot fully undo), and range
  saturation (a probe stuck on too sensitive a shunt).
* :func:`make_edge_filter` — logic-analyzer faults through the
  ``edge_filter`` seam: lost edges and timestamp jitter.

All randomness comes from an explicit ``numpy.random.Generator``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.faults.base import FaultModel, check_severity, register
from repro.instrumentation.logic_analyzer import DigitalEdge
from repro.instrumentation.power_monitor import CurrentTrace

#: Sample-drop probability at severity 1.
MAX_DROP_P = 0.3
#: Additional skew drift at severity 1 (ppm per second of capture).
MAX_DRIFT_PPM_PER_S = 400.0
#: Saturation at severity 1: the range clips at this quantile of the trace.
SATURATION_QUANTILE_AT_1 = 0.70


def corrupt_trace(
    trace: CurrentTrace,
    severity: float,
    rng: np.random.Generator,
) -> CurrentTrace:
    """Probe-faulted copy of a captured current trace."""
    severity = check_severity(severity)
    if severity == 0.0 or len(trace) == 0:
        return trace
    times = trace.times_s.copy()
    current = trace.current_a.copy()

    # Range saturation: clip at a quantile that tightens with severity.
    q = 1.0 - (1.0 - SATURATION_QUANTILE_AT_1) * severity
    ceiling = float(np.quantile(current, q))
    if ceiling > 0:
        current = np.minimum(current, ceiling)

    # Clock-skew drift: error grows quadratically in capture time, which
    # is exactly what a constant-skew correction cannot absorb.
    drift = MAX_DRIFT_PPM_PER_S * 1e-6 * severity
    times = times * (1.0 + drift * times)

    # Sample drops: a USB-backlogged probe silently loses samples.
    keep = rng.random(len(times)) >= MAX_DROP_P * severity
    if not keep.any():
        keep[0] = True
    return CurrentTrace(times[keep], current[keep], trace.supply_v)


def make_capture_filter(
    severity: float,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> Callable[[CurrentTrace], CurrentTrace]:
    """A ``PowerMonitor(capture_filter=...)`` that injects probe faults."""
    severity = check_severity(severity)
    generator = rng if rng is not None else np.random.default_rng(seed)

    def capture_filter(trace: CurrentTrace) -> CurrentTrace:
        return corrupt_trace(trace, severity, generator)

    return capture_filter


def make_edge_filter(
    severity: float,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    jitter_s: float = 2e-9,
) -> Callable[[DigitalEdge], Optional[DigitalEdge]]:
    """A ``LogicAnalyzer(edge_filter=...)`` dropping/jittering edges."""
    severity = check_severity(severity)
    generator = rng if rng is not None else np.random.default_rng(seed)

    def edge_filter(edge: DigitalEdge) -> Optional[DigitalEdge]:
        if severity == 0.0:
            return edge
        if generator.random() < MAX_DROP_P * severity:
            return None
        jitter = float(generator.normal(0.0, jitter_s * severity))
        if jitter:
            return DigitalEdge(edge.time_s + jitter, edge.pin, edge.rising)
        return edge

    return edge_filter


class ProbeNoiseFault(FaultModel):
    """Measurement-chain adversity hitting the instrumentation probes."""

    name = "probe-noise"
    kinds = ("probes",)
    summary = "measurement-chain adversity: dropped samples, skew drift, saturation"

    def capture_filter(self, severity: float,
                       rng: Optional[np.random.Generator] = None,
                       seed: int = 0):
        """A seeded corruption filter for power-capture samples."""
        return make_capture_filter(severity, rng=rng, seed=seed)

    def edge_filter(self, severity: float,
                    rng: Optional[np.random.Generator] = None,
                    seed: int = 0):
        """A seeded corruption filter for logic-analyzer edges."""
        return make_edge_filter(severity, rng=rng, seed=seed)


register(ProbeNoiseFault())
