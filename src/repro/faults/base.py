"""Fault-injector registry and the injector contract.

A *fault model* turns a severity in ``[0, 1]`` into concrete adversity at
one (or both) of two seams:

* **arch** — a static derated operating point: the model returns a derived
  :class:`~repro.mcu.arch.ArchSpec` (throttled clock, sagged power spec,
  inflated CPI) that the whole pricing stack — pipeline, cache, energy,
  the sweep engine — threads through unchanged.  Kernel-level fault
  campaigns are therefore ordinary engine sweeps: one solve per kernel,
  re-priced across every severity.
* **mission** — a time-varying, per-step hook
  (:class:`~repro.closedloop.runner.MissionFaultHook`) the closed-loop
  runners call on every control step: sensor corruption, sag schedules,
  overrun storms, brownout resets.

Every model is deterministic given ``(severity, seed)``: all randomness
draws from a ``numpy.random.Generator`` seeded at hook construction, never
from module-level state, so campaigns are byte-reproducible across runs
and across worker counts.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.mcu.arch import ArchSpec


def check_severity(severity: float) -> float:
    """Validate and return a severity level in [0, 1]."""
    severity = float(severity)
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"fault severity must be in [0, 1], got {severity!r}")
    return severity


class FaultModel:
    """Base injector: subclasses implement the seams they support.

    ``kinds`` declares the seams: "arch" (static operating-point derating
    for kernel sweeps), "mission" (per-step closed-loop hook), "sensors"
    (offline dataset corruption), "probes" (measurement-chain filters).
    """

    #: Registry name, e.g. "brownout".
    name: str = ""
    #: Seams this model supports.
    kinds: Tuple[str, ...] = ()
    #: One-line description shown by the CLI.
    summary: str = ""

    def derate_arch(self, arch: ArchSpec, severity: float) -> ArchSpec:
        """Static worst-case operating point of ``arch`` at ``severity``.

        Severity 0 must return ``arch`` itself (the no-fault path stays
        bit-identical to a faultless sweep).
        """
        raise NotImplementedError(f"{self.name} has no arch seam")

    def mission_hook(
        self,
        severity: float,
        seed: int,
        duration_s: float,
        control_period_s: float,
    ):
        """Per-step hook for one mission run (None at severity 0)."""
        raise NotImplementedError(f"{self.name} has no mission seam")

    def arch_label(self, arch: ArchSpec, severity: float) -> str:
        """Cell label for a derated arch, e.g. ``m33+brownout:0.5``."""
        return f"{arch.name}+{self.name}:{severity:g}"


#: The injector registry.
FAULTS: Dict[str, FaultModel] = {}


def register(model: FaultModel) -> FaultModel:
    """Register a fault model under its name (last registration wins)."""
    if not model.name:
        raise ValueError("fault model must define a name")
    FAULTS[model.name] = model
    return model


def get_fault(name: str) -> FaultModel:
    """Look up a fault model by registry name."""
    try:
        return FAULTS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown fault {name!r}; available: {sorted(FAULTS)}"
        ) from None


def fault_names() -> Tuple[str, ...]:
    """The registered fault-model names, sorted."""
    return tuple(sorted(FAULTS))
