"""Compute-adversity injectors: DVFS throttling and overrun storms.

* :class:`DvfsThrottleFault` — a static frequency/voltage downshift: the
  operating point every power-manager reaches for first.  Latency
  stretches with the clock; energy moves by the V-f tradeoff (dynamic
  power falls, static power integrates for longer).
* :class:`CpiStormFault` — sustained effective-CPI inflation (bus
  contention, sag-induced wait states, ECC retries) expressed through the
  :attr:`~repro.mcu.arch.ArchSpec.cpi_scale` seam, so kernel sweeps price
  it exactly like any other core.
* :class:`OverrunStormFault` — transient CPI storms in the closed loop:
  windows where every control step's compute inflates, overruns pile up,
  and the runner's compute-limited rate drops — the paper's "overruns
  degrade flight" failure mode, made injectable.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.closedloop.runner import MissionFaultHook
from repro.faults.base import FaultModel, check_severity, register
from repro.mcu.arch import ArchSpec


class DvfsThrottleFault(FaultModel):
    """Static DVFS downshift: slower clock, proportionally lower power."""

    name = "dvfs"
    kinds = ("arch", "mission")
    summary = "static DVFS downshift: clock scaled down, core voltage with it"

    def clock_scale(self, severity: float) -> float:
        """Clock multiplier at this severity (floored at 10%)."""
        return max(0.1, 1.0 - 0.9 * check_severity(severity))

    def power_scale(self, severity: float) -> float:
        """Dynamic-power multiplier at this severity."""
        # Lower f allows lower V: dynamic power falls faster than clock
        # alone would suggest, but not quadratically (rails are stepped).
        return 1.0 - 0.55 * check_severity(severity)

    def derate_arch(self, arch: ArchSpec, severity: float) -> ArchSpec:
        """The arch as it runs at this downshift point."""
        severity = check_severity(severity)
        if severity == 0.0:
            return arch
        p = arch.power
        pscale = self.power_scale(severity)
        from repro.mcu.arch import PowerSpec

        return arch.derated(
            name=self.arch_label(arch, severity),
            clock_scale=self.clock_scale(severity),
            power=PowerSpec(
                active_mw=p.active_mw * pscale,
                cache_bonus_mw=p.cache_bonus_mw * pscale,
                activity_span_mw=p.activity_span_mw * pscale,
                idle_mw=p.idle_mw,
                supply_v=p.supply_v,
            ),
        )

    def mission_hook(self, severity, seed, duration_s, control_period_s):
        """A constant-downshift per-step hook (None at severity 0)."""
        severity = check_severity(severity)
        if severity == 0.0:
            return None
        return _DvfsHook(self.clock_scale(severity), self.power_scale(severity))


class _DvfsHook(MissionFaultHook):
    """Constant downshift for the whole mission."""

    def __init__(self, clock_scale: float, power_scale: float):
        super().__init__()
        self.clock_scale = clock_scale
        self.power_scale = power_scale
        self._logged = False

    def on_price(self, step, t, latency_s, energy_j):
        if not self._logged:
            self._logged = True
            self.log("dvfs_downshift", step, t,
                     clock_scale=round(self.clock_scale, 6))
        return (
            latency_s / self.clock_scale,
            energy_j * self.power_scale / self.clock_scale,
        )


class CpiStormFault(FaultModel):
    """Sustained effective-CPI inflation from contention or bus retries."""

    name = "cpi-storm"
    kinds = ("arch",)
    summary = "sustained effective-CPI inflation (contention, retries)"

    def cpi_scale(self, severity: float) -> float:
        """Multiplier on effective CPI (up to 4x at severity 1)."""
        return 1.0 + 3.0 * check_severity(severity)

    def derate_arch(self, arch: ArchSpec, severity: float) -> ArchSpec:
        """The arch with its CPI inflated by the storm."""
        severity = check_severity(severity)
        if severity == 0.0:
            return arch
        return arch.derated(
            name=self.arch_label(arch, severity),
            cpi_scale=arch.cpi_scale * self.cpi_scale(severity),
        )


class OverrunStormFault(FaultModel):
    """Transient compute-inflation windows hitting the closed loop."""

    name = "overrun-storm"
    kinds = ("mission",)
    summary = "transient compute-inflation windows in the closed loop"

    def mission_hook(self, severity, seed, duration_s, control_period_s):
        """A windowed latency-inflation hook (None at severity 0)."""
        severity = check_severity(severity)
        if severity == 0.0:
            return None
        return _OverrunStormHook(severity, seed, duration_s)


class _OverrunStormHook(MissionFaultHook):
    """Randomly placed storm windows; deterministic per (severity, seed)."""

    STORM_FRAC = 0.06  # each storm lasts 6 % of the mission

    def __init__(self, severity: float, seed: int, duration_s: float):
        super().__init__()
        rng = np.random.default_rng(seed)
        n_storms = 1 + int(round(3.0 * severity))
        length = self.STORM_FRAC * duration_s
        starts = np.sort(
            rng.uniform(0.05, 0.85, size=n_storms) * duration_s
        )
        self.windows: List[Tuple[float, float]] = [
            (float(s), float(s) + length) for s in starts
        ]
        self.inflation = 1.0 + 8.0 * severity
        self._announced = [False] * n_storms

    def _active(self, t: float) -> int:
        for i, (w0, w1) in enumerate(self.windows):
            if w0 <= t <= w1:
                return i
        return -1

    def on_price(self, step, t, latency_s, energy_j):
        i = self._active(t)
        if i < 0:
            return latency_s, energy_j
        if not self._announced[i]:
            self._announced[i] = True
            self.log("overrun_storm", step, t,
                     inflation=round(self.inflation, 6),
                     until_s=round(self.windows[i][1], 6))
        # More cycles per step: latency and energy inflate together.
        return latency_s * self.inflation, energy_j * self.inflation


register(DvfsThrottleFault())
register(CpiStormFault())
register(OverrunStormFault())
