"""Deterministic fault-campaign planner and executor.

A campaign expands ``(kernel | mission) x severity`` grids for one fault
model into concrete work and executes it:

* **kernel cells** become one ordinary engine sweep over *derated arch
  variants* (``m33+brownout:0.5``).  Because the engine's solve key
  ignores the arch, each kernel's real compute runs **once** and is
  re-priced across every severity — a ten-severity brownout sweep costs
  one solve per kernel, exactly like the ten-core sweep it structurally
  is.
* **mission cells** run the closed-loop stack with the fault's per-step
  :class:`~repro.closedloop.runner.MissionFaultHook`, fanned out across a
  process pool when ``jobs > 1``.

Determinism contract: every cell's seed derives from
``SeedSequence([campaign_seed, cell_index])``; workers return plain
dicts; results are collated in cell order regardless of completion order.
The same spec therefore produces byte-identical campaign records across
runs *and* across worker counts.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.closedloop import (
    control_period_s,
    make_mission,
    make_runner,
    mission_entry,
)
from repro.faults.base import FaultModel, check_severity, get_fault
from repro.obs import get_metrics, get_tracer


@dataclass(frozen=True)
class FaultCampaignSpec:
    """One fault, a severity grid, and the cells to subject to it."""

    fault: str
    severities: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    missions: Tuple[str, ...] = ()
    kernels: Tuple[str, ...] = ()
    archs: Tuple[str, ...] = ("m33",)
    seed: int = 0
    reps: int = 1
    warmup: int = 0

    def severity_grid(self) -> Tuple[float, ...]:
        """Sorted unique severities, always anchored by the 0 baseline.

        Every degradation curve needs its fault-free reference point, so
        severity 0 is implied even when the caller does not list it.
        """
        return tuple(sorted({0.0} | {check_severity(s) for s in self.severities}))


@dataclass(frozen=True)
class MissionCell:
    """One planned closed-loop run: (mission, arch, severity, seed)."""

    index: int
    mission: str
    arch: str
    severity: float
    seed: int


@dataclass
class CampaignResult:
    """Everything a campaign measured, in deterministic cell order."""

    fault: str
    seed: int
    severities: Tuple[float, ...]
    #: One record per (kernel, arch, severity): priced static derating.
    kernel_grid: List[dict] = field(default_factory=list)
    #: One record per (mission, arch, severity): closed-loop outcome.
    mission_grid: List[dict] = field(default_factory=list)


def _cell_seed(campaign_seed: int, index: int) -> int:
    """Stable per-cell seed: independent of worker count and run order."""
    return int(np.random.SeedSequence([campaign_seed, index]).generate_state(1)[0])


def plan_mission_cells(spec: FaultCampaignSpec) -> List[MissionCell]:
    """The mission grid in canonical order (mission, arch, severity)."""
    cells: List[MissionCell] = []
    for mission in spec.missions:
        mission_entry(mission)  # raises MissionKeyError with a suggestion
        for arch in spec.archs:
            for severity in spec.severity_grid():
                index = len(cells)
                cells.append(MissionCell(
                    index=index, mission=mission, arch=arch,
                    severity=severity,
                    seed=_cell_seed(spec.seed, index),
                ))
    return cells


def _mission_worker(payload: tuple) -> dict:
    """Process-pool entry point: run one mission cell, return a plain dict.

    Must stay top-level (picklable) and fully deterministic in its
    payload: the returned record is byte-identical however many workers
    the campaign ran with.
    """
    fault_name, mission_name, arch_name, severity, seed = payload
    import repro.faults  # ensure the registry is populated in the worker

    fault = get_fault(fault_name)
    mission = make_mission(mission_name)
    hook = None
    if severity > 0.0 and "mission" in fault.kinds:
        hook = fault.mission_hook(
            severity, seed, mission.duration_s, control_period_s(mission_name)
        )
    runner = make_runner(mission_name, arch_name, fault_hook=hook)
    result = runner.run(mission)
    return {
        "mission": mission_name,
        "arch": arch_name,
        "severity": severity,
        "seed": seed,
        "completed": bool(result.completed),
        "duration_s": float(result.duration_s),
        "path_error_rms": float(result.path_error_rms_m),
        "path_error_max": float(result.path_error_max_m),
        "compute_energy_j": float(result.compute_energy_j),
        "compute_latency_s": float(result.compute_latency_s),
        "deadline_hit_rate": float(result.deadline_hit_rate),
        "effective_rate_hz": float(result.effective_rate_hz),
        "overruns": int(result.overruns),
        "worst_latency_s": float(result.worst_latency_s),
        "aborted_by": result.aborted_by,
        "fault_events": int(result.fault_events),
        "time_to_failure_s": (
            None if result.time_to_failure_s is None
            else float(result.time_to_failure_s)
        ),
        "energy_to_abort_j": (
            None if result.energy_to_abort_j is None
            else float(result.energy_to_abort_j)
        ),
        "events": list(hook.events) if hook is not None else [],
    }


def _cell_track(cell: MissionCell) -> str:
    """Trace-timeline lane for one mission cell's sim-time spans."""
    return f"mission:{cell.mission}/{cell.arch} s={cell.severity:g}"


def run_mission_grid(
    spec: FaultCampaignSpec,
    jobs: int = 1,
    telemetry=None,
) -> List[dict]:
    """Execute the mission cells, collated in canonical cell order.

    Args:
        spec: The campaign to expand into mission cells.
        jobs: Process-pool width; 1 runs every cell in-process.
        telemetry: Optional :class:`~repro.engine.Telemetry` collector.

    Returns:
        One plain record dict per cell, in canonical
        (mission, arch, severity) order regardless of worker count.

    Observability: with the process-wide tracer enabled, each cell's
    sim-time spans land on its own ``mission:<name>/<arch> s=<sev>``
    lane — per-step spans when cells run in-process (``jobs == 1``),
    a synthesized ``mission.run`` summary span otherwise (workers trace
    nothing).  Mission metrics are derived here at collation, in cell
    order, so the aggregate is identical for any ``jobs``.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    cells = plan_mission_cells(spec)
    if not cells:
        return []
    payloads = [
        (spec.fault, c.mission, c.arch, c.severity, c.seed) for c in cells
    ]
    if telemetry is not None:
        for c in cells:
            telemetry.emit("mission_started", kernel=c.mission, arch=c.arch,
                           severity=c.severity)
    if jobs > 1 and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
            # map() preserves input order: collation is worker-count-proof.
            records = list(pool.map(_mission_worker, payloads))
        if tracer.enabled:
            for cell, record in zip(cells, records):
                track = _cell_track(cell)
                tracer.add_span(
                    "mission.run", 0.0, record["duration_s"], cat="mission",
                    track=track, self_s=0.0, mission=cell.mission,
                    arch=cell.arch, severity=cell.severity,
                    completed=record["completed"],
                    overruns=record["overruns"],
                )
                for event in record["events"]:
                    detail = {k: v for k, v in event.items()
                              if k not in ("kind", "t_s")}
                    tracer.instant(f"fault.{event['kind']}",
                                   t_s=event["t_s"], cat="faults",
                                   track=track, **detail)
    else:
        # In-process cells trace per-step detail on their own lanes.  The
        # runners' own metrics are suppressed so the campaign aggregate
        # comes exclusively from the collation loop below and is therefore
        # identical to the multi-worker path.
        records = []
        with metrics.suspended():
            for cell, payload in zip(cells, payloads):
                track = _cell_track(cell) if tracer.enabled else None
                with tracer.on_track(track):
                    records.append(_mission_worker(payload))
    if metrics.enabled:
        for record in records:
            metrics.inc("faults.mission_cells")
            metrics.inc("faults.missions_completed" if record["completed"]
                        else "faults.missions_failed")
            metrics.inc("faults.injections", record["fault_events"])
            metrics.observe("faults.mission_energy_uj",
                            record["compute_energy_j"] * 1e6)
    if telemetry is not None:
        for record in records:
            telemetry.emit(
                "overrun_degraded",
                kernel=record["mission"], arch=record["arch"],
                count=record["overruns"],
                worst_latency_us=round(record["worst_latency_s"] * 1e6, 3),
                steps=0,
            )
            for event in record["events"]:
                detail = dict(event)
                fault_kind = detail.pop("kind", "")
                telemetry.emit(
                    "fault_injected",
                    kernel=record["mission"], arch=record["arch"],
                    fault=fault_kind, severity=record["severity"], **detail,
                )
            telemetry.emit(
                "mission_finished",
                kernel=record["mission"], arch=record["arch"],
                severity=record["severity"],
                completed=record["completed"],
                aborted_by=record["aborted_by"],
            )
    return records


def run_kernel_grid(
    spec: FaultCampaignSpec,
    fault: FaultModel,
    options=None,
    telemetry=None,
) -> List[dict]:
    """Price the kernels at every derated operating point via the engine."""
    if not spec.kernels:
        return []
    if "arch" not in fault.kinds:
        raise ValueError(
            f"fault {fault.name!r} has no arch seam; it cannot derate "
            f"kernel sweeps (kinds: {fault.kinds})"
        )
    from repro.core.config import HarnessConfig
    from repro.core.experiment import SweepSpec
    from repro.engine import run_sweep_engine
    from repro.mcu.arch import get_arch
    from repro.mcu.cache import CACHE_ON

    # One derated ArchSpec per (arch, severity); severity 0 is the base
    # arch object itself, so the fault-free column prices bit-identically
    # to a plain sweep.
    base_archs = [get_arch(a) for a in spec.archs]
    sweep_archs = []
    label_of: Dict[Tuple[str, float], str] = {}
    for arch in base_archs:
        for severity in spec.severity_grid():
            derated = fault.derate_arch(arch, severity)
            label_of[(arch.name, severity)] = derated.name
            sweep_archs.append(derated)

    sweep = SweepSpec(
        kernels=list(spec.kernels),
        archs=sweep_archs,
        caches=(CACHE_ON,),
        config=HarnessConfig(reps=spec.reps, warmup_reps=spec.warmup),
    )
    tracer = get_tracer()
    with tracer.span("faults.kernel_grid", cat="faults", fault=fault.name,
                     kernels=len(spec.kernels), archs=len(sweep_archs)):
        results = run_sweep_engine(sweep, options=options, telemetry=telemetry)

    grid: List[dict] = []
    for kernel in spec.kernels:
        for arch in base_archs:
            budget_fn = getattr(fault, "peak_budget_w", None)
            for severity in spec.severity_grid():
                # A missing cell here is a planner bug, not a data gap:
                # lookup raises a typed ResultKeyError instead of handing
                # back None for the record math to trip over.
                result = results.lookup(kernel, label_of[(arch.name, severity)])
                record = {
                    "kernel": kernel,
                    "arch": arch.name,
                    "severity": severity,
                    "fits": bool(result.fits),
                    "unit_latency_us": (
                        float(result.unit_latency_us) if result.fits else None
                    ),
                    "unit_energy_uj": (
                        float(result.unit_energy_uj) if result.fits else None
                    ),
                    "peak_power_mw": (
                        float(result.peak_power_mw) if result.fits else None
                    ),
                }
                if budget_fn is not None:
                    budget_w = float(budget_fn(arch, severity))
                    record["peak_budget_mw"] = budget_w * 1e3
                    record["within_budget"] = bool(
                        result.fits and result.peak_power_w <= budget_w
                    )
                grid.append(record)
    return grid


def run_campaign(
    spec: FaultCampaignSpec,
    jobs: int = 1,
    options=None,
    telemetry=None,
) -> CampaignResult:
    """Execute one full fault campaign (kernel grid + mission grid).

    ``options`` are :class:`~repro.engine.EngineOptions` for the kernel
    sweep (trace cache, checkpointing); ``jobs`` additionally fans the
    mission cells across a process pool.  The same spec and seed yield a
    byte-identical :class:`CampaignResult` for any ``jobs``.
    """
    fault = get_fault(spec.fault)
    severities = spec.severity_grid()
    if telemetry is not None:
        telemetry.emit(
            "campaign_started",
            fault=fault.name,
            severities=list(severities),
            kernels=len(spec.kernels),
            missions=len(spec.missions),
        )
    if options is None and jobs > 1:
        from repro.engine import EngineOptions

        options = EngineOptions(jobs=jobs)
    tracer = get_tracer()
    with tracer.span("faults.campaign", cat="faults", fault=fault.name,
                     severities=len(severities)):
        kernel_grid = run_kernel_grid(spec, fault, options=options,
                                      telemetry=telemetry)
        mission_grid = run_mission_grid(spec, jobs=jobs, telemetry=telemetry)
    out = CampaignResult(
        fault=fault.name,
        seed=spec.seed,
        severities=severities,
        kernel_grid=kernel_grid,
        mission_grid=mission_grid,
    )
    if telemetry is not None:
        telemetry.emit(
            "campaign_finished",
            fault=fault.name,
            kernel_cells=len(kernel_grid),
            mission_cells=len(mission_grid),
        )
    return out
