"""Resilience scoring: degradation curves and per-core aggregate scores.

Turns a :class:`~repro.faults.campaign.CampaignResult` into the report
the benchmark suite is actually after — not "did it crash" but *how
gracefully does the platform degrade*:

* **graceful-degradation curves** — task quality versus severity, per
  (mission, arch) and per (kernel, arch).  Mission quality is 0 for a
  failed flight and ``min(1, rms_0 / rms_s)`` for a completed one (path
  error relative to the fault-free baseline); kernel quality is the
  latency inflation ``lat_0 / lat_s``, zeroed when the cell stops fitting
  or its peak power exceeds what the sagged supply can still deliver.
* **time-to-failure / energy-to-abort** — when and how expensively
  flight was lost, straight from the mission records.
* **resilience score** — per curve, the mean quality over the non-zero
  severities (the area under the degradation curve); per core, the mean
  over every curve measured on it.  1.0 = unaffected, 0.0 = dead at the
  first severity step.

The report is a plain dict of primitives assembled in deterministic
order; serialized with sorted keys it is byte-stable across runs and
worker counts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.faults.campaign import CampaignResult


def _round(value: Optional[float], digits: int = 6) -> Optional[float]:
    return None if value is None else round(float(value), digits)


def _mission_quality(record: dict, baseline: dict) -> float:
    """0 for a lost mission; path-error ratio vs baseline otherwise."""
    if not record["completed"]:
        return 0.0
    rms = record["path_error_rms"]
    rms0 = baseline["path_error_rms"]
    if rms <= 0.0 or rms0 <= 0.0:
        return 1.0
    return min(1.0, rms0 / rms)


def _kernel_quality(record: dict, baseline: dict) -> float:
    """Latency-inflation ratio vs baseline; 0 past the survivable edge."""
    if not record["fits"]:
        return 0.0
    if record.get("within_budget") is False:
        return 0.0
    lat = record["unit_latency_us"]
    lat0 = baseline["unit_latency_us"]
    if lat is None or lat0 is None or lat <= 0.0:
        return 0.0
    return min(1.0, lat0 / lat)


def _score(curve: List[dict]) -> float:
    """Mean quality over non-zero severities (degradation-curve area)."""
    faulted = [p["quality"] for p in curve if p["severity"] > 0.0]
    if not faulted:
        return 1.0
    return sum(faulted) / len(faulted)


def build_report(campaign: CampaignResult) -> dict:
    """Assemble the resilience report dict for one campaign."""
    severities = list(campaign.severities)

    mission_curves: List[dict] = []
    by_mission: Dict[tuple, List[dict]] = {}
    for record in campaign.mission_grid:
        by_mission.setdefault((record["mission"], record["arch"]), []).append(record)
    for (mission, arch), records in by_mission.items():
        records = sorted(records, key=lambda r: r["severity"])
        baseline = records[0]
        curve = []
        for record in records:
            quality = _mission_quality(record, baseline)
            curve.append({
                "severity": record["severity"],
                "quality": _round(quality),
                "completed": record["completed"],
                "path_error_rms": _round(record["path_error_rms"]),
                "compute_energy_mj": _round(record["compute_energy_j"] * 1e3),
                "overruns": record["overruns"],
                "aborted_by": record["aborted_by"],
                "time_to_failure_s": _round(record["time_to_failure_s"]),
                "energy_to_abort_mj": _round(
                    None if record["energy_to_abort_j"] is None
                    else record["energy_to_abort_j"] * 1e3
                ),
                "fault_events": record["fault_events"],
            })
        failures = [p for p in curve if not p["completed"]]
        mission_curves.append({
            "mission": mission,
            "arch": arch,
            "curve": curve,
            "resilience_score": _round(_score(curve)),
            "first_failing_severity": (
                failures[0]["severity"] if failures else None
            ),
        })

    kernel_curves: List[dict] = []
    by_kernel: Dict[tuple, List[dict]] = {}
    for record in campaign.kernel_grid:
        by_kernel.setdefault((record["kernel"], record["arch"]), []).append(record)
    for (kernel, arch), records in by_kernel.items():
        records = sorted(records, key=lambda r: r["severity"])
        baseline = records[0]
        curve = []
        for record in records:
            point = {
                "severity": record["severity"],
                "quality": _round(_kernel_quality(record, baseline)),
                "fits": record["fits"],
                "unit_latency_us": _round(record["unit_latency_us"]),
                "unit_energy_uj": _round(record["unit_energy_uj"]),
                "peak_power_mw": _round(record["peak_power_mw"]),
            }
            if "within_budget" in record:
                point["within_budget"] = record["within_budget"]
                point["peak_budget_mw"] = _round(record["peak_budget_mw"])
            curve.append(point)
        kernel_curves.append({
            "kernel": kernel,
            "arch": arch,
            "curve": curve,
            "resilience_score": _round(_score(curve)),
        })

    # Per-core aggregate: the mean over every curve measured on the core.
    core_scores: Dict[str, List[float]] = {}
    for entry in mission_curves + kernel_curves:
        core_scores.setdefault(entry["arch"], []).append(
            entry["resilience_score"]
        )
    cores = [
        {
            "arch": arch,
            "resilience_score": _round(sum(scores) / len(scores)),
            "curves": len(scores),
        }
        for arch, scores in sorted(core_scores.items())
    ]

    all_scores = [entry["resilience_score"] for entry in mission_curves
                  + kernel_curves]
    return {
        "fault": campaign.fault,
        "seed": campaign.seed,
        "severities": severities,
        "missions": mission_curves,
        "kernels": kernel_curves,
        "cores": cores,
        "overall_resilience_score": _round(
            sum(all_scores) / len(all_scores) if all_scores else 1.0
        ),
    }


def save_report(report: dict, path: Union[str, Path]) -> Path:
    """Write the report as canonical JSON (sorted keys, fixed separators).

    Canonical form is what makes the determinism guarantee checkable with
    ``cmp``: two runs of the same campaign produce byte-equal files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    return path


def render_report(report: dict) -> str:
    """Human-readable resilience report for the CLI."""
    lines = [
        f"fault campaign : {report['fault']} "
        f"(severities {', '.join(f'{s:g}' for s in report['severities'])}, "
        f"seed {report['seed']})",
    ]
    if report["missions"]:
        lines.append("")
        lines.append(f"{'mission':18s} {'arch':14s} {'score':>6s}  "
                     f"degradation (quality @ severity)")
        lines.append("-" * 76)
        for entry in report["missions"]:
            points = "  ".join(
                f"{p['quality']:.2f}@{p['severity']:g}" for p in entry["curve"]
            )
            lines.append(
                f"{entry['mission']:18s} {entry['arch']:14s} "
                f"{entry['resilience_score']:6.3f}  {points}"
            )
            failing = entry["first_failing_severity"]
            if failing is not None:
                failed = next(p for p in entry["curve"]
                              if not p["completed"])
                ttf = failed["time_to_failure_s"]
                eta = failed["energy_to_abort_mj"]
                cause = failed["aborted_by"] or "task error"
                lines.append(
                    f"{'':18s} {'':14s} {'':6s}  fails at severity "
                    f"{failing:g} ({cause}, t={ttf:.3f}s, "
                    f"E={eta:.3f}mJ)"
                )
    if report["kernels"]:
        lines.append("")
        lines.append(f"{'kernel':18s} {'arch':14s} {'score':>6s}  "
                     f"latency inflation (us @ severity)")
        lines.append("-" * 76)
        for entry in report["kernels"]:
            points = "  ".join(
                f"{p['unit_latency_us']:.1f}@{p['severity']:g}"
                if p["unit_latency_us"] is not None else f"skip@{p['severity']:g}"
                for p in entry["curve"]
            )
            lines.append(
                f"{entry['kernel']:18s} {entry['arch']:14s} "
                f"{entry['resilience_score']:6.3f}  {points}"
            )
    if report["cores"]:
        lines.append("")
        lines.append(f"{'core':14s} {'resilience':>10s} {'curves':>7s}")
        lines.append("-" * 33)
        for core in report["cores"]:
            lines.append(
                f"{core['arch']:14s} {core['resilience_score']:10.3f} "
                f"{core['curves']:7d}"
            )
    lines.append("")
    lines.append(
        f"overall resilience score: {report['overall_resilience_score']:.3f}"
    )
    return "\n".join(lines)
