"""Power-adversity injectors: supply brownout and battery discharge.

Both models express adversity as a *supply sag* and lean on the electrical
derating functions that live next to the nominal power model
(:mod:`repro.mcu.energy`): the power floor rises as regulator headroom
vanishes, the clock throttles past a sag threshold, the deliverable peak
shrinks, and past the brownout-reset point the MCU simply dies.

* :class:`BrownoutFault` — a transient high-current sag event: a dip in
  the middle of a mission whose depth scales with severity.  At high
  severity the dip crosses the reset threshold and the platform drops out
  of the sky — the paper's "brownouts kill missions" failure mode.
* :class:`BatteryDischargeFault` — a LiPo-style discharge curve: severity
  is the depth of discharge reached by mission end, so the sag (and the
  throttling it causes) grows toward the end of the flight.  Graceful by
  construction: the knee degrades flight, it does not reset the MCU.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.closedloop.runner import MissionFaultHook
from repro.faults.base import FaultModel, check_severity, register
from repro.mcu.arch import ArchSpec
from repro.mcu.energy import (
    SupplySag,
    derate_power_spec,
    peak_budget_w,
    sag_clock_scale,
)

#: Deepest brownout sag, at severity 1 (crosses the 0.45 reset point).
BROWNOUT_MAX_SAG = 0.5


def _price_under_sag(
    latency_s: float, energy_j: float, sag: SupplySag
) -> "tuple[float, float, float]":
    """First-order repricing of one control step under supply sag.

    The clock throttle stretches latency by ``1/scale``.  Energy rises on
    two fronts: the regulator's collapsing efficiency lifts the power
    floor (``1 + 0.7 * sag``), and the stretched runtime integrates the
    static share of power for longer (``0.6 + 0.4 / scale`` — dynamic
    power falls with the clock, static power does not).
    """
    scale = sag_clock_scale(sag)
    latency = latency_s / scale
    energy = energy_j * (1.0 + 0.7 * sag.sag_frac) * (0.6 + 0.4 / scale)
    return latency, energy, scale


class _SagHook(MissionFaultHook):
    """Shared mission hook: any time-varying sag profile."""

    def __init__(self, duration_s: float, reset_allowed: bool = True):
        super().__init__()
        self.duration_s = duration_s
        self.reset_allowed = reset_allowed
        self._throttled = False
        self._pending_abort: Optional[str] = None

    def sag_at(self, t: float) -> float:
        raise NotImplementedError

    def on_price(self, step, t, latency_s, energy_j):
        sag = SupplySag(self.sag_at(t))
        if sag.sag_frac <= 0.0:
            self._throttled = False
            return latency_s, energy_j
        latency, energy, scale = _price_under_sag(latency_s, energy_j, sag)
        if scale < 1.0 and not self._throttled:
            self._throttled = True
            self.log("clock_throttled", step, t,
                     clock_scale=round(scale, 6), sag=round(sag.sag_frac, 6))
        elif scale >= 1.0:
            self._throttled = False
        if self.reset_allowed and sag.resets and self._pending_abort is None:
            self._pending_abort = "brownout_reset"
            self.log("brownout_reset", step, t, sag=round(sag.sag_frac, 6))
        return latency, energy

    def abort_reason(self, step, t):
        return self._pending_abort


class _BrownoutHook(_SagHook):
    """A mid-mission sag dip: half-sine envelope over a fixed window."""

    WINDOW = (0.35, 0.75)  # fraction of mission duration

    def __init__(self, severity: float, duration_s: float):
        super().__init__(duration_s, reset_allowed=True)
        self.sag_max = BROWNOUT_MAX_SAG * severity

    def sag_at(self, t: float) -> float:
        w0 = self.WINDOW[0] * self.duration_s
        w1 = self.WINDOW[1] * self.duration_s
        if not w0 <= t <= w1 or w1 <= w0:
            return 0.0
        return self.sag_max * math.sin(math.pi * (t - w0) / (w1 - w0))


def battery_voltage_frac(depth: float) -> float:
    """Normalized LiPo terminal voltage at depth of discharge ``depth``.

    A gentle linear droop over the plateau plus a sharp knee past 80 %
    depth — the shape every battery-powered flight log shows.
    """
    depth = min(max(depth, 0.0), 1.0)
    return 1.0 - 0.12 * depth - 0.25 * max(0.0, depth - 0.8) / 0.2


class _BatteryHook(_SagHook):
    """Sag follows the discharge curve as the mission drains the pack."""

    def __init__(self, severity: float, duration_s: float):
        # The knee degrades flight; it does not brown the supervisor out.
        super().__init__(duration_s, reset_allowed=False)
        self.depth_at_end = severity

    def sag_at(self, t: float) -> float:
        depth = self.depth_at_end * min(t / max(self.duration_s, 1e-9), 1.0)
        return 1.0 - battery_voltage_frac(depth)


class BrownoutFault(FaultModel):
    """Supply-sag dip: throttled clock, raised power floor, reset at depth."""

    name = "brownout"
    kinds = ("arch", "mission")
    summary = "supply sag dip: power floor up, clock throttled, reset at depth"

    def static_sag(self, severity: float) -> SupplySag:
        """The steady-state sag this severity holds the rail at."""
        return SupplySag(BROWNOUT_MAX_SAG * check_severity(severity))

    def derate_arch(self, arch: ArchSpec, severity: float) -> ArchSpec:
        """The arch as it runs on the sagged rail."""
        severity = check_severity(severity)
        if severity == 0.0:
            return arch
        sag = self.static_sag(severity)
        return arch.derated(
            name=self.arch_label(arch, severity),
            clock_scale=sag_clock_scale(sag),
            power=derate_power_spec(arch.power, sag),
        )

    def peak_budget_w(self, arch: ArchSpec, severity: float) -> float:
        """Peak power the sagged supply can still deliver to this core."""
        return peak_budget_w(arch.power, self.static_sag(severity))

    def mission_hook(self, severity, seed, duration_s, control_period_s):
        """A sag-dip per-step hook with reset-at-depth (None at 0)."""
        severity = check_severity(severity)
        if severity == 0.0:
            return None
        return _BrownoutHook(severity, duration_s)


class BatteryDischargeFault(FaultModel):
    """LiPo discharge: sag (and throttling) grows toward mission end."""

    name = "battery"
    kinds = ("arch", "mission")
    summary = "LiPo discharge curve: sag (and throttling) grows toward mission end"

    def static_sag(self, severity: float) -> SupplySag:
        """Worst-case sag: the end-of-flight operating point."""
        return SupplySag(1.0 - battery_voltage_frac(check_severity(severity)))

    def derate_arch(self, arch: ArchSpec, severity: float) -> ArchSpec:
        """The arch at the end-of-flight (worst-case) operating point."""
        severity = check_severity(severity)
        if severity == 0.0:
            return arch
        sag = self.static_sag(severity)
        return arch.derated(
            name=self.arch_label(arch, severity),
            clock_scale=sag_clock_scale(sag),
            power=derate_power_spec(arch.power, sag),
        )

    def peak_budget_w(self, arch: ArchSpec, severity: float) -> float:
        """Peak power available at the worst-case discharge point."""
        return peak_budget_w(arch.power, self.static_sag(severity))

    def mission_hook(self, severity, seed, duration_s, control_period_s):
        """A discharge-curve per-step hook (None at severity 0)."""
        severity = check_severity(severity)
        if severity == 0.0:
            return None
        return _BatteryHook(severity, duration_s)


register(BrownoutFault())
register(BatteryDischargeFault())
