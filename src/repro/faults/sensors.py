"""Sensor-fault injectors: IMU dropout, bias jumps, stuck channels.

Two forms of the same fault models:

* **offline** — :func:`corrupt_sequence` corrupts an
  :class:`~repro.datasets.imu.ImuSequence` (through its ``with_sensors``
  seam, ground truth untouched) so attitude-filter studies can sweep
  sensor adversity exactly like they sweep Q formats;
* **online** — per-step mission hooks the closed-loop runners call, with
  the same statistics, so a dropped IMU sample really does feed the
  estimator a stale reading mid-flight.

Determinism: every decision draws from one ``numpy.random.Generator``
seeded at construction; same (severity, seed) → identical injections.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.closedloop.runner import MissionFaultHook
from repro.datasets.imu import ImuSequence
from repro.faults.base import FaultModel, check_severity, register

#: Per-sample dropout probability at severity 1.
MAX_DROPOUT_P = 0.6
#: Gyro bias-jump magnitude at severity 1 (rad/s) — large against the
#: bee-hover envelope, plausible against strider-steer.
MAX_BIAS_RAD_S = 1.5
#: Stuck-window count and length at severity 1.
MAX_STUCK_WINDOWS = 2
STUCK_WINDOW_FRAC = 0.08


def _dropout_p(severity: float) -> float:
    return MAX_DROPOUT_P * severity


class _SensorSchedule:
    """Shared deterministic schedule for one (mode, severity, rng) run."""

    def __init__(self, mode: str, severity: float,
                 rng: np.random.Generator, n_steps: int):
        self.mode = mode
        self.severity = check_severity(severity)
        self.rng = rng
        self.n_steps = max(int(n_steps), 1)
        if mode == "bias":
            self.bias_step = int(self.rng.uniform(0.2, 0.5) * self.n_steps)
            axis = int(self.rng.integers(0, 3))
            sign = 1.0 if self.rng.random() < 0.5 else -1.0
            self.bias = np.zeros(3)
            self.bias[axis] = sign * MAX_BIAS_RAD_S * self.severity
        elif mode == "stuck":
            n = max(1, int(round(MAX_STUCK_WINDOWS * self.severity)))
            length = max(1, int(STUCK_WINDOW_FRAC * self.n_steps))
            starts = np.sort(
                self.rng.integers(0, max(self.n_steps - length, 1), size=n)
            )
            self.windows = [(int(s), int(s) + length) for s in starts]

    def dropped(self) -> bool:
        return (
            self.mode == "dropout"
            and self.rng.random() < _dropout_p(self.severity)
        )

    def stuck_at(self, step: int) -> bool:
        if self.mode != "stuck":
            return False
        return any(w0 <= step < w1 for w0, w1 in self.windows)

    def biased_at(self, step: int) -> bool:
        return self.mode == "bias" and step >= self.bias_step


def corrupt_sequence(
    seq: ImuSequence,
    mode: str,
    severity: float,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> ImuSequence:
    """Corrupted copy of an IMU dataset (``mode``: dropout/bias/stuck).

    Dropout holds the previous sample (zero-order hold, what a sensor
    driver returns on a missed DRDY); bias adds a persistent gyro offset
    from a jump instant onward; stuck freezes all channels over windows.
    """
    severity = check_severity(severity)
    if severity == 0.0:
        return seq
    if rng is None:
        rng = np.random.default_rng(seed)
    n = len(seq)
    schedule = _SensorSchedule(mode, severity, rng, n)

    gyro = seq.gyro.copy()
    accel = seq.accel.copy()
    mag = seq.mag.copy()
    for i in range(n):
        if schedule.dropped() or schedule.stuck_at(i):
            if i > 0:
                gyro[i] = gyro[i - 1]
                accel[i] = accel[i - 1]
                mag[i] = mag[i - 1]
        if schedule.biased_at(i):
            gyro[i] = gyro[i] + schedule.bias
    return seq.with_sensors(
        gyro=gyro, accel=accel, mag=mag,
        name=f"{seq.name}+{mode}:{severity:g}",
    )


class _SensorHook(MissionFaultHook):
    """Online per-step application of one sensor-fault mode."""

    def __init__(self, mode: str, severity: float, seed: int, n_steps: int):
        super().__init__()
        self.schedule = _SensorSchedule(
            mode, severity, np.random.default_rng(seed), n_steps
        )
        self._held_imu: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._held_heading: Optional[Tuple[float, float]] = None
        self._stuck_announced = False
        self._bias_announced = False

    def _faulted(self, step: int, t: float) -> bool:
        s = self.schedule
        if s.dropped():
            self.log("imu_dropout", step, t)
            return True
        if s.stuck_at(step):
            if not self._stuck_announced:
                self._stuck_announced = True
                self.log("imu_stuck", step, t)
            return True
        self._stuck_announced = False
        return False

    def on_imu(self, step, t, gyro, accel):
        if self._faulted(step, t) and self._held_imu is not None:
            return self._held_imu
        if self.schedule.biased_at(step):
            if not self._bias_announced:
                self._bias_announced = True
                self.log("imu_bias_jump", step, t,
                         bias=[round(float(b), 6) for b in self.schedule.bias])
            gyro = gyro + self.schedule.bias
        self._held_imu = (gyro, accel)
        return gyro, accel

    def on_heading(self, step, t, heading, rate):
        if self._faulted(step, t) and self._held_heading is not None:
            return self._held_heading
        if self.schedule.biased_at(step):
            if not self._bias_announced:
                self._bias_announced = True
                self.log("imu_bias_jump", step, t,
                         bias=round(float(self.schedule.bias[0]), 6))
            rate = rate + float(self.schedule.bias[0])
        self._held_heading = (heading, rate)
        return heading, rate


class _SensorFaultModel(FaultModel):
    kinds = ("mission", "sensors")
    mode = ""

    def mission_hook(self, severity, seed, duration_s, control_period_s):
        severity = check_severity(severity)
        if severity == 0.0:
            return None
        n_steps = int(duration_s / max(control_period_s, 1e-9)) + 1
        return _SensorHook(self.mode, severity, seed, n_steps)

    def corrupt(self, seq: ImuSequence, severity: float,
                rng: Optional[np.random.Generator] = None,
                seed: int = 0) -> ImuSequence:
        return corrupt_sequence(seq, self.mode, severity, rng=rng, seed=seed)


class ImuDropoutFault(_SensorFaultModel):
    """Missed IMU samples: the estimator sees zero-order-held readings."""

    name = "imu-dropout"
    mode = "dropout"
    summary = "missed IMU samples: estimator sees zero-order-held readings"


class ImuBiasFault(_SensorFaultModel):
    """Persistent gyro bias jump at a random mid-mission instant."""

    name = "imu-bias"
    mode = "bias"
    summary = "persistent gyro bias jump at a random mid-mission instant"


class ImuStuckFault(_SensorFaultModel):
    """Sensor channels freezing over windows (hung bus / DMA)."""

    name = "imu-stuck"
    mode = "stuck"
    summary = "sensor channels freeze over windows (hung bus / DMA)"


register(ImuDropoutFault())
register(ImuBiasFault())
register(ImuStuckFault())
