"""Fault-injection and power-adversity subsystem.

Composable fault models (supply brownout, battery discharge, DVFS
throttling, CPI/overrun storms, IMU faults, probe faults) injected
through explicit seams in the MCU model, the instrumentation chain, and
the closed-loop stack; a deterministic campaign planner that expands
``(kernel | mission) x fault x severity`` grids into engine jobs; and a
resilience report that scores how gracefully each core degrades.

With every injector disabled (severity 0 / no hook), every touched code
path is bit-identical to the fault-free original — asserted in
``tests/test_faults.py``.
"""

from repro.faults.base import (
    FAULTS,
    FaultModel,
    check_severity,
    fault_names,
    get_fault,
    register,
)
from repro.faults.campaign import (
    CampaignResult,
    FaultCampaignSpec,
    MissionCell,
    plan_mission_cells,
    run_campaign,
)
from repro.faults.compute import CpiStormFault, DvfsThrottleFault, OverrunStormFault
from repro.faults.power import (
    BatteryDischargeFault,
    BrownoutFault,
    battery_voltage_frac,
)
from repro.faults.probes import (
    ProbeNoiseFault,
    corrupt_trace,
    make_capture_filter,
    make_edge_filter,
)
from repro.faults.resilience import build_report, render_report, save_report
from repro.faults.sensors import (
    ImuBiasFault,
    ImuDropoutFault,
    ImuStuckFault,
    corrupt_sequence,
)

__all__ = [
    "FAULTS",
    "FaultModel",
    "check_severity",
    "fault_names",
    "get_fault",
    "register",
    "CampaignResult",
    "FaultCampaignSpec",
    "MissionCell",
    "plan_mission_cells",
    "run_campaign",
    "CpiStormFault",
    "DvfsThrottleFault",
    "OverrunStormFault",
    "BatteryDischargeFault",
    "BrownoutFault",
    "battery_voltage_frac",
    "ProbeNoiseFault",
    "corrupt_trace",
    "make_capture_filter",
    "make_edge_filter",
    "build_report",
    "render_report",
    "save_report",
    "ImuBiasFault",
    "ImuDropoutFault",
    "ImuStuckFault",
    "corrupt_sequence",
]
