"""Linear relative pose solvers: 8-point, homography, gold standard.

* ``8pt``        — the normalized eight-point algorithm: Hartley
  normalization, SVD nullspace of the Nx9 epipolar system, projection onto
  the essential manifold, cheirality disambiguation.  Scales linearly in N
  through the SVD (the Fig. 5 observation).
* ``homography`` — the normalized 4+ point DLT for planar scenes.
* ``relgoldstd`` — 8pt initialization plus Gauss-Newton minimization of
  the Sampson error over (R, t) with t on the unit sphere.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.mcu import linalg
from repro.mcu.ops import OpCounter
from repro.pose.geometry import (
    decompose_essential,
    essential_from_pose,
    homogeneous,
    orthonormalize,
    sampson_error,
    skew,
)

Pose = Tuple[np.ndarray, np.ndarray]


def _normalization_transform(counter: OpCounter, x: np.ndarray) -> np.ndarray:
    """Hartley's isotropic normalization: centroid to origin, RMS sqrt(2)."""
    n = len(x)
    centroid = x.mean(axis=0)
    counter.vec_add(2 * n)
    counter.flop_mix(div=2)
    d = np.sqrt(np.sum((x - centroid) ** 2, axis=1))
    counter.flop_mix(add=3 * n, mul=2 * n, sqrt=n)
    mean_d = float(d.mean()) or 1.0
    scale = np.sqrt(2.0) / mean_d
    counter.flop_mix(add=n, div=2, sqrt=1)
    return np.array(
        [
            [scale, 0.0, -scale * centroid[0]],
            [0.0, scale, -scale * centroid[1]],
            [0.0, 0.0, 1.0],
        ]
    )


def eight_point_essential(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
) -> Optional[np.ndarray]:
    """Essential matrix from N >= 8 correspondences (normalized 8pt)."""
    n = len(x1)
    if n < 8:
        raise ValueError("8pt needs at least 8 correspondences")
    t1 = _normalization_transform(counter, x1)
    t2 = _normalization_transform(counter, x2)
    x1n = homogeneous(x1) @ t1.T
    x2n = homogeneous(x2) @ t2.T
    counter.mat_mat(n, 3, 3)
    counter.mat_mat(n, 3, 3)

    a = np.zeros((n, 9))
    for i in range(n):
        a[i] = np.kron(x2n[i], x1n[i])
    counter.flop_mix(mul=9 * n)
    counter.store(9 * n)

    e_vec = linalg.nullspace_vector(counter, a)
    e = e_vec.reshape(3, 3)
    # Denormalize, then project onto the essential manifold.
    e = t2.T @ e @ t1
    counter.mat_mat(3, 3, 3)
    counter.mat_mat(3, 3, 3)
    u, _, vt = linalg.svd(counter, e, full_matrices=True)
    e = u @ np.diag([1.0, 1.0, 0.0]) @ vt
    counter.mat_mat(3, 3, 3)
    counter.mat_mat(3, 3, 3)
    return e


def eight_point(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
) -> List[Pose]:
    """8pt essential + cheirality-resolved decomposition."""
    e = eight_point_essential(counter, x1, x2)
    if e is None:
        return []
    pose = decompose_essential(counter, e, x1, x2)
    return [pose] if pose is not None else []


def homography_dlt(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
) -> Optional[np.ndarray]:
    """Normalized DLT homography from N >= 4 correspondences."""
    n = len(x1)
    if n < 4:
        raise ValueError("homography needs at least 4 correspondences")
    if n == 4:
        return _homography_minimal(counter, x1, x2)
    t1 = _normalization_transform(counter, x1)
    t2 = _normalization_transform(counter, x2)
    x1n = homogeneous(x1) @ t1.T
    x2n = homogeneous(x2) @ t2.T
    counter.mat_mat(n, 3, 3)
    counter.mat_mat(n, 3, 3)

    a = np.zeros((2 * n, 9))
    for i in range(n):
        xs, ys, ws = x1n[i]
        xd, yd, wd = x2n[i]
        a[2 * i] = [0, 0, 0, -wd * xs, -wd * ys, -wd * ws, yd * xs, yd * ys, yd * ws]
        a[2 * i + 1] = [wd * xs, wd * ys, wd * ws, 0, 0, 0, -xd * xs, -xd * ys, -xd * ws]
    counter.flop_mix(mul=12 * n)
    counter.store(18 * n)

    h_vec = linalg.nullspace_vector(counter, a)
    h = h_vec.reshape(3, 3)
    h = np.linalg.inv(t2) @ h @ t1
    counter.mat_mat(3, 3, 3)
    counter.mat_mat(3, 3, 3)
    counter.flop_mix(add=12, mul=27, div=4)  # closed-form 3x3 inverse
    if abs(h[2, 2]) < 1e-12:
        return None
    counter.flop_mix(div=9)
    return h / h[2, 2]


def _homography_minimal(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
) -> Optional[np.ndarray]:
    """Exact 4-point homography via an inhomogeneous 8x8 solve (h22 = 1).

    The path embedded implementations take for the minimal configuration —
    an order of magnitude cheaper than the SVD of the overdetermined DLT.
    """
    a = np.zeros((8, 8))
    b = np.zeros(8)
    for i in range(4):
        xs, ys = x1[i]
        xd, yd = x2[i]
        a[2 * i] = [xs, ys, 1, 0, 0, 0, -xd * xs, -xd * ys]
        a[2 * i + 1] = [0, 0, 0, xs, ys, 1, -yd * xs, -yd * ys]
        b[2 * i] = xd
        b[2 * i + 1] = yd
    counter.flop_mix(mul=16)
    counter.store(72)
    try:
        h_vec = linalg.lu_solve(counter, a, b)
    except np.linalg.LinAlgError:
        return None
    return np.append(h_vec, 1.0).reshape(3, 3)


def homography_transfer_error(
    counter: OpCounter,
    h: np.ndarray,
    x1: np.ndarray,
    x2: np.ndarray,
) -> np.ndarray:
    """Squared symmetric-free (forward) transfer errors."""
    n = len(x1)
    mapped = homogeneous(x1) @ h.T
    counter.mat_mat(n, 3, 3)
    with np.errstate(divide="ignore", invalid="ignore"):
        proj = mapped[:, :2] / mapped[:, 2:3]
    counter.flop_mix(div=2 * n)
    err = np.sum((proj - x2) ** 2, axis=1)
    counter.flop_mix(add=3 * n, mul=2 * n)
    return np.where(np.abs(mapped[:, 2]) > 1e-12, err, np.inf)


def _tangent_basis(t: np.ndarray) -> np.ndarray:
    """Two unit vectors spanning the tangent plane of the unit sphere at t."""
    ref = np.array([1.0, 0.0, 0.0]) if abs(t[0]) < 0.9 else np.array([0.0, 1.0, 0.0])
    b1 = np.cross(t, ref)
    b1 /= np.linalg.norm(b1)
    b2 = np.cross(t, b1)
    return np.vstack([b1, b2])


def relative_gold_standard(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
    iterations: int = 12,
) -> List[Pose]:
    """8pt init + Gauss-Newton on the Sampson error over (R, t-sphere)."""
    init = eight_point(counter, x1, x2)
    if not init:
        return []
    r, t = init[0]
    t = t / np.linalg.norm(t)
    n = len(x1)

    def residuals(r_cur, t_cur):
        e = essential_from_pose(r_cur, t_cur)
        counter.mat_mat(3, 3, 3)
        return np.sqrt(sampson_error(counter, e, x1, x2) + 1e-18)

    eps = 1e-7
    for _ in range(iterations):
        counter.loop_overhead(1)
        res0 = residuals(r, t)
        basis = _tangent_basis(t)
        counter.vec_cross()
        counter.vec_cross()
        counter.vec_normalize(3)
        jac = np.zeros((n, 5))
        # Numeric Jacobian over 3 rotation + 2 translation-sphere dofs —
        # what a compact embedded implementation does to avoid long
        # analytic derivative code.
        for k in range(3):
            omega = np.zeros(3)
            omega[k] = eps
            dr = np.eye(3) + skew(omega)
            jac[:, k] = (residuals(dr @ r, t) - res0) / eps
            counter.mat_mat(3, 3, 3)
            counter.vec_add(n)
            counter.vec_scale(n)
        for k in range(2):
            t_pert = t + eps * basis[k]
            t_pert /= np.linalg.norm(t_pert)
            counter.vec_axpy(3)
            counter.vec_normalize(3)
            jac[:, 3 + k] = (residuals(r, t_pert) - res0) / eps
            counter.vec_add(n)
            counter.vec_scale(n)
        try:
            delta = linalg.gauss_newton_step(counter, jac, res0)
        except np.linalg.LinAlgError:
            break
        omega, dt2 = delta[:3], delta[3:]
        angle = float(np.linalg.norm(omega))
        counter.vec_norm(3)
        if angle > 1e-14:
            axis = omega / angle
            k_mat = skew(axis)
            dr = np.eye(3) + np.sin(angle) * k_mat + (1 - np.cos(angle)) * (k_mat @ k_mat)
            counter.flop_mix(add=18, mul=30, func=2)
            r = orthonormalize(counter, dr @ r)
        t = t + basis.T @ dt2
        t = t / np.linalg.norm(t)
        counter.mat_vec(3, 2)
        counter.vec_normalize(3)
        if float(np.linalg.norm(delta)) < 1e-12:
            counter.branch()
            break
    return [(r, t)]
