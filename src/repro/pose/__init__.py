"""Geometric pose estimation kernels: minimal/linear solvers + LO-RANSAC."""

from repro.pose.absolute import absolute_gold_standard, dlt, p3p, up2p
from repro.pose.fivept import five_point, five_point_essentials
from repro.pose.ransac import (
    AbsolutePoseAdapter,
    RansacConfig,
    RansacResult,
    RelativePoseAdapter,
    lo_ransac,
)
from repro.pose.relative import (
    eight_point,
    eight_point_essential,
    homography_dlt,
    relative_gold_standard,
)
from repro.pose.upright import u3pt, up2pt, up3pt

__all__ = [
    "absolute_gold_standard",
    "dlt",
    "p3p",
    "up2p",
    "five_point",
    "five_point_essentials",
    "AbsolutePoseAdapter",
    "RansacConfig",
    "RansacResult",
    "RelativePoseAdapter",
    "lo_ransac",
    "eight_point",
    "eight_point_essential",
    "homography_dlt",
    "relative_gold_standard",
    "u3pt",
    "up2pt",
    "up3pt",
]
