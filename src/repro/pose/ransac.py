"""LO-RANSAC: locally optimized robust estimation [Chum et al.].

A compile-time-configurable wrapper in the C++ framework; here a generic
loop over an *estimator adapter* that supplies the minimal solver, the
residual function, and the local-optimization (nonlinear refinement) step.
Supports optional linear or nonlinear local refinement and an optional
final polish, as the paper describes.

Thresholds are given in pixels and converted through the nominal focal
length of the synthetic camera.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.pose import NOMINAL_FOCAL_PX
from repro.mcu.ops import OpCounter
from repro.pose import absolute, relative
from repro.pose.fivept import five_point
from repro.pose.geometry import essential_from_pose, reprojection_error, sampson_error
from repro.pose.upright import u3pt, up2pt

Pose = Tuple[np.ndarray, np.ndarray]


@dataclass(frozen=True)
class RansacConfig:
    """LO-RANSAC knobs (Table II's RANSAC Configuration parameters)."""

    max_iterations: int = 200
    min_iterations: int = 5
    confidence: float = 0.99
    threshold_px: float = 1.5
    local_optimization: bool = True
    #: Run local optimization only when the best model improves, at most
    #: this many times (the LO-RANSAC trick that bounds LO cost).
    max_lo_runs: int = 6
    final_refinement: bool = True
    seed: int = 0

    @property
    def threshold_sq_norm(self) -> float:
        return (self.threshold_px / NOMINAL_FOCAL_PX) ** 2


@dataclass
class RansacResult:
    model: Optional[Pose]
    inlier_mask: np.ndarray
    iterations: int
    lo_runs: int
    score: int

    @property
    def inlier_ratio(self) -> float:
        return float(self.inlier_mask.mean()) if len(self.inlier_mask) else 0.0


class EstimatorAdapter:
    """What LO-RANSAC needs to know about one estimation problem."""

    sample_size: int = 0
    n: int = 0

    def solve_minimal(self, counter: OpCounter, idx: np.ndarray) -> List[Pose]:
        raise NotImplementedError

    def residuals_sq(self, counter: OpCounter, model: Pose) -> np.ndarray:
        raise NotImplementedError

    def refine(self, counter: OpCounter, model: Pose, inlier_idx: np.ndarray) -> Optional[Pose]:
        raise NotImplementedError


class AbsolutePoseAdapter(EstimatorAdapter):
    """Absolute pose with a pluggable minimal solver (p3p or up2p)."""

    def __init__(self, points_world: np.ndarray, points_image: np.ndarray,
                 minimal: str = "p3p"):
        self.points_world = points_world
        self.points_image = points_image
        self.n = len(points_world)
        if minimal == "p3p":
            self.sample_size = 3
            self._solver = absolute.p3p
        elif minimal == "up2p":
            self.sample_size = 2
            self._solver = absolute.up2p
        else:
            raise ValueError(f"unknown absolute minimal solver {minimal!r}")

    def solve_minimal(self, counter: OpCounter, idx: np.ndarray) -> List[Pose]:
        try:
            return self._solver(
                counter, self.points_world[idx], self.points_image[idx]
            )
        except np.linalg.LinAlgError:
            return []

    def residuals_sq(self, counter: OpCounter, model: Pose) -> np.ndarray:
        r, t = model
        return reprojection_error(counter, r, t, self.points_world, self.points_image)

    def refine(self, counter: OpCounter, model: Pose, inlier_idx: np.ndarray) -> Optional[Pose]:
        if len(inlier_idx) < 6:
            return None
        try:
            refined = absolute.absolute_gold_standard(
                counter,
                self.points_world[inlier_idx],
                self.points_image[inlier_idx],
                iterations=5,
            )
        except np.linalg.LinAlgError:
            return None
        return refined[0] if refined else None


class RelativePoseAdapter(EstimatorAdapter):
    """Relative pose with a pluggable minimal solver (5pt/u3pt/up2pt/8pt)."""

    _SOLVERS: dict = {}

    def __init__(self, x1: np.ndarray, x2: np.ndarray, minimal: str = "5pt"):
        self.x1 = x1
        self.x2 = x2
        self.n = len(x1)
        self.minimal = minimal
        if minimal == "5pt":
            self.sample_size = 5
        elif minimal == "u3pt":
            self.sample_size = 3
        elif minimal == "up2pt":
            self.sample_size = 2
        elif minimal == "8pt":
            self.sample_size = 8
        else:
            raise ValueError(f"unknown relative minimal solver {minimal!r}")

    def solve_minimal(self, counter: OpCounter, idx: np.ndarray) -> List[Pose]:
        s1, s2 = self.x1[idx], self.x2[idx]
        try:
            if self.minimal == "5pt":
                return five_point(counter, s1, s2)
            if self.minimal == "u3pt":
                return u3pt(counter, s1, s2)
            if self.minimal == "up2pt":
                return up2pt(counter, s1, s2)
            return relative.eight_point(counter, s1, s2)
        except np.linalg.LinAlgError:
            return []

    def residuals_sq(self, counter: OpCounter, model: Pose) -> np.ndarray:
        r, t = model
        e = essential_from_pose(r, t)
        counter.mat_mat(3, 3, 3)
        return sampson_error(counter, e, self.x1, self.x2)

    def refine(self, counter: OpCounter, model: Pose, inlier_idx: np.ndarray) -> Optional[Pose]:
        if len(inlier_idx) < 8:
            return None
        try:
            refined = relative.relative_gold_standard(
                counter, self.x1[inlier_idx], self.x2[inlier_idx], iterations=5
            )
        except np.linalg.LinAlgError:
            return None
        return refined[0] if refined else None


def _required_iterations(inlier_ratio: float, sample_size: int,
                         confidence: float) -> float:
    """Adaptive RANSAC stopping criterion."""
    if inlier_ratio <= 0.0:
        return math.inf
    good = inlier_ratio**sample_size
    if good >= 1.0 - 1e-12:
        return 0.0
    return math.log(max(1.0 - confidence, 1e-12)) / math.log(1.0 - good)


def lo_ransac(
    counter: OpCounter,
    adapter: EstimatorAdapter,
    config: RansacConfig = RansacConfig(),
) -> RansacResult:
    """Locally optimized RANSAC over any estimator adapter."""
    rng = np.random.default_rng(config.seed)
    thr = config.threshold_sq_norm
    n = adapter.n
    best_model: Optional[Pose] = None
    best_mask = np.zeros(n, dtype=bool)
    best_score = 0
    lo_runs = 0
    iterations = 0

    while iterations < config.max_iterations:
        iterations += 1
        counter.loop_overhead(1)
        idx = rng.choice(n, size=adapter.sample_size, replace=False)
        counter.ialu(adapter.sample_size * 6)  # PRNG + Fisher-Yates steps
        models = adapter.solve_minimal(counter, idx)
        improved = False
        for model in models:
            res = adapter.residuals_sq(counter, model)
            mask = res < thr
            counter.fcmp(n)
            score = int(mask.sum())
            counter.ialu(n)
            if score > best_score:
                best_model, best_mask, best_score = model, mask, score
                improved = True

        if improved and config.local_optimization and lo_runs < config.max_lo_runs:
            lo_runs += 1
            refined = adapter.refine(counter, best_model, np.flatnonzero(best_mask))
            if refined is not None:
                res = adapter.residuals_sq(counter, refined)
                mask = res < thr
                counter.fcmp(n)
                score = int(mask.sum())
                if score >= best_score:
                    best_model, best_mask, best_score = refined, mask, score

        if iterations >= config.min_iterations:
            needed = _required_iterations(
                best_score / n, adapter.sample_size, config.confidence
            )
            counter.flop_mix(add=2, mul=3, div=2, func=2)
            if iterations >= needed:
                counter.branch()
                break

    if (
        best_model is not None
        and config.final_refinement
        and best_score > adapter.sample_size
    ):
        refined = adapter.refine(counter, best_model, np.flatnonzero(best_mask))
        if refined is not None:
            res = adapter.residuals_sq(counter, refined)
            mask = res < thr
            score = int(mask.sum())
            if score >= best_score:
                best_model, best_mask, best_score = refined, mask, score

    return RansacResult(
        model=best_model,
        inlier_mask=best_mask,
        iterations=iterations,
        lo_runs=lo_runs,
        score=best_score,
    )
