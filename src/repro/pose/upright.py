"""Upright and planar relative pose solvers: u3pt, up2pt, up3pt.

These solvers exploit the structural priors of insect-scale robots:

* ``u3pt``  — gravity known (IMU): rotation reduces to a yaw about the
  vertical, three correspondences, a degree-6 polynomial in the
  half-angle parameter.
* ``up2pt`` — gravity known *and* planar motion (a water strider): two
  correspondences, a quartic.
* ``up3pt`` — same priors, but a *linear* formulation (Choi & Kim): the
  planar-upright essential matrix has only four non-zero parameters, so
  N >= 3 correspondences give an SVD nullspace problem that scales
  linearly in N.

All return candidate poses ``x2 = R @ x1 + t`` with ``t`` up to scale,
disambiguated by cheirality voting.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.mcu import linalg
from repro.mcu.ops import OpCounter
from repro.pose.geometry import cheirality_count, homogeneous

Pose = Tuple[np.ndarray, np.ndarray]


def _rotation_terms(x: np.ndarray) -> np.ndarray:
    """Coefficients (q^2, q, 1) of each component of (1+q^2) R_y(q) x."""
    return np.array(
        [
            [-x[0], 2.0 * x[2], x[0]],
            [x[1], 0.0, x[1]],
            [-x[2], -2.0 * x[0], x[2]],
        ]
    )


def _poly_cross(a_terms: np.ndarray, b: np.ndarray) -> np.ndarray:
    """cross(a(q), b) where a's components are degree-2 polys: (3, 3) array
    of polynomial coefficients (q^2, q, 1) per output component."""
    out = np.zeros((3, 3))
    out[0] = a_terms[1] * b[2] - a_terms[2] * b[1]
    out[1] = a_terms[2] * b[0] - a_terms[0] * b[2]
    out[2] = a_terms[0] * b[1] - a_terms[1] * b[0]
    return out


def _yaw_rotation_from_q(qv: float) -> np.ndarray:
    denom = 1.0 + qv * qv
    c = (1.0 - qv * qv) / denom
    s = 2.0 * qv / denom
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def _poly_mul_1d(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two polynomials given as high-to-low coefficient arrays."""
    return np.convolve(a, b)


def u3pt(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
) -> List[Pose]:
    """Upright 3-point relative pose (gravity prior only).

    The translation must be orthogonal to ``c_i(q) = R(q) f1_i x f2_i`` for
    all three correspondences; a non-trivial ``t`` exists iff
    ``det([c1 c2 c3])(q) = 0`` — a degree-6 polynomial in ``q``.
    """
    if len(x1) != 3:
        raise ValueError("u3pt needs exactly 3 correspondences")
    f1 = homogeneous(x1)
    f2 = homogeneous(x2)
    c_polys = []
    for i in range(3):
        terms = _rotation_terms(f1[i])
        c_polys.append(_poly_cross(terms, f2[i]))
        counter.flop_mix(add=9, mul=24)

    # det over polynomial entries: expand along the first row.
    def minor(ci, cj, k, l):  # noqa: E741 - matrix index names
        return _poly_mul_1d(c_polys[1][k], c_polys[2][l]) - _poly_mul_1d(
            c_polys[1][l], c_polys[2][k]
        )

    det = (
        _poly_mul_1d(c_polys[0][0], minor(1, 2, 1, 2))
        - _poly_mul_1d(c_polys[0][1], minor(0, 2, 0, 2))
        + _poly_mul_1d(c_polys[0][2], minor(0, 1, 0, 1))
    )
    counter.flop_mix(add=80, mul=120)

    roots = linalg.poly_roots(counter, det)
    poses: List[Pose] = []
    for root in roots:
        if abs(root.imag) > 1e-8:
            counter.branch(taken=False)
            continue
        qv = float(root.real)
        r = _yaw_rotation_from_q(qv)
        counter.flop_mix(add=2, mul=4, div=2)
        qs = np.array([qv * qv, qv, 1.0])
        c1 = c_polys[0] @ qs
        c2 = c_polys[1] @ qs
        counter.mat_vec(3, 3)
        counter.mat_vec(3, 3)
        t = np.cross(c1, c2)
        counter.vec_cross()
        norm = np.linalg.norm(t)
        counter.vec_norm(3)
        if norm < 1e-12:
            continue
        t = t / norm
        counter.vec_scale(3)
        for t_cand in (t, -t):
            if cheirality_count(counter, x1, x2, r, t_cand) == 3:
                poses.append((r, t_cand))
                break
    return poses


def up2pt(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
) -> List[Pose]:
    """Upright planar 2-point relative pose (gravity + planar priors).

    With ``t = (tx, 0, tz)`` the orthogonality constraints only involve the
    x/z components of ``c_i(q)``; a non-trivial solution exists iff the 2x2
    determinant vanishes — a quartic in ``q``.
    """
    if len(x1) != 2:
        raise ValueError("up2pt needs exactly 2 correspondences")
    f1 = homogeneous(x1)
    f2 = homogeneous(x2)
    c0 = _poly_cross(_rotation_terms(f1[0]), f2[0])
    c1 = _poly_cross(_rotation_terms(f1[1]), f2[1])
    counter.flop_mix(add=18, mul=48)

    det = _poly_mul_1d(c0[0], c1[2]) - _poly_mul_1d(c0[2], c1[0])
    counter.flop_mix(add=15, mul=18)

    roots = linalg.poly_roots(counter, det)
    poses: List[Pose] = []
    for root in roots:
        if abs(root.imag) > 1e-8:
            counter.branch(taken=False)
            continue
        qv = float(root.real)
        r = _yaw_rotation_from_q(qv)
        counter.flop_mix(add=2, mul=4, div=2)
        qs = np.array([qv * qv, qv, 1.0])
        cx = float(c0[0] @ qs)
        cz = float(c0[2] @ qs)
        counter.vec_dot(3)
        counter.vec_dot(3)
        t = np.array([cz, 0.0, -cx])
        norm = np.linalg.norm(t)
        counter.vec_norm(3)
        if norm < 1e-12:
            # Degenerate first constraint; fall back to the second point.
            cx = float(c1[0] @ qs)
            cz = float(c1[2] @ qs)
            counter.vec_dot(3)
            counter.vec_dot(3)
            t = np.array([cz, 0.0, -cx])
            norm = np.linalg.norm(t)
            if norm < 1e-12:
                continue
        t = t / norm
        counter.vec_scale(3)
        for t_cand in (t, -t):
            if cheirality_count(counter, x1, x2, r, t_cand) == 2:
                poses.append((r, t_cand))
                break
    return poses


def up3pt(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
) -> List[Pose]:
    """Linear upright-planar solver (Choi & Kim): N >= 3 correspondences.

    The planar-upright essential matrix is ``[[0, e01, 0], [e10, 0, e12],
    [0, e21, 0]]``; each correspondence gives one linear equation in the
    four parameters, solved by SVD nullspace.
    """
    n = len(x1)
    if n < 3:
        raise ValueError("up3pt needs at least 3 correspondences")
    a = np.zeros((n, 4))
    for i in range(n):
        u1, v1 = x1[i]
        u2, v2 = x2[i]
        a[i] = [u2 * v1, v2 * u1, v2, v1]
    counter.flop_mix(mul=2 * n)
    counter.store(4 * n)

    e_params = linalg.nullspace_vector(counter, a)
    e01, e10, e12, e21 = e_params
    # tz = -e01, tx = e21; then [e10; e12] = [[tz, tx], [-tx, tz]] [c; s].
    tz, tx = -e01, e21
    denom = tz * tz + tx * tx
    counter.flop_mix(add=1, mul=2)
    if denom < 1e-18:
        return []
    c = (tz * e10 - tx * e12) / denom
    s = (tx * e10 + tz * e12) / denom
    counter.flop_mix(add=2, mul=4, div=2)
    cs_norm = np.hypot(c, s)
    counter.flop_mix(add=1, mul=2, sqrt=1)
    if cs_norm < 1e-12:
        return []
    c, s = c / cs_norm, s / cs_norm
    counter.flop_mix(div=2)
    r = np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    t = np.array([tx, 0.0, tz])
    norm = np.linalg.norm(t)
    counter.vec_norm(3)
    if norm < 1e-12:
        return []
    t = t / norm
    counter.vec_scale(3)

    best, best_votes = None, -1
    for t_cand in (t, -t):
        votes = cheirality_count(counter, x1, x2, r, t_cand, max_points=n)
        if votes > best_votes:
            best, best_votes = (r, t_cand), votes
    return [best] if best is not None and best_votes > 0 else []
