"""Nistér/Stewenius five-point relative pose solver.

The minimal essential-matrix solver: five correspondences, a 4-dimensional
nullspace ``E = x E1 + y E2 + z E3 + E4``, ten cubic constraints
(``det(E) = 0`` plus the trace constraint ``2 E E^T E - tr(E E^T) E = 0``),
Gauss-Jordan elimination of the degree-3 monomials, and a 10x10 action
matrix whose eigenvectors carry the up-to-10 real solutions (Stewenius's
formulation).  Every candidate must be validated — the cost structure the
paper's Case Study 4 highlights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mcu import linalg
from repro.mcu.ops import OpCounter
from repro.pose.geometry import decompose_essential, homogeneous

Pose = Tuple[np.ndarray, np.ndarray]

# Monomial order for degree <= 3 polynomials in (x, y, z): the ten cubic
# monomials to eliminate, then the ten-monomial quotient basis.
_MONOMIALS = [
    (3, 0, 0), (2, 1, 0), (2, 0, 1), (1, 2, 0), (1, 1, 1), (1, 0, 2),
    (0, 3, 0), (0, 2, 1), (0, 1, 2), (0, 0, 3),
    (2, 0, 0), (1, 1, 0), (1, 0, 1), (0, 2, 0), (0, 1, 1), (0, 0, 2),
    (1, 0, 0), (0, 1, 0), (0, 0, 1), (0, 0, 0),
]
_MONO_INDEX = {m: i for i, m in enumerate(_MONOMIALS)}
# Quotient-ring basis (columns 10..19): [x^2, xy, xz, y^2, yz, z^2, x, y, z, 1].
_BASIS = _MONOMIALS[10:]

Poly = Dict[Tuple[int, int, int], float]


def _poly_mul(a: Poly, b: Poly) -> Poly:
    out: Poly = {}
    for ma, ca in a.items():
        for mb, cb in b.items():
            m = (ma[0] + mb[0], ma[1] + mb[1], ma[2] + mb[2])
            out[m] = out.get(m, 0.0) + ca * cb
    return out


def _poly_add(a: Poly, b: Poly, sign: float = 1.0) -> Poly:
    out = dict(a)
    for m, c in b.items():
        out[m] = out.get(m, 0.0) + sign * c
    return out


def _poly_scale(a: Poly, s: float) -> Poly:
    return {m: c * s for m, c in a.items()}


def _poly_to_row(p: Poly) -> np.ndarray:
    row = np.zeros(20)
    for m, c in p.items():
        row[_MONO_INDEX[m]] = c
    return row


def _symbolic_essential(basis: np.ndarray) -> List[List[Poly]]:
    """E(x, y, z) = x E1 + y E2 + z E3 + E4 as 3x3 polynomial entries."""
    e1, e2, e3, e4 = (basis[i].reshape(3, 3) for i in range(4))
    entries: List[List[Poly]] = []
    for i in range(3):
        row = []
        for j in range(3):
            row.append(
                {
                    (1, 0, 0): float(e1[i, j]),
                    (0, 1, 0): float(e2[i, j]),
                    (0, 0, 1): float(e3[i, j]),
                    (0, 0, 0): float(e4[i, j]),
                }
            )
        entries.append(row)
    return entries


def _constraint_rows(e_sym: List[List[Poly]], counter: OpCounter) -> np.ndarray:
    """The 10x20 coefficient matrix of det(E)=0 and the trace constraint."""
    # det(E) — the cofactor expansion over polynomial entries.
    def minor(i: int, j: int) -> Poly:
        rows = [r for r in range(3) if r != i]
        cols = [c for c in range(3) if c != j]
        return _poly_add(
            _poly_mul(e_sym[rows[0]][cols[0]], e_sym[rows[1]][cols[1]]),
            _poly_mul(e_sym[rows[0]][cols[1]], e_sym[rows[1]][cols[0]]),
            sign=-1.0,
        )

    det = {}
    for j in range(3):
        term = _poly_mul(e_sym[0][j], minor(0, j))
        det = _poly_add(det, term, sign=1.0 if j % 2 == 0 else -1.0)

    # EE^T
    eet: List[List[Poly]] = [[{} for _ in range(3)] for _ in range(3)]
    for i in range(3):
        for j in range(3):
            acc: Poly = {}
            for k in range(3):
                acc = _poly_add(acc, _poly_mul(e_sym[i][k], e_sym[j][k]))
            eet[i][j] = acc
    trace = _poly_add(_poly_add(eet[0][0], eet[1][1]), eet[2][2])

    # 2 EE^T E - tr(EE^T) E = 0  (nine scalar equations).
    rows = [det]
    for i in range(3):
        for j in range(3):
            acc: Poly = {}
            for k in range(3):
                acc = _poly_add(acc, _poly_mul(eet[i][k], e_sym[k][j]))
            eq = _poly_add(_poly_scale(acc, 2.0),
                           _poly_mul(trace, e_sym[i][j]), sign=-1.0)
            rows.append(eq)

    # Symbolic expansion cost: ~60 degree-1x-degree-2 polynomial products,
    # each ~40 multiply-adds, as straight-line compiled code.
    counter.flop_mix(add=2400, mul=2600)
    counter.store(200)
    return np.vstack([_poly_to_row(p) for p in rows])


def five_point_essentials(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
) -> List[np.ndarray]:
    """All real essential-matrix candidates from exactly 5 correspondences."""
    if len(x1) != 5:
        raise ValueError("5pt needs exactly 5 correspondences")
    x1h = homogeneous(x1)
    x2h = homogeneous(x2)
    q = np.zeros((5, 9))
    for i in range(5):
        q[i] = np.kron(x2h[i], x1h[i])
    counter.flop_mix(mul=45)
    counter.store(45)

    # 4-dimensional nullspace via SVD.
    _, _, vt = linalg.svd(counter, q, full_matrices=True)
    basis = vt[5:9]

    e_sym = _symbolic_essential(basis)
    m = _constraint_rows(e_sym, counter)

    try:
        reduced = linalg.gauss_jordan(counter, m)
    except np.linalg.LinAlgError:
        return []
    c_block = reduced[:, 10:]  # eliminated monomial = -c_block @ basis

    # Action matrix for multiplication by x in the quotient ring.
    action = np.zeros((10, 10))
    # x * [x^2, xy, xz, y^2, yz, z^2] lands on eliminated cubics 0..5.
    for row, cubic_row in enumerate(range(6)):
        action[row] = -c_block[cubic_row]
    # x * x = x^2 (basis idx 0), x * y = xy (1), x * z = xz (2), x * 1 = x (6).
    action[6, 0] = 1.0
    action[7, 1] = 1.0
    action[8, 2] = 1.0
    action[9, 6] = 1.0
    counter.store(100)
    counter.ialu(60)

    eigvals, eigvecs = linalg.eig_general(counter, action)
    essentials: List[np.ndarray] = []
    for k in range(10):
        if abs(eigvals[k].imag) > 1e-8:
            counter.branch(taken=False)
            continue
        v = eigvecs[:, k].real
        if abs(v[9]) < 1e-12:
            counter.branch(taken=False)
            continue
        x = v[6] / v[9]
        y = v[7] / v[9]
        z = v[8] / v[9]
        counter.flop_mix(div=3)
        e = (
            x * basis[0].reshape(3, 3)
            + y * basis[1].reshape(3, 3)
            + z * basis[2].reshape(3, 3)
            + basis[3].reshape(3, 3)
        )
        counter.flop_mix(add=27, mul=27)
        norm = np.linalg.norm(e)
        counter.vec_norm(9)
        if norm < 1e-12:
            continue
        essentials.append(e / norm)
        counter.vec_scale(9)
    return essentials


def five_point(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
    validate_with: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> List[Pose]:
    """5pt solve + cheirality validation of every candidate.

    ``validate_with`` optionally supplies extra correspondences used for
    disambiguation (as LO-RANSAC does with the full point set).
    """
    vx1, vx2 = validate_with if validate_with is not None else (x1, x2)
    poses: List[Pose] = []
    for e in five_point_essentials(counter, x1, x2):
        pose = decompose_essential(counter, e, vx1, vx2)
        if pose is not None:
            poses.append(pose)
    return poses
