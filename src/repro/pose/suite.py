"""Benchmark problems for the geometric pose-estimation kernels.

Registers the Table III Abs./Rel. Pose and Robust Pose rows: ``p3p``,
``up2p``, ``dlt``, ``absgoldstd``, ``up2pt``, ``up3pt``, ``u3pt``, ``5pt``,
``8pt``, ``relgoldstd``, ``homography``, ``abs-lo-ransac``, and
``rel-lo-ransac``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.problem import EntoProblem
from repro.core.registry import register
from repro.datasets import pose as posedata
from repro.mcu.memory import Footprint
from repro.mcu.ops import OpCounter
from repro.mcu.static import StaticMix, compose
from repro.pose import absolute, relative
from repro.pose.fivept import five_point
from repro.pose.geometry import best_pose_by_reprojection
from repro.pose.ransac import (
    AbsolutePoseAdapter,
    RansacConfig,
    RelativePoseAdapter,
    lo_ransac,
)
from repro.pose.relative import homography_dlt, homography_transfer_error
from repro.pose.upright import u3pt, up2pt, up3pt
from repro.scalar import F32, ScalarType

Pose = Tuple[np.ndarray, np.ndarray]

#: Default synthetic-problem noise for the characterization runs (Fig. 5
#: b/c use 0.1 px).
DEFAULT_NOISE_PX = 0.1
#: Rotation-error pass threshold for noisy minimal solves.
MAX_ROT_ERR_DEG = 5.0


class _PoseProblemBase(EntoProblem):
    """Common scaffolding: dataset generation, rotation-error validation."""

    stage = "S"
    upright = False
    planar = False
    n_points = 16

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 noise_px: float = DEFAULT_NOISE_PX, n_points: Optional[int] = None):
        super().__init__(scalar, seed)
        self.noise_px = noise_px
        if n_points is not None:
            self.n_points = n_points
        self.problem = None
        self.last_rotation_error_deg: Optional[float] = None

    def _cast(self, a: np.ndarray) -> np.ndarray:
        return np.asarray(a, dtype=self.scalar.dtype)

    def _record_error(self, pose: Optional[Pose], r_true: np.ndarray) -> None:
        if pose is None:
            self.last_rotation_error_deg = float("inf")
        else:
            self.last_rotation_error_deg = posedata.rotation_angle_deg(
                np.asarray(pose[0], dtype=np.float64), r_true
            )

    #: Per-problem override; the paper notes the minimal 8pt configuration
    #: "is not as accurate unless overdetermined".
    max_rot_err_deg = MAX_ROT_ERR_DEG

    def validate(self, result) -> bool:
        return (
            self.last_rotation_error_deg is not None
            and self.last_rotation_error_deg <= self.max_rot_err_deg
        )

    def footprint(self) -> Footprint:
        bytes_per = self.scalar.dtype.itemsize
        data = self.n_points * 8 * bytes_per + 4096  # points + solver workspace
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes, data_bytes=data)


# ---------------------------------------------------------------------------
# Absolute pose
# ---------------------------------------------------------------------------


class _AbsoluteProblem(_PoseProblemBase):
    category = "Abs. Pose"
    dataset_name = "abs-synth"

    def setup(self, rng: np.random.Generator) -> None:
        self.problem = posedata.make_absolute_problem(
            n_points=self.n_points,
            noise_px=self.noise_px,
            upright=self.upright,
            rng=rng,
        )
        self.world = self._cast(self.problem.points_world)
        self.image = self._cast(self.problem.points_image)


class P3pProblem(_AbsoluteProblem):
    name = "p3p"

    def solve(self, counter: OpCounter):
        pose = absolute.solve_best_absolute(
            counter, absolute.p3p, self.world[:3], self.image[:3],
            self.world, self.image,
        )
        self._record_error(pose, self.problem.r_true)
        return pose

    def static_mix_base(self) -> StaticMix:
        return compose(("p3p_solver", "reprojection_residual", "svd",
                        "harness_runtime"))

    def flop_estimate(self) -> int:
        return 420  # quartic + back substitution + alignment


class Up2pProblem(_AbsoluteProblem):
    name = "up2p"
    dataset_name = "up-abs-synth"
    upright = True

    def solve(self, counter: OpCounter):
        pose = absolute.solve_best_absolute(
            counter, absolute.up2p, self.world[:2], self.image[:2],
            self.world[:6], self.image[:6],
        )
        self._record_error(pose, self.problem.r_true)
        return pose

    def static_mix_base(self) -> StaticMix:
        return compose(("up2p_solver", "reprojection_residual", "harness_runtime"))

    def flop_estimate(self) -> int:
        return 120


class DltProblem(_AbsoluteProblem):
    name = "dlt"
    n_points = 6  # the paper's linear baseline runs near-minimal

    def solve(self, counter: OpCounter):
        poses = absolute.dlt(counter, self.world, self.image)
        pose = poses[0] if poses else None
        self._record_error(pose, self.problem.r_true)
        return pose

    def static_mix_base(self) -> StaticMix:
        return compose(("dlt_normalization", "svd", "harness_runtime"))


class AbsGoldStdProblem(_AbsoluteProblem):
    name = "absgoldstd"

    def solve(self, counter: OpCounter):
        poses = absolute.absolute_gold_standard(counter, self.world, self.image)
        pose = poses[0] if poses else None
        self._record_error(pose, self.problem.r_true)
        return pose

    def static_mix_base(self) -> StaticMix:
        return compose(("dlt_normalization", "svd", "levenberg_step",
                        "reprojection_residual", "lu_solver", "harness_runtime"))


# ---------------------------------------------------------------------------
# Relative pose
# ---------------------------------------------------------------------------


class _RelativeProblem(_PoseProblemBase):
    category = "Rel. Pose"
    dataset_name = "rel-synth"

    def setup(self, rng: np.random.Generator) -> None:
        self.problem = posedata.make_relative_problem(
            n_points=self.n_points,
            noise_px=self.noise_px,
            upright=self.upright,
            planar=self.planar,
            rng=rng,
        )
        self.x1 = self._cast(self.problem.x1)
        self.x2 = self._cast(self.problem.x2)

    def _best_rel(self, counter: OpCounter, poses: List[Pose],
                  n_score: int = 6) -> Optional[Pose]:
        """Pick the candidate with the smallest Sampson error over a few
        points — candidate scoring on full point sets is RANSAC's job, not
        the minimal solver's."""
        if not poses:
            return None
        from repro.pose.geometry import essential_from_pose, sampson_error

        k = min(n_score, len(self.x1))
        best, best_err = None, np.inf
        for r, t in poses:
            e = essential_from_pose(r, t)
            counter.mat_mat(3, 3, 3)
            err = float(np.sum(sampson_error(counter, e, self.x1[:k], self.x2[:k])))
            counter.fcmp()
            if err < best_err:
                best, best_err = (r, t), err
        return best


class Up2ptProblem(_RelativeProblem):
    name = "up2pt"
    dataset_name = "str-rel-synth"
    upright = True
    planar = True

    def solve(self, counter: OpCounter):
        pose = self._best_rel(counter, up2pt(counter, self.x1[:2], self.x2[:2]))
        self._record_error(pose, self.problem.r_true)
        return pose

    def static_mix_base(self) -> StaticMix:
        return compose(("upright_planar_solver", "sampson_residual", "harness_runtime"))

    def flop_estimate(self) -> int:
        return 160


class Up3ptProblem(_RelativeProblem):
    name = "up3pt"
    dataset_name = "str-rel-synth"
    upright = True
    planar = True

    def solve(self, counter: OpCounter):
        pose = self._best_rel(counter, up3pt(counter, self.x1, self.x2))
        self._record_error(pose, self.problem.r_true)
        return pose

    def static_mix_base(self) -> StaticMix:
        return compose(("upright_planar_solver", "qr", "sampson_residual",
                        "harness_runtime"))


class U3ptProblem(_RelativeProblem):
    name = "u3pt"
    dataset_name = "upr-rel-synth"
    upright = True

    def solve(self, counter: OpCounter):
        pose = self._best_rel(counter, u3pt(counter, self.x1[:3], self.x2[:3]))
        self._record_error(pose, self.problem.r_true)
        return pose

    def static_mix_base(self) -> StaticMix:
        return compose(("upright_planar_solver", "polynomial_builder",
                        "sampson_residual", "harness_runtime"))

    def flop_estimate(self) -> int:
        return 900


class FivePtProblem(_RelativeProblem):
    name = "5pt"

    def solve(self, counter: OpCounter):
        poses = five_point(counter, self.x1[:5], self.x2[:5],
                           validate_with=(self.x1, self.x2))
        pose = self._best_rel(counter, poses)
        self._record_error(pose, self.problem.r_true)
        return pose

    def static_mix_base(self) -> StaticMix:
        return compose(("grobner_5pt", "polynomial_builder", "svd",
                        "companion_eig", "sampson_residual", "harness_runtime"))

    def flop_estimate(self) -> int:
        return 26000  # nullspace + elimination + action-matrix eigensolve


class EightPtProblem(_RelativeProblem):
    name = "8pt"
    n_points = 8  # minimal configuration, as characterized in Table IV
    max_rot_err_deg = 20.0  # minimal 8pt is noise-fragile (Fig. 5a)

    def solve(self, counter: OpCounter):
        poses = relative.eight_point(counter, self.x1, self.x2)
        pose = poses[0] if poses else None
        self._record_error(pose, self.problem.r_true)
        return pose

    def static_mix_base(self) -> StaticMix:
        return compose(("dlt_normalization", "svd", "sampson_residual",
                        "harness_runtime"))


class RelGoldStdProblem(_RelativeProblem):
    name = "relgoldstd"

    def solve(self, counter: OpCounter):
        poses = relative.relative_gold_standard(counter, self.x1, self.x2)
        pose = poses[0] if poses else None
        self._record_error(pose, self.problem.r_true)
        return pose

    def static_mix_base(self) -> StaticMix:
        return compose(("dlt_normalization", "svd", "levenberg_step",
                        "sampson_residual", "lu_solver", "bundle_adjust_small",
                        "harness_runtime"))


class HomographyProblem(_PoseProblemBase):
    name = "homography"
    category = "Abs./Rel. Pose"
    dataset_name = "homog-synth"
    n_points = 4  # minimal 4-point DLT, as characterized in Table IV

    def setup(self, rng: np.random.Generator) -> None:
        self.problem = posedata.make_homography_problem(
            n_points=self.n_points, noise_px=self.noise_px, rng=rng
        )
        self.x1 = self._cast(self.problem.x1)
        self.x2 = self._cast(self.problem.x2)
        self.last_transfer_rms_px: Optional[float] = None

    def solve(self, counter: OpCounter):
        h = homography_dlt(counter, self.x1, self.x2)
        if h is None:
            self.last_transfer_rms_px = float("inf")
            return None
        err = homography_transfer_error(counter, h, self.x1, self.x2)
        self.last_transfer_rms_px = float(
            np.sqrt(np.mean(err)) * posedata.NOMINAL_FOCAL_PX
        )
        return h

    def validate(self, result) -> bool:
        return (
            self.last_transfer_rms_px is not None
            and self.last_transfer_rms_px <= max(3.0 * self.noise_px, 0.5)
        )

    def static_mix_base(self) -> StaticMix:
        return compose(("homography_solver", "dlt_normalization", "svd",
                        "harness_runtime"))


# ---------------------------------------------------------------------------
# Robust pose (LO-RANSAC)
# ---------------------------------------------------------------------------

#: Case Study 4 settings: 25% outliers, 0.5 px noise.
ROBUST_OUTLIER_RATIO = 0.25
ROBUST_NOISE_PX = 0.5


class AbsLoRansacProblem(_PoseProblemBase):
    name = "abs-lo-ransac"
    category = "Robust Pose"
    dataset_name = "rob-abs-synth"
    n_points = 32

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 minimal: str = "p3p", n_points: Optional[int] = None):
        super().__init__(scalar, seed, noise_px=ROBUST_NOISE_PX, n_points=n_points)
        self.minimal = minimal
        self.last_result = None

    def setup(self, rng: np.random.Generator) -> None:
        self.problem = posedata.make_absolute_problem(
            n_points=self.n_points,
            noise_px=self.noise_px,
            outlier_ratio=ROBUST_OUTLIER_RATIO,
            upright=(self.minimal == "up2p"),
            rng=rng,
        )
        self.world = self._cast(self.problem.points_world)
        self.image = self._cast(self.problem.points_image)

    def solve(self, counter: OpCounter):
        adapter = AbsolutePoseAdapter(self.world, self.image, minimal=self.minimal)
        config = RansacConfig(threshold_px=4.0 * ROBUST_NOISE_PX, seed=self.seed)
        result = lo_ransac(counter, adapter, config)
        self.last_result = result
        self._record_error(result.model, self.problem.r_true)
        return result

    def static_mix_base(self) -> StaticMix:
        return compose(("ransac_loop", "p3p_solver", "reprojection_residual",
                        "local_optimization", "svd", "lu_solver",
                        "bundle_adjust_small", "harness_runtime"))


class RelLoRansacProblem(_PoseProblemBase):
    name = "rel-lo-ransac"
    category = "Robust Pose"
    dataset_name = "rob-rel-synth"
    n_points = 32

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 minimal: str = "5pt", n_points: Optional[int] = None):
        super().__init__(scalar, seed, noise_px=ROBUST_NOISE_PX, n_points=n_points)
        self.minimal = minimal
        self.last_result = None

    def setup(self, rng: np.random.Generator) -> None:
        self.problem = posedata.make_relative_problem(
            n_points=self.n_points,
            noise_px=self.noise_px,
            outlier_ratio=ROBUST_OUTLIER_RATIO,
            upright=self.minimal in ("u3pt", "up2pt"),
            planar=self.minimal == "up2pt",
            rng=rng,
        )
        self.x1 = self._cast(self.problem.x1)
        self.x2 = self._cast(self.problem.x2)

    def solve(self, counter: OpCounter):
        adapter = RelativePoseAdapter(self.x1, self.x2, minimal=self.minimal)
        config = RansacConfig(threshold_px=4.0 * ROBUST_NOISE_PX, seed=self.seed)
        result = lo_ransac(counter, adapter, config)
        self.last_result = result
        self._record_error(result.model, self.problem.r_true)
        return result

    def static_mix_base(self) -> StaticMix:
        return compose(("ransac_loop", "grobner_5pt", "companion_eig",
                        "polynomial_builder", "sampson_residual",
                        "local_optimization", "svd", "lu_solver",
                        "bundle_adjust_small", "harness_runtime"))


register("p3p")(P3pProblem)
register("up2p")(Up2pProblem)
register("dlt")(DltProblem)
register("absgoldstd")(AbsGoldStdProblem)
register("up2pt")(Up2ptProblem)
register("up3pt")(Up3ptProblem)
register("u3pt")(U3ptProblem)
register("5pt")(FivePtProblem)
register("8pt")(EightPtProblem)
register("relgoldstd")(RelGoldStdProblem)
register("homography")(HomographyProblem)
register("abs-lo-ransac")(AbsLoRansacProblem)
register("rel-lo-ransac")(RelLoRansacProblem)
