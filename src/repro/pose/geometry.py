"""Shared multiple-view geometry utilities (counted).

Essential-matrix decomposition, triangulation with cheirality tests,
reprojection and Sampson residuals — the plumbing every pose solver and
the LO-RANSAC wrapper share.  All routines record their operations, since
on an MCU solution disambiguation is a real part of a solver's cost (the
5-point solver's up-to-10 candidate solutions all must be validated).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.mcu import linalg
from repro.mcu.ops import OpCounter


def skew(t: np.ndarray) -> np.ndarray:
    """Cross-product matrix of a 3-vector."""
    return np.array(
        [[0.0, -t[2], t[1]], [t[2], 0.0, -t[0]], [-t[1], t[0], 0.0]]
    )


def homogeneous(x: np.ndarray) -> np.ndarray:
    """Append a unit coordinate: (N, 2) image points -> (N, 3) rays."""
    x = np.atleast_2d(x)
    return np.hstack([x, np.ones((len(x), 1), dtype=x.dtype)])


def project(r: np.ndarray, t: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Project world points through pose (R, t) to normalized image coords."""
    cam = points @ r.T + t
    return cam[:, :2] / cam[:, 2:3]


def essential_from_pose(r: np.ndarray, t: np.ndarray) -> np.ndarray:
    return skew(t) @ r


def triangulate_point(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
    r: np.ndarray,
    t: np.ndarray,
) -> np.ndarray:
    """Midpoint-free linear triangulation of one correspondence.

    Camera 1 at identity, camera 2 at (R, t); returns the point in camera-1
    coordinates.
    """
    p1 = np.hstack([np.eye(3), np.zeros((3, 1))])
    p2 = np.hstack([r, t.reshape(3, 1)])
    a = np.vstack(
        [
            x1[0] * p1[2] - p1[0],
            x1[1] * p1[2] - p1[1],
            x2[0] * p2[2] - p2[0],
            x2[1] * p2[2] - p2[1],
        ]
    )
    counter.flop_mix(add=8, mul=16)
    xh = linalg.nullspace_vector(counter, a)
    if abs(xh[3]) < 1e-12:
        return np.full(3, np.inf)
    counter.fdiv(3)
    return xh[:3] / xh[3]


def cheirality_count(
    counter: OpCounter,
    x1: np.ndarray,
    x2: np.ndarray,
    r: np.ndarray,
    t: np.ndarray,
    max_points: int = 3,
) -> int:
    """How many correspondences land in front of both cameras.

    Uses the closed-form two-view depth (cross-product elimination of the
    epipolar system) rather than a full triangulation — what embedded
    solver code does for candidate disambiguation.
    """
    n = min(len(x1), max_points)
    ok = 0
    for i in range(n):
        f1 = np.array([x1[i, 0], x1[i, 1], 1.0])
        f2 = np.array([x2[i, 0], x2[i, 1], 1.0])
        rf1 = r @ f1
        counter.mat_vec(3, 3)
        c1 = np.cross(rf1, f2)
        c2 = np.cross(f2, t)
        counter.vec_cross()
        counter.vec_cross()
        denom = float(c1 @ c1)
        counter.vec_dot(3)
        if denom < 1e-18:
            counter.branch(taken=False)
            continue
        z1 = float(c2 @ c1) / denom
        counter.vec_dot(3)
        counter.fdiv()
        z2 = z1 * float(rf1[2]) + float(t[2])
        counter.flop_mix(add=1, mul=1)
        counter.fcmp(2)
        if z1 > 0 and z2 > 0:
            ok += 1
            counter.branch()
        else:
            counter.branch(taken=False)
    return ok


def decompose_essential(
    counter: OpCounter,
    e: np.ndarray,
    x1: np.ndarray,
    x2: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """(R, t) from an essential matrix via the four-fold SVD ambiguity,
    resolved with cheirality voting."""
    u, _, vt = linalg.svd(counter, e, full_matrices=True)
    if np.linalg.det(u) < 0:
        u = -u
    if np.linalg.det(vt) < 0:
        vt = -vt
    counter.flop_mix(add=10, mul=24)
    w = np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
    candidates = []
    for r_cand in (u @ w @ vt, u @ w.T @ vt):
        counter.mat_mat(3, 3, 3)
        counter.mat_mat(3, 3, 3)
        for t_cand in (u[:, 2], -u[:, 2]):
            candidates.append((r_cand, t_cand))
    best, best_votes = None, -1
    for r_cand, t_cand in candidates:
        votes = cheirality_count(counter, x1, x2, r_cand, t_cand)
        if votes > best_votes:
            best, best_votes = (r_cand, t_cand), votes
    if best is None or best_votes == 0:
        return None
    return best


def sampson_error(
    counter: OpCounter,
    e: np.ndarray,
    x1: np.ndarray,
    x2: np.ndarray,
) -> np.ndarray:
    """First-order geometric (Sampson) epipolar errors for all points."""
    n = len(x1)
    x1h = homogeneous(x1)
    x2h = homogeneous(x2)
    ex1 = x1h @ e.T
    etx2 = x2h @ e
    num = np.sum(x2h * ex1, axis=1) ** 2
    den = ex1[:, 0] ** 2 + ex1[:, 1] ** 2 + etx2[:, 0] ** 2 + etx2[:, 1] ** 2
    counter.flop_mix(add=n * 16, mul=n * 24, div=n)
    return num / np.maximum(den, 1e-18)


def reprojection_error(
    counter: OpCounter,
    r: np.ndarray,
    t: np.ndarray,
    points_world: np.ndarray,
    points_image: np.ndarray,
) -> np.ndarray:
    """Squared reprojection residuals for an absolute pose."""
    n = len(points_world)
    cam = points_world @ r.T + t
    counter.mat_mat(n, 3, 3)
    counter.vec_add(3 * n)
    with np.errstate(divide="ignore", invalid="ignore"):
        proj = cam[:, :2] / cam[:, 2:3]
    counter.flop_mix(div=2 * n)
    err = np.sum((proj - points_image) ** 2, axis=1)
    counter.flop_mix(add=3 * n, mul=2 * n)
    err = np.where(cam[:, 2] > 1e-9, err, np.inf)
    counter.fcmp(n)
    return err


def orthonormalize(counter: OpCounter, r: np.ndarray) -> np.ndarray:
    """Project a near-rotation onto SO(3) via SVD."""
    u, _, vt = linalg.svd(counter, r, full_matrices=True)
    out = u @ vt
    counter.mat_mat(3, 3, 3)
    if np.linalg.det(out) < 0:
        u[:, 2] = -u[:, 2]
        out = u @ vt
        counter.mat_mat(3, 3, 3)
    return out


def rotations_close(r1: np.ndarray, r2: np.ndarray, tol_deg: float = 1.0) -> bool:
    cos = (np.trace(r1.T @ r2) - 1.0) / 2.0
    return bool(np.degrees(np.arccos(np.clip(cos, -1.0, 1.0))) <= tol_deg)


def best_pose_by_reprojection(
    counter: OpCounter,
    candidates: List[Tuple[np.ndarray, np.ndarray]],
    points_world: np.ndarray,
    points_image: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Pick the candidate absolute pose with least total reprojection error."""
    best, best_err = None, np.inf
    for r, t in candidates:
        err = float(np.sum(reprojection_error(counter, r, t, points_world, points_image)))
        counter.fcmp()
        if np.isfinite(err) and err < best_err:
            best, best_err = (r, t), err
    return best
