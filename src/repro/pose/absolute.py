"""Absolute pose solvers: P3P, UP2P, DLT, and the gold standard.

* ``p3p``        — Grunert's classical minimal solver: a quartic in the
  depth ratio, then 3-point absolute orientation.  Up to 4 solutions.
* ``up2p``       — Kukelova's upright 2-point solver: with gravity known
  (from the IMU) the rotation is a pure yaw; eliminating translation gives
  a quadratic.  Up to 2 solutions.
* ``dlt``        — linear 6+ point Direct Linear Transform; pays for an
  SVD of a 2Nx12 system.
* ``absgoldstd`` — the Hartley-Zisserman gold standard: DLT initialization
  plus Gauss-Newton minimization of reprojection error.

Pose convention matches the dataset: ``x_cam = R @ x_world + t``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.mcu import linalg
from repro.mcu.ops import OpCounter
from repro.pose.geometry import (
    best_pose_by_reprojection,
    homogeneous,
    orthonormalize,
    reprojection_error,
)

Pose = Tuple[np.ndarray, np.ndarray]


def _absolute_orientation(
    counter: OpCounter,
    points_cam: np.ndarray,
    points_world: np.ndarray,
) -> Pose:
    """Rigid transform world->camera from 3+ point pairs (Kabsch)."""
    cw = points_world.mean(axis=0)
    cc = points_cam.mean(axis=0)
    counter.vec_add(6 * len(points_world))
    counter.flop_mix(div=6)
    h = (points_world - cw).T @ (points_cam - cc)
    counter.mat_mat(3, len(points_world), 3)
    u, _, vt = linalg.svd(counter, h, full_matrices=True)
    r = vt.T @ u.T
    counter.mat_mat(3, 3, 3)
    if np.linalg.det(r) < 0:
        vt[2] = -vt[2]
        r = vt.T @ u.T
        counter.mat_mat(3, 3, 3)
    t = cc - r @ cw
    counter.mat_vec(3, 3)
    counter.vec_add(3)
    return r, t


def p3p(
    counter: OpCounter,
    points_world: np.ndarray,
    points_image: np.ndarray,
) -> List[Pose]:
    """Grunert P3P: up to four (R, t) candidates from 3 correspondences."""
    if len(points_world) != 3:
        raise ValueError("p3p needs exactly 3 correspondences")
    rays = homogeneous(points_image)
    f = rays / np.linalg.norm(rays, axis=1, keepdims=True)
    counter.flop_mix(add=6, mul=9, div=9, sqrt=3)

    p1, p2, p3 = points_world
    a = float(np.linalg.norm(p2 - p3))
    b = float(np.linalg.norm(p1 - p3))
    c = float(np.linalg.norm(p1 - p2))
    counter.flop_mix(add=15, mul=9, sqrt=3)
    if min(a, b, c) < 1e-12:
        return []

    cos_alpha = float(f[1] @ f[2])
    cos_beta = float(f[0] @ f[2])
    cos_gamma = float(f[0] @ f[1])
    counter.vec_dot(3)
    counter.vec_dot(3)
    counter.vec_dot(3)

    a2, b2, c2 = a * a, b * b, c * c
    # Haralick et al.'s form of Grunert's quartic in v = s3/s1.
    p = (a2 - c2) / b2
    q = (a2 + c2) / b2
    r = (b2 - c2) / b2
    s = (b2 - a2) / b2
    counter.flop_mix(add=6, mul=3, div=4)

    a4 = (p - 1.0) ** 2 - 4.0 * (c2 / b2) * cos_alpha**2
    a3 = 4.0 * (
        p * (1.0 - p) * cos_beta
        - (1.0 - q) * cos_alpha * cos_gamma
        + 2.0 * (c2 / b2) * cos_alpha**2 * cos_beta
    )
    a2_coef = 2.0 * (
        p**2
        - 1.0
        + 2.0 * p**2 * cos_beta**2
        + 2.0 * r * cos_alpha**2
        - 4.0 * q * cos_alpha * cos_beta * cos_gamma
        + 2.0 * s * cos_gamma**2
    )
    a1 = 4.0 * (
        -p * (1.0 + p) * cos_beta
        + 2.0 * (a2 / b2) * cos_gamma**2 * cos_beta
        - (1.0 - q) * cos_alpha * cos_gamma
    )
    a0 = (1.0 + p) ** 2 - 4.0 * (a2 / b2) * cos_gamma**2
    counter.flop_mix(add=22, mul=46, div=2)

    roots = linalg.quartic_roots(counter, np.array([a4, a3, a2_coef, a1, a0]))
    poses: List[Pose] = []
    for v in roots:
        if v <= 0:
            counter.branch(taken=False)
            continue
        denom = 2.0 * (cos_gamma - v * cos_alpha)
        counter.flop_mix(add=1, mul=2)
        if abs(denom) < 1e-12:
            counter.branch()
            continue
        u = ((p - 1.0) * v * v - 2.0 * p * cos_beta * v + 1.0 + p) / denom
        counter.flop_mix(add=3, mul=4, div=1)
        if u <= 0:
            counter.branch(taken=False)
            continue
        s1_sq = c2 / (1.0 + u * u - 2.0 * u * cos_gamma)
        counter.flop_mix(add=2, mul=3, div=1)
        if s1_sq <= 0:
            counter.branch(taken=False)
            continue
        s1 = float(np.sqrt(s1_sq))
        s2, s3 = u * s1, v * s1
        counter.flop_mix(mul=2, sqrt=1)
        cam_pts = np.vstack([s1 * f[0], s2 * f[1], s3 * f[2]])
        counter.vec_scale(9)
        poses.append(_absolute_orientation(counter, cam_pts, points_world))
    return poses


def up2p(
    counter: OpCounter,
    points_world: np.ndarray,
    points_image: np.ndarray,
) -> List[Pose]:
    """Upright 2-point absolute pose (rotation about the camera y-axis).

    Eliminating the translation from the cross-product projection
    constraints of both points yields a quadratic in the half-angle
    parameter ``q`` (Kukelova et al.).
    """
    if len(points_world) != 2:
        raise ValueError("up2p needs exactly 2 correspondences")
    (u1, v1), (u2, v2) = points_image
    x1, x2 = points_world

    # (1+q^2) * R_y(q) X = [ (1-q^2) X0 + 2q X2, (1+q^2) X1, -2q X0 + (1-q^2) X2 ]
    # Row differences between the two points eliminate t up to t_z; a final
    # combination eliminates t_z, leaving a quadratic in q.
    def rx_terms(x):
        # coefficients (of q^2, q, 1) of each component of (1+q^2) R X
        return (
            np.array([-x[0], 2.0 * x[2], x[0]]),  # X-component
            np.array([x[1], 0.0, x[1]]),  # Y-component
            np.array([-x[2], -2.0 * x[0], x[2]]),  # Z-component
        )

    r1x, r1y, r1z = rx_terms(x1)
    r2x, r2y, r2z = rx_terms(x2)
    counter.flop_mix(mul=8)

    # d_e2 = (RX1)_x - u1 (RX1)_z - (RX2)_x + u2 (RX2)_z  - (u1-u2) tz' = 0
    d_e2 = r1x - u1 * r1z - r2x + u2 * r2z
    # d_e1 = v1 (RX1)_z - (RX1)_y - v2 (RX2)_z + (RX2)_y + (v1-v2) tz' = 0
    d_e1 = v1 * r1z - r1y - v2 * r2z + r2y
    counter.flop_mix(add=18, mul=12)
    # Eliminate tz': (v1-v2) * d_e2 + (u1-u2) * d_e1 = 0.
    poly = (v1 - v2) * d_e2 + (u1 - u2) * d_e1
    counter.flop_mix(add=8, mul=6)

    qs = linalg.quadratic_roots(counter, poly[0], poly[1], poly[2])
    poses: List[Pose] = []
    for qv in qs:
        denom = 1.0 + qv * qv
        cos_t = (1.0 - qv * qv) / denom
        sin_t = 2.0 * qv / denom
        counter.flop_mix(add=2, mul=3, div=2)
        r = np.array(
            [[cos_t, 0.0, sin_t], [0.0, 1.0, 0.0], [-sin_t, 0.0, cos_t]]
        )
        # Solve the 4 linear constraints for t (least squares, 3 unknowns).
        rows, rhs = [], []
        for (uu, vv), xw in (((u1, v1), x1), ((u2, v2), x2)):
            rx = r @ xw
            counter.mat_vec(3, 3)
            rows.append([1.0, 0.0, -uu])
            rhs.append(uu * rx[2] - rx[0])
            rows.append([0.0, 1.0, -vv])
            rhs.append(vv * rx[2] - rx[1])
            counter.flop_mix(add=2, mul=2)
        a_mat = np.array(rows)
        b_vec = np.array(rhs)
        ata = a_mat.T @ a_mat
        atb = a_mat.T @ b_vec
        counter.mat_mat(3, 4, 3)
        counter.mat_vec(3, 4)
        try:
            t = linalg.lu_solve(counter, ata, atb)
        except np.linalg.LinAlgError:
            continue
        poses.append((r, t))
    return poses


def dlt(
    counter: OpCounter,
    points_world: np.ndarray,
    points_image: np.ndarray,
) -> List[Pose]:
    """Linear 6+ point absolute pose via the Direct Linear Transform."""
    n = len(points_world)
    if n < 6:
        raise ValueError("dlt needs at least 6 correspondences")
    a = np.zeros((2 * n, 12))
    for i in range(n):
        x, y, z = points_world[i]
        u, v = points_image[i]
        a[2 * i] = [x, y, z, 1, 0, 0, 0, 0, -u * x, -u * y, -u * z, -u]
        a[2 * i + 1] = [0, 0, 0, 0, x, y, z, 1, -v * x, -v * y, -v * z, -v]
    counter.flop_mix(mul=8 * n)
    counter.store(24 * n)

    p_vec = linalg.nullspace_vector(counter, a)
    p_mat = p_vec.reshape(3, 4)
    m = p_mat[:, :3]
    # Fix scale/sign so that det(R) = +1 and points have positive depth.
    scale = np.cbrt(np.linalg.det(m))
    counter.flop_mix(add=5, mul=12, div=1, func=1)
    if abs(scale) < 1e-12:
        return []
    p_mat = p_mat / scale
    counter.vec_scale(12)
    r = orthonormalize(counter, p_mat[:, :3])
    t = p_mat[:, 3]
    depths = points_world @ r[2] + t[2]
    counter.mat_vec(1, 3 * n)
    if np.median(depths) < 0:
        r = orthonormalize(counter, -p_mat[:, :3])
        t = -t
        counter.vec_scale(12)
    return [(r, t)]


def absolute_gold_standard(
    counter: OpCounter,
    points_world: np.ndarray,
    points_image: np.ndarray,
    iterations: int = 10,
) -> List[Pose]:
    """DLT initialization + Gauss-Newton reprojection refinement."""
    init = dlt(counter, points_world, points_image)
    if not init:
        return []
    r, t = init[0]
    n = len(points_world)
    for _ in range(iterations):
        counter.loop_overhead(1)
        cam = points_world @ r.T + t
        counter.mat_mat(n, 3, 3)
        counter.vec_add(3 * n)
        z = cam[:, 2]
        if np.any(z < 1e-9):
            break
        proj = cam[:, :2] / cam[:, 2:3]
        counter.flop_mix(div=2 * n)
        resid = (proj - points_image).ravel()
        counter.vec_add(2 * n)

        jac = np.zeros((2 * n, 6))
        for i in range(n):
            x_c, y_c, z_c = cam[i]
            inv_z = 1.0 / z_c
            # d(proj)/d(cam): standard pinhole Jacobian.
            dproj = np.array(
                [[inv_z, 0.0, -x_c * inv_z**2], [0.0, inv_z, -y_c * inv_z**2]]
            )
            # cam = R p + t; d(cam)/d(omega) = -[R p]_x, d(cam)/dt = I.
            rp = cam[i] - t
            dcam = np.hstack(
                [
                    np.array(
                        [
                            [0.0, rp[2], -rp[1]],
                            [-rp[2], 0.0, rp[0]],
                            [rp[1], -rp[0], 0.0],
                        ]
                    ),
                    np.eye(3),
                ]
            )
            jac[2 * i : 2 * i + 2] = dproj @ dcam
            counter.flop_mix(add=8, mul=22, div=1)
        delta = linalg.gauss_newton_step(counter, jac, resid)
        omega, dt_vec = delta[:3], delta[3:]
        angle = np.linalg.norm(omega)
        counter.vec_norm(3)
        if angle > 1e-12:
            axis = omega / angle
            k = np.array(
                [
                    [0, -axis[2], axis[1]],
                    [axis[2], 0, -axis[0]],
                    [-axis[1], axis[0], 0],
                ]
            )
            dr = np.eye(3) + np.sin(angle) * k + (1 - np.cos(angle)) * (k @ k)
            counter.flop_mix(add=18, mul=30, func=2)
            r = dr @ r
            counter.mat_mat(3, 3, 3)
        t = t + dt_vec
        counter.vec_add(3)
        if float(np.linalg.norm(delta)) < 1e-10:
            counter.branch()
            break
    return [(orthonormalize(counter, r), t)]


def solve_best_absolute(
    counter: OpCounter,
    solver,
    points_world: np.ndarray,
    points_image: np.ndarray,
    all_world: Optional[np.ndarray] = None,
    all_image: Optional[np.ndarray] = None,
) -> Optional[Pose]:
    """Run a multi-solution solver and disambiguate by reprojection."""
    candidates = solver(counter, points_world, points_image)
    if not candidates:
        return None
    ref_w = all_world if all_world is not None else points_world
    ref_i = all_image if all_image is not None else points_image
    return best_pose_by_reprojection(counter, candidates, ref_w, ref_i)
