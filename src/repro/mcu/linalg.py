"""Counted linear algebra — the framework's Eigen substitute.

Every routine computes the *real* result with NumPy and simultaneously
records, on the supplied :class:`~repro.mcu.ops.OpCounter`, the operations a
compiled dense implementation would execute (textbook operation counts plus
the loads/stores and loop bookkeeping around them).  The counts are
*dynamic*: data-dependent iteration counts (RANSAC trials, ADMM sweeps,
root-polishing passes) flow straight into the recorded trace, which is how
the framework reproduces Case Study 3's finding that static FLOP tallies
underpredict measured cost.

Routines deliberately model a *generic* dense library: sparse structure is
not exploited (the paper notes Eigen's sparse path was slower on MCUs due
to control-flow and allocation overhead, so the C++ kernels use dense math
everywhere too).
"""

from __future__ import annotations

import numpy as np

from repro.mcu.ops import OpCounter


def _dense_work(c: OpCounter, fma: int, extra_add: int = 0, extra_mul: int = 0,
                div: int = 0, sqrt: int = 0) -> None:
    """Record a block of dense float work with proportional memory traffic.

    The memory/integer factors model -O2 compiled inner loops with operands
    partly held in registers (roughly one load and one index update per
    flop, a store every fourth flop).
    """
    c.trace.ffma += fma
    c.trace.fadd += extra_add
    c.trace.fmul += extra_mul
    c.trace.fdiv += div
    c.trace.fsqrt += sqrt
    n = fma + extra_add + extra_mul + div + sqrt
    c.trace.load += int(1.1 * n)
    c.trace.store += max(n // 4, 1)
    c.trace.ialu += int(0.8 * n)
    c.trace.icmp += max(n // 6, 1)
    c.trace.br_taken += max(n // 10, 1)
    c.trace.br_not += max(n // 24, 1)


def matmul(c: OpCounter, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense matrix product."""
    a = np.atleast_2d(a)
    b2 = np.atleast_2d(b) if b.ndim == 1 else b
    m, k = a.shape
    n = b2.shape[1] if b.ndim > 1 else 1
    _dense_work(c, fma=m * k * n)
    return a @ b


def matvec(c: OpCounter, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Dense matrix-vector product."""
    m, n = np.atleast_2d(a).shape
    _dense_work(c, fma=m * n)
    return a @ x


def dot(c: OpCounter, x: np.ndarray, y: np.ndarray) -> float:
    n = int(np.asarray(x).size)
    c.vec_dot(n)
    return float(np.dot(np.ravel(x), np.ravel(y)))


def norm(c: OpCounter, x: np.ndarray) -> float:
    n = int(np.asarray(x).size)
    c.vec_norm(n)
    return float(np.linalg.norm(x))


def cross(c: OpCounter, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    c.vec_cross()
    return np.cross(x, y)


def add(c: OpCounter, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    c.vec_add(int(np.asarray(x).size))
    return x + y


def sub(c: OpCounter, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    c.vec_add(int(np.asarray(x).size))
    return x - y


def scale(c: OpCounter, alpha: float, x: np.ndarray) -> np.ndarray:
    c.vec_scale(int(np.asarray(x).size))
    return alpha * x


def outer(c: OpCounter, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    m, n = np.asarray(x).size, np.asarray(y).size
    _dense_work(c, fma=0, extra_mul=m * n)
    return np.outer(x, y)


def transpose(c: OpCounter, a: np.ndarray) -> np.ndarray:
    m, n = np.atleast_2d(a).shape
    c.mat_transpose(m, n)
    return a.T.copy()


def lu_solve(c: OpCounter, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve a (n x n) system via LU with partial pivoting."""
    n = a.shape[0]
    rhs = 1 if b.ndim == 1 else b.shape[1]
    # LU: ~2/3 n^3 fma; triangular solves: n^2 per RHS; pivot search: n^2/2.
    _dense_work(c, fma=(2 * n ** 3) // 3 + rhs * n * n, div=n * rhs + n)
    c.trace.icmp += n * n // 2
    c.trace.br_taken += n * n // 4
    return np.linalg.solve(a, b)


def cholesky(c: OpCounter, a: np.ndarray) -> np.ndarray:
    """Lower-triangular Cholesky factor of an SPD matrix."""
    n = a.shape[0]
    _dense_work(c, fma=n ** 3 // 3, div=n * (n - 1) // 2, sqrt=n)
    return np.linalg.cholesky(a)


def cholesky_solve(c: OpCounter, l_factor: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve using a precomputed Cholesky factor (two triangular solves)."""
    n = l_factor.shape[0]
    rhs = 1 if b.ndim == 1 else b.shape[1]
    _dense_work(c, fma=2 * n * n * rhs, div=2 * n * rhs)
    y = np.linalg.solve(l_factor, b)
    return np.linalg.solve(l_factor.T, y)


def inverse(c: OpCounter, a: np.ndarray) -> np.ndarray:
    """Dense matrix inverse (LU + n triangular solve pairs)."""
    n = a.shape[0]
    if n <= 3:
        # Small fixed-size inverses are unrolled closed forms in Eigen.
        _dense_work(c, fma=n * n * n, extra_add=n * n, div=n * n)
        return np.linalg.inv(a)
    _dense_work(c, fma=2 * n ** 3, div=2 * n)
    return np.linalg.inv(a)


def qr(c: OpCounter, a: np.ndarray) -> tuple:
    """Householder QR factorization."""
    m, n = a.shape
    _dense_work(c, fma=2 * m * n * n - (2 * n ** 3) // 3, sqrt=n, div=n)
    q_mat, r_mat = np.linalg.qr(a)
    return q_mat, r_mat


def svd(c: OpCounter, a: np.ndarray, full_matrices: bool = False) -> tuple:
    """Golub–Kahan SVD — the dominant cost of the linear pose solvers."""
    m, n = a.shape
    small, big = (n, m) if m >= n else (m, n)
    # Bidiagonalization + implicit QR sweeps + accumulation of U and V.
    fma = 4 * big * small * small + 9 * small ** 3
    _dense_work(c, fma=int(fma), div=14 * small * small, sqrt=4 * small * small)
    return np.linalg.svd(a, full_matrices=full_matrices)


def eig_sym(c: OpCounter, a: np.ndarray) -> tuple:
    """Symmetric eigendecomposition (tridiagonalization + QL sweeps)."""
    n = a.shape[0]
    _dense_work(c, fma=9 * n ** 3, div=6 * n * n, sqrt=3 * n * n)
    return np.linalg.eigh(a)


def eig_general(c: OpCounter, a: np.ndarray) -> tuple:
    """General (non-symmetric) eigendecomposition via Hessenberg QR.

    The action-matrix step of Gröbner-basis minimal solvers (the 5-point
    algorithm) lands here — a large part of why that solver is "strenuous"
    on MCUs (Case Study 4).
    """
    n = a.shape[0]
    _dense_work(c, fma=18 * n ** 3, div=8 * n * n, sqrt=3 * n * n)
    return np.linalg.eig(a)


def gauss_jordan(c: OpCounter, a: np.ndarray) -> np.ndarray:
    """Reduced row echelon form of an (m x n) system, m <= n."""
    m, n = a.shape
    _dense_work(c, fma=m * m * n, div=m * n)
    c.trace.icmp += m * m
    c.trace.br_taken += m * m // 2
    out = a.astype(np.float64).copy()
    for col in range(m):
        pivot = np.argmax(np.abs(out[col:, col])) + col
        if abs(out[pivot, col]) < 1e-14:
            raise np.linalg.LinAlgError("singular system in gauss_jordan")
        out[[col, pivot]] = out[[pivot, col]]
        out[col] = out[col] / out[col, col]
        for row in range(m):
            if row != col:
                out[row] = out[row] - out[row, col] * out[col]
    return out


def nullspace_vector(c: OpCounter, a: np.ndarray) -> np.ndarray:
    """Unit vector spanning the (numerical) nullspace of ``a`` via SVD."""
    _, _, vt = svd(c, a, full_matrices=True)
    return vt[-1]


def poly_roots(c: OpCounter, coeffs: np.ndarray) -> np.ndarray:
    """Roots of a polynomial via the companion-matrix eigenproblem.

    This is how the 5-point solver's degree-10 polynomial is solved, and a
    major reason it is so expensive on MCUs (the paper's Case Study 4).
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    deg = len(coeffs) - 1
    if deg <= 0:
        return np.array([])
    if deg <= 8:
        return small_poly_roots(c, coeffs)
    # Companion-matrix Hessenberg QR: ~10 n^3 with eigenvector-free sweeps.
    _dense_work(c, fma=10 * deg ** 3, div=8 * deg * deg, sqrt=2 * deg * deg)
    return np.roots(coeffs)


def small_poly_roots(c: OpCounter, coeffs: np.ndarray) -> np.ndarray:
    """Roots of a low-degree polynomial via simultaneous (Aberth-style)
    iteration — the compact routine embedded minimal solvers ship instead
    of a full companion eigensolver."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    deg = len(coeffs) - 1
    if deg <= 0:
        return np.array([])
    iters = 8  # bracketed Newton with deflation converges fast at low degree
    per_iter = deg * (2 * deg + 6)  # poly + derivative eval per live root
    _dense_work(c, fma=iters * per_iter, div=iters * deg)
    return np.roots(coeffs)


def quadratic_roots(c: OpCounter, a: float, b: float, q_c: float) -> np.ndarray:
    """Real roots of a quadratic (closed form)."""
    _dense_work(c, fma=4, div=2, sqrt=1)
    disc = b * b - 4 * a * q_c
    if disc < 0:
        return np.array([])
    s = np.sqrt(disc)
    return np.array([(-b + s) / (2 * a), (-b - s) / (2 * a)])


def cubic_roots(c: OpCounter, coeffs: np.ndarray) -> np.ndarray:
    """Real roots of a cubic via the trigonometric closed form."""
    c.flop_mix(add=12, mul=18, div=4, sqrt=2, func=3)
    roots = np.roots(coeffs)
    return np.real(roots[np.abs(np.imag(roots)) < 1e-9])


def quartic_roots(c: OpCounter, coeffs: np.ndarray) -> np.ndarray:
    """Real roots of a quartic (Ferrari resolvent; used by P3P)."""
    c.flop_mix(add=30, mul=45, div=8, sqrt=4, func=4)
    roots = np.roots(coeffs)
    return np.real(roots[np.abs(np.imag(roots)) < 1e-9])


def gauss_newton_step(c: OpCounter, jac: np.ndarray, residual: np.ndarray) -> np.ndarray:
    """One Gauss–Newton step: solve (J^T J) dx = -J^T r."""
    jtj = matmul(c, jac.T, jac)
    jtr = matvec(c, jac.T, residual)
    return lu_solve(c, jtj, -jtr)
