"""Static code model: flash footprint and static instruction mix.

The paper's Table III reports, per kernel and per core, the flash image
size and the static instruction mix (Float / Integer / Memory / Branch) of
the compiled binary.  Reproducing that without an ARM compiler requires a
code model: each kernel composes named *code blocks* (a Gaussian blur, an
SVD, an ADMM iteration body, ...) with known per-block size and mix, plus a
fixed runtime overhead.  Per-core variation mirrors what different
instruction sets and tuning flags do to the same source: ARMv8-M (M33)
emits a near-identical mix to ARMv7E-M (M4), while M7-tuned code is
noticeably denser for branch-heavy kernels thanks to predication and
better scheduling.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable

from repro.mcu.arch import ArchSpec


@dataclass(frozen=True)
class StaticMix:
    """Static instruction counts by category (Table III's F/I/M/B)."""

    flash_bytes: int
    f: int
    i: int
    m: int
    b: int

    def __add__(self, other: "StaticMix") -> "StaticMix":
        return StaticMix(
            self.flash_bytes + other.flash_bytes,
            self.f + other.f,
            self.i + other.i,
            self.m + other.m,
            self.b + other.b,
        )

    def scaled(self, k: float) -> "StaticMix":
        return StaticMix(
            int(self.flash_bytes * k),
            int(self.f * k),
            int(self.i * k),
            int(self.m * k),
            int(self.b * k),
        )

    @property
    def total_instructions(self) -> int:
        return self.f + self.i + self.m + self.b


# Library of code blocks.  Sizes/mixes approximate -O2 ARM Thumb-2 output
# for the corresponding C++ routine, calibrated against Table III.
CODE_BLOCKS: Dict[str, StaticMix] = {
    # perception building blocks
    "gaussian_blur": StaticMix(1400, 90, 160, 90, 50),
    "image_pyramid": StaticMix(1800, 60, 260, 190, 110),
    "fast_detector": StaticMix(2200, 10, 320, 140, 120),
    "brief_descriptor": StaticMix(1200, 10, 110, 50, 28),
    "orientation_moments": StaticMix(1600, 180, 240, 110, 90),
    "rotated_brief": StaticMix(2400, 240, 280, 120, 110),
    "harris_score": StaticMix(1400, 140, 90, 60, 40),
    "dog_pyramid": StaticMix(9000, 420, 900, 480, 240),
    "sift_extrema": StaticMix(12000, 380, 1100, 520, 300),
    "sift_descriptor": StaticMix(22000, 820, 1400, 700, 380),
    "sift_orientation": StaticMix(9000, 420, 620, 320, 170),
    "lk_gradients": StaticMix(9000, 140, 1500, 1100, 700),
    "lk_iteration": StaticMix(11000, 190, 1700, 1200, 820),
    "bilinear_interp": StaticMix(700, 40, 90, 70, 30),
    "image_shift_interp": StaticMix(600, 17, 85, 60, 29),
    "sad_block_match": StaticMix(1600, 6, 260, 170, 70),
    "sad_block_match_simd": StaticMix(1400, 6, 200, 130, 50),
    # estimation building blocks
    "quat_update": StaticMix(700, 110, 60, 50, 35),
    "vec3_kinematics": StaticMix(450, 60, 30, 28, 20),
    "marg_correction": StaticMix(900, 160, 40, 40, 18),
    "levenberg_step": StaticMix(2600, 380, 210, 160, 90),
    "small_matmul": StaticMix(900, 130, 110, 80, 42),
    "dense_matmul": StaticMix(2400, 420, 330, 210, 110),
    "matrix_inverse_small": StaticMix(1500, 260, 110, 90, 45),
    "cholesky": StaticMix(1900, 290, 190, 130, 70),
    "lu_solver": StaticMix(2600, 380, 290, 190, 110),
    "svd": StaticMix(13000, 1700, 1200, 850, 470),
    "qr": StaticMix(6000, 820, 560, 420, 230),
    "companion_eig": StaticMix(16000, 1350, 2100, 1300, 880),
    "ekf_predict": StaticMix(5200, 700, 520, 280, 190),
    "ekf_update": StaticMix(7000, 950, 700, 380, 260),
    "grobner_5pt": StaticMix(42000, 3200, 5200, 3300, 2400),
    "polynomial_builder": StaticMix(9000, 900, 1200, 780, 420),
    "p3p_solver": StaticMix(7200, 960, 620, 240, 340),
    "up2p_solver": StaticMix(2600, 480, 120, 100, 45),
    "upright_planar_solver": StaticMix(2200, 300, 150, 100, 90),
    "dlt_normalization": StaticMix(1700, 260, 160, 120, 60),
    "homography_solver": StaticMix(2400, 430, 100, 120, 60),
    "ransac_loop": StaticMix(6500, 520, 2400, 1500, 980),
    "local_optimization": StaticMix(9500, 1100, 1500, 950, 620),
    "bundle_adjust_small": StaticMix(12000, 1500, 1700, 1100, 700),
    "reprojection_residual": StaticMix(1800, 300, 140, 110, 55),
    "sampson_residual": StaticMix(1600, 260, 130, 100, 50),
    # control building blocks
    "lqr_gain_apply": StaticMix(900, 100, 140, 90, 45),
    "riccati_offline": StaticMix(0, 0, 0, 0, 0),  # moved offline, no flash
    "admm_iteration": StaticMix(14000, 700, 2400, 1700, 1100),
    "osqp_core": StaticMix(30000, 900, 4200, 2900, 2000),
    "kkt_factorization": StaticMix(12000, 600, 1700, 1200, 800),
    "tinympc_backward_pass": StaticMix(16000, 900, 1900, 1400, 900),
    "tinympc_forward_pass": StaticMix(12000, 700, 1500, 1100, 700),
    "se3_controller": StaticMix(9000, 1400, 420, 520, 160),
    "rotation_log_map": StaticMix(2200, 340, 110, 130, 45),
    "sliding_mode_law": StaticMix(8000, 800, 700, 320, 340),
    "adaptation_law": StaticMix(5200, 520, 420, 210, 230),
    "reference_trajectory": StaticMix(2600, 380, 260, 160, 120),
    # shared infrastructure linked into every image
    "harness_runtime": StaticMix(900, 0, 90, 55, 35),
    "fixed_point_helpers": StaticMix(1800, 0, 420, 140, 110),
    "experiment_io": StaticMix(1200, 0, 170, 110, 70),
}


def compose(block_names: Iterable[str], repeat: Dict[str, int] = None) -> StaticMix:
    """Compose code blocks (each linked once, regardless of call count)."""
    repeat = repeat or {}
    total = StaticMix(0, 0, 0, 0, 0)
    for name in block_names:
        if name not in CODE_BLOCKS:
            raise KeyError(f"unknown code block {name!r}")
        total = total + CODE_BLOCKS[name].scaled(repeat.get(name, 1))
    return total


def _jitter(kernel_name: str, arch_name: str, field: str, spread: float) -> float:
    """Deterministic per-(kernel, arch, field) multiplicative jitter.

    Models the small compiler-version / tuning-flag differences between
    builds of the same source for different cores.
    """
    digest = hashlib.sha256(f"{kernel_name}|{arch_name}|{field}".encode()).digest()
    unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF  # [0, 1)
    return 1.0 + spread * (2.0 * unit - 1.0)


def static_profile(kernel_name: str, base: StaticMix, arch: ArchSpec) -> StaticMix:
    """Per-core static profile for a kernel with the given base (M4) mix.

    Keyed on the *base* core name: a fault-derated arch variant runs the
    same compiled binary as the core it derives from, so its static mix
    (and jitter) must be identical.  The per-core (F, I, M, B) factors and
    soft-float expansion rules belong to the core's ISA backend.

    This function is pure — same (kernel, base mix, base core) in, same
    mix out — which is what lets the batch pricer in
    :mod:`repro.vecprice` memoize it per (kernel, base core) instead of
    recomputing the sha256 jitters for every priced cell.  Keep it free
    of hidden state or the memo silently goes stale.
    """
    # Deferred: backends defines cores in terms of repro.mcu types.
    from repro.backends import backend_for

    core = arch.base_name
    backend = backend_for(arch)
    ff, fi, fm, fb = backend.static_factors(core)
    spread = 0.04
    f = int(base.f * ff * _jitter(kernel_name, core, "F", spread))
    i = int(base.i * fi * _jitter(kernel_name, core, "I", spread))
    m = int(base.m * fm * _jitter(kernel_name, core, "M", spread))
    b = int(base.b * fb * _jitter(kernel_name, core, "B", spread))
    expansion = backend.softfloat_static_expansion(core)
    if expansion is not None:
        # Soft-float libraries add float code expressed as int/mem/branch.
        i += int(base.f * expansion.i_per_f)
        m += int(base.f * expansion.m_per_f)
        b += int(base.f * expansion.b_per_f)
    # Flash differences between cores are "very minor, if any" (paper note).
    flash = int(base.flash_bytes * _jitter(kernel_name, core, "flash", 0.005))
    return StaticMix(flash, f, i, m, b)
