"""Analytic instruction/data cache and wait-state model.

Rather than a line-by-line cache simulator, this is a working-set model: it
estimates miss rates from the ratio of a kernel's code/data footprint to
the cache size, then charges flash/SRAM wait states for the missing
fraction of accesses.  This deterministic model reproduces the paper's
cache-sensitivity ordering:

* M4 — its only "cache" is a small flash accelerator, so enabling or
  disabling it barely moves latency (Table IV shows near-identical C/NC
  columns).
* M33 — real 8 KB I/D caches over a slow flash: disabling them costs
  roughly 1.4–1.9x latency.
* M7 — 280 MHz core over high-latency AXI SRAM (where the vendor linker
  script places the stack): uncached runs are 2–3x slower.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mcu.arch import ArchSpec


@dataclass(frozen=True)
class CacheConfig:
    """Run-time cache enable state (the harness's cache on/off knob)."""

    enabled: bool

    @property
    def label(self) -> str:
        return "C" if self.enabled else "NC"


CACHE_ON = CacheConfig(enabled=True)
CACHE_OFF = CacheConfig(enabled=False)


def _footprint_hit_rate(footprint_bytes: int, cache_bytes: int, floor: float) -> float:
    """Steady-state hit rate for a working set against a cache.

    Fits-in-cache working sets hit ~99% (cold misses only).  Larger sets
    degrade with the square root of the overflow ratio — loops re-touch
    data, so even a 4x-oversized working set retains substantial locality.
    """
    if cache_bytes <= 0:
        return 0.0
    if footprint_bytes <= 0:
        return 0.99
    ratio = cache_bytes / footprint_bytes
    if ratio >= 1.0:
        return 0.99
    return max(floor, 0.99 * ratio ** 0.5)


class CacheModel:
    """Stall-cycle estimator for one core and cache enable state.

    Hit-rate policy (and family quirks like the M4's ART accelerator) and
    the fetch-word fraction live on the core's ISA backend; this class
    owns only the stall arithmetic over those rates.

    The stall and activity expressions here are mirrored, in the same
    operation order, by the columnar pricer in :mod:`repro.vecprice`
    (byte-identity contract — see ``docs/pricing.md``); change one side
    and ``tests/test_vecprice.py`` fails until the other follows.
    """

    def __init__(self, arch: ArchSpec, config: CacheConfig):
        # Deferred: backends defines cores in terms of repro.mcu types.
        from repro.backends import backend_for

        self.arch = arch
        self.config = config
        self._backend = backend_for(arch)

    def ifetch_hit_rate(self, code_bytes: int) -> float:
        return self._backend.ifetch_hit_rate(
            self.arch, self.config.enabled, code_bytes
        )

    def dmem_hit_rate(self, data_bytes: int) -> float:
        return self._backend.dmem_hit_rate(
            self.arch, self.config.enabled, data_bytes
        )

    def ifetch_stalls(self, n_instr: int, code_bytes: int) -> float:
        hit = self.ifetch_hit_rate(code_bytes)
        misses = n_instr * self._backend.fetch_fraction(self.arch) * (1.0 - hit)
        return misses * self.arch.memory.flash_wait_cycles

    def dmem_stalls(self, n_mem_ops: int, data_bytes: int) -> float:
        hit = self.dmem_hit_rate(data_bytes)
        misses = n_mem_ops * (1.0 - hit)
        return misses * self.arch.memory.sram_wait_cycles

    def activity(self, code_bytes: int, data_bytes: int) -> float:
        """Cache busyness in [0, 1], used by the power model.

        Enabled, frequently-hitting caches burn power; the paper sees up to
        +86 mW on the M7 during SIFT with caches on.
        """
        if not self.config.enabled:
            return 0.0
        i = self.ifetch_hit_rate(code_bytes)
        d = self.dmem_hit_rate(data_bytes)
        return 0.5 * (i + d)
