"""Memory-footprint modeling and fit checking.

Insect-scale kernels must live entirely in on-chip flash and SRAM — there
is no external memory.  Each kernel reports a flash footprint (via the
static code model) and a data working set (buffers + stack).  This module
checks those against a core's budget, which is how the framework reproduces
the paper's observation that SIFT "barely fits the M7" and cannot run on
the M4 or M33 at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mcu.arch import ArchSpec


class MemoryFitError(RuntimeError):
    """Raised when a kernel's footprint exceeds a core's on-chip memory."""


@dataclass(frozen=True)
class Footprint:
    """A kernel's memory demand, in bytes."""

    flash_bytes: int
    data_bytes: int
    stack_bytes: int = 2048

    @property
    def sram_bytes(self) -> int:
        return self.data_bytes + self.stack_bytes

    def scaled_data(self, factor: float) -> "Footprint":
        return Footprint(self.flash_bytes, int(self.data_bytes * factor), self.stack_bytes)


@dataclass(frozen=True)
class FitReport:
    """Result of checking a footprint against a core."""

    arch: str
    fits: bool
    flash_used: int
    flash_available: int
    sram_used: int
    sram_available: int

    @property
    def flash_utilization(self) -> float:
        return self.flash_used / self.flash_available

    @property
    def sram_utilization(self) -> float:
        return self.sram_used / self.sram_available


# Fixed overhead every bare-metal image carries: vector table, startup
# code, clock/HAL init, the harness itself, and libc fragments.
RUNTIME_FLASH_OVERHEAD = 9 * 1024
RUNTIME_SRAM_OVERHEAD = 4 * 1024


def check_fit(footprint: Footprint, arch: ArchSpec) -> FitReport:
    """Check whether a kernel fits a core's on-chip memory."""
    flash_used = footprint.flash_bytes + RUNTIME_FLASH_OVERHEAD
    sram_used = footprint.sram_bytes + RUNTIME_SRAM_OVERHEAD
    fits = (
        flash_used <= arch.memory.flash_bytes
        and sram_used <= arch.memory.sram_bytes
    )
    return FitReport(
        arch=arch.name,
        fits=fits,
        flash_used=flash_used,
        flash_available=arch.memory.flash_bytes,
        sram_used=sram_used,
        sram_available=arch.memory.sram_bytes,
    )


def require_fit(footprint: Footprint, arch: ArchSpec, kernel_name: str = "kernel") -> FitReport:
    """Like :func:`check_fit` but raises :class:`MemoryFitError` on failure."""
    report = check_fit(footprint, arch)
    if not report.fits:
        raise MemoryFitError(
            f"{kernel_name} does not fit {arch.name}: needs "
            f"{report.flash_used} B flash / {report.sram_used} B SRAM, "
            f"core offers {report.flash_available} B / {report.sram_available} B"
        )
    return report


def image_buffer_bytes(height: int, width: int, bytes_per_px: int = 1, copies: int = 1) -> int:
    """SRAM needed for image buffers (the dominant perception footprint)."""
    return height * width * bytes_per_px * copies
