"""Power and energy model.

Converts a cycle breakdown plus an operation mix into average power, energy
and peak power for one kernel run.  The model captures the mechanisms the
paper identifies:

* **Process node dominates**: the M33's 40 nm low-power process gives it a
  ~4x lower power floor than the M4/M7 boards, making it the most energy
  efficient core everywhere despite similar cycle counts to the M4.
* **Stalls cut power, not energy**: with caches off the core idles in
  wait states — average power drops but latency grows more, so energy goes
  *up* (M7 NC columns of Table IV).
* **Caches trade energy for peak power**: busy caches add tens of mW of
  burst power (up to +86 mW on the M7 during SIFT) while slashing latency,
  so cache-on runs show higher peaks but lower energy.
* **Racing to idle**: the M0+ draws ~15 mW yet loses on energy because its
  soft-float latency is three orders of magnitude worse (Case Study 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mcu.arch import ArchSpec, PowerSpec
from repro.mcu.ops import OpTrace
from repro.mcu.pipeline import CycleBreakdown


@dataclass(frozen=True)
class PowerReport:
    """Per-run electrical figures of merit (the paper's three metrics)."""

    latency_s: float
    avg_power_w: float
    peak_power_w: float
    energy_j: float

    @property
    def latency_us(self) -> float:
        return self.latency_s * 1e6

    @property
    def energy_uj(self) -> float:
        return self.energy_j * 1e6

    @property
    def avg_power_mw(self) -> float:
        return self.avg_power_w * 1e3

    @property
    def peak_power_mw(self) -> float:
        return self.peak_power_w * 1e3


def _float_intensity(trace: OpTrace) -> float:
    total = max(trace.total, 1)
    return trace.n_float / total


def _mem_intensity(trace: OpTrace) -> float:
    total = max(trace.total, 1)
    return trace.n_mem / total


class EnergyModel:
    """Average/peak power and energy for one core."""

    def __init__(self, arch: ArchSpec):
        self.arch = arch

    def average_power_w(
        self,
        trace: OpTrace,
        breakdown: CycleBreakdown,
        cache_activity: float,
    ) -> float:
        p = self.arch.power
        total = max(breakdown.total, 1.0)
        busy = breakdown.compute_cycles / total  # stall cycles burn less
        dyn_mw = (p.active_mw - p.idle_mw) + p.activity_span_mw * _float_intensity(trace)
        avg_mw = (
            p.idle_mw
            + dyn_mw * (0.35 + 0.65 * busy)
            + p.cache_bonus_mw * cache_activity * busy
        )
        return avg_mw / 1e3

    def peak_power_w(
        self,
        trace: OpTrace,
        breakdown: CycleBreakdown,
        cache_activity: float,
    ) -> float:
        p = self.arch.power
        avg_w = self.average_power_w(trace, breakdown, cache_activity)
        dyn_mw = (p.active_mw - p.idle_mw) + p.activity_span_mw * _float_intensity(trace)
        burst_mw = 0.12 * dyn_mw + 0.5 * p.cache_bonus_mw * cache_activity
        # Memory-intense kernels show larger instantaneous bursts (bus +
        # flash read spikes).
        burst_mw *= 1.0 + 0.6 * _mem_intensity(trace)
        return avg_w + burst_mw / 1e3

    def report(
        self,
        trace: OpTrace,
        breakdown: CycleBreakdown,
        cache_activity: float,
    ) -> PowerReport:
        latency_s = breakdown.total / self.arch.clock_hz
        avg_w = self.average_power_w(trace, breakdown, cache_activity)
        peak_w = self.peak_power_w(trace, breakdown, cache_activity)
        return PowerReport(
            latency_s=latency_s,
            avg_power_w=avg_w,
            peak_power_w=peak_w,
            energy_j=avg_w * latency_s,
        )

    def idle_power_w(self) -> float:
        return self.arch.power.idle_mw / 1e3


# -- supply adversity (brownout / battery sag) -------------------------------
#
# The fault-injection layer (``repro.faults``) models power adversity as a
# *supply sag*: the board rail drooping below nominal, as happens during a
# battery knee or a high-current brownout.  The electrical consequences are
# expressed here, next to the nominal power model, so the derated numbers
# stay consistent with it:
#
# * the regulator's dropout efficiency collapses as headroom vanishes, so
#   the power floor *rises* while the usable supply falls;
# * past a sag threshold the supervisor throttles the clock to keep the
#   core inside its shrinking operating envelope;
# * the instantaneous peak the supply can still deliver shrinks roughly
#   with the square of the remaining voltage.


@dataclass(frozen=True)
class SupplySag:
    """One supply-adversity operating point.

    ``sag_frac`` is the fraction of nominal rail voltage lost (0 = healthy).
    ``throttle_threshold`` / ``throttle_slope`` / ``min_clock_scale`` shape
    the supervisor's clock-throttling response; ``reset_sag`` is the
    brownout-reset point past which the MCU cannot stay up at all.
    """

    sag_frac: float
    throttle_threshold: float = 0.08
    throttle_slope: float = 2.4
    min_clock_scale: float = 0.08
    reset_sag: float = 0.45

    @property
    def resets(self) -> bool:
        return self.sag_frac >= self.reset_sag


def sag_clock_scale(sag: SupplySag) -> float:
    """Clock multiplier the brownout supervisor applies at this sag."""
    over = sag.sag_frac - sag.throttle_threshold
    if over <= 0.0:
        return 1.0
    return max(sag.min_clock_scale, 1.0 - sag.throttle_slope * over)


def derate_power_spec(p: PowerSpec, sag: SupplySag) -> PowerSpec:
    """Power parameters under supply sag: floor up, rail down.

    At zero sag the spec is returned unchanged (bit-identity with the
    nominal model is load-bearing for the no-fault path).
    """
    s = sag.sag_frac
    if s <= 0.0:
        return p
    return PowerSpec(
        active_mw=p.active_mw * (1.0 + 0.6 * s),
        cache_bonus_mw=p.cache_bonus_mw,
        activity_span_mw=p.activity_span_mw,
        idle_mw=p.idle_mw * (1.0 + 1.5 * s),
        supply_v=p.supply_v * (1.0 - s),
    )


def peak_budget_w(p: PowerSpec, sag: SupplySag) -> float:
    """Peak power the sagged supply can still deliver before collapsing.

    Nominal headroom is sized so every healthy core clears its own worst
    burst; the budget shrinks as (1 - sag)^2 — current capability falls
    with voltage, and deliverable power with both.
    """
    nominal_mw = 1.4 * (p.active_mw + p.activity_span_mw + p.cache_bonus_mw)
    return nominal_mw * (1.0 - sag.sag_frac) ** 2 / 1e3
