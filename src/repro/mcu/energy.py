"""Power and energy model.

Converts a cycle breakdown plus an operation mix into average power, energy
and peak power for one kernel run.  The model captures the mechanisms the
paper identifies:

* **Process node dominates**: the M33's 40 nm low-power process gives it a
  ~4x lower power floor than the M4/M7 boards, making it the most energy
  efficient core everywhere despite similar cycle counts to the M4.
* **Stalls cut power, not energy**: with caches off the core idles in
  wait states — average power drops but latency grows more, so energy goes
  *up* (M7 NC columns of Table IV).
* **Caches trade energy for peak power**: busy caches add tens of mW of
  burst power (up to +86 mW on the M7 during SIFT) while slashing latency,
  so cache-on runs show higher peaks but lower energy.
* **Racing to idle**: the M0+ draws ~15 mW yet loses on energy because its
  soft-float latency is three orders of magnitude worse (Case Study 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mcu.arch import ArchSpec
from repro.mcu.ops import OpTrace
from repro.mcu.pipeline import CycleBreakdown


@dataclass(frozen=True)
class PowerReport:
    """Per-run electrical figures of merit (the paper's three metrics)."""

    latency_s: float
    avg_power_w: float
    peak_power_w: float
    energy_j: float

    @property
    def latency_us(self) -> float:
        return self.latency_s * 1e6

    @property
    def energy_uj(self) -> float:
        return self.energy_j * 1e6

    @property
    def avg_power_mw(self) -> float:
        return self.avg_power_w * 1e3

    @property
    def peak_power_mw(self) -> float:
        return self.peak_power_w * 1e3


def _float_intensity(trace: OpTrace) -> float:
    total = max(trace.total, 1)
    return trace.n_float / total


def _mem_intensity(trace: OpTrace) -> float:
    total = max(trace.total, 1)
    return trace.n_mem / total


class EnergyModel:
    """Average/peak power and energy for one core."""

    def __init__(self, arch: ArchSpec):
        self.arch = arch

    def average_power_w(
        self,
        trace: OpTrace,
        breakdown: CycleBreakdown,
        cache_activity: float,
    ) -> float:
        p = self.arch.power
        total = max(breakdown.total, 1.0)
        busy = breakdown.compute_cycles / total  # stall cycles burn less
        dyn_mw = (p.active_mw - p.idle_mw) + p.activity_span_mw * _float_intensity(trace)
        avg_mw = (
            p.idle_mw
            + dyn_mw * (0.35 + 0.65 * busy)
            + p.cache_bonus_mw * cache_activity * busy
        )
        return avg_mw / 1e3

    def peak_power_w(
        self,
        trace: OpTrace,
        breakdown: CycleBreakdown,
        cache_activity: float,
    ) -> float:
        p = self.arch.power
        avg_w = self.average_power_w(trace, breakdown, cache_activity)
        dyn_mw = (p.active_mw - p.idle_mw) + p.activity_span_mw * _float_intensity(trace)
        burst_mw = 0.12 * dyn_mw + 0.5 * p.cache_bonus_mw * cache_activity
        # Memory-intense kernels show larger instantaneous bursts (bus +
        # flash read spikes).
        burst_mw *= 1.0 + 0.6 * _mem_intensity(trace)
        return avg_w + burst_mw / 1e3

    def report(
        self,
        trace: OpTrace,
        breakdown: CycleBreakdown,
        cache_activity: float,
    ) -> PowerReport:
        latency_s = breakdown.total / self.arch.clock_hz
        avg_w = self.average_power_w(trace, breakdown, cache_activity)
        peak_w = self.peak_power_w(trace, breakdown, cache_activity)
        return PowerReport(
            latency_s=latency_s,
            avg_power_w=avg_w,
            peak_power_w=peak_w,
            energy_j=avg_w * latency_s,
        )

    def idle_power_w(self) -> float:
        return self.arch.power.idle_mw / 1e3
