"""Op-trace → cycle-count model for Cortex-M cores.

The model prices each dynamic operation with a per-architecture CPI table,
then adds instruction-fetch and data-memory stall cycles from the cache
model.  Precision matters: cores without the matching hardware FPU fall
back to software emulation costs (the M0+ soft-float cliff of Case Study 2,
the double-precision penalty of Case Study 4), and fixed-point arithmetic
pays the multiply-then-shift-back tax the paper notes for M4/M33.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scalar import ScalarType
from repro.mcu.arch import ArchSpec
from repro.mcu.cache import CacheModel, CacheConfig
from repro.mcu.ops import OpTrace

# Software-emulated float costs (cycles per op) for cores lacking the
# relevant FPU.  These match the rough magnitudes of GCC's soft-float
# routines on ARMv6-M / ARMv7-M.
_SOFT_F32 = {"fadd": 48, "fmul": 40, "fdiv": 130, "fsqrt": 220, "ffma": 90,
             "fcmp": 20, "fcvt": 25, "ffunc": 420}
_SOFT_F64 = {"fadd": 28, "fmul": 34, "fdiv": 110, "fsqrt": 200, "ffma": 64,
             "fcmp": 14, "fcvt": 16, "ffunc": 320}
# Hardware single-precision FPU costs (M4/M33/M7 class).
_HW_F32 = {"fadd": 1, "fmul": 1, "fdiv": 14, "fsqrt": 14, "ffma": 3,
           "fcmp": 1, "fcvt": 1, "ffunc": 55}
# Hardware double-precision FPU costs (M7 only).
_HW_F64 = {"fadd": 1, "fmul": 2, "fdiv": 27, "fsqrt": 27, "ffma": 5,
           "fcmp": 1, "fcvt": 1, "ffunc": 80}
# Fixed-point costs on cores with a 32x32->64 multiplier: a multiply is
# SMULL + shift + saturate checks, a divide needs a pre-shift and hardware
# (or software) division.  The "ffunc" entry prices the iterative
# integer routines (sqrt via Newton, trig via CORDIC/polynomials).
_FIXED_FAST = {"fadd": 1, "fmul": 4, "fdiv": 20, "fsqrt": 90, "ffma": 5,
               "fcmp": 1, "fcvt": 2, "ffunc": 160}
# Fixed point on the M0+ (32x32->32 only; wide multiply is synthesized).
_FIXED_M0 = {"fadd": 1, "fmul": 16, "fdiv": 70, "fsqrt": 160, "ffma": 18,
             "fcmp": 1, "fcvt": 2, "ffunc": 260}


@dataclass(frozen=True)
class CycleBreakdown:
    """Cycle count with its major components, for diagnostics."""

    compute_cycles: float
    ifetch_stall_cycles: float
    dmem_stall_cycles: float

    @property
    def total(self) -> float:
        return self.compute_cycles + self.ifetch_stall_cycles + self.dmem_stall_cycles


def _float_cpi(arch: ArchSpec, scalar: ScalarType) -> dict:
    """Pick the float-op cost table for this core and scalar type."""
    if scalar.is_fixed:
        return _FIXED_FAST if arch.has_hw_divide else _FIXED_M0
    if scalar.kind == "f32":
        return _HW_F32 if arch.fpu.single else _SOFT_F32
    # f64
    if arch.fpu.double:
        return _HW_F64
    base = _SOFT_F64 if not arch.fpu.single else {
        # SP FPU present but doubles still go through software, partially
        # accelerated by single-precision hardware in the helper routines.
        k: max(1, int(v * 0.8)) for k, v in _SOFT_F64.items()
    }
    return base


class PipelineModel:
    """Prices an :class:`OpTrace` in cycles on a given core."""

    def __init__(self, arch: ArchSpec):
        self.arch = arch

    def compute_cycles(self, trace: OpTrace, scalar: ScalarType) -> float:
        """Core execution cycles, before memory-system stalls."""
        a = self.arch
        f = _float_cpi(a, scalar)
        cycles = 0.0
        cycles += trace.fadd * f["fadd"]
        cycles += trace.fmul * f["fmul"]
        cycles += trace.fdiv * f["fdiv"]
        cycles += trace.fsqrt * f["fsqrt"]
        cycles += trace.ffma * f["ffma"]
        cycles += trace.fcmp * f["fcmp"]
        cycles += trace.fcvt * f["fcvt"]
        cycles += trace.ffunc * f["ffunc"]

        idiv_cost = 6 if a.has_hw_divide else 45
        int_cycles = (
            trace.ialu * 1.0
            + trace.imul * 1.0
            + trace.idiv * idiv_cost
            + trace.icmp * 1.0
            + trace.simd * 1.0
        )
        mem_cycles = trace.load * 2.0 + trace.store * 1.0

        if a.branch_predictor:
            taken_cost, refill = 1.2, 1.0
        else:
            taken_cost, refill = float(a.pipeline_stages - 1), 1.0
        branch_cycles = (
            trace.br_taken * taken_cost + trace.br_not * refill + trace.call * 4.0
        )

        # Dual-issue cores overlap independent int/mem/branch work.
        overlap = a.superscalar_ipc
        cycles += (int_cycles + mem_cycles + branch_cycles) / overlap
        # Adverse operating points (fault injection: contention storms,
        # sag-induced wait states) inflate effective CPI uniformly.  The
        # guard keeps the nominal path bit-identical.
        if a.cpi_scale != 1.0:
            cycles *= a.cpi_scale
        return cycles

    def cycles(
        self,
        trace: OpTrace,
        scalar: ScalarType,
        cache_config: CacheConfig,
        code_bytes: int,
        data_bytes: int,
    ) -> CycleBreakdown:
        """Total cycles including cache/flash/SRAM stalls.

        ``code_bytes`` is the kernel's flash footprint (drives instruction
        fetch behaviour), ``data_bytes`` its working set (drives data-side
        behaviour).
        """
        compute = self.compute_cycles(trace, scalar)
        cache = CacheModel(self.arch, cache_config)
        # Rough dynamic instruction count for fetch modeling: every priced
        # op corresponds to roughly one instruction.
        n_instr = max(trace.total, 1)
        ifetch = cache.ifetch_stalls(n_instr, code_bytes)
        dmem = cache.dmem_stalls(trace.load + trace.store, data_bytes)
        return CycleBreakdown(compute, ifetch, dmem)

    def latency_s(self, breakdown: CycleBreakdown) -> float:
        return breakdown.total / self.arch.clock_hz
