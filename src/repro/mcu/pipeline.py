"""Op-trace → cycle-count model, generic over ISA backends.

The model prices each dynamic operation with a per-architecture CPI table,
then adds instruction-fetch and data-memory stall cycles from the cache
model.  Precision matters: cores without the matching hardware FPU fall
back to software emulation costs (the M0+ soft-float cliff of Case Study 2,
the double-precision penalty of Case Study 4), and fixed-point arithmetic
pays the multiply-then-shift-back tax the paper notes for M4/M33.

Every cost constant lives in the core's :class:`~repro.backends.ArchBackend`
(``repro.backends.cortex_m`` for the paper's boards,
``repro.backends.riscv`` for the RV32 family); this module only owns the
arithmetic that combines them, so adding an ISA never touches it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scalar import ScalarType
from repro.mcu.arch import ArchSpec
from repro.mcu.cache import CacheModel, CacheConfig
from repro.mcu.ops import OpTrace


@dataclass(frozen=True)
class CycleBreakdown:
    """Cycle count with its major components, for diagnostics."""

    compute_cycles: float
    ifetch_stall_cycles: float
    dmem_stall_cycles: float

    @property
    def total(self) -> float:
        return self.compute_cycles + self.ifetch_stall_cycles + self.dmem_stall_cycles


def _float_cpi(arch: ArchSpec, scalar: ScalarType) -> dict:
    """Pick the float-op cost table for this core and scalar type."""
    # Deferred: repro.backends defines cores in terms of repro.mcu types,
    # so the pricing modules reach the registry at call time only.
    from repro.backends import backend_for

    return backend_for(arch).float_cpi(arch, scalar)


class PipelineModel:
    """Prices an :class:`OpTrace` in cycles on a given core."""

    def __init__(self, arch: ArchSpec):
        self.arch = arch

    def compute_cycles(self, trace: OpTrace, scalar: ScalarType) -> float:
        """Core execution cycles, before memory-system stalls.

        This is the serial half of a byte-identity contract: the
        columnar pricer in :mod:`repro.vecprice` replicates this exact
        accumulation *order* (float kinds sequentially, then the
        int/mem/branch sums divided by the overlap factor, then the
        ``cpi_scale`` derating) so batched results are bit-identical.
        Reordering any term here is fine for accuracy but must be
        mirrored there — ``tests/test_vecprice.py`` pins the pair.
        """
        from repro.backends import backend_for

        a = self.arch
        backend = backend_for(a)
        f = backend.float_cpi(a, scalar)
        cycles = 0.0
        cycles += trace.fadd * f["fadd"]
        cycles += trace.fmul * f["fmul"]
        cycles += trace.fdiv * f["fdiv"]
        cycles += trace.fsqrt * f["fsqrt"]
        cycles += trace.ffma * f["ffma"]
        cycles += trace.fcmp * f["fcmp"]
        cycles += trace.fcvt * f["fcvt"]
        cycles += trace.ffunc * f["ffunc"]

        c = backend.int_costs(a)
        int_cycles = (
            trace.ialu * c.ialu
            + trace.imul * c.imul
            + trace.idiv * c.idiv
            + trace.icmp * c.icmp
            + trace.simd * c.simd
        )
        mem_cycles = trace.load * c.load + trace.store * c.store

        b = backend.branch_costs(a)
        branch_cycles = (
            trace.br_taken * b.taken + trace.br_not * b.refill + trace.call * c.call
        )

        # Dual-issue cores overlap independent int/mem/branch work.
        overlap = a.superscalar_ipc
        cycles += (int_cycles + mem_cycles + branch_cycles) / overlap
        # Adverse operating points (fault injection: contention storms,
        # sag-induced wait states) inflate effective CPI uniformly.  The
        # guard keeps the nominal path bit-identical.
        if a.cpi_scale != 1.0:
            cycles *= a.cpi_scale
        return cycles

    def cycles(
        self,
        trace: OpTrace,
        scalar: ScalarType,
        cache_config: CacheConfig,
        code_bytes: int,
        data_bytes: int,
    ) -> CycleBreakdown:
        """Total cycles including cache/flash/SRAM stalls.

        ``code_bytes`` is the kernel's flash footprint (drives instruction
        fetch behaviour), ``data_bytes`` its working set (drives data-side
        behaviour).
        """
        compute = self.compute_cycles(trace, scalar)
        cache = CacheModel(self.arch, cache_config)
        # Rough dynamic instruction count for fetch modeling: every priced
        # op corresponds to roughly one instruction.
        n_instr = max(trace.total, 1)
        ifetch = cache.ifetch_stalls(n_instr, code_bytes)
        dmem = cache.dmem_stalls(trace.load + trace.store, data_bytes)
        return CycleBreakdown(compute, ifetch, dmem)

    def latency_s(self, breakdown: CycleBreakdown) -> float:
        return breakdown.total / self.arch.clock_hz
