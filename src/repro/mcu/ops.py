"""Dynamic operation traces.

The currency of the whole framework: every kernel, while computing its real
result with NumPy, records the operations an equivalent bare-metal C++
implementation would execute.  The per-architecture pipeline model in
:mod:`repro.mcu.pipeline` then converts a trace into cycles, and the energy
model converts cycles into latency, energy, and peak power.

Operation categories mirror the paper's static instruction-mix breakdown
(Float / Integer / Memory / Branch) but are kept finer-grained dynamically so
the pipeline model can price divides, square roots, and transcendental calls
differently from adds and multiplies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


# Fine-grained dynamic operation kinds, grouped into the paper's F/I/M/B
# categories for reporting.
FLOAT_KINDS = ("fadd", "fmul", "fdiv", "fsqrt", "ffma", "fcmp", "fcvt", "ffunc")
INT_KINDS = ("ialu", "imul", "idiv", "icmp", "simd")
MEM_KINDS = ("load", "store")
BRANCH_KINDS = ("br_taken", "br_not", "call")
ALL_KINDS = FLOAT_KINDS + INT_KINDS + MEM_KINDS + BRANCH_KINDS


@dataclass
class OpTrace:
    """A tally of dynamically executed operations, by kind.

    Traces support addition, scaling, and category summaries.  They are
    plain data: they carry no notion of precision or architecture.  The same
    trace priced for a Cortex-M0+ (soft float) and a Cortex-M7 (superscalar,
    hardware FPU) yields very different cycle counts.
    """

    fadd: int = 0
    fmul: int = 0
    fdiv: int = 0
    fsqrt: int = 0
    ffma: int = 0
    fcmp: int = 0
    fcvt: int = 0
    ffunc: int = 0  # transcendental library calls (sin, cos, atan2, exp...)
    ialu: int = 0
    imul: int = 0
    idiv: int = 0
    icmp: int = 0
    simd: int = 0  # packed DSP ops (e.g. USADA8 4-lane SAD)
    load: int = 0
    store: int = 0
    br_taken: int = 0
    br_not: int = 0
    call: int = 0

    def __add__(self, other: "OpTrace") -> "OpTrace":
        return OpTrace(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    def __iadd__(self, other: "OpTrace") -> "OpTrace":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "OpTrace":
        """Return a copy with every count multiplied by ``factor``."""
        return OpTrace(
            **{f.name: int(round(getattr(self, f.name) * factor)) for f in fields(self)}
        )

    def copy(self) -> "OpTrace":
        return OpTrace(**{f.name: getattr(self, f.name) for f in fields(self)})

    # -- category summaries (paper's F/I/M/B breakdown) ------------------

    @property
    def n_float(self) -> int:
        return sum(getattr(self, k) for k in FLOAT_KINDS)

    @property
    def n_int(self) -> int:
        return sum(getattr(self, k) for k in INT_KINDS)

    @property
    def n_mem(self) -> int:
        return sum(getattr(self, k) for k in MEM_KINDS)

    @property
    def n_branch(self) -> int:
        return sum(getattr(self, k) for k in BRANCH_KINDS)

    @property
    def total(self) -> int:
        return self.n_float + self.n_int + self.n_mem + self.n_branch

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def mix(self) -> dict:
        """F/I/M/B category counts, as in the paper's Table III."""
        return {
            "F": self.n_float,
            "I": self.n_int,
            "M": self.n_mem,
            "B": self.n_branch,
        }


@dataclass
class OpCounter:
    """Mutable recorder that kernels write operations into.

    Besides raw per-kind increments, the counter offers *recipes* for common
    small-vector routines (dot products, cross products, quaternion algebra,
    small dense matrix kernels) so kernel code stays readable: the kernel
    does the real math with NumPy and records the equivalent bare-metal cost
    with one call.

    Recipes include the memory traffic and loop overhead a compiled scalar
    implementation would incur, which is exactly the overhead static FLOP
    counting misses (the paper's Case Study 3).
    """

    trace: OpTrace = field(default_factory=OpTrace)

    # -- raw increments ----------------------------------------------------

    def fadd(self, n: int = 1) -> None:
        self.trace.fadd += n

    def fmul(self, n: int = 1) -> None:
        self.trace.fmul += n

    def fdiv(self, n: int = 1) -> None:
        self.trace.fdiv += n

    def fsqrt(self, n: int = 1) -> None:
        self.trace.fsqrt += n

    def ffma(self, n: int = 1) -> None:
        self.trace.ffma += n

    def fcmp(self, n: int = 1) -> None:
        self.trace.fcmp += n

    def fcvt(self, n: int = 1) -> None:
        self.trace.fcvt += n

    def ffunc(self, n: int = 1) -> None:
        self.trace.ffunc += n

    def ialu(self, n: int = 1) -> None:
        self.trace.ialu += n

    def imul(self, n: int = 1) -> None:
        self.trace.imul += n

    def idiv(self, n: int = 1) -> None:
        self.trace.idiv += n

    def icmp(self, n: int = 1) -> None:
        self.trace.icmp += n

    def simd(self, n: int = 1) -> None:
        self.trace.simd += n

    def load(self, n: int = 1) -> None:
        self.trace.load += n

    def store(self, n: int = 1) -> None:
        self.trace.store += n

    def branch(self, n: int = 1, taken: bool = True) -> None:
        if taken:
            self.trace.br_taken += n
        else:
            self.trace.br_not += n

    def call(self, n: int = 1) -> None:
        self.trace.call += n

    def absorb(self, other: OpTrace) -> None:
        """Merge another trace into this counter."""
        self.trace += other

    # -- recipes -----------------------------------------------------------

    def flop_mix(self, add: int = 0, mul: int = 0, div: int = 0, sqrt: int = 0,
                 func: int = 0) -> None:
        """Record a batch of float arithmetic with matching memory traffic.

        Each arithmetic op is charged one operand load on average (the other
        operand typically lives in a register) and every fourth op a store,
        approximating compiled scalar code for straight-line math.
        """
        n = add + mul + div + sqrt + func
        self.trace.fadd += add
        self.trace.fmul += mul
        self.trace.fdiv += div
        self.trace.fsqrt += sqrt
        self.trace.ffunc += func
        self.trace.load += n
        self.trace.store += n // 4

    def vec_dot(self, n: int) -> None:
        """Dot product of two length-``n`` vectors."""
        self.trace.ffma += n
        self.trace.load += 2 * n
        self.trace.ialu += n  # index updates
        self.trace.icmp += n
        self.trace.br_taken += n - 1 if n > 1 else 0
        self.trace.br_not += 1

    def vec_axpy(self, n: int) -> None:
        """y += a * x for length-``n`` vectors."""
        self.trace.ffma += n
        self.trace.load += 2 * n
        self.trace.store += n
        self.trace.ialu += n
        self.trace.icmp += n
        self.trace.br_taken += n - 1 if n > 1 else 0
        self.trace.br_not += 1

    def vec_scale(self, n: int) -> None:
        self.trace.fmul += n
        self.trace.load += n
        self.trace.store += n
        self.trace.ialu += n

    def vec_add(self, n: int) -> None:
        self.trace.fadd += n
        self.trace.load += 2 * n
        self.trace.store += n
        self.trace.ialu += n

    def vec_cross(self) -> None:
        """3-vector cross product."""
        self.trace.fmul += 6
        self.trace.fadd += 3
        self.trace.load += 12
        self.trace.store += 3

    def vec_norm(self, n: int) -> None:
        """Euclidean norm of a length-``n`` vector."""
        self.vec_dot(n)
        self.trace.fsqrt += 1

    def vec_normalize(self, n: int) -> None:
        self.vec_norm(n)
        self.trace.fdiv += 1
        self.vec_scale(n)

    def quat_mul(self) -> None:
        """Hamilton product of two quaternions."""
        self.trace.fmul += 16
        self.trace.fadd += 12
        self.trace.load += 8
        self.trace.store += 4

    def quat_normalize(self) -> None:
        self.vec_normalize(4)

    def quat_rotate(self) -> None:
        """Rotate a 3-vector by a quaternion (two Hamilton products)."""
        self.quat_mul()
        self.quat_mul()

    def mat_vec(self, m: int, n: int) -> None:
        """Dense (m x n) matrix times length-n vector."""
        self.trace.ffma += m * n
        self.trace.load += 2 * m * n
        self.trace.store += m
        self.trace.ialu += m * n + m
        self.trace.icmp += m * n // 4 + m
        self.trace.br_taken += m
        self.trace.br_not += m

    def mat_mat(self, m: int, k: int, n: int) -> None:
        """Dense (m x k) @ (k x n) matrix product."""
        self.trace.ffma += m * k * n
        self.trace.load += 2 * m * k * n
        self.trace.store += m * n
        self.trace.ialu += m * k * n + m * n
        self.trace.icmp += m * n
        self.trace.br_taken += m * n
        self.trace.br_not += m * n

    def mat_add(self, m: int, n: int) -> None:
        self.vec_add(m * n)

    def mat_transpose(self, m: int, n: int) -> None:
        self.trace.load += m * n
        self.trace.store += m * n
        self.trace.ialu += 2 * m * n

    def loop_overhead(self, iters: int) -> None:
        """Bare loop bookkeeping (counter update, compare, backward branch)."""
        self.trace.ialu += iters
        self.trace.icmp += iters
        self.trace.br_taken += max(iters - 1, 0)
        self.trace.br_not += 1 if iters > 0 else 0

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> OpTrace:
        return self.trace.copy()

    def reset(self) -> None:
        self.trace = OpTrace()


def delta(before: OpTrace, after: OpTrace) -> OpTrace:
    """Trace of operations recorded between two snapshots."""
    return OpTrace(
        **{f.name: getattr(after, f.name) - getattr(before, f.name) for f in fields(before)}
    )
