"""Cortex-M architecture simulation substrate.

Replaces the paper's physical STM32 boards: an operation-trace pipeline
model, an analytic cache/memory model, a power/energy model, a static code
model, and a counted linear-algebra layer that stands in for Eigen.
"""

from repro.mcu.arch import ARCHS, CHARACTERIZATION_ARCHS, M0PLUS, M33, M4, M7, ArchSpec, get_arch
from repro.mcu.cache import CACHE_OFF, CACHE_ON, CacheConfig, CacheModel
from repro.mcu.energy import EnergyModel, PowerReport
from repro.mcu.memory import Footprint, MemoryFitError, check_fit, require_fit
from repro.mcu.ops import OpCounter, OpTrace
from repro.mcu.pipeline import CycleBreakdown, PipelineModel
from repro.mcu.static import CODE_BLOCKS, StaticMix, compose, static_profile

__all__ = [
    "ARCHS",
    "CHARACTERIZATION_ARCHS",
    "M0PLUS",
    "M33",
    "M4",
    "M7",
    "ArchSpec",
    "get_arch",
    "CACHE_OFF",
    "CACHE_ON",
    "CacheConfig",
    "CacheModel",
    "EnergyModel",
    "PowerReport",
    "Footprint",
    "MemoryFitError",
    "check_fit",
    "require_fit",
    "OpCounter",
    "OpTrace",
    "CycleBreakdown",
    "PipelineModel",
    "CODE_BLOCKS",
    "StaticMix",
    "compose",
    "static_profile",
]
