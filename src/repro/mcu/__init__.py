"""MCU architecture simulation substrate.

Replaces the paper's physical boards: an operation-trace pipeline model,
an analytic cache/memory model, a power/energy model, a static code
model, and a counted linear-algebra layer that stands in for Eigen.  The
pricing models are generic over the :mod:`repro.backends` registry —
per-ISA cost tables live there, not here.
"""

from repro.mcu.arch import ArchSpec, get_arch
from repro.mcu.cache import CACHE_OFF, CACHE_ON, CacheConfig, CacheModel
from repro.mcu.energy import EnergyModel, PowerReport
from repro.mcu.memory import Footprint, MemoryFitError, check_fit, require_fit
from repro.mcu.ops import OpCounter, OpTrace
from repro.mcu.pipeline import CycleBreakdown, PipelineModel
from repro.mcu.static import CODE_BLOCKS, StaticMix, compose, static_profile

__all__ = [
    "ARCHS",
    "CHARACTERIZATION_ARCHS",
    "M0PLUS",
    "M33",
    "M4",
    "M7",
    "ArchSpec",
    "get_arch",
    "CACHE_OFF",
    "CACHE_ON",
    "CacheConfig",
    "CacheModel",
    "EnergyModel",
    "PowerReport",
    "Footprint",
    "MemoryFitError",
    "check_fit",
    "require_fit",
    "OpCounter",
    "OpTrace",
    "CycleBreakdown",
    "PipelineModel",
    "CODE_BLOCKS",
    "StaticMix",
    "compose",
    "static_profile",
]

#: Legacy names forwarded lazily to :mod:`repro.mcu.arch` so that
#: ``import repro.mcu`` neither triggers the ``ARCHS`` deprecation
#: warning nor forces the backend registry to load eagerly.
_FORWARDED = ("ARCHS", "CHARACTERIZATION_ARCHS", "M0PLUS", "M33", "M4", "M7")


def __getattr__(name: str):
    if name in _FORWARDED:
        from repro.mcu import arch as _arch

        return getattr(_arch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
