"""Architecture descriptor types and registry-backed lookups.

This module defines the *shape* of a core model — :class:`ArchSpec` and
its component specs — while the concrete cores and every cost table live
in :mod:`repro.backends` (the Cortex-M fleet in
:mod:`repro.backends.cortex_m`, the RV32 family in
:mod:`repro.backends.riscv`).  :func:`get_arch` and the legacy names
(``M4``, ``ARCHS``, ``CHARACTERIZATION_ARCHS``) resolve through the
backend registry, so code written against this module keeps working while
new ISA families appear without touching it.

All quantitative parameters are calibrated so the *relationships* the paper
reports (who wins, by what factor, where caches matter) are reproduced; they
are not datasheet transcriptions.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class FpuSpec:
    """Floating-point capability of a core."""

    single: bool  # hardware single-precision FPU present
    double: bool  # hardware double-precision FPU present


@dataclass(frozen=True)
class CacheSpec:
    """Instruction/data cache geometry, in bytes (0 = absent)."""

    icache_bytes: int
    dcache_bytes: int
    line_bytes: int = 32

    @property
    def has_icache(self) -> bool:
        return self.icache_bytes > 0

    @property
    def has_dcache(self) -> bool:
        return self.dcache_bytes > 0


@dataclass(frozen=True)
class MemorySpec:
    """On-chip memory budget, in bytes."""

    flash_bytes: int
    sram_bytes: int
    # Extra cycles to reach flash / SRAM when the relevant cache misses (or
    # is disabled).  The M7's AXI SRAM stack placement makes its uncached
    # data penalty unusually large.
    flash_wait_cycles: float
    sram_wait_cycles: float


@dataclass(frozen=True)
class PowerSpec:
    """Active-power model parameters (milliwatts).

    ``active_mw`` is the nominal core+memory power running compute-bound
    code with caches in their default state.  ``cache_bonus_mw`` is added
    when caches are enabled and busy (the paper sees up to +86 mW on the M7
    during SIFT).  ``activity_span_mw`` scales with the float/memory
    intensity of the workload and provides the spread between quiet integer
    kernels and dense float kernels.
    """

    active_mw: float
    cache_bonus_mw: float
    activity_span_mw: float
    idle_mw: float
    supply_v: float = 3.3


@dataclass(frozen=True)
class ArchSpec:
    """A complete MCU core + board model (any registered ISA family)."""

    name: str
    core: str
    board: str
    isa: str
    pipeline_stages: int
    clock_hz: float
    superscalar_ipc: float  # >1 means dual-issue benefit on int/mem code
    branch_predictor: bool
    fpu: FpuSpec
    cache: CacheSpec
    memory: MemorySpec
    power: PowerSpec
    process_node_nm: int
    has_hw_divide: bool
    has_dsp_simd: bool  # ARMv7E-M / ARMv8-M DSP extension (USADA8 etc.)
    #: Effective-CPI multiplier for adverse operating points (contention,
    #: error-correction retries, wait-state insertion under voltage sag).
    #: 1.0 on every nominal core; fault injectors derive stressed variants.
    cpi_scale: float = 1.0

    @property
    def clock_mhz(self) -> float:
        return self.clock_hz / 1e6

    @property
    def base_name(self) -> str:
        """Underlying core name with any fault-variant suffix stripped.

        A derated variant (``m33+brownout:0.5``) runs the *same compiled
        binary* as its base core; models keyed on the core's identity
        (static code model, per-arch factors) must resolve through this.
        """
        return self.name.split("+", 1)[0]

    def derated(
        self,
        *,
        name: Optional[str] = None,
        clock_scale: float = 1.0,
        cpi_scale: Optional[float] = None,
        power: Optional[PowerSpec] = None,
    ) -> "ArchSpec":
        """A derived operating point of this core.

        Fault injectors (``repro.faults``) use this to express DVFS states,
        brownout throttling, and compute-contention storms as first-class
        :class:`ArchSpec` variants: the whole pricing stack (pipeline,
        cache, energy, engine) then threads through unchanged.  With all
        arguments at their defaults the original spec is returned as-is.
        """
        if (
            name is None
            and clock_scale == 1.0
            and cpi_scale is None
            and power is None
        ):
            return self
        return replace(
            self,
            name=name if name is not None else self.name,
            clock_hz=self.clock_hz * clock_scale,
            cpi_scale=cpi_scale if cpi_scale is not None else self.cpi_scale,
            power=power if power is not None else self.power,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def get_arch(name: str) -> ArchSpec:
    """Look up an architecture by short name (``m4``, ``rv32imafc``, ...).

    Delegates to the :mod:`repro.backends` registry; raises
    :class:`~repro.backends.ArchKeyError` (a ``KeyError`` subclass with a
    nearest-match suggestion) for unknown names.
    """
    # Deferred: backends defines the concrete cores in terms of the spec
    # classes above, so this module must stay importable without it.
    from repro.backends import get_arch as _registry_get_arch

    return _registry_get_arch(name)


#: Legacy names resolved through the backend registry on first access.
#: ``ARCHS`` is deprecated (use ``repro.backends.arch_names``/``get_arch``);
#: the core constants and ``CHARACTERIZATION_ARCHS`` remain supported.
_REGISTRY_CORES = ("M0PLUS", "M4", "M33", "M7")
_warned_deprecated = set()


def __getattr__(name: str):
    if name in _REGISTRY_CORES:
        from repro.backends import cortex_m

        return getattr(cortex_m, name)
    if name == "ARCHS":
        if name not in _warned_deprecated:
            _warned_deprecated.add(name)
            warnings.warn(
                "repro.mcu.arch.ARCHS is deprecated; use "
                "repro.backends.arch_names() / get_arch() — the registry "
                "includes non-Cortex-M backends this dict predates",
                DeprecationWarning,
                stacklevel=2,
            )
        from repro.backends import all_archs

        return {a.name: a for a in all_archs()}
    if name == "CHARACTERIZATION_ARCHS":
        # The three cores characterized in the paper's Section V tables.
        from repro.backends import characterization_archs

        return characterization_archs(isa="cortex-m")
    if name == "ArchKeyError":
        from repro.backends import ArchKeyError

        return ArchKeyError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
