"""Cortex-M architecture descriptors.

Four cores are modeled, matching the boards the paper measures on:

* ``m0plus`` — a generic STM32 Cortex-M0+ part (Case Study 2 only): 2-stage
  pipeline, no FPU, no caches, low clock, very low power.
* ``m4`` — NUCLEO-STM32G474RE: 3-stage ARMv7E-M, SP FPU, 170 MHz, 128 KB
  SRAM.  Its "cache" is ST's small ART flash accelerator, which barely
  changes timing — the paper observes near-identical cache on/off numbers.
* ``m33`` — NUCLEO-STM32U575ZIQ: 3-stage ARMv8-M Mainline, SP FPU, 160 MHz,
  8 KB I/D caches, modern low-power process node → by far the most energy
  efficient core in the study.
* ``m7`` — NUCLEO-STM32H7A3ZIQ: 6-stage superscalar ARMv7E-M with branch
  prediction, DP FPU, 280 MHz, 16 KB I/D caches.  Heavily cache dependent:
  the vendor linker script places the stack in AXI SRAM, so uncached runs
  pay large wait-state penalties.

All quantitative parameters are calibrated so the *relationships* the paper
reports (who wins, by what factor, where caches matter) are reproduced; they
are not datasheet transcriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class FpuSpec:
    """Floating-point capability of a core."""

    single: bool  # hardware single-precision FPU present
    double: bool  # hardware double-precision FPU present


@dataclass(frozen=True)
class CacheSpec:
    """Instruction/data cache geometry, in bytes (0 = absent)."""

    icache_bytes: int
    dcache_bytes: int
    line_bytes: int = 32

    @property
    def has_icache(self) -> bool:
        return self.icache_bytes > 0

    @property
    def has_dcache(self) -> bool:
        return self.dcache_bytes > 0


@dataclass(frozen=True)
class MemorySpec:
    """On-chip memory budget, in bytes."""

    flash_bytes: int
    sram_bytes: int
    # Extra cycles to reach flash / SRAM when the relevant cache misses (or
    # is disabled).  The M7's AXI SRAM stack placement makes its uncached
    # data penalty unusually large.
    flash_wait_cycles: float
    sram_wait_cycles: float


@dataclass(frozen=True)
class PowerSpec:
    """Active-power model parameters (milliwatts).

    ``active_mw`` is the nominal core+memory power running compute-bound
    code with caches in their default state.  ``cache_bonus_mw`` is added
    when caches are enabled and busy (the paper sees up to +86 mW on the M7
    during SIFT).  ``activity_span_mw`` scales with the float/memory
    intensity of the workload and provides the spread between quiet integer
    kernels and dense float kernels.
    """

    active_mw: float
    cache_bonus_mw: float
    activity_span_mw: float
    idle_mw: float
    supply_v: float = 3.3


@dataclass(frozen=True)
class ArchSpec:
    """A complete Cortex-M core + board model."""

    name: str
    core: str
    board: str
    isa: str
    pipeline_stages: int
    clock_hz: float
    superscalar_ipc: float  # >1 means dual-issue benefit on int/mem code
    branch_predictor: bool
    fpu: FpuSpec
    cache: CacheSpec
    memory: MemorySpec
    power: PowerSpec
    process_node_nm: int
    has_hw_divide: bool
    has_dsp_simd: bool  # ARMv7E-M / ARMv8-M DSP extension (USADA8 etc.)
    #: Effective-CPI multiplier for adverse operating points (contention,
    #: error-correction retries, wait-state insertion under voltage sag).
    #: 1.0 on every nominal core; fault injectors derive stressed variants.
    cpi_scale: float = 1.0

    @property
    def clock_mhz(self) -> float:
        return self.clock_hz / 1e6

    @property
    def base_name(self) -> str:
        """Underlying core name with any fault-variant suffix stripped.

        A derated variant (``m33+brownout:0.5``) runs the *same compiled
        binary* as its base core; models keyed on the core's identity
        (static code model, per-arch factors) must resolve through this.
        """
        return self.name.split("+", 1)[0]

    def derated(
        self,
        *,
        name: Optional[str] = None,
        clock_scale: float = 1.0,
        cpi_scale: Optional[float] = None,
        power: Optional[PowerSpec] = None,
    ) -> "ArchSpec":
        """A derived operating point of this core.

        Fault injectors (``repro.faults``) use this to express DVFS states,
        brownout throttling, and compute-contention storms as first-class
        :class:`ArchSpec` variants: the whole pricing stack (pipeline,
        cache, energy, engine) then threads through unchanged.  With all
        arguments at their defaults the original spec is returned as-is.
        """
        if (
            name is None
            and clock_scale == 1.0
            and cpi_scale is None
            and power is None
        ):
            return self
        return replace(
            self,
            name=name if name is not None else self.name,
            clock_hz=self.clock_hz * clock_scale,
            cpi_scale=cpi_scale if cpi_scale is not None else self.cpi_scale,
            power=power if power is not None else self.power,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


M0PLUS = ArchSpec(
    name="m0plus",
    core="Cortex-M0+",
    board="generic STM32 M0+",
    isa="ARMv6-M",
    pipeline_stages=2,
    clock_hz=32e6,
    superscalar_ipc=1.0,
    branch_predictor=False,
    fpu=FpuSpec(single=False, double=False),
    cache=CacheSpec(icache_bytes=0, dcache_bytes=0),
    memory=MemorySpec(
        flash_bytes=128 * 1024,
        sram_bytes=36 * 1024,
        flash_wait_cycles=1.0,
        sram_wait_cycles=0.0,
    ),
    power=PowerSpec(active_mw=13.0, cache_bonus_mw=0.0, activity_span_mw=3.0, idle_mw=1.0),
    process_node_nm=90,
    has_hw_divide=False,
    has_dsp_simd=False,
)

M4 = ArchSpec(
    name="m4",
    core="Cortex-M4",
    board="NUCLEO-STM32G474RE",
    isa="ARMv7E-M",
    pipeline_stages=3,
    clock_hz=170e6,
    superscalar_ipc=1.0,
    branch_predictor=False,
    fpu=FpuSpec(single=True, double=False),
    cache=CacheSpec(icache_bytes=1024, dcache_bytes=0),  # ART flash accelerator
    memory=MemorySpec(
        flash_bytes=512 * 1024,
        sram_bytes=128 * 1024,
        flash_wait_cycles=4.0,
        sram_wait_cycles=0.0,
    ),
    power=PowerSpec(active_mw=104.0, cache_bonus_mw=3.0, activity_span_mw=55.0, idle_mw=12.0),
    process_node_nm=90,
    has_hw_divide=True,
    has_dsp_simd=True,
)

M33 = ArchSpec(
    name="m33",
    core="Cortex-M33",
    board="NUCLEO-STM32U575ZIQ",
    isa="ARMv8-M Mainline",
    pipeline_stages=3,
    clock_hz=160e6,
    superscalar_ipc=1.0,
    branch_predictor=False,
    fpu=FpuSpec(single=True, double=False),
    cache=CacheSpec(icache_bytes=8 * 1024, dcache_bytes=8 * 1024),
    memory=MemorySpec(
        flash_bytes=2 * 1024 * 1024,
        sram_bytes=786 * 1024,
        flash_wait_cycles=4.0,
        sram_wait_cycles=1.0,
    ),
    power=PowerSpec(active_mw=29.0, cache_bonus_mw=2.0, activity_span_mw=12.0, idle_mw=3.0),
    process_node_nm=40,
    has_hw_divide=True,
    has_dsp_simd=True,
)

M7 = ArchSpec(
    name="m7",
    core="Cortex-M7",
    board="NUCLEO-STM32H7A3ZIQ",
    isa="ARMv7E-M",
    pipeline_stages=6,
    clock_hz=280e6,
    superscalar_ipc=1.45,
    branch_predictor=True,
    fpu=FpuSpec(single=True, double=True),
    cache=CacheSpec(icache_bytes=16 * 1024, dcache_bytes=16 * 1024),
    memory=MemorySpec(
        flash_bytes=2 * 1024 * 1024,
        sram_bytes=1408 * 1024,
        flash_wait_cycles=6.0,
        sram_wait_cycles=3.0,  # AXI SRAM stack placement
    ),
    power=PowerSpec(active_mw=118.0, cache_bonus_mw=38.0, activity_span_mw=60.0, idle_mw=18.0),
    process_node_nm=40,
    has_hw_divide=True,
    has_dsp_simd=True,
)

ARCHS = {a.name: a for a in (M0PLUS, M4, M33, M7)}
# The three cores characterized in the paper's Section V tables.
CHARACTERIZATION_ARCHS = (M4, M33, M7)


def get_arch(name: str) -> ArchSpec:
    """Look up an architecture by short name (``m0plus``/``m4``/``m33``/``m7``)."""
    try:
        return ARCHS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; available: {sorted(ARCHS)}"
        ) from None
