"""TinyML inference engine + the proximity (monocular depth) expansion."""

from repro.nn.depthnet import (
    build_proximity_net,
    clear_scene,
    looming_scene,
    proximity_score,
)
from repro.nn.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAveragePool,
    Layer,
    MaxPool2D,
    Network,
    QuantParams,
    ReLU,
)

__all__ = [
    "build_proximity_net",
    "clear_scene",
    "looming_scene",
    "proximity_score",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "GlobalAveragePool",
    "Layer",
    "MaxPool2D",
    "Network",
    "QuantParams",
    "ReLU",
]
