"""A tiny monocular obstacle-proximity network (hand-designed weights).

The roadmap's "CNN-based monocular depth estimation" — scoped to what an
insect-scale MCU could actually run: an 80x80 grayscale frame in, a coarse
proximity verdict out (is a large obstacle looming?).  Rather than
training (no dataset ships with this repo), the network's filters are
*hand-designed* classical operators — center-surround and edge-energy
kernels — wired so that large, close, image-filling blobs score high and
fine distant texture scores low.  That makes the kernel a real, verifiable
computation with CNN-shaped cost, which is what the benchmark needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mcu.ops import OpCounter
from repro.nn.layers import (
    Conv2D,
    Dense,
    GlobalAveragePool,
    MaxPool2D,
    Network,
    ReLU,
)

INPUT_SHAPE = (1, 80, 80)


def _gaussian2d(size: int, sigma: float) -> np.ndarray:
    ax = np.arange(size) - size // 2
    g = np.exp(-(ax[:, None] ** 2 + ax[None, :] ** 2) / (2 * sigma**2))
    return g / g.sum()


def build_proximity_net() -> Network:
    """4-layer ConvNet with hand-designed feature extractors.

    A looming (close) obstacle carries its energy at *coarse* spatial
    scales; distant clutter lives at *fine* scales.  Layer 1 therefore
    extracts rectified coarse-DoG and fine-DoG responses (2 polarities
    each); layer 3 aggregates them into blob-vs-texture evidence maps; the
    head scores coarse energy against a fine-texture discount.
    """
    coarse = _gaussian2d(11, 1.8) - _gaussian2d(11, 4.5)
    fine = np.zeros((11, 11))
    fine[3:8, 3:8] = _gaussian2d(5, 0.8) - _gaussian2d(5, 2.0)
    w1 = np.zeros((4, 1, 11, 11))
    w1[0, 0] = coarse * 12.0
    w1[1, 0] = -coarse * 12.0
    w1[2, 0] = fine * 12.0
    w1[3, 0] = -fine * 12.0
    conv1 = Conv2D(w1, stride=1, padding="same", name="conv1")

    # Evidence aggregator: rectified polarities sum into two maps.
    w2 = np.zeros((2, 4, 3, 3))
    w2[0, 0] = 1.0 / 9.0  # coarse (blob) evidence
    w2[0, 1] = 1.0 / 9.0
    w2[1, 2] = 1.0 / 9.0  # fine (texture) evidence
    w2[1, 3] = 1.0 / 9.0
    conv2 = Conv2D(w2, stride=1, padding="same", name="conv2")

    # Head: proximity = coarse evidence minus a texture discount.
    head = Dense(np.array([[1.0, -0.6]]), np.array([0.0]), name="head")

    return Network(
        [conv1, ReLU(), MaxPool2D(2), conv2, ReLU(), MaxPool2D(2),
         GlobalAveragePool(), head],
        name="proximity-net",
    )


def proximity_score(counter: OpCounter, frame: np.ndarray,
                    net: Network = None) -> float:
    """Looming-obstacle score for one 80x80 uint8 frame (higher = closer)."""
    net = net if net is not None else build_proximity_net()
    x = frame.astype(np.float64)[None, :, :] / 255.0
    counter.vec_scale(x.size)
    out = net.forward(counter, x)
    return float(out[0])


def looming_scene(size: int = 80, radius: float = 26.0, contrast: float = 150.0,
                  seed: int = 0) -> np.ndarray:
    """A close, image-filling obstacle: one large high-contrast blob."""
    rng = np.random.default_rng(seed)
    ax = np.arange(size) - size / 2
    rr = np.sqrt(ax[:, None] ** 2 + ax[None, :] ** 2)
    img = 90.0 + contrast * (rr < radius) - 20.0 * np.clip(rr / size, 0, 1)
    img += rng.normal(0, 4, (size, size))
    return np.clip(img, 0, 255).astype(np.uint8)


def clear_scene(size: int = 80, seed: int = 0) -> np.ndarray:
    """Distant fine texture: high-frequency, low-amplitude detail."""
    rng = np.random.default_rng(seed)
    img = 110.0 + 18.0 * rng.standard_normal((size, size))
    # Fine checker-ish texture (distant ground).
    yy, xx = np.mgrid[0:size, 0:size]
    img += 12.0 * np.sign(np.sin(yy * 1.9) * np.sin(xx * 1.9))
    return np.clip(img, 0, 255).astype(np.uint8)
