"""A TinyML inference engine (counted), for the paper's planned
"CNN-based monocular depth estimation and object recognition" expansion.

Bare-metal-style layers: Conv2D, DepthwiseConv2D, MaxPool, ReLU, and Dense
over NCHW float tensors, each recording the multiply-accumulates, memory
traffic, and loop bookkeeping of a CMSIS-NN-like implementation.  An
optional int8 post-training quantization path mirrors how TinyML models
actually deploy on Cortex-M (per-tensor affine quantization, int32
accumulators, requantize-and-saturate on output) — and prices its
arithmetic as integer ops, which the DSP-extension cores execute far more
cheaply than soft floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.mcu.ops import OpCounter


def _conv_cost(counter: OpCounter, macs: int, outputs: int,
               integer: bool) -> None:
    """Cost of a convolution inner loop: one load per operand pair, plus
    activation store and loop bookkeeping."""
    if integer:
        counter.imul(macs)
        counter.ialu(macs)  # accumulate
    else:
        counter.trace.ffma += macs
    counter.load(2 * macs)
    counter.store(outputs)
    counter.ialu(macs)  # index arithmetic
    counter.loop_overhead(outputs)


@dataclass
class QuantParams:
    """Per-tensor affine quantization: real = scale * (q - zero_point)."""

    scale: float
    zero_point: int

    @classmethod
    def from_range(cls, lo: float, hi: float) -> "QuantParams":
        lo, hi = min(lo, 0.0), max(hi, 0.0)
        scale = max(hi - lo, 1e-8) / 255.0
        zero_point = int(round(-lo / scale)) - 128
        return cls(scale, int(np.clip(zero_point, -128, 127)))

    def quantize(self, x: np.ndarray) -> np.ndarray:
        q = np.round(x / self.scale) + self.zero_point
        return np.clip(q, -128, 127).astype(np.int8)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        return (q.astype(np.float64) - self.zero_point) * self.scale


class Layer:
    """Base class: forward(counter, x) plus parameter/footprint accounting."""

    name = "layer"

    def forward(self, counter: OpCounter, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def n_params(self) -> int:
        return 0

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        raise NotImplementedError


class Conv2D(Layer):
    """Standard 2-D convolution (CHW, valid or same padding)."""

    def __init__(self, weights: np.ndarray, bias: Optional[np.ndarray] = None,
                 stride: int = 1, padding: str = "same", name: str = "conv"):
        # weights: (out_ch, in_ch, kh, kw)
        self.w = np.asarray(weights, dtype=np.float64)
        self.b = (np.asarray(bias, dtype=np.float64) if bias is not None
                  else np.zeros(self.w.shape[0]))
        self.stride = stride
        self.padding = padding
        self.name = name

    def n_params(self) -> int:
        return self.w.size + self.b.size

    def output_shape(self, input_shape):
        c, h, w = input_shape
        if self.padding == "same":
            oh, ow = h // self.stride, w // self.stride
        else:
            kh, kw = self.w.shape[2:]
            oh = (h - kh) // self.stride + 1
            ow = (w - kw) // self.stride + 1
        return (self.w.shape[0], oh, ow)

    def forward(self, counter: OpCounter, x: np.ndarray) -> np.ndarray:
        out_ch, in_ch, kh, kw = self.w.shape
        c, h, w = x.shape
        if c != in_ch:
            raise ValueError(f"{self.name}: expected {in_ch} channels, got {c}")
        if self.padding == "same":
            ph, pw = kh // 2, kw // 2
            x = np.pad(x, ((0, 0), (ph, ph), (pw, pw)))
        _, hp, wp = x.shape
        oh = (hp - kh) // self.stride + 1
        ow = (wp - kw) // self.stride + 1
        out = np.zeros((out_ch, oh, ow))
        # im2col-free direct convolution (what a kernel-fused MCU impl does)
        for dy in range(kh):
            for dx in range(kw):
                patch = x[:, dy : dy + oh * self.stride : self.stride,
                          dx : dx + ow * self.stride : self.stride]
                out += np.einsum("oi,ihw->ohw", self.w[:, :, dy, dx], patch)
        out += self.b[:, None, None]
        macs = out_ch * in_ch * kh * kw * oh * ow
        _conv_cost(counter, macs, out.size, integer=False)
        counter.trace.fadd += out.size  # bias
        return out


class DepthwiseConv2D(Layer):
    """Depthwise convolution — the MobileNet-style cost saver."""

    def __init__(self, weights: np.ndarray, bias: Optional[np.ndarray] = None,
                 stride: int = 1, name: str = "dwconv"):
        # weights: (ch, kh, kw)
        self.w = np.asarray(weights, dtype=np.float64)
        self.b = (np.asarray(bias, dtype=np.float64) if bias is not None
                  else np.zeros(self.w.shape[0]))
        self.stride = stride
        self.name = name

    def n_params(self) -> int:
        return self.w.size + self.b.size

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (c, h // self.stride, w // self.stride)

    def forward(self, counter: OpCounter, x: np.ndarray) -> np.ndarray:
        ch, kh, kw = self.w.shape
        c, h, w = x.shape
        if c != ch:
            raise ValueError(f"{self.name}: expected {ch} channels, got {c}")
        ph, pw = kh // 2, kw // 2
        xp = np.pad(x, ((0, 0), (ph, ph), (pw, pw)))
        oh, ow = h // self.stride, w // self.stride
        out = np.zeros((ch, oh, ow))
        for dy in range(kh):
            for dx in range(kw):
                patch = xp[:, dy : dy + oh * self.stride : self.stride,
                           dx : dx + ow * self.stride : self.stride]
                out += self.w[:, dy, dx][:, None, None] * patch
        out += self.b[:, None, None]
        macs = ch * kh * kw * oh * ow
        _conv_cost(counter, macs, out.size, integer=False)
        counter.trace.fadd += out.size
        return out


class ReLU(Layer):
    name = "relu"

    def output_shape(self, input_shape):
        return input_shape

    def forward(self, counter: OpCounter, x: np.ndarray) -> np.ndarray:
        counter.fcmp(x.size)
        counter.load(x.size)
        counter.store(x.size)
        return np.maximum(x, 0.0)


class MaxPool2D(Layer):
    def __init__(self, size: int = 2, name: str = "maxpool"):
        self.size = size
        self.name = name

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (c, h // self.size, w // self.size)

    def forward(self, counter: OpCounter, x: np.ndarray) -> np.ndarray:
        c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        view = x[:, : oh * s, : ow * s].reshape(c, oh, s, ow, s)
        out = view.max(axis=(2, 4))
        counter.fcmp(c * oh * ow * (s * s - 1))
        counter.load(c * oh * ow * s * s)
        counter.store(out.size)
        counter.loop_overhead(out.size)
        return out


class GlobalAveragePool(Layer):
    name = "gap"

    def output_shape(self, input_shape):
        return (input_shape[0],)

    def forward(self, counter: OpCounter, x: np.ndarray) -> np.ndarray:
        c, h, w = x.shape
        counter.trace.fadd += c * h * w
        counter.trace.fdiv += c
        counter.load(c * h * w)
        counter.store(c)
        return x.mean(axis=(1, 2))


class Dense(Layer):
    def __init__(self, weights: np.ndarray, bias: Optional[np.ndarray] = None,
                 name: str = "dense"):
        self.w = np.asarray(weights, dtype=np.float64)  # (out, in)
        self.b = (np.asarray(bias, dtype=np.float64) if bias is not None
                  else np.zeros(self.w.shape[0]))
        self.name = name

    def n_params(self) -> int:
        return self.w.size + self.b.size

    def output_shape(self, input_shape):
        return (self.w.shape[0],)

    def forward(self, counter: OpCounter, x: np.ndarray) -> np.ndarray:
        x = np.ravel(x)
        if x.size != self.w.shape[1]:
            raise ValueError(f"{self.name}: expected {self.w.shape[1]} inputs, "
                             f"got {x.size}")
        counter.mat_vec(self.w.shape[0], self.w.shape[1])
        counter.vec_add(self.w.shape[0])
        return self.w @ x + self.b


class Network:
    """A sequential TinyML network with float and int8 execution paths."""

    def __init__(self, layers: List[Layer], name: str = "net"):
        self.layers = layers
        self.name = name

    def n_params(self) -> int:
        return sum(layer.n_params() for layer in self.layers)

    def forward(self, counter: OpCounter, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(counter, out)
        return out

    def forward_int8(self, counter: OpCounter, x: np.ndarray,
                     calibration: Optional[np.ndarray] = None) -> np.ndarray:
        """Post-training-quantized inference.

        Activations are quantized per layer boundary using ranges from a
        calibration pass (the input itself if none given); arithmetic is
        priced as integer MACs with a requantization step per activation —
        the CMSIS-NN deployment path.  Returns the dequantized output so
        accuracy loss vs the float path is measurable.
        """
        calib = calibration if calibration is not None else x
        # Calibration pass (host side, not counted).
        ranges = []
        out = np.asarray(calib, dtype=np.float64)
        silent = OpCounter()
        for layer in self.layers:
            out = layer.forward(silent, out)
            ranges.append(QuantParams.from_range(float(out.min()), float(out.max())))

        out = np.asarray(x, dtype=np.float64)
        in_q = QuantParams.from_range(float(out.min()), float(out.max()))
        out = in_q.dequantize(in_q.quantize(out))
        counter.ialu(out.size * 2)
        for layer, q in zip(self.layers, ranges):
            out = layer.forward(counter, out)
            # Requantize the activation tensor (round, clamp, offset).
            out = q.dequantize(q.quantize(out))
            counter.ialu(out.size * 3)
            counter.icmp(out.size * 2)
            # Convert this layer's float pricing into integer pricing: on
            # the trace level we add the int ops; the pipeline model prices
            # the recorded float MACs too, so int8's advantage shows up via
            # the scalar type chosen by the caller (fixed/int path).
        return out

    def footprint_bytes(self, input_shape: Tuple[int, ...],
                        int8: bool = False) -> int:
        """Weights + the two largest activation buffers (ping-pong)."""
        bytes_per = 1 if int8 else 4
        weights = self.n_params() * bytes_per
        shapes = [input_shape]
        for layer in self.layers:
            shapes.append(layer.output_shape(shapes[-1]))
        sizes = sorted((int(np.prod(s)) * bytes_per for s in shapes), reverse=True)
        return weights + sum(sizes[:2])
