"""Quantized TinyML workload pack: int8/int16 proximity-net variants.

Deployed TinyML models do not run in float — they ship post-training
quantized, with integer MACs and a fixed-point requantization step at
every layer boundary.  This module packages that deployment path as
first-class suite problems (``proximity-net-int8``,
``proximity-net-int16``) so sweeps and Tier B scenario campaigns can
price quantized inference against the float kernel across ISA backends:
on a soft-float core (M0+, RV32IMC) the integer path is the difference
between flying and not.

The requantization multiplier is routed through
:mod:`repro.fixedpoint.qformat` exactly as CMSIS-NN stores it: the real
activation scale is snapped to the problem's Q format before use, so the
arithmetic (and any overflow events) depend on the chosen ``qM.N``
container, not on ideal real numbers.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.registry import register
from repro.fixedpoint.qformat import Fixed, FixedPointContext, QFormat
from repro.mcu.memory import Footprint
from repro.mcu.ops import OpCounter
from repro.nn.layers import Network
from repro.nn.suite import ProximityNetProblem
from repro.scalar import ScalarType, q

#: Default scalar containers: one sign bit + 7.24 covers int8 activation
#: ranges with headroom; 15.16 matches the int16 path's wider dynamic range.
Q7_24 = q(7, 24)
Q15_16 = q(15, 16)


class AffineQuant:
    """Per-tensor affine quantization with a fixed-point scale word.

    Generalizes :class:`repro.nn.layers.QuantParams` to any integer width
    and stores the scale the way an MCU kernel does — as a Q-format raw
    word — so dequantized values are a function of the container format.
    """

    def __init__(self, lo: float, hi: float, bits: int,
                 fmt: QFormat, ctx: FixedPointContext):
        self.qmax = (1 << (bits - 1)) - 1
        self.qmin = -(1 << (bits - 1))
        lo, hi = min(lo, 0.0), max(hi, 0.0)
        scale = max(hi - lo, 1e-8) / (self.qmax - self.qmin)
        # Snap the multiplier into the Q container (CMSIS-NN requantize).
        snapped = Fixed.from_float(scale, fmt, ctx).to_float()
        self.scale = snapped if snapped > 0.0 else fmt.resolution
        zero = int(round(-lo / self.scale)) + self.qmin
        self.zero_point = int(np.clip(zero, self.qmin, self.qmax))

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        """Quantize-then-dequantize: the deployed activation precision."""
        qv = np.clip(np.round(x / self.scale) + self.zero_point,
                     self.qmin, self.qmax)
        return (qv - self.zero_point) * self.scale


def quantized_forward(counter: OpCounter, net: Network, x: np.ndarray,
                      bits: int, fmt: QFormat,
                      ctx: FixedPointContext) -> np.ndarray:
    """Post-training-quantized inference at ``bits``-wide activations.

    A silent calibration pass collects per-layer ranges (host side, not
    counted), then the counted pass requantizes every activation tensor
    through :class:`AffineQuant`.  The requantize cost (round, clamp,
    offset) is priced as integer ops; the MAC pricing itself follows the
    caller's scalar type, so a fixed-point scalar prices the whole pass
    as the integer pipeline it deploys as.
    """
    silent = OpCounter()
    out = np.asarray(x, dtype=np.float64)
    params = []
    for layer in net.layers:
        out = layer.forward(silent, out)
        params.append(AffineQuant(float(out.min()), float(out.max()),
                                  bits, fmt, ctx))

    out = np.asarray(x, dtype=np.float64)
    in_q = AffineQuant(float(out.min()), float(out.max()), bits, fmt, ctx)
    out = in_q.roundtrip(out)
    counter.ialu(out.size * 2)
    for layer, qp in zip(net.layers, params):
        out = layer.forward(counter, out)
        out = qp.roundtrip(out)
        counter.ialu(out.size * 3)
        counter.icmp(out.size * 2)
    return out


class QuantizedProximityNetProblem(ProximityNetProblem):
    """Proximity inference on the deployed, quantized execution path."""

    bits = 8
    default_scalar: ScalarType = Q7_24

    def __init__(self, scalar: ScalarType = None, seed: int = 0,
                 n_frames: int = 4):
        super().__init__(
            scalar if scalar is not None else self.default_scalar,
            seed, n_frames,
        )
        self.fixed_ctx = FixedPointContext()

    def _qformat(self) -> QFormat:
        if self.scalar.is_fixed:
            return QFormat(self.scalar.q_int, self.scalar.q_frac)
        return QFormat(self.default_scalar.q_int, self.default_scalar.q_frac)

    def solve(self, counter: OpCounter):
        fmt = self._qformat()
        scores = []
        for frame in self.frames:
            x = frame.astype(np.float64)[None, :, :] / 255.0
            counter.vec_scale(x.size)
            out = quantized_forward(counter, self.net, x, self.bits,
                                    fmt, self.fixed_ctx)
            scores.append(float(out[0]))
        near = [s for s, label in zip(scores, self.labels) if label]
        far = [s for s, label in zip(scores, self.labels) if not label]
        self.last_margin = (min(near) - max(far)) if near and far else None
        return scores

    def validate(self, result) -> bool:
        # Quantization must not flip the ranking, and the Q container must
        # hold every requantize multiplier without saturating.
        return (
            self.last_margin is not None
            and self.last_margin > 0.0
            and not self.fixed_ctx.failed
        )

    def footprint(self) -> Footprint:
        bytes_per = self.bits // 8
        base = super().footprint()
        # Int8 weights regardless of activation width (CMSIS-NN packs
        # weights at 8 bits even on the int16 activation path).
        act = self._activation_bytes() * bytes_per
        return Footprint(
            flash_bytes=base.flash_bytes,
            data_bytes=self.net_params_bytes() + act,
        )

    def _activation_bytes(self) -> int:
        net = self.net if hasattr(self, "net") else None
        if net is None:
            from repro.nn.depthnet import build_proximity_net

            net = build_proximity_net()
        from repro.nn.depthnet import INPUT_SHAPE

        shapes: Tuple[Tuple[int, ...], ...] = (INPUT_SHAPE,)
        for layer in net.layers:
            shapes = shapes + (layer.output_shape(shapes[-1]),)
        sizes = sorted((int(np.prod(s)) for s in shapes), reverse=True)
        return sum(sizes[:2])


class ProximityNetInt8Problem(QuantizedProximityNetProblem):
    """``proximity-net`` on the int8 CMSIS-NN deployment path."""

    name = "proximity-net-int8"
    category = "CNN Int8"
    bits = 8
    default_scalar = Q7_24


class ProximityNetInt16Problem(QuantizedProximityNetProblem):
    """``proximity-net`` with int16 activations (accuracy-critical path)."""

    name = "proximity-net-int16"
    category = "CNN Int16"
    bits = 16
    default_scalar = Q15_16


register("proximity-net-int8")(ProximityNetInt8Problem)
register("proximity-net-int16")(ProximityNetInt16Problem)
