"""Benchmark problem for the TinyML proximity (monocular depth) kernel.

The second of the paper's "planned near-term expansions", registered as
``proximity-net``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.problem import EntoProblem
from repro.core.registry import register
from repro.mcu.memory import Footprint
from repro.mcu.ops import OpCounter
from repro.mcu.static import StaticMix, compose
from repro.nn.depthnet import (
    INPUT_SHAPE,
    build_proximity_net,
    clear_scene,
    looming_scene,
    proximity_score,
)
from repro.scalar import F32, ScalarType


class ProximityNetProblem(EntoProblem):
    """CNN proximity inference over a batch of near/far scenes."""

    name = "proximity-net"
    stage = "P"
    category = "CNN Infer."
    dataset_name = "prox-synth"

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 n_frames: int = 4):
        super().__init__(scalar, seed)
        self.n_frames = n_frames
        self.last_margin: Optional[float] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.net = build_proximity_net()
        half = self.n_frames // 2
        self.frames = [looming_scene(seed=self.seed + i) for i in range(half)]
        self.frames += [clear_scene(seed=self.seed + i)
                        for i in range(self.n_frames - half)]
        self.labels = [True] * half + [False] * (self.n_frames - half)
        self.work_units = self.n_frames

    def solve(self, counter: OpCounter):
        scores = [proximity_score(counter, f, self.net) for f in self.frames]
        near = [s for s, label in zip(scores, self.labels) if label]
        far = [s for s, label in zip(scores, self.labels) if not label]
        self.last_margin = (min(near) - max(far)) if near and far else None
        return scores

    def validate(self, result) -> bool:
        # Every looming frame must outscore every clear frame.
        return self.last_margin is not None and self.last_margin > 0.0

    def static_mix_base(self) -> StaticMix:
        return compose(("dense_matmul", "gaussian_blur", "image_pyramid",
                        "experiment_io", "harness_runtime"),
                       repeat={"dense_matmul": 2})

    def footprint(self) -> Footprint:
        # Deployed TinyML models ship int8-quantized (CMSIS-NN); the float
        # activation buffers would not fit the M4 at all.
        return Footprint(
            flash_bytes=self.static_mix_base().flash_bytes
            + self.net_params_bytes(),
            data_bytes=build_proximity_net().footprint_bytes(
                INPUT_SHAPE, int8=True
            ),
        )

    def net_params_bytes(self) -> int:
        return build_proximity_net().n_params()  # int8 weights

    def flop_estimate(self) -> int:
        # The FLOP-counting papers would tally pure MACs: conv1 + conv2 +
        # head over one 80x80 frame.
        conv1 = 4 * 1 * 11 * 11 * 80 * 80
        conv2 = 2 * 4 * 3 * 3 * 40 * 40
        return (2 * (conv1 + conv2) + 4) * self.work_units


register("proximity-net")(ProximityNetProblem)

# The quantized deployment-path variants register themselves on import.
from repro.nn import quantized  # noqa: E402,F401
