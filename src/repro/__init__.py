"""EntoBench reproduction: a benchmark suite and evaluation framework for
insect-scale robotics, with a simulated Cortex-M measurement substrate.

Quick start::

    from repro.core import registry, Harness, HarnessConfig
    from repro.mcu import M4, CACHE_ON

    problem = registry.create("mahony")
    result = Harness(M4, HarnessConfig()).run(problem, CACHE_ON)
    print(result.unit_latency_us, result.unit_energy_uj)
"""

__version__ = "0.1.0"
