"""The single supported import surface for the benchmark framework.

Four subsystem PRs grew four entry idioms: analysis code hand-builds
:class:`SweepSpec` and drives the engine, the fault layer names its grid
a ``FaultCampaignSpec``, closed-loop code instantiates runners directly,
and the CLI wires each path by hand.  This facade harmonizes them behind
one module:

* **Spec constructors** — :class:`SweepSpec` (what to sweep),
  :class:`MissionSpec` (what to fly), :class:`CampaignSpec` (what to
  subject to faults; the canonical name for the fault layer's
  ``FaultCampaignSpec``) and :class:`EngineOptions` (how to execute).
* **Verbs** — :func:`characterize`, :func:`sweep`, :func:`run_mission`,
  :func:`run_campaign`, :func:`price_batch` (re-price solved profiles on
  any core/cache grid, vectorized by default), and :func:`query`
  (one-shot service query).
* **Service types** — :class:`ServiceBroker` / :class:`ShardPool`, the
  query dataclasses with their frozen :class:`QueryOptions`, and the
  typed :class:`ServiceError` taxonomy, for callers that hold a broker
  open across many queries (see ``docs/service.md``).
* **Toolkits** — the fault-report helpers (:func:`build_report`,
  :func:`render_report`, :func:`save_report`, :func:`get_fault`,
  :func:`fault_names`) and the closed-loop building blocks
  (:class:`FlappingWingRunner`, :class:`StriderRunner` and their
  missions) for custom studies the verb signatures don't cover.
* **Scenarios** — tiered scenario generation for campaign-scale studies:
  :func:`generate_scenarios` samples a content-addressed
  :class:`ScenarioSet` (tier A = the paper's platforms, tier B = seeded
  synthetics) and :func:`run_scenarios` executes one into a Pareto /
  failure-rate report.  The mission registry (:func:`mission_names`,
  :func:`register_mission`) is the extension seam generated missions
  flow through.

``__all__`` below is the *pinned* public surface: ``tests/test_api.py``
snapshots it, so adding or removing a name is an explicit, reviewed act.
Deprecated aliases (``FaultCampaignSpec``, ``characterize_suite``) live
outside ``__all__`` behind a module ``__getattr__`` that warns once per
process and forwards.  Examples, benchmarks, and analysis code import
from here — enforced by the ``facade-only-imports`` lint rule.
"""

from __future__ import annotations

import warnings
from dataclasses import replace as _dc_replace
from typing import List, Optional, Union

from repro.closedloop import (
    MISSION_NAMES,
    FlappingWingRunner,
    HoverMission,
    MissionKeyError,
    MissionResult,
    MissionSpec,
    SteeringCourse,
    StriderRunner,
    WaypointMission,
    make_mission,
    make_runner,
    mission_names,
    register_mission,
)
from repro.core.config import HarnessConfig
from repro.core.experiment import (
    ResultKeyError,
    SweepResults,
    SweepSpec,
)
from repro.engine import EngineOptions, Telemetry, TraceCache
from repro.faults import (
    CampaignResult,
    build_report,
    fault_names,
    get_fault,
    render_report,
    save_report,
)
from repro.faults import FaultCampaignSpec as CampaignSpec
from repro.scenarios import (
    ScenarioGenerator,
    ScenarioSet,
    ScenarioSpec,
    generate_scenarios,
    run_scenarios,
)
from repro.service import (
    DEFAULT_PORT,
    CampaignQuery,
    CharacterizeQuery,
    MissionQuery,
    QueryOptions,
    QueryValidationError,
    ServiceBroker,
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceServer,
    ServiceTimeout,
    ShardPool,
    ShardUnavailable,
    parse_request,
)

__all__ = [
    # specs / options
    "CampaignSpec",
    "EngineOptions",
    "HarnessConfig",
    "MissionSpec",
    "SweepSpec",
    "TraceCache",
    # results / errors
    "CampaignResult",
    "MissionKeyError",
    "MissionResult",
    "ResultKeyError",
    "SweepResults",
    "Telemetry",
    # verbs
    "characterize",
    "generate_scenarios",
    "get_arch",
    "list_backends",
    "price_batch",
    "query",
    "run_campaign",
    "run_mission",
    "run_scenarios",
    "sweep",
    # scenario toolkit
    "ScenarioGenerator",
    "ScenarioSet",
    "ScenarioSpec",
    "mission_names",
    "register_mission",
    # fault toolkit
    "build_report",
    "fault_names",
    "get_fault",
    "render_report",
    "save_report",
    # closed-loop building blocks (custom runners / courses)
    "FlappingWingRunner",
    "HoverMission",
    "SteeringCourse",
    "StriderRunner",
    "WaypointMission",
    # service surface
    "CampaignQuery",
    "CharacterizeQuery",
    "MissionQuery",
    "QueryOptions",
    "QueryValidationError",
    "ServiceBroker",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceServer",
    "ServiceTimeout",
    "ShardPool",
    "ShardUnavailable",
    # constants
    "DEFAULT_PORT",
    "MISSION_NAMES",
]


def characterize(
    kernels=None,
    config: Optional[HarnessConfig] = None,
    archs=None,
    *,
    jobs: int = 1,
    cache_dir=None,
    telemetry: Optional[Telemetry] = None,
) -> SweepResults:
    """Run the paper's workload characterization (Table IV).

    The facade name for ``repro.core.experiment.characterize_suite``:
    sweeps ``kernels`` (default: the full registered suite) across
    ``archs`` (default: the paper's characterization cores), cache on
    and off, through the execution engine.
    """
    from repro.core.experiment import characterize_suite

    return characterize_suite(
        kernels, config, archs,
        jobs=jobs, cache_dir=cache_dir, telemetry=telemetry,
    )


def sweep(
    spec: SweepSpec,
    *,
    options: Optional[EngineOptions] = None,
    telemetry: Optional[Telemetry] = None,
    progress=None,
) -> SweepResults:
    """Execute one :class:`SweepSpec` through the execution engine."""
    from repro.core.experiment import run_sweep

    return run_sweep(
        spec, progress, options=options, telemetry=telemetry
    )


def run_mission(
    spec: Union[MissionSpec, str],
    arch: Optional[str] = None,
) -> MissionResult:
    """Fly one closed-loop mission and return its task-level result.

    Accepts a :class:`MissionSpec` or a bare mission name (with ``arch``
    defaulting per the spec).  Deterministic: the same spec always
    produces a byte-identical result.
    """
    if isinstance(spec, str):
        spec = MissionSpec(mission=spec, arch=arch if arch is not None else "m33")
    elif arch is not None:
        raise TypeError("pass arch inside the MissionSpec, not alongside it")
    spec = spec.validated()
    runner = make_runner(spec.mission, spec.arch)
    return runner.run(make_mission(spec.mission))


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    options: Optional[EngineOptions] = None,
    telemetry: Optional[Telemetry] = None,
) -> CampaignResult:
    """Execute one fault campaign (kernel grid + mission grid)."""
    from repro.faults import run_campaign as _run_campaign

    return _run_campaign(spec, jobs=jobs, options=options, telemetry=telemetry)


def price_batch(items, *, vectorize: bool = True) -> list:
    """Price a batch of (profile, arch, cache) cells in one pass.

    Re-prices already-solved kernel profiles — e.g. the snapshot a
    warmed :class:`TraceCache` returns from ``profiles()`` — on any
    (core, cache state) grid without re-running any kernel.  ``items``
    is a sequence of ``(profile, arch, cache)`` triples where ``arch``
    is an ``ArchSpec`` or a registry short name (``"m33"``,
    ``"rv32imfc"``) and ``cache`` is a ``CacheConfig``, a ``"C"`` /
    ``"NC"`` label, or a bool (cache enabled).  Returns one
    ``BenchmarkResult`` per item, in item order.

    With ``vectorize=True`` (the default) the whole batch prices
    through the columnar :mod:`repro.vecprice` path — one set of matrix
    ops for every cell; ``vectorize=False`` loops the serial per-cell
    reference instead.  Both produce byte-identical results (the
    contract ``docs/pricing.md`` documents and ``tests/test_vecprice.py``
    enforces), so the flag is a performance choice, not a semantic one.
    """
    from repro.backends import get_arch as _get_arch
    from repro.engine import price_profile as _price_profile
    from repro.mcu.arch import ArchSpec
    from repro.mcu.cache import CACHE_OFF, CACHE_ON, CacheConfig
    from repro.vecprice import price_batch as _price_batch

    def _norm_cache(cache) -> CacheConfig:
        if isinstance(cache, CacheConfig):
            return cache
        if isinstance(cache, str):
            label = cache.upper()
            if label == CACHE_ON.label:
                return CACHE_ON
            if label == CACHE_OFF.label:
                return CACHE_OFF
            raise ValueError(f"unknown cache label {cache!r}; use 'C' or 'NC'")
        return CACHE_ON if cache else CACHE_OFF

    normalized = [
        (
            profile,
            arch if isinstance(arch, ArchSpec) else _get_arch(arch),
            _norm_cache(cache),
        )
        for profile, arch, cache in items
    ]
    if vectorize:
        return _price_batch(normalized)
    return [_price_profile(p, a, c) for p, a, c in normalized]


def list_backends() -> List[dict]:
    """The registered ISA backends, one JSON-ready row per backend.

    Each row carries the backend name (``cortex-m``, ``riscv``), its
    description, every arch it registers, and its default
    characterization subset — the facade form of
    ``repro.backends.list_backends``.
    """
    from repro.backends import list_backends as _list_backends

    return _list_backends()


def get_arch(name: str):
    """Resolve an architecture by short name through the backend registry.

    Returns the :class:`~repro.mcu.arch.ArchSpec`; unknown names raise
    ``ArchKeyError`` (a ``KeyError`` subclass carrying a nearest-match
    suggestion).
    """
    from repro.backends import get_arch as _get_arch

    return _get_arch(name)


def query(
    request: Union[dict, CharacterizeQuery, MissionQuery, CampaignQuery],
    broker: Optional[Union[ServiceBroker, ShardPool]] = None,
    timeout: Optional[float] = None,
    *,
    options: Optional[QueryOptions] = None,
) -> dict:
    """Answer one benchmark query and return its JSON-ready payload.

    ``request`` is a query dataclass or a wire-style dict
    (``{"op": "characterize", "kernel": ..., ...}``).  With ``broker``
    (a :class:`ServiceBroker` or :class:`ShardPool`) the query goes
    through that broker's cache and coalescing; without one a transient
    broker answers it and shuts down — convenient, but callers with
    query volume should hold a broker (or run ``repro serve``) to
    actually reuse the cache.

    ``options`` attaches a :class:`QueryOptions` (priority, timeout,
    cache policy), replacing the old bare ``timeout=`` keyword — which
    still works, with a one-time DeprecationWarning.
    """
    if timeout is not None and "query.timeout" not in _warned:
        _warned.add("query.timeout")
        warnings.warn(
            "repro.api.query(timeout=...) is deprecated; pass "
            "options=QueryOptions(timeout=...)",
            DeprecationWarning,
            stacklevel=2,
        )
    q = parse_request(request) if isinstance(request, dict) else request
    if options is not None:
        q = _dc_replace(q, options=options.validated())
    if broker is not None:
        return broker.ask(q, timeout=timeout)
    with ServiceBroker() as transient:
        return transient.ask(q, timeout=timeout)


#: Deprecated name -> (replacement public name, loader).  Access warns
#: once per process and forwards; the names stay importable so existing
#: code keeps working while the lint baseline drains.
_DEPRECATED = {
    "FaultCampaignSpec": "CampaignSpec",
    "characterize_suite": "characterize",
}

_warned: set = set()


def __getattr__(name: str):
    """Forward deprecated aliases with a one-time DeprecationWarning."""
    replacement = _DEPRECATED.get(name)
    if replacement is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    if name not in _warned:
        _warned.add(name)
        warnings.warn(
            f"repro.api.{name} is deprecated; use repro.api.{replacement}",
            DeprecationWarning,
            stacklevel=2,
        )
    return globals()[replacement]


def __dir__() -> List[str]:
    """Public surface plus the (deprecated) forwarding aliases."""
    return sorted(set(__all__) | set(_DEPRECATED))
