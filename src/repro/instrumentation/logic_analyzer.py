"""Simulated logic analyzer (the Saleae Logic 2 stand-in).

Subscribes to a :class:`~repro.instrumentation.gpio.GpioBus` and records
pin transitions with its own sample clock.  Timestamps are quantized to
the analyzer's sample period and referenced to the analyzer's *local*
clock, which starts when the capture starts — not when the harness does —
so the synchronization step of the analysis pipeline has real work to do,
as it does on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.instrumentation.gpio import GpioBus, GpioEvent


@dataclass(frozen=True)
class DigitalEdge:
    """One recorded transition, in analyzer-local time."""

    time_s: float
    pin: str
    rising: bool


@dataclass(frozen=True)
class RoiInterval:
    """One high pulse on a pin, in analyzer-local time."""

    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class LogicAnalyzer:
    """Edge-capture instrument with a quantized local clock."""

    def __init__(self, bus: GpioBus, sample_rate_hz: float = 500e6,
                 start_offset_s: float = 0.0,
                 edge_filter: Optional[
                     Callable[[DigitalEdge], Optional[DigitalEdge]]
                 ] = None):
        self.sample_period_s = 1.0 / sample_rate_hz
        self.start_offset_s = start_offset_s  # local t=0 in harness time
        # Optional per-edge transform — the probe-fault seam.  Returning
        # ``None`` drops the edge (a missed sample); returning a modified
        # edge models timestamp jitter or glitching.
        self._edge_filter = edge_filter
        self._capturing = False
        self._edges: List[DigitalEdge] = []
        bus.subscribe(self._on_event)

    def start(self) -> None:
        self._capturing = True

    def stop(self) -> None:
        self._capturing = False

    def _on_event(self, event: GpioEvent) -> None:
        if not self._capturing:
            return
        local = event.time_s - self.start_offset_s
        if local < 0:
            return
        quantized = round(local / self.sample_period_s) * self.sample_period_s
        edge = DigitalEdge(quantized, event.pin, event.state)
        if self._edge_filter is not None:
            filtered = self._edge_filter(edge)
            if filtered is None:
                return
            edge = filtered
        self._edges.append(edge)

    @property
    def edges(self) -> List[DigitalEdge]:
        return list(self._edges)

    def edges_for(self, pin: str) -> List[DigitalEdge]:
        return [e for e in self._edges if e.pin == pin]

    def intervals(self, pin: str) -> List[RoiInterval]:
        """High pulses on ``pin`` (paired rising/falling edges)."""
        out: List[RoiInterval] = []
        start: Optional[float] = None
        for edge in self.edges_for(pin):
            if edge.rising and start is None:
                start = edge.time_s
            elif not edge.rising and start is not None:
                out.append(RoiInterval(start, edge.time_s))
                start = None
        return out

    def first_edge(self, pin: str, rising: bool = True) -> Optional[DigitalEdge]:
        for edge in self.edges_for(pin):
            if edge.rising == rising:
                return edge
        return None

    def export(self) -> List[Tuple[float, str, int]]:
        """Raw export rows: (time, channel, value) — the .csv Saleae emits."""
        return [(e.time_s, e.pin, int(e.rising)) for e in self._edges]
