"""Simulated inline current probe (the STLINK-V3PWR stand-in).

The harness reports power *segments* (a start time, a duration, an average
power, a peak power).  When an acquisition is armed — by the same trigger
pin a real STLINK-V3PWR waits on — the monitor synthesizes a current trace
from those segments at the probe's 100 kHz sample rate with 50 nA
resolution: per-sample noise, burst structure that actually reaches the
reported peak, and a local clock with a small skew relative to the logic
analyzer.  The analysis pipeline must recover latency/energy/peak power
from this trace, exactly as the paper's Python scripts do from real logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class PowerSegment:
    """One constant-activity stretch of the power profile (harness time)."""

    start_s: float
    duration_s: float
    avg_power_w: float
    peak_power_w: float


@dataclass(frozen=True)
class CurrentTrace:
    """A captured current log, in monitor-local time."""

    times_s: np.ndarray
    current_a: np.ndarray
    supply_v: float

    @property
    def power_w(self) -> np.ndarray:
        return self.current_a * self.supply_v

    def __len__(self) -> int:
        return len(self.times_s)


class PowerMonitor:
    """Segment-driven current-trace synthesizer."""

    SAMPLE_RATE_HZ = 100e3
    CURRENT_RESOLUTION_A = 50e-9

    def __init__(
        self,
        supply_v: float = 3.3,
        noise_a: float = 8e-6,
        clock_skew_ppm: float = 40.0,
        start_offset_s: float = 0.0,
        seed: int = 1234,
        rng: Optional[np.random.Generator] = None,
        capture_filter: Optional[Callable[["CurrentTrace"], "CurrentTrace"]] = None,
    ):
        self.supply_v = supply_v
        self.noise_a = noise_a
        # Local clock runs at (1 + skew) x true rate — sync must correct it.
        self.clock_skew = clock_skew_ppm * 1e-6
        self.start_offset_s = start_offset_s
        # All of the probe's randomness (noise, burst placement) draws from
        # this one explicit generator so experiments are reproducible
        # end-to-end: pass a config-seeded ``numpy.random.Generator`` to
        # share a stream, or rely on ``seed`` for a private one.
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        # Optional post-processing applied to every captured trace — the
        # seam probe-fault injectors (sample drops, skew drift, saturation)
        # hook into without the monitor knowing about fault models.
        self._capture_filter = capture_filter
        self._armed = False
        self._acquiring = False
        self._segments: List[PowerSegment] = []
        self._acquire_from_s: Optional[float] = None

    # -- trigger handling (wire to the GPIO bus) ----------------------------

    def arm(self) -> None:
        """Arm the monitor: the next trigger rising edge starts acquisition."""
        self._armed = True

    def on_gpio(self, event) -> None:
        """GPIO listener: trigger pin starts acquisition when armed."""
        if event.pin == "trigger" and event.state and self._armed:
            self._armed = False
            self._acquiring = True
            self._acquire_from_s = event.time_s

    # -- segment intake -------------------------------------------------------

    def add_segment(self, start_s: float, duration_s: float,
                    avg_power_w: float, peak_power_w: Optional[float] = None) -> None:
        if duration_s <= 0:
            return
        if self._acquiring:
            self._segments.append(
                PowerSegment(
                    start_s, duration_s, avg_power_w,
                    peak_power_w if peak_power_w is not None else avg_power_w,
                )
            )

    # -- trace synthesis --------------------------------------------------------

    def capture(self) -> CurrentTrace:
        """Synthesize the captured current trace from recorded segments."""
        if not self._segments or self._acquire_from_s is None:
            return CurrentTrace(np.array([]), np.array([]), self.supply_v)
        t0 = self._acquire_from_s
        end = max(s.start_s + s.duration_s for s in self._segments)
        dt = 1.0 / self.SAMPLE_RATE_HZ
        n = int(np.ceil((end - t0) / dt)) + 2
        true_times = t0 + np.arange(n) * dt
        power = np.zeros(n)

        for seg in self._segments:
            mask = (true_times >= seg.start_s) & (
                true_times < seg.start_s + seg.duration_s
            )
            count = int(mask.sum())
            if count == 0:
                # Segment shorter than a sample period: land its energy on
                # the nearest sample so short kernels are still integrable.
                idx = int(round((seg.start_s - t0) / dt))
                if 0 <= idx < n:
                    power[idx] += seg.avg_power_w * seg.duration_s / dt
                continue
            base = np.full(count, seg.avg_power_w)
            # Preserve segment energy when sampling over-covers a short
            # segment (a window shorter than count * dt).
            covered = count * dt
            if covered > seg.duration_s:
                base *= seg.duration_s / covered
            if seg.peak_power_w > seg.avg_power_w and count >= 3:
                # Shape a burst: a few samples reach the true peak while the
                # mean is preserved.
                burst_n = max(1, count // 10)
                burst_idx = self._rng.choice(count, size=burst_n, replace=False)
                delta = seg.peak_power_w - seg.avg_power_w
                base[burst_idx] += delta
                base -= delta * burst_n / count  # preserve the average
            power[mask] = base

        current = power / self.supply_v
        current += self._rng.normal(0.0, self.noise_a, size=n)
        current = np.maximum(current, 0.0)
        current = (
            np.round(current / self.CURRENT_RESOLUTION_A) * self.CURRENT_RESOLUTION_A
        )
        # Express time on the monitor's skewed local clock.
        local_times = (true_times - t0) * (1.0 + self.clock_skew) + self.start_offset_s
        trace = CurrentTrace(local_times, current, self.supply_v)
        if self._capture_filter is not None:
            trace = self._capture_filter(trace)
        return trace

    def export_csv_rows(self) -> List[Tuple[float, float]]:
        trace = self.capture()
        return list(zip(trace.times_s.tolist(), trace.current_a.tolist()))
