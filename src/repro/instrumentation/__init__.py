"""Simulated measurement chain: GPIO, logic analyzer, current probe, sync."""

from repro.instrumentation.gpio import GpioBus, GpioEvent
from repro.instrumentation.logic_analyzer import DigitalEdge, LogicAnalyzer, RoiInterval
from repro.instrumentation.power_monitor import CurrentTrace, PowerMonitor, PowerSegment
from repro.instrumentation.sync import (
    Measurement,
    SyncedCapture,
    extract_measurements,
    summarize,
    synchronize,
)

__all__ = [
    "GpioBus",
    "GpioEvent",
    "DigitalEdge",
    "LogicAnalyzer",
    "RoiInterval",
    "CurrentTrace",
    "PowerMonitor",
    "PowerSegment",
    "Measurement",
    "SyncedCapture",
    "extract_measurements",
    "summarize",
    "synchronize",
]
