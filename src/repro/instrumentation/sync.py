"""Trace synchronization and measurement extraction.

The Python analysis step of the paper's artifact: align the logic
analyzer's digital capture with the current probe's trace (both have their
own clocks), then for every region-of-interest window integrate current to
energy, take the in-window maximum as peak power, and report the window
width as latency.

Alignment uses the shared reference both instruments observe: the trigger
edge appears in the digital capture, and the current trace starts at the
trigger by construction (the probe is armed on that pin).  Residual clock
skew between instruments is corrected with a linear time map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.instrumentation.logic_analyzer import LogicAnalyzer, RoiInterval
from repro.instrumentation.power_monitor import CurrentTrace


@dataclass(frozen=True)
class Measurement:
    """One recovered per-repetition measurement."""

    latency_s: float
    energy_j: float
    peak_power_w: float
    avg_power_w: float

    @property
    def latency_us(self) -> float:
        return self.latency_s * 1e6

    @property
    def energy_uj(self) -> float:
        return self.energy_j * 1e6


@dataclass(frozen=True)
class SyncedCapture:
    """Digital ROI windows and the current trace on a common time base."""

    rois: List[RoiInterval]
    trace: CurrentTrace


def synchronize(
    analyzer: LogicAnalyzer,
    trace: CurrentTrace,
    monitor_skew_ppm: Optional[float] = None,
) -> SyncedCapture:
    """Map both captures onto the logic analyzer's time base.

    The current trace's t=0 is the trigger edge; find that edge in the
    digital capture and shift/scale the current timestamps onto analyzer
    time.  If the monitor's clock skew is known (from calibration), it is
    corrected; otherwise the linear map assumes nominal rate, which is what
    the paper's scripts do for short captures.
    """
    trigger = analyzer.first_edge("trigger", rising=True)
    if trigger is None:
        raise ValueError("no trigger edge in digital capture; cannot synchronize")
    skew = (monitor_skew_ppm or 0.0) * 1e-6
    times = (trace.times_s - (trace.times_s[0] if len(trace) else 0.0)) / (1.0 + skew)
    aligned = CurrentTrace(times + trigger.time_s, trace.current_a, trace.supply_v)
    return SyncedCapture(rois=analyzer.intervals("roi"), trace=aligned)


def _window_measurement(trace: CurrentTrace, roi: RoiInterval) -> Measurement:
    mask = (trace.times_s >= roi.start_s) & (trace.times_s < roi.end_s)
    power = trace.power_w[mask]
    latency = roi.duration_s
    if power.size == 0:
        # ROI shorter than one sample: take the nearest sample's power.
        idx = int(np.argmin(np.abs(trace.times_s - roi.start_s)))
        p = float(trace.power_w[idx]) if len(trace) else 0.0
        return Measurement(latency, p * latency, p, p)
    avg = float(power.mean())
    return Measurement(
        latency_s=latency,
        energy_j=avg * latency,
        peak_power_w=float(power.max()),
        avg_power_w=avg,
    )


def extract_measurements(capture: SyncedCapture) -> List[Measurement]:
    """Per-ROI latency/energy/peak-power, like the artifact's analysis step."""
    return [_window_measurement(capture.trace, roi) for roi in capture.rois]


def summarize(measurements: List[Measurement]) -> Measurement:
    """Aggregate repetitions: mean latency/energy, max peak power."""
    if not measurements:
        raise ValueError("no measurements to summarize")
    lat = float(np.mean([m.latency_s for m in measurements]))
    en = float(np.mean([m.energy_j for m in measurements]))
    pk = float(np.max([m.peak_power_w for m in measurements]))
    av = float(np.mean([m.avg_power_w for m in measurements]))
    return Measurement(lat, en, pk, av)
