"""Simulated GPIO lines.

The MCU abstraction layer in the C++ framework toggles two pins: a
``trigger`` pin that starts the current probe's acquisition and an ``roi``
(region-of-interest) pin that brackets each kernel execution for the logic
analyzer.  Here a :class:`GpioBus` carries those transitions, timestamped
in simulated seconds, to any subscribed instruments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class GpioEvent:
    """One pin transition."""

    time_s: float
    pin: str
    state: bool


class GpioBus:
    """Named digital lines with transition history and subscribers."""

    def __init__(self):
        self._states: Dict[str, bool] = {}
        self._events: List[GpioEvent] = []
        self._listeners: List[Callable[[GpioEvent], None]] = []
        self._last_time = -float("inf")

    def subscribe(self, listener: Callable[[GpioEvent], None]) -> None:
        self._listeners.append(listener)

    def write(self, pin: str, state: bool, time_s: float) -> None:
        """Drive a pin.  Writes must be time-ordered; no-op writes are
        suppressed (real GPIO only produces edges on change)."""
        if time_s < self._last_time:
            raise ValueError(
                f"GPIO write at t={time_s} precedes previous write at t={self._last_time}"
            )
        self._last_time = time_s
        if self._states.get(pin) == state:
            return
        self._states[pin] = state
        event = GpioEvent(time_s, pin, state)
        self._events.append(event)
        for listener in self._listeners:
            listener(event)

    def read(self, pin: str) -> bool:
        return self._states.get(pin, False)

    @property
    def events(self) -> List[GpioEvent]:
        return list(self._events)

    def events_for(self, pin: str) -> List[GpioEvent]:
        return [e for e in self._events if e.pin == pin]

    def pins(self) -> List[str]:
        return sorted(self._states)
