"""Admission control: bounded inflight work with priority-aware shedding.

The original broker's only overload behavior was to block submitters on
a full queue — fine for library callers, hostile to a network service
(a burst of batch traffic could park every interactive client behind
it, unboundedly).  Each shard now fronts its queue with an
:class:`AdmissionController`:

* at most ``max_inflight`` queries may be admitted-but-unfinished per
  shard;
* ``batch``-priority work is capped at a *fraction* of that bound, so
  background sweeps can never starve interactive asks;
* a rejected submit fails fast with a typed
  :class:`~repro.service.errors.ServiceOverloaded` carrying a
  deterministic ``retry_after`` hint (derived from queue pressure, not
  wall clocks — the no-wall-clock lint owns this module).

Shed decisions never consult the clock or randomness, so a given
admission state always sheds the same queries with the same hints —
which is what lets ``tests/test_service_tiers.py`` assert shed behavior
exactly.
"""

from __future__ import annotations

import threading

from repro.service.errors import ServiceOverloaded

__all__ = ["AdmissionController"]


class AdmissionController:
    """Per-shard inflight bound with a reserved interactive share.

    Args:
        max_inflight: Total admitted-but-unfinished queries allowed.
        batch_fraction: Share of ``max_inflight`` that ``batch``
            priority may occupy (at least 1 slot); the remainder is
            effectively reserved for ``interactive`` traffic.
    """

    def __init__(self, max_inflight: int = 64, batch_fraction: float = 0.5):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        self.max_inflight = max_inflight
        self.batch_limit = max(1, int(max_inflight * batch_fraction))
        self._lock = threading.Lock()
        self._inflight = 0
        self._batch_inflight = 0
        self.admitted = 0
        self.shed = 0

    def try_admit(self, priority: str = "interactive") -> None:
        """Admit one query or shed it with :class:`ServiceOverloaded`.

        The ``retry_after`` hint scales with how far over its limit the
        shard is — deterministic, so identical admission states produce
        identical shed responses.
        """
        with self._lock:
            limit = (
                self.batch_limit if priority == "batch" else self.max_inflight
            )
            occupied = (
                self._batch_inflight if priority == "batch" else self._inflight
            )
            if self._inflight >= self.max_inflight or occupied >= limit:
                self.shed += 1
                retry_after = round(
                    0.05 * (1.0 + self._inflight / self.max_inflight), 3
                )
                raise ServiceOverloaded(
                    f"shard at capacity ({self._inflight}/"
                    f"{self.max_inflight} inflight, priority={priority}); "
                    f"retry after {retry_after}s",
                    retry_after=retry_after,
                )
            self._inflight += 1
            if priority == "batch":
                self._batch_inflight += 1
            self.admitted += 1

    def release(self, priority: str = "interactive") -> None:
        """Return one admitted query's slot (call exactly once per admit)."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            if priority == "batch":
                self._batch_inflight = max(0, self._batch_inflight - 1)

    def stats(self) -> dict:
        """JSON-friendly snapshot of bounds and live occupancy."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "batch_limit": self.batch_limit,
                "inflight": self._inflight,
                "batch_inflight": self._batch_inflight,
                "admitted": self.admitted,
                "shed": self.shed,
            }
