"""The answer-cache tiers: in-memory LRU (L1) and its disk spill (L2).

The service read path is three tiers deep (see ``docs/service.md``):

* **L1** — :class:`ResultCache`, a bounded in-memory LRU of finished
  *answers* (JSON-ready payloads) keyed by content address
  (:func:`repro.service.queries.query_key`).  A repeat query is a
  dictionary move-to-front, never a re-price.
* **L2** — :class:`SpillCache`: answers evicted from L1 spill to disk
  in the trace-cache directory format (one ``<key>.json`` per entry,
  atomic tempfile + ``os.replace`` writes), so a cold L1 still answers
  from a file read instead of a solve.  :class:`TieredResultCache`
  wires L1 eviction → L2 spill and L2 hit → L1 promotion together.
* **L3** — the engine's :class:`~repro.engine.trace_cache.TraceCache`
  of *solve profiles* (the expensive kernel compute); an L1+L2 miss
  that still hits L3 re-prices a cached solve instead of re-solving.

Thread-safe: client threads read stats while dispatcher threads insert
(a shard pool shares one tiered cache across shards), so every access
takes the internal lock.  Payloads are treated as immutable once
inserted — the broker hands the same dict to every waiter, which is
safe precisely because nothing mutates answers.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

#: Bumped when the spill-file envelope changes; mismatched entries are
#: treated as misses, exactly like the trace cache's format version.
SPILL_FORMAT_VERSION = 1


class ResultCache:
    """A bounded LRU mapping query keys to answered payload dicts.

    Args:
        capacity: Maximum number of retained answers; the least recently
            used entry is evicted on overflow.  Must be >= 1.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for ``key`` (refreshed as most recent)."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: str, payload: dict) -> None:
        """Insert ``payload`` under ``key``, evicting the LRU overflow.

        Evicted entries are handed to :meth:`_on_evict` *outside* the
        lock (the hook may do file I/O), which is how the tiered
        subclass spills them to disk.
        """
        evicted = []
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                evicted.append(self._entries.popitem(last=False))
                self.evictions += 1
        for old_key, old_payload in evicted:
            self._on_evict(old_key, old_payload)

    def _on_evict(self, key: str, payload: dict) -> None:
        """Eviction hook; the base cache just forgets the entry."""

    def get_tiered(self, key: str) -> Tuple[Optional[dict], Optional[str]]:
        """Look ``key`` up across tiers: ``(payload, tier)`` or ``(None, None)``.

        The base cache has only one tier, so the tier tag is ``"l1"``
        on a hit.  :class:`TieredResultCache` extends the walk to L2.
        """
        payload = self.get(key)
        return (payload, "l1") if payload is not None else (None, None)

    def __len__(self) -> int:
        """Number of currently cached answers."""
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership without touching recency or hit/miss counts."""
        with self._lock:
            return key in self._entries

    def as_dict(self) -> dict:
        """JSON-friendly stats snapshot (hit rate included)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / total) if total else 0.0,
            }


class SpillCache:
    """The on-disk L2 tier: one ``<key>.json`` file per spilled answer.

    Mirrors the trace-cache directory format — content-address filename,
    versioned JSON envelope, atomic tempfile + ``os.replace`` writes so
    concurrent spills and torn writes can never corrupt an entry.  A
    torn, foreign, or version-mismatched file is simply a miss.

    Args:
        spill_dir: Directory for spilled entries (created on demand).
    """

    def __init__(self, spill_dir):
        self.spill_dir = Path(spill_dir)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def _path(self, key: str) -> Path:
        """The spill file owning ``key``."""
        return self.spill_dir / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The spilled payload for ``key``, or None on any kind of miss."""
        try:
            raw = self._path(key).read_text(encoding="utf-8")
            entry = json.loads(raw)
            if (
                entry.get("spill_version") != SPILL_FORMAT_VERSION
                or entry.get("key") != key
            ):
                raise ValueError("foreign or stale spill entry")
            payload = entry["payload"]
        except (OSError, ValueError, KeyError):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Spill ``payload`` under ``key`` with an atomic replace."""
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "spill_version": SPILL_FORMAT_VERSION,
            "key": key,
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.spill_dir), prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with self._lock:
            self.puts += 1

    def __contains__(self, key: str) -> bool:
        """Membership without touching hit/miss counts."""
        return self._path(key).is_file()

    def __len__(self) -> int:
        """Number of spilled entries on disk."""
        if not self.spill_dir.is_dir():
            return 0
        return len([p for p in self.spill_dir.iterdir()
                    if p.suffix == ".json"])

    def as_dict(self) -> dict:
        """JSON-friendly stats snapshot."""
        with self._lock:
            return {
                "dir": str(self.spill_dir),
                "entries": len(self),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
            }


class TieredResultCache(ResultCache):
    """L1 LRU + L2 disk spill, wired eviction-down / promotion-up.

    Evictions from the bounded in-memory tier spill to ``spill_dir``
    instead of vanishing; an L1 miss re-checks the spill and, on a hit,
    promotes the answer back into L1 (possibly spilling something else
    — the tiers stay complementary).  Shared by every shard of a
    :class:`~repro.service.shard.ShardPool`, so an answer evicted under
    one shard's pressure is still one file read away for all of them.

    Args:
        capacity: L1 entries retained in memory.
        spill_dir: Directory for the L2 spill files.
    """

    def __init__(self, capacity: int = 1024, spill_dir=None):
        super().__init__(capacity)
        if spill_dir is None:
            raise ValueError("TieredResultCache requires a spill_dir")
        self.spill = SpillCache(spill_dir)
        self.l2_promotions = 0

    def _on_evict(self, key: str, payload: dict) -> None:
        """Spill an evicted L1 entry to the L2 directory."""
        self.spill.put(key, payload)

    def get_tiered(self, key: str) -> Tuple[Optional[dict], Optional[str]]:
        """Walk L1 then L2; promote L2 hits back into L1."""
        payload = self.get(key)
        if payload is not None:
            return payload, "l1"
        payload = self.spill.get(key)
        if payload is None:
            return None, None
        self.put(key, payload)
        with self._lock:
            self.l2_promotions += 1
        return payload, "l2"

    def as_dict(self) -> dict:
        """L1 stats plus an ``l2`` section (spill stats + promotions)."""
        stats = super().as_dict()
        l2 = self.spill.as_dict()
        with self._lock:
            l2["promotions"] = self.l2_promotions
        stats["l2"] = l2
        return stats
