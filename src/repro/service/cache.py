"""In-memory LRU cache over answered query payloads.

The service-side tier of the two-tier cache: the engine's trace cache
persists *solve profiles* (the expensive kernel compute) across
processes, while this cache holds finished *answers* (JSON-ready
payloads) within the serving process, keyed by the same content-address
scheme (:func:`repro.service.queries.query_key`).  A repeat query is a
dictionary move-to-front, never a re-price.

Thread-safe: client threads read stats while the dispatcher thread
inserts, so every access takes the internal lock.  Payloads are treated
as immutable once inserted — the broker hands the same dict to every
waiter, which is safe precisely because nothing mutates answers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional


class ResultCache:
    """A bounded LRU mapping query keys to answered payload dicts.

    Args:
        capacity: Maximum number of retained answers; the least recently
            used entry is evicted on overflow.  Must be >= 1.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for ``key`` (refreshed as most recent)."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: str, payload: dict) -> None:
        """Insert ``payload`` under ``key``, evicting the LRU overflow."""
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        """Number of currently cached answers."""
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership without touching recency or hit/miss counts."""
        with self._lock:
            return key in self._entries

    def as_dict(self) -> dict:
        """JSON-friendly stats snapshot (hit rate included)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
