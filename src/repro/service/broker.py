"""The coalescing, single-flight benchmark-query broker.

Concurrency model — one bounded queue, one dispatcher:

* Client threads :meth:`ServiceBroker.submit` tickets onto a bounded
  ``queue.Queue``; a full queue blocks the caller, which **is** the
  backpressure (the broker never buffers unboundedly ahead of the
  engine).
* A single dispatcher thread drains whatever is queued into one *batch*,
  deduplicates it by content-address key (duplicates **coalesce**: they
  wait on the first ticket's answer and count as cache hits), answers
  what it can from the :class:`~repro.service.cache.ResultCache`, and
  solves the rest — every uncached characterize cell in the batch goes
  through **one** engine cell-plan
  (:func:`repro.engine.build_cell_plan`), so N queries against one
  kernel configuration cost one solve.
* Because all solving happens on the dispatcher thread, identical
  queries can never race into duplicate solves — the batch dedup plus
  the serialized dispatch is the single-flight lock.

Determinism: the dispatcher only routes; characterize answers come from
the same planner/pricer as ``run_sweep`` (pricing is per-cell pure, so
batch composition cannot leak between answers), missions and campaigns
run the exact library entry points.  Payloads are therefore
byte-identical to direct runs at any client concurrency — asserted in
``tests/test_service.py``.

This module is a sanctioned wall-clock seam (like the engine executor):
queue-wait and batch latencies are real host time, exported as
``*_wall_s`` metrics which the determinism checks exclude.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.closedloop import make_mission, make_runner
from repro.core.config import HarnessConfig
from repro.core.experiment_io import result_to_dict
from repro.engine import EngineOptions, build_cell_plan, run_plan
from repro.faults import run_campaign
from repro.mcu.arch import get_arch
from repro.obs import get_metrics, get_tracer
from repro.service.cache import ResultCache
from repro.service.queries import (
    SERVICE_FORMAT_VERSION,
    Query,
    mission_record,
    query_key,
    query_kind,
)


class BrokerClosed(RuntimeError):
    """Submission to a broker whose dispatcher has shut down."""


#: Queue sentinel asking the dispatcher to finish and exit.
_CLOSE = object()


@dataclass
class _Ticket:
    """One submitted query awaiting its answer."""

    query: Query
    key: str
    kind: str
    submitted_s: float
    priority: str = "interactive"
    done: threading.Event = field(default_factory=threading.Event)
    payload: Optional[dict] = None
    error: Optional[BaseException] = None
    callbacks: List[Callable[["_Ticket"], None]] = field(default_factory=list)

    def add_done_callback(self, fn: Callable[["_Ticket"], None]) -> None:
        """Run ``fn(ticket)`` once the answer (or error) lands.

        Runs immediately when the ticket is already done; otherwise at
        delivery time on the dispatcher thread.  The asyncio front-end
        and the shard pool's admission release both hang off this hook.
        """
        if self.done.is_set():
            fn(self)
            return
        self.callbacks.append(fn)
        if self.done.is_set():
            # Delivery raced in between the check and the append; claim
            # the callback back unless the dispatcher already drained it.
            try:
                self.callbacks.remove(fn)
            except ValueError:
                return
            fn(self)

    def finish(
        self,
        payload: Optional[dict] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Deliver the answer: set state, wake waiters, drain callbacks."""
        self.payload = payload
        self.error = error
        self.done.set()
        while self.callbacks:
            self.callbacks.pop(0)(self)


class ServiceBroker:
    """Accepts queries, coalesces duplicates, answers from cache or engine.

    Args:
        config: Harness configuration every characterize answer is priced
            under (and part of every query's content address).
        overrides: Kernel factory overrides, same schema as
            :class:`~repro.core.experiment.SweepSpec.overrides`.
        engine_options: Engine execution options; the broker pins one
            shared trace cache onto them so successive batches reuse
            solve profiles.
        capacity: Answer-cache entries retained (LRU beyond that).
        max_pending: Bound of the submission queue — the backpressure
            knob; submitters block while it is full.
        campaign_jobs: Process-pool width handed to campaign queries.
        cache: Answer cache to use instead of building a private
            :class:`ResultCache` — a :class:`ShardPool` passes one
            shared (possibly tiered) cache to every shard's broker.
        name: Dispatcher-thread suffix, for debuggability in pools.
    """

    def __init__(
        self,
        config: Optional[HarnessConfig] = None,
        overrides: Optional[dict] = None,
        engine_options: Optional[EngineOptions] = None,
        capacity: int = 1024,
        max_pending: int = 256,
        campaign_jobs: int = 1,
        cache: Optional[ResultCache] = None,
        name: str = "",
    ):
        self.config = (config if config is not None else HarnessConfig()).validated()
        self.overrides = dict(overrides or {})
        options = engine_options if engine_options is not None else EngineOptions()
        if options.trace_cache is None:
            options = replace(options, trace_cache=options.make_cache())
        self.options = options
        self.campaign_jobs = campaign_jobs
        self.cache = cache if cache is not None else ResultCache(capacity)
        self._pending: "queue.Queue" = queue.Queue(maxsize=max_pending)
        self._closed = threading.Event()
        self._batches = 0
        self._thread = threading.Thread(
            target=self._serve,
            name=f"repro-service-dispatcher{name}",
            daemon=True,
        )
        self._thread.start()

    # -- client surface -------------------------------------------------------

    def submit(self, query: Query) -> _Ticket:
        """Validate and enqueue one query; returns its ticket.

        Blocks while the submission queue is full (backpressure).
        Validation errors (unknown kernel/arch/mission/fault) raise here,
        in the submitting thread, before anything is queued.
        """
        if self._closed.is_set():
            raise BrokerClosed("broker is closed")
        query = query.validated()
        return self.submit_prevalidated(
            query, query_key(query, self.config), query_kind(query)
        )

    def submit_prevalidated(
        self, query: Query, key: str, kind: str
    ) -> _Ticket:
        """Enqueue a query whose validation and key are already done.

        The shard-pool path: the pool validates once, computes the
        content address once (it needs the key to route), admits the
        query, then hands it straight to the owning shard's queue.
        """
        if self._closed.is_set():
            raise BrokerClosed("broker is closed")
        ticket = _Ticket(
            query=query,
            key=key,
            kind=kind,
            submitted_s=perf_counter(),
            priority=query.options.priority,
        )
        self._pending.put(ticket)
        return ticket

    def result(self, ticket: _Ticket, timeout: Optional[float] = None) -> dict:
        """Wait for a ticket's answer; re-raises its solve error if any."""
        if not ticket.done.wait(timeout):
            raise TimeoutError(
                f"no answer for {ticket.kind} query within {timeout}s"
            )
        if ticket.error is not None:
            raise ticket.error
        return ticket.payload

    def ask(self, query: Query, timeout: Optional[float] = None) -> dict:
        """Submit one query and block for its answer.

        ``timeout`` falls back to the query's own
        :attr:`~repro.service.queries.QueryOptions.timeout` when omitted
        — the redesigned options-first spelling of the old keyword.
        """
        if timeout is None:
            timeout = query.options.timeout
        return self.result(self.submit(query), timeout=timeout)

    def ask_many(
        self, queries, timeout: Optional[float] = None
    ) -> List[dict]:
        """Submit a burst of queries, then collect answers in order.

        Submitting everything before waiting lets the dispatcher see the
        whole burst as few batches, maximizing coalescing.
        """
        tickets = [self.submit(q) for q in queries]
        return [self.result(t, timeout=timeout) for t in tickets]

    def stats(self) -> dict:
        """JSON-friendly service counters (cache, batches, queue depth)."""
        return {
            "cache": self.cache.as_dict(),
            "batches": self._batches,
            "pending": self._pending.qsize(),
            "closed": self._closed.is_set(),
        }

    def close(self) -> None:
        """Stop accepting queries, let the dispatcher finish, and join it."""
        if not self._closed.is_set():
            self._closed.set()
            self._pending.put(_CLOSE)
        self._thread.join()

    def __enter__(self) -> "ServiceBroker":
        """Context-manager entry: the broker itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the broker."""
        self.close()

    # -- dispatcher -----------------------------------------------------------

    def _serve(self) -> None:
        """Dispatcher loop: drain a batch, run it, repeat until closed."""
        while True:
            item = self._pending.get()
            closing = item is _CLOSE
            batch: List[_Ticket] = [] if closing else [item]
            while True:
                try:
                    nxt = self._pending.get_nowait()
                except queue.Empty:
                    break
                if nxt is _CLOSE:
                    closing = True
                    continue
                batch.append(nxt)
            if batch:
                try:
                    self._run_batch(batch)
                except BaseException as exc:  # keep serving after a bad batch
                    for ticket in batch:
                        if not ticket.done.is_set():
                            ticket.finish(error=exc)
            if closing:
                self._fail_remaining()
                return

    def _fail_remaining(self) -> None:
        """Fail any ticket that raced in behind the close sentinel."""
        while True:
            try:
                ticket = self._pending.get_nowait()
            except queue.Empty:
                return
            if ticket is _CLOSE:
                continue
            ticket.finish(error=BrokerClosed("broker is closed"))

    def _run_batch(self, batch: List[_Ticket]) -> None:
        """Coalesce one drained batch, solve its distinct misses, deliver."""
        metrics = get_metrics()
        tracer = get_tracer()
        self._batches += 1
        dispatched_s = perf_counter()

        # Interactive work goes first within the batch (stable sort:
        # arrival order is preserved within each priority class).
        # Answers are per-cell pure, so ordering cannot change bytes —
        # only who waits behind whom.
        batch = sorted(
            batch, key=lambda t: 0 if t.priority == "interactive" else 1
        )

        # Coalesce: group tickets by content address, preserving batch
        # order; answer distinct keys from the cache tiers where the
        # key's cache policy allows a read.
        waiters: Dict[str, List[_Ticket]] = {}
        to_solve: List[_Ticket] = []
        answered: Dict[str, dict] = {}
        failed: Dict[str, BaseException] = {}
        hits = misses = coalesced = l1_hits = l2_hits = 0
        for ticket in batch:
            if metrics.enabled:
                metrics.observe(
                    "service.queue_wall_s", dispatched_s - ticket.submitted_s
                )
            if ticket.key in waiters:
                waiters[ticket.key].append(ticket)
                coalesced += 1
                hits += 1
                continue
            waiters[ticket.key] = [ticket]
            if ticket.query.options.cache == "use":
                cached, tier = self.cache.get_tiered(ticket.key)
            else:  # bypass / refresh skip the answer-cache read
                cached, tier = None, None
            if cached is not None:
                answered[ticket.key] = cached
                hits += 1
                if tier == "l1":
                    l1_hits += 1
                elif tier == "l2":
                    l2_hits += 1
            else:
                to_solve.append(ticket)
                misses += 1

        # L3 accounting: how many solve profiles the engine's trace
        # cache served during this batch's solving.
        trace_stats = getattr(self.options.trace_cache, "stats", None)
        l3_before = trace_stats.hits if trace_stats is not None else 0

        with tracer.span(
            "service.batch", cat="service", queries=len(batch),
            distinct=len(waiters), solves=len(to_solve),
        ):
            characterize = [t for t in to_solve if t.kind == "characterize"]
            if characterize:
                self._solve_characterize(characterize, answered, failed)
            for ticket in to_solve:
                if ticket.kind == "mission":
                    self._solve_one(ticket, answered, failed,
                                    self._answer_mission)
                elif ticket.kind == "campaign":
                    self._solve_one(ticket, answered, failed,
                                    self._answer_campaign)

        # Cache fresh answers (unless the asking ticket said bypass) and
        # deliver to every waiter, in batch order.
        for ticket in to_solve:
            payload = answered.get(ticket.key)
            if payload is not None and ticket.query.options.cache != "bypass":
                self.cache.put(ticket.key, payload)
        for key, tickets in waiters.items():
            payload = answered.get(key)
            error = failed.get(key)
            if payload is None and error is None:
                error = RuntimeError(f"query {key} produced no answer")
            for ticket in tickets:
                ticket.finish(payload=payload, error=error)

        if metrics.enabled:
            l3_after = trace_stats.hits if trace_stats is not None else 0
            metrics.inc("service.queries", len(batch))
            metrics.inc("service.hits", hits)
            metrics.inc("service.misses", misses)
            metrics.inc("service.l1_hits", l1_hits)
            metrics.inc("service.l2_hits", l2_hits)
            metrics.inc("service.l3_hits", l3_after - l3_before)
            metrics.inc("service.coalesced", coalesced)
            metrics.inc("service.batches")
            metrics.inc("service.errors", len(failed))
            metrics.set_gauge("service.queue_depth", self._pending.qsize())
            metrics.observe(
                "service.batch_wall_s", perf_counter() - dispatched_s
            )

    # -- solvers --------------------------------------------------------------

    def _solve_characterize(
        self,
        tickets: List[_Ticket],
        answered: Dict[str, dict],
        failed: Dict[str, BaseException],
    ) -> None:
        """Answer every uncached characterize cell via ONE engine plan."""
        requests = [
            (t.query.kernel, get_arch(t.query.arch), t.query.cache_config())
            for t in tickets
        ]
        try:
            plan = build_cell_plan(
                requests, config=self.config, overrides=self.overrides
            )
            results = run_plan(plan, options=self.options)
        except Exception as exc:
            for ticket in tickets:
                failed[ticket.key] = exc
            return
        for ticket in tickets:
            q = ticket.query
            try:
                result = results.lookup(q.kernel, q.arch, q.cache)
            except Exception as exc:
                failed[ticket.key] = exc
                continue
            answered[ticket.key] = {
                "service_version": SERVICE_FORMAT_VERSION,
                "kind": "characterize",
                "key": ticket.key,
                "kernel": q.kernel,
                "arch": q.arch,
                "cache": q.cache,
                "result": result_to_dict(result),
            }

    def _solve_one(
        self,
        ticket: _Ticket,
        answered: Dict[str, dict],
        failed: Dict[str, BaseException],
        answer_fn: Callable[[_Ticket], dict],
    ) -> None:
        """Run one non-batchable query, filing its answer or error by key."""
        try:
            answered[ticket.key] = answer_fn(ticket)
        except Exception as exc:
            failed[ticket.key] = exc

    def _answer_mission(self, ticket: _Ticket) -> dict:
        """Fly one fault-free mission and record its task-level metrics."""
        q = ticket.query
        mission = make_mission(q.mission)
        runner = make_runner(q.mission, q.arch)
        result = runner.run(mission)
        return {
            "service_version": SERVICE_FORMAT_VERSION,
            "kind": "mission",
            "key": ticket.key,
            "mission": q.mission,
            "arch": q.arch,
            "result": mission_record(result),
        }

    def _answer_campaign(self, ticket: _Ticket) -> dict:
        """Score one fault campaign through the standard campaign runner."""
        campaign = run_campaign(
            ticket.query.spec, jobs=self.campaign_jobs, options=self.options
        )
        return {
            "service_version": SERVICE_FORMAT_VERSION,
            "kind": "campaign",
            "key": ticket.key,
            "fault": campaign.fault,
            "result": {
                "fault": campaign.fault,
                "seed": campaign.seed,
                "severities": list(campaign.severities),
                "kernel_grid": campaign.kernel_grid,
                "mission_grid": campaign.mission_grid,
            },
        }
