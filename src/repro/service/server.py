"""JSONL-over-TCP front-end for the query broker, plus its client.

Wire protocol — one JSON object per line, both directions:

* request: ``{"op": "characterize", "kernel": "mahony", "arch": "m33"}``
  (any :func:`repro.service.queries.parse_request` op, plus ``ping`` and
  ``stats``), optionally wrapped in the v2 envelope — ``"v": 2`` plus an
  ``"options"`` object (priority / timeout / cache policy).
* response: ``{"ok": true, ...answer payload...}`` or, on failure,
  ``{"ok": false, "error": "<message>"}`` for v1 requests and
  ``{"v": 2, "ok": false, "error": {"code", "message", "retry_after",
  "type"}}`` for v2 (see :mod:`repro.service.errors`).

The server is an :class:`~repro.service.aio.AsyncServiceServer` hosted
in one background thread: connections are event-loop coroutines instead
of one blocking thread each, while coalescing, sharding, admission, and
backpressure all live in the broker / shard pool behind it — many
simultaneous connections asking the same question still cost one solve.

``repro serve`` runs :class:`ServiceServer`; ``repro query`` uses
:class:`ServiceClient` (or any tool that can speak line-delimited JSON
over a socket, e.g. ``nc``).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from typing import Optional, Tuple, Union

from repro.service.aio import AsyncServiceServer, shape_error, shape_ok
from repro.service.errors import (
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    error_from_record,
)
from repro.service.queries import (
    Query,
    QueryOptions,
    WIRE_VERSION,
    parse_request,
    request_of,
)

#: Default TCP port for ``repro serve`` / ``repro query``.
DEFAULT_PORT = 7453


class ServiceServer:
    """Serve a broker or shard pool over line-delimited JSON on TCP.

    A synchronous shell around :class:`AsyncServiceServer`: the
    constructor binds the socket eagerly (so :attr:`address` is valid
    immediately), :meth:`start` runs the event loop in a background
    thread, :meth:`stop` shuts it down and joins.  The ``repro serve``
    command and the context-manager surface are unchanged from the
    thread-per-connection original.

    Args:
        broker: The answering :class:`~repro.service.broker.ServiceBroker`
            or :class:`~repro.service.shard.ShardPool`.
        host: Bind address; keep the localhost default unless you mean
            to expose the service.
        port: Bind port; 0 picks a free ephemeral port (read it back
            from :attr:`address`).
    """

    def __init__(self, broker, host: str = "127.0.0.1", port: int = 0):
        self.broker = broker
        self._aio = AsyncServiceServer(broker, host=host, port=port)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound (host, port) pair."""
        return self._aio.address

    def answer_line(self, line: str) -> dict:
        """Answer one request line synchronously (no event loop needed).

        The library-embedding seam: same parsing, versioning, and error
        shaping as the served path, but blocking — callers that hold a
        broker directly can answer wire lines without starting a server.
        """
        version = 1
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            raw_version = request.get("v", 1)
            version = raw_version if isinstance(raw_version, int) else 1
            op = request.get("op")
            if op == "ping":
                return shape_ok(version, {"pong": True})
            if op == "stats":
                return shape_ok(version, {"stats": self.broker.stats()})
            payload = self.broker.ask(parse_request(request))
            return shape_ok(version, payload)
        except Exception as exc:
            return shape_error(version, exc)

    def start(self) -> Tuple[str, int]:
        """Serve in a background thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-server", daemon=True
        )
        self._thread.start()
        return self.address

    def _run_loop(self) -> None:
        """Thread body: run the asyncio server until stop is requested."""
        asyncio.run(self._aio.serve())

    def stop(self) -> None:
        """Stop serving and join the server thread (broker left running).

        Safe to call before :meth:`start` (just closes the socket) and
        robust to the start/stop race: keeps requesting shutdown until
        the loop thread actually exits.
        """
        if self._thread is None:
            self._aio.close_socket()
            return
        while self._thread.is_alive():
            self._aio.request_stop()
            self._thread.join(0.05)
        self._thread = None

    def __enter__(self) -> "ServiceServer":
        """Context-manager entry: start serving in the background."""
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: stop the server."""
        self.stop()


class ServiceClient:
    """A persistent JSONL connection to a :class:`ServiceServer`.

    Args:
        host: Server address.
        port: Server port.
        timeout: Default socket timeout in seconds for connect and
            replies; :meth:`query` and :meth:`ask` can override it
            per call, so a dead server raises instead of hanging a
            blocking ``recv`` forever.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: float = 60.0):
        self._timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("r", encoding="utf-8")

    def query(self, request: dict, timeout: Optional[float] = None) -> dict:
        """Send one raw request dict, return the decoded response dict.

        ``timeout`` overrides the connection default for this exchange
        only; expiry raises :class:`ServiceTimeout` (the connection is
        left in an indeterminate mid-reply state — reconnect after).
        """
        effective = self._timeout if timeout is None else timeout
        self._sock.settimeout(effective)
        try:
            self._sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            line = self._rfile.readline()
        except socket.timeout:
            raise ServiceTimeout(
                f"no response within {effective}s"
            ) from None
        finally:
            self._sock.settimeout(self._timeout)
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def ask(
        self,
        request: Union[dict, Query],
        options: Optional[QueryOptions] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        """Send one query in the v2 envelope; raise typed errors.

        Accepts a raw request dict or a query dataclass.  ``options``
        (when given) ride in the envelope's ``"options"`` object; the
        socket deadline defaults to ``options.timeout``.  Failures
        re-raise the server's typed class
        (:func:`repro.service.errors.error_from_record`) instead of
        handing back an ``ok: false`` dict.
        """
        wire = dict(request) if isinstance(request, dict) else request_of(request)
        wire["v"] = WIRE_VERSION
        if options is not None:
            merged = dict(wire.get("options") or {})
            merged.update(options.validated().as_wire())
            if merged:
                wire["options"] = merged
        if timeout is None and options is not None:
            timeout = options.timeout
        response = self.query(wire, timeout=timeout)
        if response.get("ok"):
            return response
        error = response.get("error")
        if isinstance(error, dict):
            raise error_from_record(error)
        raise ServiceError(str(error))

    def ask_with_retry(
        self,
        request: Union[dict, Query],
        options: Optional[QueryOptions] = None,
        retries: int = 3,
        backoff: float = 0.05,
        timeout: Optional[float] = None,
    ) -> dict:
        """:meth:`ask`, retrying shed queries with exponential backoff.

        Only :class:`ServiceOverloaded` is retried — it is the one
        typed error where waiting helps.  Each attempt sleeps the
        server's ``retry_after`` hint when present, else
        ``backoff * 2**attempt``.  The final attempt's error
        propagates.
        """
        attempt = 0
        while True:
            try:
                return self.ask(request, options=options, timeout=timeout)
            except ServiceOverloaded as exc:
                if attempt >= retries:
                    raise
                delay = exc.retry_after
                if delay is None:
                    delay = backoff * (2 ** attempt)
                time.sleep(delay)
                attempt += 1

    def ping(self) -> bool:
        """True when the server answers a ping."""
        return bool(self.query({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        """The server-side broker's counters."""
        return self.query({"op": "stats"})["stats"]

    def close(self) -> None:
        """Close the connection."""
        self._rfile.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the connection."""
        self.close()
