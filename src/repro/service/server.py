"""JSONL-over-TCP front-end for the query broker, plus its client.

Wire protocol — one JSON object per line, both directions:

* request: ``{"op": "characterize", "kernel": "mahony", "arch": "m33"}``
  (any :func:`repro.service.queries.parse_request` op, plus ``ping`` and
  ``stats``).
* response: ``{"ok": true, ...answer payload...}`` or
  ``{"ok": false, "error": "<message>"}``.

The server is a ``ThreadingTCPServer`` bound to localhost by default:
each connection gets a handler thread that parses lines and blocks on
:meth:`~repro.service.broker.ServiceBroker.ask` — so concurrency,
coalescing, and backpressure all live in the broker, and many
simultaneous connections asking the same question still cost one solve.

``repro serve`` runs :class:`ServiceServer`; ``repro query`` uses
:class:`ServiceClient` (or any tool that can speak line-delimited JSON
over a socket, e.g. ``nc``).
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Optional, Tuple

from repro.service.broker import ServiceBroker
from repro.service.queries import parse_request

#: Default TCP port for ``repro serve`` / ``repro query``.
DEFAULT_PORT = 7453


class _QueryHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            response = self.server.answer_line(line)
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()


class ServiceServer(socketserver.ThreadingTCPServer):
    """Serve one broker over line-delimited JSON on a local TCP socket.

    Args:
        broker: The answering :class:`ServiceBroker`.
        host: Bind address; keep the localhost default unless you mean
            to expose the service.
        port: Bind port; 0 picks a free ephemeral port (read it back
            from :attr:`address`).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, broker: ServiceBroker, host: str = "127.0.0.1",
                 port: int = 0):
        self.broker = broker
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _QueryHandler)

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound (host, port) pair."""
        return self.server_address[0], self.server_address[1]

    def answer_line(self, line: str) -> dict:
        """Answer one request line; errors become ``ok: false`` responses."""
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                return {"ok": True, "stats": self.broker.stats()}
            payload = self.broker.ask(parse_request(request))
            return {"ok": True, **payload}
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def start(self) -> Tuple[str, int]:
        """Serve in a background thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-service-server", daemon=True
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Stop serving and join the server thread (broker left running)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        """Context-manager entry: start serving in the background."""
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: stop the server."""
        self.stop()


class ServiceClient:
    """A persistent JSONL connection to a :class:`ServiceServer`.

    Args:
        host: Server address.
        port: Server port.
        timeout: Socket timeout in seconds for connect and replies.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("r", encoding="utf-8")

    def query(self, request: dict) -> dict:
        """Send one request dict, return the decoded response dict."""
        self._sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def ping(self) -> bool:
        """True when the server answers a ping."""
        return bool(self.query({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        """The server-side broker's counters."""
        return self.query({"op": "stats"})["stats"]

    def close(self) -> None:
        """Close the connection."""
        self._rfile.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the connection."""
        self.close()
