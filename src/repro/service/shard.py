"""The shard pool: N single-flight brokers partitioned by content address.

One dispatcher thread was the scale ceiling of the original service —
every query, cached or not, serialized through a single loop.  The pool
keeps the broker exactly as it is and simply runs ``n_shards`` of them,
routing each query to the shard that owns its sha256 content address:

    ``shard = int(key[:8], 16) % n_shards``  (:func:`shard_of`)

Because the key → shard mapping is deterministic, identical queries
always land on the same shard, so the per-broker batch-dedup remains a
global single-flight lock: N identical queries still cost one solve at
any shard count.  Distinct queries on different shards now solve
concurrently.

Shared tiers, private queues:

* All shards share **one** answer cache (L1, optionally tiered to an L2
  spill directory) and **one** engine trace cache (L3) — an answer
  computed by any shard is a hit for every shard.
* Each shard has its own bounded queue fronted by an
  :class:`~repro.service.admission.AdmissionController` — overload on
  one shard sheds with a typed
  :class:`~repro.service.errors.ServiceOverloaded` instead of blocking,
  and cannot stall the others.

Determinism contract unchanged: answers are byte-identical to direct
runs at any shard count, concurrency, and spill state (asserted in
``tests/test_service_tiers.py``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.core.config import HarnessConfig
from repro.engine import EngineOptions
from repro.obs import get_metrics
from repro.service.admission import AdmissionController
from repro.service.broker import BrokerClosed, ServiceBroker, _Ticket
from repro.service.cache import ResultCache, TieredResultCache
from repro.service.errors import (
    QueryValidationError,
    ShardUnavailable,
)
from repro.service.queries import Query, query_key, query_kind

__all__ = ["ShardPool", "shard_of"]


def shard_of(key: str, n_shards: int) -> int:
    """The shard index owning content address ``key``.

    The leading 8 hex digits of the sha256 content address, modulo the
    shard count — deterministic, uniform, and stable across processes,
    so every client and every restart routes one question to one shard.
    """
    return int(key[:8], 16) % n_shards


class ShardPool:
    """A pool of brokers behind one submit surface, routed by key.

    Drop-in for :class:`ServiceBroker` where it matters (``ask`` /
    ``ask_many`` / ``stats`` / ``close`` / context manager), plus
    admission control and the shared tiered cache.

    Args:
        config: Harness configuration, shared by every shard (part of
            every content address, so it must be uniform).
        overrides: Kernel factory overrides, shared by every shard.
        engine_options: Engine options; the pool pins one shared trace
            cache (L3) onto them so all shards reuse solve profiles.
        n_shards: Broker count; 1 reproduces the original topology.
        capacity: Shared L1 answer-cache entries.
        spill_dir: L2 spill directory; None disables the disk tier.
        max_inflight: Per-shard admitted-but-unfinished bound; beyond
            it, submits shed with ``ServiceOverloaded``.
        campaign_jobs: Process-pool width handed to campaign queries.
    """

    def __init__(
        self,
        config: Optional[HarnessConfig] = None,
        overrides: Optional[dict] = None,
        engine_options: Optional[EngineOptions] = None,
        n_shards: int = 1,
        capacity: int = 1024,
        spill_dir=None,
        max_inflight: int = 64,
        campaign_jobs: int = 1,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.config = (
            config if config is not None else HarnessConfig()
        ).validated()
        if spill_dir is not None:
            self.cache: ResultCache = TieredResultCache(
                capacity, spill_dir=spill_dir
            )
        else:
            self.cache = ResultCache(capacity)
        # One shared trace cache: pin it before fanning out so every
        # shard's broker sees the same L3.
        options = (
            engine_options if engine_options is not None else EngineOptions()
        )
        if options.trace_cache is None:
            options = replace(options, trace_cache=options.make_cache())
        self._admission = [
            AdmissionController(max_inflight=max_inflight)
            for _ in range(n_shards)
        ]
        self._shards: List[ServiceBroker] = [
            ServiceBroker(
                config=self.config,
                overrides=overrides,
                engine_options=options,
                # The queue never blocks: admission bounds inflight work
                # below the queue capacity, so a full queue is a bug,
                # not backpressure.
                max_pending=max(max_inflight * 2, 8),
                campaign_jobs=campaign_jobs,
                cache=self.cache,
                name=f"-shard{index}",
            )
            for index in range(n_shards)
        ]
        self._closed = False

    # -- submit path ----------------------------------------------------------

    def submit(self, query: Query) -> _Ticket:
        """Validate, route by content address, admit, and enqueue.

        Raises :class:`QueryValidationError` on a bad query,
        :class:`~repro.service.errors.ServiceOverloaded` when the owning
        shard is at capacity, and :class:`ShardUnavailable` when it has
        shut down.
        """
        try:
            query = query.validated()
        except QueryValidationError:
            raise
        except (KeyError, ValueError, TypeError) as exc:
            # The query types raise plain KeyError/ValueError; lift them
            # into the typed taxonomy, keeping the actionable message.
            if isinstance(exc, KeyError) and len(exc.args) == 1:
                message = str(exc.args[0])
            else:
                message = str(exc)
            raise QueryValidationError(message) from exc
        key = query_key(query, self.config)
        kind = query_kind(query)
        index = shard_of(key, self.n_shards)
        broker = self._shards[index]
        if self._closed or broker._closed.is_set():
            raise ShardUnavailable(
                f"shard {index}/{self.n_shards} for key {key} is closed"
            )
        admission = self._admission[index]
        priority = query.options.priority
        try:
            admission.try_admit(priority)
        except Exception:
            metrics = get_metrics()
            if metrics.enabled:
                metrics.inc("service.shed")
            raise
        try:
            ticket = broker.submit_prevalidated(query, key, kind)
        except BrokerClosed as exc:
            admission.release(priority)
            raise ShardUnavailable(
                f"shard {index}/{self.n_shards} for key {key} is closed"
            ) from exc
        except Exception:
            admission.release(priority)
            raise
        ticket.add_done_callback(
            lambda _ticket: admission.release(priority)
        )
        return ticket

    def result(self, ticket: _Ticket, timeout: Optional[float] = None) -> dict:
        """Wait for a ticket's answer; re-raises its solve error if any."""
        index = shard_of(ticket.key, self.n_shards)
        return self._shards[index].result(ticket, timeout=timeout)

    def ask(self, query: Query, timeout: Optional[float] = None) -> dict:
        """Submit one query and block for its answer.

        Like :meth:`ServiceBroker.ask`, ``timeout`` falls back to the
        query's own options when omitted.
        """
        if timeout is None:
            timeout = query.options.timeout
        return self.result(self.submit(query), timeout=timeout)

    def ask_many(self, queries, timeout: Optional[float] = None) -> List[dict]:
        """Submit a burst, then collect answers in submission order.

        Submitting everything up front lets every shard see its slice
        of the burst as few batches, maximizing coalescing per shard.
        """
        tickets = [self.submit(q) for q in queries]
        return [self.result(t, timeout=timeout) for t in tickets]

    # -- introspection / lifecycle -------------------------------------------

    def stats(self) -> dict:
        """JSON-friendly pool counters, shaped like broker stats.

        The broker-compatible keys (``cache`` / ``batches`` /
        ``pending`` / ``closed``) aggregate across shards so existing
        consumers (CLI ``stats`` op, CI smoke asserts) keep working; the
        ``shards`` list breaks the same numbers out per shard.
        """
        shard_stats = []
        for index, broker in enumerate(self._shards):
            entry = broker.stats()
            entry.pop("cache", None)  # shared; reported once at top level
            entry["shard"] = index
            entry["admission"] = self._admission[index].stats()
            shard_stats.append(entry)
        return {
            "cache": self.cache.as_dict(),
            "batches": sum(s["batches"] for s in shard_stats),
            "pending": sum(s["pending"] for s in shard_stats),
            "closed": self._closed,
            "n_shards": self.n_shards,
            "shed": sum(s["admission"]["shed"] for s in shard_stats),
            "shards": shard_stats,
        }

    def close(self) -> None:
        """Close every shard and stop accepting queries."""
        self._closed = True
        for broker in self._shards:
            broker.close()

    def __enter__(self) -> "ShardPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close every shard."""
        self.close()
