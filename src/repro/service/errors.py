"""Typed error taxonomy for the query service and its wire protocol.

The original broker surfaced every failure as whatever exception the
engine happened to raise, and the server flattened them all into one
``"error": "<TypeName>: <message>"`` string.  That works for a human at
a terminal but not for a client that must distinguish "your query is
malformed, don't retry" from "the shard queue is full, retry in 50 ms".

This module defines the service's error vocabulary:

* :class:`ServiceError` — base class; every subclass carries a stable
  machine-readable ``code``.
* :class:`QueryValidationError` — the query itself is wrong (unknown
  kernel/arch/mission/fault/cache label, bad options).  Not retryable.
* :class:`ServiceOverloaded` — admission control shed the query; carries
  ``retry_after`` seconds.  Retryable after backing off.
* :class:`ShardUnavailable` — the shard that owns the query's content
  address is closed or dead.  Retryable once the pool is rebuilt.
* :class:`ServiceTimeout` — the client-side deadline for an answer
  passed.  The solve may still complete server-side and land in cache.

:func:`error_record` / :func:`error_from_record` translate between
exceptions and the structured JSONL error records of wire envelope v2
(``{"code": ..., "message": ..., "retry_after": ...}``), so a
:class:`~repro.service.server.ServiceClient` re-raises the *typed*
class, not a bare ``RuntimeError`` (see ``docs/service.md``).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "QueryValidationError",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ShardUnavailable",
    "error_from_record",
    "error_record",
]


class ServiceError(RuntimeError):
    """Base class for every typed service failure.

    Attributes:
        code: Stable machine-readable error code serialized on the wire.
        retry_after: Suggested client backoff in seconds, or None when
            retrying cannot help (validation errors) or no hint exists.
    """

    code = "internal"

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class QueryValidationError(ServiceError, ValueError):
    """The query names something unregistered or carries bad options.

    Subclasses ``ValueError`` too, so legacy ``except (KeyError,
    ValueError)`` call sites written against the pre-taxonomy broker
    keep catching validation failures.
    """

    code = "query-validation"


class ServiceOverloaded(ServiceError):
    """Admission control shed the query instead of queueing it.

    The replacement for unbounded blocking: when a shard's inflight
    bound is reached, the submit fails fast with this error and a
    deterministic ``retry_after`` hint instead of parking the caller
    on a full queue forever.
    """

    code = "service-overloaded"

    def __init__(self, message: str, retry_after: float = 0.05):
        super().__init__(message, retry_after=retry_after)


class ShardUnavailable(ServiceError):
    """The shard owning the query's content address cannot answer.

    Raised when a pool routes to a broker whose dispatcher has shut
    down — distinct from :class:`ServiceOverloaded` because waiting
    does not help until the pool is rebuilt.
    """

    code = "shard-unavailable"


class ServiceTimeout(ServiceError, TimeoutError):
    """No answer arrived within the caller's deadline.

    Subclasses ``TimeoutError`` so pre-taxonomy ``except TimeoutError``
    call sites keep working.  The server may still finish the solve and
    cache it; a retry typically hits L1.
    """

    code = "timeout"


#: Wire code -> exception class, for :func:`error_from_record`.
_CLASS_OF_CODE = {
    cls.code: cls
    for cls in (
        ServiceError,
        QueryValidationError,
        ServiceOverloaded,
        ShardUnavailable,
        ServiceTimeout,
    )
}


def error_record(exc: BaseException) -> dict:
    """The structured wire record (envelope v2) describing ``exc``.

    Typed :class:`ServiceError` subclasses serialize their own code and
    retry hint.  Untyped exceptions are classified conservatively:
    ``KeyError`` / ``ValueError`` / ``TypeError`` — the validation
    errors the query types raise — map to ``query-validation``;
    ``TimeoutError`` maps to ``timeout``; everything else is
    ``internal``.  ``type`` records the original exception class name
    for debugging (clients should branch on ``code``, never ``type``).
    """
    if isinstance(exc, ServiceError):
        code = exc.code
        retry_after = exc.retry_after
    elif isinstance(exc, (KeyError, ValueError, TypeError)):
        code = QueryValidationError.code
        retry_after = None
    elif isinstance(exc, TimeoutError):
        code = ServiceTimeout.code
        retry_after = None
    else:
        code = ServiceError.code
        retry_after = None
    # KeyError's str() quotes its message; unwrap a lone string arg so
    # wire messages read cleanly.
    if isinstance(exc, KeyError) and len(exc.args) == 1:
        message = str(exc.args[0])
    else:
        message = str(exc)
    return {
        "code": code,
        "message": message,
        "retry_after": retry_after,
        "type": type(exc).__name__,
    }


def error_from_record(record: dict) -> ServiceError:
    """Rebuild the typed exception a wire error record describes.

    Unknown codes degrade to the :class:`ServiceError` base (a newer
    server may grow codes an older client has never heard of); the code
    and message always survive the round trip.
    """
    code = record.get("code", ServiceError.code)
    message = str(record.get("message", ""))
    retry_after = record.get("retry_after")
    cls = _CLASS_OF_CODE.get(code, ServiceError)
    if cls is ServiceOverloaded:
        return cls(message, retry_after=float(retry_after or 0.05))
    exc = cls(message)
    exc.retry_after = retry_after
    if cls is ServiceError and code != ServiceError.code:
        exc.code = code  # preserve the unknown code for forwarding
    return exc
