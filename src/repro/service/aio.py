"""The asyncio JSONL front-end over a broker or shard pool.

The original server spent one OS thread per connection just to block on
``broker.ask``.  This front-end replaces that with a single event loop:
connections are coroutines, a query's wait for its ticket is an awaited
future bridged from the dispatcher thread's done-callback, and slow
clients cost a task, not a thread.  Framing is unchanged — one JSON
object per line in both directions — so every existing client keeps
working.

Envelope versioning (see ``docs/service.md``):

* **v1** (no ``"v"`` field): responses keep the legacy shape —
  ``{"ok": true, ...payload...}`` on success and
  ``{"ok": false, "error": "<TypeName>: <message>"}`` with a *string*
  error on failure, byte-compatible with the pre-asyncio server.
* **v2** (``"v": 2``): responses echo ``"v": 2`` and failures carry a
  structured record — ``{"code", "message", "retry_after", "type"}``
  (:func:`repro.service.errors.error_record`) — which
  :class:`~repro.service.server.ServiceClient` re-raises as the typed
  exception class.

:class:`~repro.service.server.ServiceServer` hosts this loop in a
background thread, so the synchronous ``start()``/``stop()`` surface
(and ``repro serve``) is unchanged.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Optional, Tuple

from repro.service.errors import ServiceTimeout, error_record
from repro.service.queries import WIRE_VERSION, parse_request

__all__ = ["AsyncServiceServer", "shape_error", "shape_ok"]


def shape_ok(version: int, payload: dict) -> dict:
    """A success response in the request's envelope version."""
    if version >= WIRE_VERSION:
        return {"v": WIRE_VERSION, "ok": True, **payload}
    return {"ok": True, **payload}


def shape_error(version: int, exc: BaseException) -> dict:
    """A failure response in the request's envelope version.

    v1 keeps the legacy flat string; v2 serializes the typed record.
    """
    if version >= WIRE_VERSION:
        return {"v": WIRE_VERSION, "ok": False, "error": error_record(exc)}
    return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


class AsyncServiceServer:
    """Serve a broker or shard pool over asyncio JSONL-over-TCP.

    Args:
        target: The answering :class:`~repro.service.broker.ServiceBroker`
            or :class:`~repro.service.shard.ShardPool` — anything with
            ``submit`` / ``stats`` and tickets exposing
            ``add_done_callback``.
        host: Bind address; keep the localhost default unless you mean
            to expose the service.
        port: Bind port; 0 picks a free ephemeral port (read it back
            from :attr:`address`).

    The listening socket is bound eagerly in the constructor, so
    :attr:`address` is valid before (and without) :meth:`serve` — the
    thread-hosting wrapper relies on this to report the bound port
    synchronously.
    """

    def __init__(self, target, host: str = "127.0.0.1", port: int = 0):
        self.target = target
        self._sock = socket.create_server(
            (host, port), reuse_port=False, backlog=128
        )
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound (host, port) pair."""
        name = self._sock.getsockname()
        return name[0], name[1]

    def close_socket(self) -> None:
        """Close the listening socket (for stop-before-serve cleanup)."""
        self._sock.close()

    def request_stop(self) -> None:
        """Ask a running :meth:`serve` to shut down (thread-safe)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def serve(self) -> None:
        """Accept and serve connections until :meth:`request_stop`."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle, sock=self._sock)
        try:
            async with server:
                await self._stop.wait()
        finally:
            self._loop = None
            self._stop = None

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One connection: read request lines, write response lines."""
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                response = await self.answer_line(line)
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown cancelled this connection mid-read.  Exit
            # normally: letting the cancellation escape makes 3.11's
            # stream callback log it as an "Exception in callback".
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def answer_line(self, line: str) -> dict:
        """Answer one request line; errors become shaped responses."""
        version = 1
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            raw_version = request.get("v", 1)
            version = raw_version if isinstance(raw_version, int) else 1
            op = request.get("op")
            if op == "ping":
                return shape_ok(version, {"pong": True})
            if op == "stats":
                return shape_ok(version, {"stats": self.target.stats()})
            payload = await self._ask(request)
            return shape_ok(version, payload)
        except Exception as exc:
            return shape_error(version, exc)

    async def _ask(self, request: dict) -> dict:
        """Parse, submit, and await one query without blocking the loop.

        Parsing/validation runs inline (cheap, pure).  Submission goes
        through the default executor because a plain broker's bounded
        queue may block for backpressure; a pool never blocks (it sheds
        instead) but takes the same path for uniformity.  The ticket's
        answer is bridged to an awaitable future by its done-callback,
        honoring the query's own options timeout.
        """
        query = parse_request(request)
        loop = asyncio.get_running_loop()
        ticket = await loop.run_in_executor(None, self.target.submit, query)
        future: "asyncio.Future" = loop.create_future()

        def _deliver(done_ticket) -> None:
            def _set() -> None:
                if future.cancelled():
                    return
                if done_ticket.error is not None:
                    future.set_exception(done_ticket.error)
                else:
                    future.set_result(done_ticket.payload)

            try:
                loop.call_soon_threadsafe(_set)
            except RuntimeError:
                # The loop shut down while the answer was in flight;
                # nobody is left to await the future.
                pass

        ticket.add_done_callback(_deliver)
        timeout = query.options.timeout
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            raise ServiceTimeout(
                f"no answer for {ticket.kind} query within {timeout}s"
            ) from None
