"""Query types for the benchmark-query service, and their wire forms.

A query is a small frozen dataclass naming one answerable question:

* :class:`CharacterizeQuery` — one sweep datacell: price kernel K on
  core A with cache state C.
* :class:`MissionQuery` — fly one registered closed-loop mission on one
  core and report its task-level metrics.
* :class:`CampaignQuery` — score one full fault campaign
  (:class:`~repro.faults.FaultCampaignSpec` verbatim).

Every query has a **content address** (:func:`query_key`): the sha256 of
its canonical JSON rendering plus the broker's harness configuration —
the same hashing scheme the engine's trace cache uses for solve
profiles.  Two queries with equal keys are the same question by
construction, which is what lets the broker coalesce them into a single
solve and answer both from one cache entry.

Every query also carries a frozen :class:`QueryOptions` — priority,
fidelity placeholder, timeout, cache policy — replacing the ad-hoc
keyword arguments that used to ride alongside queries.  Options are
*execution* hints, not part of the question: :func:`query_key` strips
them, so an interactive and a batch ask of the same cell share one
content address, coalesce into one solve, and hit the same cache entry.

:func:`parse_request` / :func:`request_of` translate between queries and
the JSONL wire dicts the ``repro serve`` server and ``repro query``
client exchange.  Requests may carry a version envelope (``"v": 2``
plus an ``"options"`` object); bare v1 requests parse unchanged, so
old clients keep working (see ``docs/service.md`` for the envelope).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Union

from repro.closedloop import MissionSpec
from repro.core import registry
from repro.core.config import HarnessConfig
from repro.faults import FaultCampaignSpec
from repro.backends import arch_names
from repro.mcu.cache import CACHE_OFF, CACHE_ON, CacheConfig
from repro.service.errors import QueryValidationError

#: Bumped when the payload schema changes: a version bump invalidates
#: every cached answer, exactly like the trace cache's format version.
SERVICE_FORMAT_VERSION = 1

#: Version of the request/response *envelope* (separate from the payload
#: format above, which participates in content addresses).  v1 is the
#: bare ``{"op": ...}`` request with string errors; v2 adds the
#: ``"v"``/``"options"`` fields and structured error records.
WIRE_VERSION = 2

#: Priorities admission control understands, best first.
PRIORITIES = ("interactive", "batch")

#: Answer fidelities.  Only ``exact`` is implemented; ``approx`` is the
#: reserved name for the ROADMAP's learned fast-path predictor, rejected
#: for now with a message that says so.
FIDELITIES = ("exact",)

#: L1 answer-cache policies: ``use`` reads and writes, ``bypass`` skips
#: both (always re-derive, never pollute), ``refresh`` skips the read
#: but writes the fresh answer back.
CACHE_POLICIES = ("use", "bypass", "refresh")

#: Cache label -> the :class:`~repro.mcu.cache.CacheConfig` it names.
CACHE_OF_LABEL = {CACHE_ON.label: CACHE_ON, CACHE_OFF.label: CACHE_OFF}


def _check_arch(arch: str) -> None:
    """Raise ``KeyError`` naming the registered cores on a bad arch."""
    if arch not in arch_names():
        raise KeyError(
            f"unknown arch {arch!r}; available: {sorted(arch_names())}"
        )


@dataclass(frozen=True)
class QueryOptions:
    """How to run a query — priority, fidelity, deadline, cache policy.

    Frozen and hashable, attached to every query as its ``options``
    field.  Never part of the content address: two asks of the same
    question with different options share one cache entry and coalesce
    into one solve.

    Attributes:
        priority: ``interactive`` (default) or ``batch``.  Batch work is
            shed first under admission pressure and sorted behind
            interactive work within a dispatcher batch.
        fidelity: ``exact`` (the only implemented tier); ``approx`` is
            reserved for the learned fast-path predictor.
        timeout: Client-side answer deadline in seconds (None = wait
            forever).  Enforced by :meth:`ServiceBroker.ask` locally and
            by :class:`~repro.service.server.ServiceClient` remotely.
        cache: L1 answer-cache policy — ``use`` / ``bypass`` /
            ``refresh`` (see :data:`CACHE_POLICIES`).
    """

    priority: str = "interactive"
    fidelity: str = "exact"
    timeout: "float | None" = None
    cache: str = "use"

    def validated(self) -> "QueryOptions":
        """Return self after checking every knob names a known setting."""
        if self.priority not in PRIORITIES:
            raise QueryValidationError(
                f"unknown priority {self.priority!r}; "
                f"available: {list(PRIORITIES)}"
            )
        if self.fidelity not in FIDELITIES:
            hint = (
                " ('approx' is reserved for the learned predictor tier)"
                if self.fidelity == "approx" else ""
            )
            raise QueryValidationError(
                f"unknown fidelity {self.fidelity!r}; "
                f"available: {list(FIDELITIES)}{hint}"
            )
        if self.cache not in CACHE_POLICIES:
            raise QueryValidationError(
                f"unknown cache policy {self.cache!r}; "
                f"available: {list(CACHE_POLICIES)}"
            )
        if self.timeout is not None and not float(self.timeout) > 0:
            raise QueryValidationError(
                f"timeout must be positive or None, got {self.timeout!r}"
            )
        return self

    def as_wire(self) -> dict:
        """Wire form: only the fields that differ from the defaults."""
        wire = {}
        for name, default in _OPTION_DEFAULTS.items():
            value = getattr(self, name)
            if value != default:
                wire[name] = value
        return wire

    @classmethod
    def from_wire(cls, data: dict) -> "QueryOptions":
        """Build validated options from a wire ``"options"`` object."""
        unknown = sorted(set(data) - set(_OPTION_DEFAULTS))
        if unknown:
            raise QueryValidationError(
                f"unknown option field(s) {unknown}; "
                f"available: {sorted(_OPTION_DEFAULTS)}"
            )
        timeout = data.get("timeout")
        return cls(
            priority=data.get("priority", "interactive"),
            fidelity=data.get("fidelity", "exact"),
            timeout=None if timeout is None else float(timeout),
            cache=data.get("cache", "use"),
        ).validated()


#: The shared default options instance every query starts from.
DEFAULT_OPTIONS = QueryOptions()

#: Option field -> its default, for wire minimization and validation.
_OPTION_DEFAULTS = asdict(DEFAULT_OPTIONS)


@dataclass(frozen=True)
class CharacterizeQuery:
    """One sweep datacell: price ``kernel`` on ``arch`` under ``cache``."""

    kernel: str
    arch: str = "m33"
    cache: str = "C"
    options: QueryOptions = DEFAULT_OPTIONS

    def validated(self) -> "CharacterizeQuery":
        """Return self after checking every coordinate is registered."""
        if not registry.is_registered(self.kernel):
            raise KeyError(
                f"unknown kernel {self.kernel!r}; "
                f"available: {registry.names()}"
            )
        _check_arch(self.arch)
        if self.cache not in CACHE_OF_LABEL:
            raise KeyError(
                f"unknown cache label {self.cache!r}; "
                f"available: {sorted(CACHE_OF_LABEL)}"
            )
        self.options.validated()
        return self

    def cache_config(self) -> CacheConfig:
        """The :class:`CacheConfig` this query's label names."""
        return CACHE_OF_LABEL[self.cache]


@dataclass(frozen=True)
class MissionQuery:
    """Fly one registered closed-loop mission on one core, fault-free."""

    mission: str = "hover"
    arch: str = "m33"
    options: QueryOptions = DEFAULT_OPTIONS

    def validated(self) -> "MissionQuery":
        """Return self after checking mission and core are registered."""
        MissionSpec(mission=self.mission, arch=self.arch).validated()
        _check_arch(self.arch)
        self.options.validated()
        return self


@dataclass(frozen=True)
class CampaignQuery:
    """Score one fault campaign; the spec is the query, verbatim."""

    spec: FaultCampaignSpec
    options: QueryOptions = DEFAULT_OPTIONS

    def validated(self) -> "CampaignQuery":
        """Return self after checking the campaign's coordinates."""
        from repro.faults import get_fault

        get_fault(self.spec.fault)  # raises KeyError on unknown faults
        for arch in self.spec.archs:
            _check_arch(arch)
        for mission in self.spec.missions:
            MissionSpec(mission=mission).validated()
        self.options.validated()
        return self


#: Any query the broker accepts.
Query = Union[CharacterizeQuery, MissionQuery, CampaignQuery]

#: Wire ``op`` name of each query type (also the payload ``kind``).
_KIND_OF_TYPE = {
    CharacterizeQuery: "characterize",
    MissionQuery: "mission",
    CampaignQuery: "campaign",
}


def query_kind(query: Query) -> str:
    """The query's wire kind: ``characterize`` / ``mission`` / ``campaign``."""
    try:
        return _KIND_OF_TYPE[type(query)]
    except KeyError:
        raise TypeError(f"not a service query: {query!r}") from None


def query_key(query: Query, config: HarnessConfig = None) -> str:
    """Content address of one query under one harness configuration.

    Same scheme as :func:`repro.engine.solve_key`: canonical (sorted,
    separator-free) JSON, sha256, 32 hex characters.  The harness config
    participates because it changes characterize answers (reps, warmup,
    gap); including it uniformly keeps one code path for every kind.

    :class:`QueryOptions` are deliberately excluded — options say *how*
    to run the question, not *what* it is, so every options combination
    of one query maps to the same address (and the key stays identical
    to the pre-options format, preserving old spill/cache entries).
    """
    config = config if config is not None else HarnessConfig()
    fields = asdict(query)
    fields.pop("options", None)
    payload = json.dumps(
        {
            "service_version": SERVICE_FORMAT_VERSION,
            "kind": query_kind(query),
            "query": fields,
            "config": asdict(config),
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def mission_record(result) -> dict:
    """JSON-ready record of one :class:`~repro.closedloop.MissionResult`.

    Field-for-field the shape the fault campaign's mission grid records
    use, minus the fault-only columns — so mission answers collate with
    campaign rows without renaming.
    """
    return {
        "completed": bool(result.completed),
        "duration_s": float(result.duration_s),
        "path_error_rms": float(result.path_error_rms_m),
        "path_error_max": float(result.path_error_max_m),
        "compute_energy_j": float(result.compute_energy_j),
        "compute_latency_s": float(result.compute_latency_s),
        "deadline_hit_rate": float(result.deadline_hit_rate),
        "effective_rate_hz": float(result.effective_rate_hz),
        "overruns": int(result.overruns),
        "worst_latency_s": float(result.worst_latency_s),
        "aborted_by": result.aborted_by,
    }


def parse_request(request: dict) -> Query:
    """Build the query a JSONL wire request describes (validated).

    The request's ``op`` selects the query type; remaining fields map to
    dataclass fields with the dataclass defaults applying when omitted.
    A ``"v": 2`` envelope may add an ``"options"`` object
    (:meth:`QueryOptions.from_wire`); bare v1 requests get default
    options.  Raises ``KeyError``/``ValueError`` with an actionable
    message on unknown ops, versions, kernels, archs, missions, faults,
    cache labels, or option fields.
    """
    version = request.get("v", 1)
    if version not in (1, WIRE_VERSION):
        raise QueryValidationError(
            f"unsupported wire version {version!r}; "
            f"this server speaks v1 and v{WIRE_VERSION}"
        )
    options = QueryOptions.from_wire(request.get("options") or {})
    op = request.get("op")
    if op == "characterize":
        return CharacterizeQuery(
            kernel=request["kernel"],
            arch=request.get("arch", "m33"),
            cache=request.get("cache", "C"),
            options=options,
        ).validated()
    if op == "mission":
        return MissionQuery(
            mission=request.get("mission", "hover"),
            arch=request.get("arch", "m33"),
            options=options,
        ).validated()
    if op == "campaign":
        spec = FaultCampaignSpec(
            fault=request["fault"],
            severities=tuple(request.get("severities", (0.25, 0.5, 0.75, 1.0))),
            missions=tuple(request.get("missions", ())),
            kernels=tuple(request.get("kernels", ())),
            archs=tuple(request.get("archs", ("m33",))),
            seed=int(request.get("seed", 0)),
            reps=int(request.get("reps", 1)),
            warmup=int(request.get("warmup", 0)),
        )
        return CampaignQuery(spec=spec, options=options).validated()
    raise ValueError(
        f"unknown op {op!r}; expected one of "
        "('characterize', 'mission', 'campaign', 'ping', 'stats')"
    )


def request_of(query: Query) -> dict:
    """The JSONL wire request describing ``query`` (parse_request inverse).

    Emits the minimal envelope: default options produce a bare v1
    request (byte-identical to the pre-envelope format, so old servers
    stay addressable); non-default options add ``"v": 2`` and an
    ``"options"`` object.
    """
    kind = query_kind(query)
    if isinstance(query, CampaignQuery):
        fields = asdict(query.spec)
        fields["severities"] = list(fields["severities"])
        fields["missions"] = list(fields["missions"])
        fields["kernels"] = list(fields["kernels"])
        fields["archs"] = list(fields["archs"])
    else:
        fields = asdict(query)
        fields.pop("options", None)
    request = {"op": kind, **fields}
    wire_options = query.options.as_wire()
    if wire_options:
        request["v"] = WIRE_VERSION
        request["options"] = wire_options
    return request
