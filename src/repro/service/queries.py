"""Query types for the benchmark-query service, and their wire forms.

A query is a small frozen dataclass naming one answerable question:

* :class:`CharacterizeQuery` — one sweep datacell: price kernel K on
  core A with cache state C.
* :class:`MissionQuery` — fly one registered closed-loop mission on one
  core and report its task-level metrics.
* :class:`CampaignQuery` — score one full fault campaign
  (:class:`~repro.faults.FaultCampaignSpec` verbatim).

Every query has a **content address** (:func:`query_key`): the sha256 of
its canonical JSON rendering plus the broker's harness configuration —
the same hashing scheme the engine's trace cache uses for solve
profiles.  Two queries with equal keys are the same question by
construction, which is what lets the broker coalesce them into a single
solve and answer both from one cache entry.

:func:`parse_request` / :func:`request_of` translate between queries and
the JSONL wire dicts the ``repro serve`` server and ``repro query``
client exchange.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Union

from repro.closedloop import MissionSpec
from repro.core import registry
from repro.core.config import HarnessConfig
from repro.faults import FaultCampaignSpec
from repro.backends import arch_names
from repro.mcu.cache import CACHE_OFF, CACHE_ON, CacheConfig

#: Bumped when the payload schema changes: a version bump invalidates
#: every cached answer, exactly like the trace cache's format version.
SERVICE_FORMAT_VERSION = 1

#: Cache label -> the :class:`~repro.mcu.cache.CacheConfig` it names.
CACHE_OF_LABEL = {CACHE_ON.label: CACHE_ON, CACHE_OFF.label: CACHE_OFF}


def _check_arch(arch: str) -> None:
    """Raise ``KeyError`` naming the registered cores on a bad arch."""
    if arch not in arch_names():
        raise KeyError(
            f"unknown arch {arch!r}; available: {sorted(arch_names())}"
        )


@dataclass(frozen=True)
class CharacterizeQuery:
    """One sweep datacell: price ``kernel`` on ``arch`` under ``cache``."""

    kernel: str
    arch: str = "m33"
    cache: str = "C"

    def validated(self) -> "CharacterizeQuery":
        """Return self after checking every coordinate is registered."""
        if not registry.is_registered(self.kernel):
            raise KeyError(
                f"unknown kernel {self.kernel!r}; "
                f"available: {registry.names()}"
            )
        _check_arch(self.arch)
        if self.cache not in CACHE_OF_LABEL:
            raise KeyError(
                f"unknown cache label {self.cache!r}; "
                f"available: {sorted(CACHE_OF_LABEL)}"
            )
        return self

    def cache_config(self) -> CacheConfig:
        """The :class:`CacheConfig` this query's label names."""
        return CACHE_OF_LABEL[self.cache]


@dataclass(frozen=True)
class MissionQuery:
    """Fly one registered closed-loop mission on one core, fault-free."""

    mission: str = "hover"
    arch: str = "m33"

    def validated(self) -> "MissionQuery":
        """Return self after checking mission and core are registered."""
        MissionSpec(mission=self.mission, arch=self.arch).validated()
        _check_arch(self.arch)
        return self


@dataclass(frozen=True)
class CampaignQuery:
    """Score one fault campaign; the spec is the query, verbatim."""

    spec: FaultCampaignSpec

    def validated(self) -> "CampaignQuery":
        """Return self after checking the campaign's coordinates."""
        from repro.faults import get_fault

        get_fault(self.spec.fault)  # raises KeyError on unknown faults
        for arch in self.spec.archs:
            _check_arch(arch)
        for mission in self.spec.missions:
            MissionSpec(mission=mission).validated()
        return self


#: Any query the broker accepts.
Query = Union[CharacterizeQuery, MissionQuery, CampaignQuery]

#: Wire ``op`` name of each query type (also the payload ``kind``).
_KIND_OF_TYPE = {
    CharacterizeQuery: "characterize",
    MissionQuery: "mission",
    CampaignQuery: "campaign",
}


def query_kind(query: Query) -> str:
    """The query's wire kind: ``characterize`` / ``mission`` / ``campaign``."""
    try:
        return _KIND_OF_TYPE[type(query)]
    except KeyError:
        raise TypeError(f"not a service query: {query!r}") from None


def query_key(query: Query, config: HarnessConfig = None) -> str:
    """Content address of one query under one harness configuration.

    Same scheme as :func:`repro.engine.solve_key`: canonical (sorted,
    separator-free) JSON, sha256, 32 hex characters.  The harness config
    participates because it changes characterize answers (reps, warmup,
    gap); including it uniformly keeps one code path for every kind.
    """
    config = config if config is not None else HarnessConfig()
    payload = json.dumps(
        {
            "service_version": SERVICE_FORMAT_VERSION,
            "kind": query_kind(query),
            "query": asdict(query),
            "config": asdict(config),
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def mission_record(result) -> dict:
    """JSON-ready record of one :class:`~repro.closedloop.MissionResult`.

    Field-for-field the shape the fault campaign's mission grid records
    use, minus the fault-only columns — so mission answers collate with
    campaign rows without renaming.
    """
    return {
        "completed": bool(result.completed),
        "duration_s": float(result.duration_s),
        "path_error_rms": float(result.path_error_rms_m),
        "path_error_max": float(result.path_error_max_m),
        "compute_energy_j": float(result.compute_energy_j),
        "compute_latency_s": float(result.compute_latency_s),
        "deadline_hit_rate": float(result.deadline_hit_rate),
        "effective_rate_hz": float(result.effective_rate_hz),
        "overruns": int(result.overruns),
        "worst_latency_s": float(result.worst_latency_s),
        "aborted_by": result.aborted_by,
    }


def parse_request(request: dict) -> Query:
    """Build the query a JSONL wire request describes (validated).

    The request's ``op`` selects the query type; remaining fields map to
    dataclass fields with the dataclass defaults applying when omitted.
    Raises ``KeyError``/``ValueError`` with an actionable message on
    unknown ops, kernels, archs, missions, faults, or cache labels.
    """
    op = request.get("op")
    if op == "characterize":
        return CharacterizeQuery(
            kernel=request["kernel"],
            arch=request.get("arch", "m33"),
            cache=request.get("cache", "C"),
        ).validated()
    if op == "mission":
        return MissionQuery(
            mission=request.get("mission", "hover"),
            arch=request.get("arch", "m33"),
        ).validated()
    if op == "campaign":
        spec = FaultCampaignSpec(
            fault=request["fault"],
            severities=tuple(request.get("severities", (0.25, 0.5, 0.75, 1.0))),
            missions=tuple(request.get("missions", ())),
            kernels=tuple(request.get("kernels", ())),
            archs=tuple(request.get("archs", ("m33",))),
            seed=int(request.get("seed", 0)),
            reps=int(request.get("reps", 1)),
            warmup=int(request.get("warmup", 0)),
        )
        return CampaignQuery(spec=spec).validated()
    raise ValueError(
        f"unknown op {op!r}; expected one of "
        "('characterize', 'mission', 'campaign', 'ping', 'stats')"
    )


def request_of(query: Query) -> dict:
    """The JSONL wire request describing ``query`` (parse_request inverse)."""
    kind = query_kind(query)
    if isinstance(query, CampaignQuery):
        fields = asdict(query.spec)
        fields["severities"] = list(fields["severities"])
        fields["missions"] = list(fields["missions"])
        fields["kernels"] = list(fields["kernels"])
        fields["archs"] = list(fields["archs"])
    else:
        fields = asdict(query)
    return {"op": kind, **fields}
