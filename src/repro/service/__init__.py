"""Benchmark-query service: a coalescing, cache-backed broker.

The ROADMAP's north star is a system that serves benchmark answers at
production query volume.  Today's consumers (CLI, analysis studies,
fault campaigns) each hand-build a :class:`~repro.core.experiment.SweepSpec`
and drive :mod:`repro.engine` directly, so identical (kernel x arch x
config) questions are re-solved per caller.  This package centralizes
them behind one broker:

* **Queries** (:mod:`repro.service.queries`) — small frozen dataclasses
  (characterize a kernel cell, fly a mission, score a fault campaign)
  with a content-address key derived with the same canonical-JSON +
  sha256 scheme as the engine's trace cache.
* **Result cache tiers** (:mod:`repro.service.cache`) — an in-memory
  LRU (L1) over answered payloads, keyed by that content address, with
  an optional disk-spill tier (L2, trace-cache directory format) that
  catches L1 evictions; per-tier hits surface through :mod:`repro.obs`
  (the engine's trace cache of solve profiles is L3).
* **Broker** (:mod:`repro.service.broker`) — a bounded submission queue
  (backpressure) drained by a single dispatcher thread that coalesces
  duplicates (single-flight: N concurrent identical queries trigger one
  solve) and batches distinct characterize cells into **one** engine
  cell-plan, so a burst of queries costs one solve per distinct kernel
  configuration.
* **Shard pool** (:mod:`repro.service.shard`) — N brokers partitioned
  by the sha256 content address (``int(key[:8], 16) % n_shards``), each
  fronted by admission control (:mod:`repro.service.admission`):
  bounded inflight work per shard, ``interactive``/``batch``
  priorities, and typed :class:`ServiceOverloaded` shedding with a
  ``retry_after`` hint instead of unbounded blocking.
* **Query options & errors** (:mod:`repro.service.queries`,
  :mod:`repro.service.errors`) — a frozen :class:`QueryOptions`
  (priority, fidelity placeholder, timeout, cache policy) on every
  query, and a typed :class:`ServiceError` taxonomy serialized as
  structured records in wire envelope v2.
* **Server** (:mod:`repro.service.server`, :mod:`repro.service.aio`) —
  ``repro serve``'s asyncio JSONL-over-TCP front-end plus the matching
  ``repro query`` client (context-managed, per-query timeouts,
  retry-with-backoff on shed).

Determinism contract: answers are byte-identical to direct engine /
closed-loop / campaign runs at any concurrency level, shard count, and
spill state — the service only routes and caches; it never perturbs
what it runs (asserted in ``tests/test_service.py`` and
``tests/test_service_tiers.py``).
"""

from repro.service.admission import AdmissionController
from repro.service.aio import AsyncServiceServer
from repro.service.broker import BrokerClosed, ServiceBroker
from repro.service.cache import ResultCache, SpillCache, TieredResultCache
from repro.service.errors import (
    QueryValidationError,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    ShardUnavailable,
    error_from_record,
    error_record,
)
from repro.service.queries import (
    CampaignQuery,
    CharacterizeQuery,
    DEFAULT_OPTIONS,
    MissionQuery,
    QueryOptions,
    WIRE_VERSION,
    mission_record,
    parse_request,
    query_key,
    request_of,
)
from repro.service.server import DEFAULT_PORT, ServiceClient, ServiceServer
from repro.service.shard import ShardPool, shard_of

__all__ = [
    "AdmissionController",
    "AsyncServiceServer",
    "BrokerClosed",
    "DEFAULT_OPTIONS",
    "DEFAULT_PORT",
    "CampaignQuery",
    "CharacterizeQuery",
    "MissionQuery",
    "QueryOptions",
    "QueryValidationError",
    "ResultCache",
    "ServiceBroker",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceServer",
    "ServiceTimeout",
    "ShardPool",
    "ShardUnavailable",
    "SpillCache",
    "TieredResultCache",
    "WIRE_VERSION",
    "error_from_record",
    "error_record",
    "mission_record",
    "parse_request",
    "query_key",
    "request_of",
    "shard_of",
]
