"""Benchmark-query service: a coalescing, cache-backed broker.

The ROADMAP's north star is a system that serves benchmark answers at
production query volume.  Today's consumers (CLI, analysis studies,
fault campaigns) each hand-build a :class:`~repro.core.experiment.SweepSpec`
and drive :mod:`repro.engine` directly, so identical (kernel x arch x
config) questions are re-solved per caller.  This package centralizes
them behind one broker:

* **Queries** (:mod:`repro.service.queries`) — small frozen dataclasses
  (characterize a kernel cell, fly a mission, score a fault campaign)
  with a content-address key derived with the same canonical-JSON +
  sha256 scheme as the engine's trace cache.
* **Result cache** (:mod:`repro.service.cache`) — an in-memory LRU over
  answered payloads, keyed by that content address, with hit/miss
  accounting surfaced through :mod:`repro.obs`.
* **Broker** (:mod:`repro.service.broker`) — a bounded submission queue
  (backpressure) drained by a single dispatcher thread that coalesces
  duplicates (single-flight: N concurrent identical queries trigger one
  solve) and batches distinct characterize cells into **one** engine
  cell-plan, so a burst of queries costs one solve per distinct kernel
  configuration.
* **Server** (:mod:`repro.service.server`) — ``repro serve``'s local
  JSONL-over-TCP front-end plus the matching ``repro query`` client.

Determinism contract: answers are byte-identical to direct engine /
closed-loop / campaign runs at any concurrency level — the broker only
routes and caches; it never perturbs what it runs (asserted in
``tests/test_service.py``).
"""

from repro.service.broker import BrokerClosed, ServiceBroker
from repro.service.cache import ResultCache
from repro.service.queries import (
    CampaignQuery,
    CharacterizeQuery,
    MissionQuery,
    mission_record,
    parse_request,
    query_key,
    request_of,
)
from repro.service.server import DEFAULT_PORT, ServiceClient, ServiceServer

__all__ = [
    "BrokerClosed",
    "DEFAULT_PORT",
    "CampaignQuery",
    "CharacterizeQuery",
    "MissionQuery",
    "ResultCache",
    "ServiceBroker",
    "ServiceClient",
    "ServiceServer",
    "mission_record",
    "parse_request",
    "query_key",
    "request_of",
]
