"""ORB: oriented FAST + rotated BRIEF [58].

FAST detection, Harris-score re-ranking of the strongest corners, the
intensity-centroid orientation, and steered BRIEF descriptors.  Roughly
1.5-2.5x the cost of plain fastbrief (Case Study 1), the extra float work
coming from the moments, Harris responses, and pattern rotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mcu.ops import OpCounter
from repro.perception import brief
from repro.perception.fast import Corner, fast_detect

MOMENT_RADIUS = 15


@dataclass(frozen=True)
class OrbKeypoint:
    y: int
    x: int
    score: float
    angle: float


def harris_response(counter: OpCounter, img: np.ndarray, corners: List[Corner],
                    k: float = 0.04, window: int = 7) -> np.ndarray:
    """Harris corner response at given corner locations."""
    h, w = img.shape
    img_f = img.astype(np.float64)
    half = window // 2
    responses = np.zeros(len(corners))
    for i, c in enumerate(corners):
        y0, y1 = max(c.y - half, 1), min(c.y + half + 1, h - 1)
        x0, x1 = max(c.x - half, 1), min(c.x + half + 1, w - 1)
        patch = img_f[y0 - 1 : y1 + 1, x0 - 1 : x1 + 1]
        gx = (patch[1:-1, 2:] - patch[1:-1, :-2]) * 0.5
        gy = (patch[2:, 1:-1] - patch[:-2, 1:-1]) * 0.5
        sxx = float((gx * gx).sum())
        syy = float((gy * gy).sum())
        sxy = float((gx * gy).sum())
        responses[i] = sxx * syy - sxy * sxy - k * (sxx + syy) ** 2
        n_px = window * window
        counter.trace.fadd += 5 * n_px + 4
        counter.trace.fmul += 5 * n_px + 4
        counter.trace.load += 6 * n_px
        counter.loop_overhead(n_px)
    return responses


def intensity_centroid_angle(counter: OpCounter, img: np.ndarray,
                             corner: Corner) -> float:
    """Orientation from the intensity centroid over a circular patch."""
    h, w = img.shape
    r = MOMENT_RADIUS
    y0, y1 = max(corner.y - r, 0), min(corner.y + r + 1, h)
    x0, x1 = max(corner.x - r, 0), min(corner.x + r + 1, w)
    patch = img[y0:y1, x0:x1].astype(np.float64)
    ys = np.arange(y0, y1) - corner.y
    xs = np.arange(x0, x1) - corner.x
    circle = (ys[:, None] ** 2 + xs[None, :] ** 2) <= r * r
    m01 = float((patch * ys[:, None] * circle).sum())
    m10 = float((patch * xs[None, :] * circle).sum())
    n_px = int(circle.sum())
    counter.trace.ffma += 2 * n_px
    counter.trace.load += n_px
    counter.trace.icmp += n_px
    counter.loop_overhead(n_px)
    counter.ffunc()  # atan2
    return float(np.arctan2(m01, m10))


def orb_detect_and_describe(
    counter: OpCounter,
    img: np.ndarray,
    threshold: int = 20,
    max_features: int = 150,
    n_levels: int = 3,
) -> tuple:
    """Full ORB pipeline: (keypoints, descriptors).

    Like the reference ORB, detection runs over an image pyramid (scale
    invariance); keypoints from coarser levels are mapped back to level-0
    coordinates for orientation and description.  The pyramid and the
    per-level FAST passes are a fixed cost that keeps ORB above fastbrief
    even on sparse scenes (Table VI's lights column).
    """
    from repro.perception.gaussian import build_pyramid

    pyramid = build_pyramid(counter, img.astype(np.float64), levels=n_levels)
    corners = fast_detect(counter, img, threshold=threshold)
    for level in range(1, n_levels):
        scale = 2**level
        level_img = np.clip(pyramid[level], 0, 255).astype(np.uint8)
        for c in fast_detect(counter, level_img, threshold=threshold):
            corners.append(Corner(c.y * scale, c.x * scale, c.score))
        counter.trace.ialu += 4 * len(corners)
    corners.sort(key=lambda c: -c.score)
    corners = corners[: max_features * 2]  # Harris re-ranks a wider pool
    if not corners:
        return [], np.zeros((0, brief.N_PAIRS // 8), dtype=np.uint8)
    responses = harris_response(counter, img, corners)
    order = np.argsort(-responses)[:max_features]
    counter.trace.icmp += int(len(corners) * np.log2(len(corners) + 1))
    counter.trace.ialu += len(corners) * 4

    keypoints: List[OrbKeypoint] = []
    angles = []
    for idx in order:
        c = corners[int(idx)]
        angle = intensity_centroid_angle(counter, img, c)
        keypoints.append(OrbKeypoint(c.y, c.x, float(responses[idx]), angle))
        angles.append(angle)
    descriptors = brief.describe(
        counter, img, keypoints, orientations=np.array(angles)
    )
    return keypoints, descriptors
