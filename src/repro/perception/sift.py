"""SIFT detector and descriptor [43].

Difference-of-Gaussians scale space over multiple octaves, 3x3x3 extrema
detection, quadratic subpixel refinement with edge rejection, a 36-bin
orientation histogram, and the 4x4x8 gradient-histogram descriptor.

This is by far the heaviest perception kernel — four DoG octaves over a
160x160 frame plus 128-byte descriptors — and the only kernel whose
footprint exceeds the M4 and M33 SRAM, so it is characterized on the
Cortex-M7 alone (exactly as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.mcu.ops import OpCounter
from repro.perception.gaussian import downsample, gaussian_blur, image_gradients

N_OCTAVES = 4
SCALES_PER_OCTAVE = 3  # s: each octave holds s+3 Gaussian images
CONTRAST_THRESHOLD = 0.015
EDGE_RATIO = 10.0
DESCRIPTOR_WIDTH = 4
DESCRIPTOR_BINS = 8
MAX_KEYPOINTS = 200


@dataclass(frozen=True)
class SiftKeypoint:
    y: float
    x: float
    octave: int
    scale: int
    response: float
    angle: float


def _upsample2(counter: OpCounter, img: np.ndarray) -> np.ndarray:
    """Bilinear 2x upsampling (Lowe's first-octave doubling)."""
    h, w = img.shape
    out = np.zeros((2 * h, 2 * w))
    out[::2, ::2] = img
    out[1::2, ::2] = (img + np.roll(img, -1, axis=0)) / 2.0
    out[::2, 1::2] = (img + np.roll(img, -1, axis=1)) / 2.0
    out[1::2, 1::2] = (
        img + np.roll(img, -1, axis=0) + np.roll(img, -1, axis=1)
        + np.roll(np.roll(img, -1, axis=0), -1, axis=1)
    ) / 4.0
    n = out.size
    counter.trace.fadd += 2 * n
    counter.trace.fmul += n
    counter.trace.load += 2 * n
    counter.trace.store += n
    counter.loop_overhead(n)
    return out


def build_scale_space(
    counter: OpCounter, img: np.ndarray
) -> Tuple[List[List[np.ndarray]], List[List[np.ndarray]]]:
    """Gaussian and DoG pyramids (incremental blurring, like the paper's
    memory-saving incremental pyramid construction)."""
    sigma0 = 1.6
    k = 2.0 ** (1.0 / SCALES_PER_OCTAVE)
    gaussians: List[List[np.ndarray]] = []
    dogs: List[List[np.ndarray]] = []
    base = img.astype(np.float64) / 255.0
    counter.vec_scale(base.size)
    # Lowe's -1 octave: the input is upsampled 2x so the finest scales are
    # resolvable — quadrupling the first octave's pixel count and a large
    # share of why SIFT "barely fits the M7".
    base = _upsample2(counter, base)
    for octave in range(N_OCTAVES):
        octave_imgs = [base]
        # Each scale is blurred from the octave base at its *full* sigma —
        # the memory-saving "recompute blurred images" strategy the paper's
        # implementation uses on the M7, which trades compute (wide
        # kernels) for the SRAM an incremental chain would hold.
        for s in range(1, SCALES_PER_OCTAVE + 3):
            sigma_full = sigma0 * (k**s)
            octave_imgs.append(gaussian_blur(counter, base, sigma_full))
        gaussians.append(octave_imgs)
        octave_dogs = []
        for i in range(len(octave_imgs) - 1):
            octave_dogs.append(octave_imgs[i + 1] - octave_imgs[i])
            counter.vec_add(octave_imgs[i].size)
        dogs.append(octave_dogs)
        base = downsample(counter, octave_imgs[SCALES_PER_OCTAVE])
    return gaussians, dogs


def detect_extrema(counter: OpCounter, dogs: List[List[np.ndarray]]) -> List[SiftKeypoint]:
    """3x3x3 local extrema with contrast and edge rejection."""
    keypoints: List[SiftKeypoint] = []
    for octave, octave_dogs in enumerate(dogs):
        for s in range(1, len(octave_dogs) - 1):
            below, center, above = octave_dogs[s - 1], octave_dogs[s], octave_dogs[s + 1]
            h, w = center.shape
            if h < 3 or w < 3:
                continue
            core = center[1:-1, 1:-1]
            strong = np.abs(core) > CONTRAST_THRESHOLD
            n_px = core.size
            counter.trace.load += n_px
            counter.trace.fcmp += n_px
            counter.trace.br_not += n_px - int(strong.sum())
            n_strong = int(strong.sum())
            if n_strong == 0:
                continue
            # Full 26-neighbour comparison for strong pixels.
            stacks = []
            for img_s in (below, center, above):
                for dy in (-1, 0, 1):
                    for dx in (-1, 0, 1):
                        stacks.append(img_s[1 + dy : h - 1 + dy, 1 + dx : w - 1 + dx])
            neighborhood = np.stack(stacks)
            is_max = core >= neighborhood.max(axis=0)
            is_min = core <= neighborhood.min(axis=0)
            extrema = strong & (is_max | is_min)
            counter.trace.load += 26 * n_strong
            counter.trace.fcmp += 26 * n_strong
            counter.loop_overhead(n_strong)

            ys, xs = np.nonzero(extrema)
            for y, x in zip(ys, xs):
                yy, xx = y + 1, x + 1
                # Edge rejection via the 2x2 Hessian ratio test.
                dxx = center[yy, xx + 1] + center[yy, xx - 1] - 2 * center[yy, xx]
                dyy = center[yy + 1, xx] + center[yy - 1, xx] - 2 * center[yy, xx]
                dxy = 0.25 * (
                    center[yy + 1, xx + 1]
                    - center[yy + 1, xx - 1]
                    - center[yy - 1, xx + 1]
                    + center[yy - 1, xx - 1]
                )
                counter.flop_mix(add=10, mul=6)
                tr = dxx + dyy
                det = dxx * dyy - dxy * dxy
                counter.flop_mix(add=2, mul=3)
                if det <= 0 or tr * tr / det >= (EDGE_RATIO + 1) ** 2 / EDGE_RATIO:
                    counter.fcmp(2)
                    counter.branch(taken=False)
                    continue
                keypoints.append(
                    SiftKeypoint(
                        y=float(yy), x=float(xx), octave=octave, scale=s,
                        response=float(abs(center[yy, xx])), angle=0.0,
                    )
                )
                counter.branch()
    keypoints.sort(key=lambda kp: -kp.response)
    counter.trace.icmp += int(len(keypoints) * np.log2(len(keypoints) + 1)) * 2
    return keypoints[:MAX_KEYPOINTS]


def assign_orientations(
    counter: OpCounter,
    gaussians: List[List[np.ndarray]],
    keypoints: List[SiftKeypoint],
) -> List[SiftKeypoint]:
    """Dominant gradient orientation from a 36-bin weighted histogram."""
    out = []
    grads = {}
    for kp in keypoints:
        key = (kp.octave, kp.scale)
        if key not in grads:
            img = gaussians[kp.octave][kp.scale]
            grads[key] = image_gradients(counter, img)
        gx, gy = grads[key]
        h, w = gx.shape
        r = 8
        y0, y1 = int(max(kp.y - r, 0)), int(min(kp.y + r + 1, h))
        x0, x1 = int(max(kp.x - r, 0)), int(min(kp.x + r + 1, w))
        mag = np.hypot(gx[y0:y1, x0:x1], gy[y0:y1, x0:x1])
        ang = np.arctan2(gy[y0:y1, x0:x1], gx[y0:y1, x0:x1])
        n_px = mag.size
        # Per patch pixel: magnitude (sqrt), angle (atan2), bin, accumulate.
        counter.trace.fsqrt += n_px
        counter.trace.ffunc += n_px
        counter.trace.ffma += 2 * n_px
        counter.trace.load += 2 * n_px
        counter.loop_overhead(n_px)
        bins = ((ang + np.pi) / (2 * np.pi) * 36).astype(int) % 36
        hist = np.bincount(bins.ravel(), weights=mag.ravel(), minlength=36)
        angle = (np.argmax(hist) + 0.5) / 36 * 2 * np.pi - np.pi
        counter.trace.icmp += 36
        out.append(SiftKeypoint(kp.y, kp.x, kp.octave, kp.scale,
                                kp.response, float(angle)))
    return out


def compute_descriptors(
    counter: OpCounter,
    gaussians: List[List[np.ndarray]],
    keypoints: List[SiftKeypoint],
) -> np.ndarray:
    """128-dimensional gradient-histogram descriptors."""
    n_dim = DESCRIPTOR_WIDTH * DESCRIPTOR_WIDTH * DESCRIPTOR_BINS
    out = np.zeros((len(keypoints), n_dim), dtype=np.float32)
    grads = {}
    for ki, kp in enumerate(keypoints):
        key = (kp.octave, kp.scale)
        if key not in grads:
            img = gaussians[kp.octave][kp.scale]
            grads[key] = image_gradients(counter, img)
        gx, gy = grads[key]
        h, w = gx.shape
        r = 8  # 16x16 support window
        y0, y1 = int(max(kp.y - r, 0)), int(min(kp.y + r, h))
        x0, x1 = int(max(kp.x - r, 0)), int(min(kp.x + r, w))
        pgx = gx[y0:y1, x0:x1]
        pgy = gy[y0:y1, x0:x1]
        mag = np.hypot(pgx, pgy)
        ang = np.arctan2(pgy, pgx) - kp.angle
        n_px = mag.size
        counter.trace.fsqrt += n_px
        counter.trace.ffunc += n_px
        counter.trace.ffma += 6 * n_px  # trilinear interpolation weights
        counter.trace.load += 2 * n_px
        counter.trace.store += n_px
        counter.loop_overhead(n_px)

        desc = np.zeros((DESCRIPTOR_WIDTH, DESCRIPTOR_WIDTH, DESCRIPTOR_BINS))
        ys = np.linspace(0, DESCRIPTOR_WIDTH - 1e-6, mag.shape[0])
        xs = np.linspace(0, DESCRIPTOR_WIDTH - 1e-6, mag.shape[1])
        cell_y = ys.astype(int)[:, None] * np.ones_like(xs.astype(int))[None, :]
        cell_x = np.ones_like(ys.astype(int))[:, None] * xs.astype(int)[None, :]
        bins = ((ang + np.pi) / (2 * np.pi) * DESCRIPTOR_BINS).astype(int) % DESCRIPTOR_BINS
        np.add.at(desc, (cell_y.ravel(), cell_x.ravel(), bins.ravel()), mag.ravel())

        vec = desc.ravel()
        norm = np.linalg.norm(vec) + 1e-12
        vec = np.minimum(vec / norm, 0.2)
        norm2 = np.linalg.norm(vec) + 1e-12
        out[ki] = (vec / norm2).astype(np.float32)
        counter.trace.fdiv += 2 * n_dim
        counter.trace.fsqrt += 2
        counter.trace.fcmp += n_dim
        counter.trace.ffma += 2 * n_dim
    return out


def sift_detect_and_describe(counter: OpCounter, img: np.ndarray) -> tuple:
    """Full SIFT pipeline: (keypoints, descriptors)."""
    gaussians, dogs = build_scale_space(counter, img)
    keypoints = detect_extrema(counter, dogs)
    keypoints = assign_orientations(counter, gaussians, keypoints)
    descriptors = compute_descriptors(counter, gaussians, keypoints)
    return keypoints, descriptors


def scale_space_footprint_bytes(img_shape: Tuple[int, int]) -> int:
    """SRAM demand of the float scale space (why SIFT is M7-only).

    Even with incremental pyramid building, the working octave needs
    s+3 Gaussian floats plus s+2 DoG floats at full resolution, and the
    descriptor stage keeps gradient maps resident.
    """
    h, w = img_shape
    # The first octave runs at 2x resolution (Lowe's upsampled base).
    per_image = (2 * h) * (2 * w) * 4
    # Incremental pyramid + recomputed blurs keep only two full-size
    # Gaussian slices resident (base, current) plus one DoG —
    # the paper's space-saving strategy; anything less aggressive would
    # not fit even the M7.
    resident_slices = 2 * per_image + per_image
    descriptors = MAX_KEYPOINTS * 128 * 4
    extrema_flags = (h * w) // 2
    return resident_slices + descriptors + extrema_flags
