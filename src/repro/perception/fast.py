"""FAST corner detection (the segment test) [57, 35].

FAST-9/16: a pixel is a corner when 9 contiguous pixels on the 16-pixel
Bresenham circle are all brighter or all darker than the center by a
threshold.  The implementation is vectorized over the frame for speed but
records the operations of the compiled scalar detector, including its
*early-exit* structure: most pixels fail the 4-point quick test, and only
survivors pay the full segment test.  That early exit is why sparse scenes
(the "lights" dataset) run markedly faster than textured ones — the data
dependence Case Study 1 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mcu.ops import OpCounter

# The 16 Bresenham circle offsets (dy, dx), radius 3, clockwise from north.
CIRCLE_OFFSETS = [
    (-3, 0), (-3, 1), (-2, 2), (-1, 3), (0, 3), (1, 3), (2, 2), (3, 1),
    (3, 0), (3, -1), (2, -2), (1, -3), (0, -3), (-1, -3), (-2, -2), (-3, -3 + 2),
]
# Fix the last offset: the canonical circle is (-3,-1) at index 15.
CIRCLE_OFFSETS[15] = (-3, -1)

BORDER = 3


@dataclass(frozen=True)
class Corner:
    y: int
    x: int
    score: float


def _circle_stack(img: np.ndarray) -> np.ndarray:
    """(16, H-6, W-6) array of circle-pixel values per interior pixel."""
    h, w = img.shape
    core_h, core_w = h - 2 * BORDER, w - 2 * BORDER
    stack = np.empty((16, core_h, core_w), dtype=np.int32)
    for i, (dy, dx) in enumerate(CIRCLE_OFFSETS):
        stack[i] = img[
            BORDER + dy : BORDER + dy + core_h, BORDER + dx : BORDER + dx + core_w
        ]
    return stack


def _contiguous_mask(flags: np.ndarray, run: int) -> np.ndarray:
    """True where >= ``run`` contiguous circle flags (wrapping) are set."""
    wrapped = np.concatenate([flags, flags[: run - 1]], axis=0)
    out = np.zeros(flags.shape[1:], dtype=bool)
    for start in range(16):
        window = wrapped[start : start + run]
        out |= window.all(axis=0)
    return out


def fast_detect(
    counter: OpCounter,
    img: np.ndarray,
    threshold: int = 20,
    nonmax_suppression: bool = True,
) -> List[Corner]:
    """FAST-9 corners with the score = sum of absolute differences.

    Returns corners sorted by score (strongest first).
    """
    img_i = img.astype(np.int32)
    h, w = img.shape
    core = img_i[BORDER : h - BORDER, BORDER : w - BORDER]
    stack = _circle_stack(img_i)

    bright = stack > core[None] + threshold
    dark = stack < core[None] - threshold

    # Quick test on the 4 compass points (indices 0, 4, 8, 12): a run of 9
    # contiguous circle pixels always covers at least 2 of them.
    quick_bright = bright[[0, 4, 8, 12]].sum(axis=0) >= 2
    quick_dark = dark[[0, 4, 8, 12]].sum(axis=0) >= 2
    candidates = quick_bright | quick_dark

    n_px = core.size
    n_candidates = int(candidates.sum())
    # Every pixel pays the quick test: 4 circle loads + center load +
    # threshold adds + compares + branch.
    counter.trace.load += 5 * n_px
    counter.trace.ialu += 6 * n_px
    counter.trace.icmp += 8 * n_px
    counter.trace.br_not += n_px - n_candidates
    counter.trace.br_taken += n_candidates
    counter.loop_overhead(n_px)

    corner_mask = np.zeros_like(candidates)
    if n_candidates:
        full = _contiguous_mask(bright, 9) | _contiguous_mask(dark, 9)
        corner_mask = candidates & full
        # Candidates pay the full segment test: 12 more loads, compares,
        # and run-length bookkeeping.
        counter.trace.load += 12 * n_candidates
        counter.trace.ialu += 20 * n_candidates
        counter.trace.icmp += 24 * n_candidates
        counter.trace.br_taken += 10 * n_candidates

    n_corners = int(corner_mask.sum())
    # Score for detected corners: SAD of circle vs center.
    scores = np.zeros(corner_mask.shape, dtype=np.float64)
    if n_corners:
        diffs = np.abs(stack - core[None]).sum(axis=0)
        scores = np.where(corner_mask, diffs, 0.0)
        counter.trace.load += 16 * n_corners
        counter.trace.ialu += 32 * n_corners

    if nonmax_suppression and n_corners:
        # 3x3 non-max suppression over detected corners.
        padded = np.pad(scores, 1)
        neighborhood = np.stack(
            [
                padded[1 + dy : 1 + dy + scores.shape[0],
                       1 + dx : 1 + dx + scores.shape[1]]
                for dy in (-1, 0, 1)
                for dx in (-1, 0, 1)
            ]
        )
        is_max = scores >= neighborhood.max(axis=0)
        corner_mask = corner_mask & is_max
        counter.trace.load += 9 * n_corners
        counter.trace.icmp += 9 * n_corners
        counter.trace.br_taken += n_corners

    ys, xs = np.nonzero(corner_mask)
    corners = [
        Corner(int(y) + BORDER, int(x) + BORDER, float(scores[y, x]))
        for y, x in zip(ys, xs)
    ]
    corners.sort(key=lambda c: -c.score)
    counter.trace.ialu += len(corners) * 8  # sort bookkeeping
    counter.trace.icmp += int(len(corners) * np.log2(len(corners) + 1)) * 2
    return corners
