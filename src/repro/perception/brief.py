"""BRIEF binary descriptors [35] and their rotated (ORB) variant.

256 intensity comparisons on a fixed random pattern inside a 31x31 patch,
packed into a 32-byte descriptor.  The rotation-aware variant steers the
pattern by the keypoint orientation (ORB's rBRIEF).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.mcu.ops import OpCounter

PATCH_RADIUS = 15
N_PAIRS = 256


def brief_pattern(seed: int = 42) -> np.ndarray:
    """The (N_PAIRS, 4) sampling pattern (y1, x1, y2, x2), Gaussian-drawn.

    Generated once from a fixed seed — the embedded implementation stores
    this pattern as a constant table in flash.
    """
    rng = np.random.default_rng(seed)
    pts = np.clip(
        rng.normal(0.0, PATCH_RADIUS / 2.5, size=(N_PAIRS, 4)),
        -PATCH_RADIUS,
        PATCH_RADIUS,
    )
    return np.round(pts).astype(int)


_DEFAULT_PATTERN = brief_pattern()


def describe(
    counter: OpCounter,
    img: np.ndarray,
    keypoints: List,
    orientations: Optional[np.ndarray] = None,
    pattern: Optional[np.ndarray] = None,
) -> np.ndarray:
    """BRIEF descriptors for keypoints; steered when orientations given.

    Returns a (n_kept, 32) uint8 array.  Keypoints closer than the patch
    radius to the border are skipped (their row is zero).
    """
    pattern = pattern if pattern is not None else _DEFAULT_PATTERN
    h, w = img.shape
    img_i = img.astype(np.int32)
    out = np.zeros((len(keypoints), N_PAIRS // 8), dtype=np.uint8)

    for ki, kp in enumerate(keypoints):
        y, x = kp.y, kp.x
        if (
            y < PATCH_RADIUS + 1
            or x < PATCH_RADIUS + 1
            or y >= h - PATCH_RADIUS - 1
            or x >= w - PATCH_RADIUS - 1
        ):
            counter.icmp(4)
            counter.branch(taken=False)
            continue
        if orientations is not None:
            # Steer the pattern: rotate every sample point.
            c, s = np.cos(orientations[ki]), np.sin(orientations[ki])
            counter.ffunc(2)
            y1 = np.round(c * pattern[:, 0] + s * pattern[:, 1]).astype(int)
            x1 = np.round(-s * pattern[:, 0] + c * pattern[:, 1]).astype(int)
            y2 = np.round(c * pattern[:, 2] + s * pattern[:, 3]).astype(int)
            x2 = np.round(-s * pattern[:, 2] + c * pattern[:, 3]).astype(int)
            y1 = np.clip(y1, -PATCH_RADIUS, PATCH_RADIUS)
            x1 = np.clip(x1, -PATCH_RADIUS, PATCH_RADIUS)
            y2 = np.clip(y2, -PATCH_RADIUS, PATCH_RADIUS)
            x2 = np.clip(x2, -PATCH_RADIUS, PATCH_RADIUS)
            counter.flop_mix(add=4 * N_PAIRS, mul=8 * N_PAIRS)
            counter.fcvt(4 * N_PAIRS)
        else:
            y1, x1, y2, x2 = pattern.T

        bits = img_i[y + y1, x + x1] < img_i[y + y2, x + x2]
        # Per pair: two loads, a compare, a shift-or into the descriptor.
        counter.load(2 * N_PAIRS)
        counter.icmp(N_PAIRS)
        counter.ialu(2 * N_PAIRS)
        counter.store(N_PAIRS // 8)
        counter.loop_overhead(N_PAIRS)
        out[ki] = np.packbits(bits.astype(np.uint8))
    return out


def hamming_distance(counter: OpCounter, d1: np.ndarray, d2: np.ndarray) -> int:
    """Popcount Hamming distance between two 32-byte descriptors."""
    x = np.bitwise_xor(d1, d2)
    counter.ialu(len(d1) * 2)  # xor + popcount per word
    counter.load(2 * len(d1))
    return int(np.unpackbits(x).sum())


def match_descriptors(
    counter: OpCounter,
    d1: np.ndarray,
    d2: np.ndarray,
    max_distance: int = 64,
) -> List:
    """Brute-force nearest-neighbour matching by Hamming distance."""
    matches = []
    for i in range(len(d1)):
        best_j, best_d = -1, max_distance + 1
        for j in range(len(d2)):
            d = hamming_distance(counter, d1[i], d2[j])
            counter.icmp()
            if d < best_d:
                best_j, best_d = j, d
                counter.branch()
        if best_j >= 0:
            matches.append((i, best_j, best_d))
        counter.loop_overhead(len(d2))
    return matches
