"""Gaussian filtering and image pyramids (counted).

Shared by the feature detectors (pre-blur), SIFT (scale space), and
pyramidal Lucas-Kanade.  Filters are separable; operation counts charge
the two 1-D passes a compiled fixed-point/float kernel would execute.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.mcu.ops import OpCounter


def gaussian_kernel(sigma: float) -> np.ndarray:
    """Odd-length 1-D Gaussian kernel covering +/- 3 sigma."""
    radius = max(1, int(np.ceil(3.0 * sigma)))
    xs = np.arange(-radius, radius + 1)
    k = np.exp(-(xs**2) / (2.0 * sigma**2))
    return k / k.sum()


def _convolve_rows(img: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    pad = len(kernel) // 2
    padded = np.pad(img, ((0, 0), (pad, pad)), mode="edge")
    out = np.zeros_like(img, dtype=np.float64)
    for i, kv in enumerate(kernel):
        out += kv * padded[:, i : i + img.shape[1]]
    return out


def gaussian_blur(counter: OpCounter, img: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur with per-tap operation accounting."""
    kernel = gaussian_kernel(sigma)
    taps = len(kernel)
    h, w = img.shape
    out = _convolve_rows(img.astype(np.float64), kernel)
    out = _convolve_rows(out.T, kernel).T
    n_px = h * w
    # Two separable passes: taps multiply-accumulates + loads per pixel.
    counter.trace.ffma += 2 * taps * n_px
    counter.trace.load += 2 * (taps + 1) * n_px
    counter.trace.store += 2 * n_px
    counter.trace.ialu += 2 * taps * n_px // 2
    counter.loop_overhead(2 * n_px)
    return out


def downsample(counter: OpCounter, img: np.ndarray) -> np.ndarray:
    """2x decimation (every other pixel), as embedded pyramids do."""
    out = img[::2, ::2].copy()
    n = out.size
    counter.trace.load += n
    counter.trace.store += n
    counter.trace.ialu += 2 * n
    return out


def build_pyramid(
    counter: OpCounter,
    img: np.ndarray,
    levels: int,
    sigma: float = 1.0,
) -> List[np.ndarray]:
    """Gaussian pyramid: blur + decimate per level."""
    pyramid = [img.astype(np.float64)]
    for _ in range(levels - 1):
        blurred = gaussian_blur(counter, pyramid[-1], sigma)
        pyramid.append(downsample(counter, blurred))
    return pyramid


def image_gradients(counter: OpCounter, img: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Central-difference gradients over the full frame."""
    gx = np.zeros_like(img, dtype=np.float64)
    gy = np.zeros_like(img, dtype=np.float64)
    gx[:, 1:-1] = (img[:, 2:] - img[:, :-2]) * 0.5
    gy[1:-1, :] = (img[2:, :] - img[:-2, :]) * 0.5
    n = img.size
    counter.trace.fadd += 2 * n
    counter.trace.fmul += 2 * n
    counter.trace.load += 4 * n
    counter.trace.store += 2 * n
    counter.loop_overhead(n)
    return gx, gy


def bilinear_sample(img: np.ndarray, ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Bilinear interpolation at float coordinates (clamped to bounds)."""
    h, w = img.shape
    ys = np.clip(ys, 0, h - 1.001)
    xs = np.clip(xs, 0, w - 1.001)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    fy = ys - y0
    fx = xs - x0
    return (
        img[y0, x0] * (1 - fy) * (1 - fx)
        + img[y0, x0 + 1] * (1 - fy) * fx
        + img[y0 + 1, x0] * fy * (1 - fx)
        + img[y0 + 1, x0 + 1] * fy * fx
    )


def count_bilinear(counter: OpCounter, n_samples: int) -> None:
    """Operation cost of ``n_samples`` bilinear fetches."""
    counter.trace.fmul += 8 * n_samples
    counter.trace.fadd += 5 * n_samples
    counter.trace.fcvt += 2 * n_samples
    counter.trace.load += 4 * n_samples
    counter.trace.ialu += 6 * n_samples
