"""Optical flow kernels: lkof, iiof, bbof, bbof-vec.

* ``lkof``     — pyramidal iterative Lucas-Kanade [4]: per-feature 11x11
  windows, spatial gradient matrix, iterative warp refinement across
  pyramid levels.  The most expensive flow kernel (pyramid + gradients).
* ``iiof``     — Srinivasan's image-interpolation method [63]: a global
  flow estimate from a closed-form least squares over reference shifts.
* ``bbof``     — brute-force block matching by sum of absolute
  differences over a search window.
* ``bbof-vec`` — the same with USADA8-style packed SAD (4 pixels per
  instruction), the ~4x DSP-extension win of Case Study 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.mcu.ops import OpCounter
from repro.perception.gaussian import (
    bilinear_sample,
    build_pyramid,
    count_bilinear,
    image_gradients,
)


@dataclass(frozen=True)
class FlowEstimate:
    """One flow vector (dy, dx) with a validity flag."""

    dy: float
    dx: float
    valid: bool


# ---------------------------------------------------------------------------
# Lucas-Kanade
# ---------------------------------------------------------------------------


def lucas_kanade_feature(
    counter: OpCounter,
    grads: Tuple[np.ndarray, np.ndarray],
    frame0: np.ndarray,
    frame1: np.ndarray,
    y: float,
    x: float,
    init: Tuple[float, float] = (0.0, 0.0),
    window: int = 11,
    max_iters: int = 10,
    eps: float = 0.01,
) -> FlowEstimate:
    """Iterative LK refinement of one feature at one pyramid level."""
    gx, gy = grads
    half = window // 2
    h, w = frame0.shape
    if not (half < y < h - half - 1 and half < x < w - half - 1):
        counter.icmp(4)
        return FlowEstimate(0.0, 0.0, False)

    ys, xs = np.mgrid[-half : half + 1, -half : half + 1]
    wy = ys + y
    wx = xs + x
    n_px = window * window

    ix = bilinear_sample(gx, wy, wx)
    iy = bilinear_sample(gy, wy, wx)
    i0 = bilinear_sample(frame0, wy, wx)
    count_bilinear(counter, 3 * n_px)

    # Spatial gradient matrix G (2x2) — computed once per level.
    gxx = float((ix * ix).sum())
    gyy = float((iy * iy).sum())
    gxy = float((ix * iy).sum())
    counter.trace.ffma += 3 * n_px
    counter.trace.load += 2 * n_px
    counter.loop_overhead(n_px)
    det = gxx * gyy - gxy * gxy
    counter.flop_mix(add=1, mul=3)
    if abs(det) < 1e-9:
        counter.fcmp()
        return FlowEstimate(0.0, 0.0, False)
    inv = np.array([[gyy, -gxy], [-gxy, gxx]]) / det
    counter.flop_mix(div=4)

    dy, dx = init
    for _ in range(max_iters):
        counter.loop_overhead(1)
        i1 = bilinear_sample(frame1, wy + dy, wx + dx)
        count_bilinear(counter, n_px)
        it = i1 - i0
        counter.vec_add(n_px)
        b = np.array([float((it * ix).sum()), float((it * iy).sum())])
        counter.trace.ffma += 2 * n_px
        counter.trace.load += 2 * n_px
        step = inv @ b
        counter.flop_mix(add=2, mul=4)
        dx -= float(step[0])
        dy -= float(step[1])
        counter.vec_add(2)
        if float(np.hypot(step[0], step[1])) < eps:
            counter.fcmp()
            counter.branch()
            break
    return FlowEstimate(dy, dx, True)


def lucas_kanade_flow(
    counter: OpCounter,
    frame0: np.ndarray,
    frame1: np.ndarray,
    features: Optional[np.ndarray] = None,
    levels: int = 2,
    window: int = 11,
    max_iters: int = 10,
) -> List[FlowEstimate]:
    """Pyramidal LK over a feature grid (default: a 5x5 interior grid)."""
    h, w = frame0.shape
    if features is None:
        margin = window
        ys = np.linspace(margin, h - margin - 1, 5)
        xs = np.linspace(margin, w - margin - 1, 5)
        features = np.array([(y, x) for y in ys for x in xs])

    pyr0 = build_pyramid(counter, frame0.astype(np.float64), levels)
    pyr1 = build_pyramid(counter, frame1.astype(np.float64), levels)
    grads = [image_gradients(counter, lvl) for lvl in pyr0]

    results: List[FlowEstimate] = []
    for fy, fx in features:
        dy = dx = 0.0
        ok = True
        for level in range(levels - 1, -1, -1):
            counter.loop_overhead(1)
            scale = 2.0**level
            est = lucas_kanade_feature(
                counter,
                grads[level],
                pyr0[level],
                pyr1[level],
                fy / scale,
                fx / scale,
                init=(dy, dx),
                window=window,
                max_iters=max_iters,
            )
            if not est.valid:
                ok = False
                break
            if level > 0:
                dy, dx = est.dy * 2.0, est.dx * 2.0
                counter.flop_mix(mul=2)
            else:
                dy, dx = est.dy, est.dx
        results.append(FlowEstimate(dy, dx, ok))
    return results


# ---------------------------------------------------------------------------
# Image interpolation (Srinivasan)
# ---------------------------------------------------------------------------


def image_interpolation_flow(
    counter: OpCounter,
    frame0: np.ndarray,
    frame1: np.ndarray,
    ref_shift: int = 2,
) -> FlowEstimate:
    """Global flow by interpolating between +/- shifted references.

    Model: f1 ~ f0 + (dx / 2s) (f0(x-s) - f0(x+s)) + (dy / 2s) (...);
    least squares in the two unknowns gives a closed-form 2x2 solve.
    """
    f0 = frame0.astype(np.float64)
    f1 = frame1.astype(np.float64)
    s = ref_shift
    core = np.s_[s:-s, s:-s]

    fxm = f0[s:-s, : -2 * s]  # shifted +s in x
    fxp = f0[s:-s, 2 * s :]
    fym = f0[: -2 * s, s:-s]
    fyp = f0[2 * s :, s:-s]
    phi_x = (fxm - fxp) / (2.0 * s)
    phi_y = (fym - fyp) / (2.0 * s)
    dt = f1[core] - f0[core]
    n_px = dt.size
    counter.trace.fadd += 3 * n_px
    counter.trace.fmul += 2 * n_px
    counter.trace.load += 6 * n_px
    counter.trace.store += 3 * n_px
    counter.loop_overhead(n_px)

    a11 = float((phi_x * phi_x).sum())
    a22 = float((phi_y * phi_y).sum())
    a12 = float((phi_x * phi_y).sum())
    b1 = float((phi_x * dt).sum())
    b2 = float((phi_y * dt).sum())
    counter.trace.ffma += 5 * n_px
    counter.trace.load += 4 * n_px

    det = a11 * a22 - a12 * a12
    counter.flop_mix(add=1, mul=3)
    if abs(det) < 1e-12:
        counter.fcmp()
        return FlowEstimate(0.0, 0.0, False)
    dx = (a22 * b1 - a12 * b2) / det
    dy = (a11 * b2 - a12 * b1) / det
    counter.flop_mix(add=2, mul=4, div=2)
    return FlowEstimate(float(dy), float(dx), True)


# ---------------------------------------------------------------------------
# Block matching
# ---------------------------------------------------------------------------


def block_matching_flow(
    counter: OpCounter,
    frame0: np.ndarray,
    frame1: np.ndarray,
    block: int = 8,
    search: int = 8,
    vectorized: bool = False,
) -> FlowEstimate:
    """SAD block matching of the central block over a +/-search window.

    ``vectorized=True`` models the USADA8 packed-SAD path: 4 absolute
    differences accumulate per instruction, cutting the inner-loop cost by
    ~4x (Case Study 1's bbof-vec row).
    """
    h, w = frame0.shape
    cy, cx = h // 2, w // 2
    half = block // 2
    tpl = frame0[cy - half : cy + half, cx - half : cx + half].astype(np.int32)

    best: Tuple[int, int] = (0, 0)
    best_sad = np.inf
    n_candidates = 0
    for dy in range(-search, search + 1):
        for dx in range(-search, search + 1):
            y0, x0 = cy - half + dy, cx - half + dx
            if y0 < 0 or x0 < 0 or y0 + block > h or x0 + block > w:
                counter.icmp(4)
                continue
            cand = frame1[y0 : y0 + block, x0 : x0 + block].astype(np.int32)
            sad = int(np.abs(cand - tpl).sum())
            n_candidates += 1
            counter.icmp()
            if sad < best_sad:
                best_sad = sad
                best = (dy, dx)
                counter.branch()
            else:
                counter.branch(taken=False)

    n_px = block * block
    if vectorized:
        # USADA8: load 4 packed pixels per word on each side, one SAD
        # accumulate instruction per word, plus the unaligned-access fixup
        # shifts that real packed-pixel search windows require.
        per_candidate_simd = n_px // 4
        counter.simd(n_candidates * per_candidate_simd)
        counter.load(n_candidates * 2 * (n_px // 4))
        counter.ialu(n_candidates * 3 * (n_px // 4))
    else:
        # Scalar: two loads, subtract, abs (compare+negate), accumulate.
        counter.load(n_candidates * 2 * n_px)
        counter.ialu(n_candidates * 3 * n_px)
        counter.icmp(n_candidates * n_px)
    counter.loop_overhead(n_candidates * (1 if vectorized else block))
    return FlowEstimate(float(best[0]), float(best[1]), np.isfinite(best_sad))
