"""Benchmark problems for the perception kernels.

Registers the Table III Perception rows: ``fastbrief``, ``orb``, ``sift``,
``lkof``, ``iiof``, ``bbof`` — plus the ``bbof-vec`` DSP-extension variant
used in Case Study 1.  Feature detection runs on 160x160 frames, optical
flow on 80x80 frames (the paper's Section V sizes).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.problem import EntoProblem
from repro.core.registry import register
from repro.datasets import images
from repro.mcu.memory import Footprint, image_buffer_bytes
from repro.mcu.ops import OpCounter
from repro.mcu.static import StaticMix, compose
from repro.perception import brief
from repro.perception.fast import fast_detect
from repro.perception.flow import (
    block_matching_flow,
    image_interpolation_flow,
    lucas_kanade_flow,
)
from repro.perception.gaussian import gaussian_blur
from repro.perception.orb_kernel import orb_detect_and_describe
from repro.perception.sift import (
    scale_space_footprint_bytes,
    sift_detect_and_describe,
)
from repro.scalar import F32, ScalarType


class _FeatureProblem(EntoProblem):
    """Shared scaffolding for the feature-detector kernels."""

    stage = "P"
    category = "Feat. Extr."
    dataset_name = "midd-stereo"
    image_shape = images.FEATURE_IMAGE_SHAPE

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 dataset: str = "midd"):
        super().__init__(scalar, seed)
        self.dataset = dataset
        self.image: Optional[np.ndarray] = None
        self.last_n_features = 0

    def setup(self, rng: np.random.Generator) -> None:
        self.image = images.load(self.dataset, shape=self.image_shape, seed=self.seed)


class FastBriefProblem(_FeatureProblem):
    """Gaussian pre-blur + FAST-9 corners + BRIEF descriptors."""

    name = "fastbrief"
    MIN_FEATURES = 4

    def solve(self, counter: OpCounter):
        blurred = gaussian_blur(counter, self.image.astype(np.float64), sigma=1.0)
        corners = fast_detect(counter, blurred.astype(np.uint8))
        descriptors = brief.describe(counter, self.image, corners)
        self.last_n_features = len(corners)
        return corners, descriptors

    def validate(self, result) -> bool:
        corners, descriptors = result
        if len(corners) < self.MIN_FEATURES:
            return False
        # Descriptors for interior corners must be non-trivial bit strings.
        populated = descriptors[descriptors.any(axis=1)]
        return len(populated) >= self.MIN_FEATURES

    def static_mix_base(self) -> StaticMix:
        return compose(("gaussian_blur", "fast_detector", "brief_descriptor",
                        "harness_runtime"))

    def footprint(self) -> Footprint:
        h, w = self.image_shape
        # Frame + blurred copy + corner/descriptor buffers.
        data = image_buffer_bytes(h, w) + image_buffer_bytes(h, w, 2) + 16 * 1024
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes,
                         data_bytes=data)


class OrbProblem(_FeatureProblem):
    """ORB: oriented FAST + Harris ranking + rotated BRIEF."""

    name = "orb"
    MIN_FEATURES = 4

    def solve(self, counter: OpCounter):
        blurred = gaussian_blur(counter, self.image.astype(np.float64), sigma=1.0)
        keypoints, descriptors = orb_detect_and_describe(
            counter, blurred.astype(np.uint8)
        )
        self.last_n_features = len(keypoints)
        return keypoints, descriptors

    def validate(self, result) -> bool:
        keypoints, descriptors = result
        if len(keypoints) < self.MIN_FEATURES:
            return False
        populated = descriptors[descriptors.any(axis=1)]
        return len(populated) >= self.MIN_FEATURES

    def static_mix_base(self) -> StaticMix:
        return compose(("gaussian_blur", "fast_detector", "harris_score",
                        "orientation_moments", "rotated_brief", "harness_runtime"))

    def footprint(self) -> Footprint:
        h, w = self.image_shape
        data = image_buffer_bytes(h, w) + image_buffer_bytes(h, w, 2) + 24 * 1024
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes,
                         data_bytes=data)


class SiftProblem(_FeatureProblem):
    """Full SIFT — M7-only (scale space exceeds M4/M33 SRAM)."""

    name = "sift"
    MIN_FEATURES = 4

    def solve(self, counter: OpCounter):
        keypoints, descriptors = sift_detect_and_describe(counter, self.image)
        self.last_n_features = len(keypoints)
        return keypoints, descriptors

    def validate(self, result) -> bool:
        keypoints, descriptors = result
        if len(keypoints) < self.MIN_FEATURES:
            return False
        norms = np.linalg.norm(descriptors, axis=1)
        return bool(np.all(np.abs(norms[: self.MIN_FEATURES] - 1.0) < 0.05))

    def static_mix_base(self) -> StaticMix:
        return compose(("dog_pyramid", "sift_extrema", "sift_orientation",
                        "sift_descriptor", "gaussian_blur", "image_pyramid",
                        "harness_runtime"))

    def footprint(self) -> Footprint:
        return Footprint(
            flash_bytes=self.static_mix_base().flash_bytes,
            data_bytes=scale_space_footprint_bytes(self.image_shape),
        )


class _FlowProblem(EntoProblem):
    """Shared scaffolding for the optical-flow kernels."""

    stage = "P"
    category = "Opt. Flow"
    dataset_name = "midd-flow"
    image_shape = images.FLOW_IMAGE_SHAPE
    #: Acceptable flow error in pixels.
    MAX_FLOW_ERR_PX = 0.75

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 dataset: str = "midd",
                 displacement: tuple = (1.6, -2.3)):
        super().__init__(scalar, seed)
        self.dataset = dataset
        self.displacement = displacement
        self.pair = None
        self.last_flow_error_px: Optional[float] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.pair = images.flow_pair(
            self.dataset, shape=self.image_shape,
            displacement=self.displacement, seed=self.seed,
        )

    def _error(self, dy: float, dx: float) -> float:
        true = self.pair["true_flow"]
        return float(np.hypot(dy - true[0], dx - true[1]))

    def footprint(self) -> Footprint:
        h, w = self.image_shape
        data = 2 * image_buffer_bytes(h, w) + 3 * image_buffer_bytes(h, w, 4)
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes,
                         data_bytes=data)


class LkofProblem(_FlowProblem):
    name = "lkof"

    def solve(self, counter: OpCounter):
        flows = lucas_kanade_flow(counter, self.pair["frame0"], self.pair["frame1"])
        valid = [(f.dy, f.dx) for f in flows if f.valid]
        if not valid:
            self.last_flow_error_px = float("inf")
            return flows
        med = np.median(np.array(valid), axis=0)
        self.last_flow_error_px = self._error(float(med[0]), float(med[1]))
        return flows

    def validate(self, result) -> bool:
        return self.last_flow_error_px <= self.MAX_FLOW_ERR_PX

    def static_mix_base(self) -> StaticMix:
        return compose(("lk_gradients", "lk_iteration", "image_pyramid",
                        "bilinear_interp", "gaussian_blur", "harness_runtime"))


class IiofProblem(_FlowProblem):
    name = "iiof"
    # Global interpolation is biased at multi-pixel motion; accept a looser
    # bound (the kernel is meant for small inter-frame motion).
    MAX_FLOW_ERR_PX = 1.5

    def __init__(self, scalar: ScalarType = F32, seed: int = 0,
                 dataset: str = "midd", displacement: tuple = (0.8, -1.1)):
        super().__init__(scalar, seed, dataset, displacement)

    def solve(self, counter: OpCounter):
        est = image_interpolation_flow(counter, self.pair["frame0"], self.pair["frame1"])
        self.last_flow_error_px = (
            self._error(est.dy, est.dx) if est.valid else float("inf")
        )
        return est

    def validate(self, result) -> bool:
        return self.last_flow_error_px <= self.MAX_FLOW_ERR_PX

    def static_mix_base(self) -> StaticMix:
        return compose(("image_shift_interp", "bilinear_interp", "harness_runtime"))


class BbofProblem(_FlowProblem):
    name = "bbof"
    vectorized = False
    # Block matching is integer-pixel; allow the rounding slack.
    MAX_FLOW_ERR_PX = 0.95

    def solve(self, counter: OpCounter):
        est = block_matching_flow(
            counter, self.pair["frame0"], self.pair["frame1"],
            vectorized=self.vectorized,
        )
        self.last_flow_error_px = (
            self._error(est.dy, est.dx) if est.valid else float("inf")
        )
        return est

    def validate(self, result) -> bool:
        return self.last_flow_error_px <= self.MAX_FLOW_ERR_PX

    def static_mix_base(self) -> StaticMix:
        block = "sad_block_match_simd" if self.vectorized else "sad_block_match"
        return compose((block, "harness_runtime"))


class BbofVecProblem(BbofProblem):
    name = "bbof-vec"
    vectorized = True


register("fastbrief")(FastBriefProblem)
register("orb")(OrbProblem)
register("sift")(SiftProblem)
register("lkof")(LkofProblem)
register("iiof")(IiofProblem)
register("bbof")(BbofProblem)
register("bbof-vec")(BbofVecProblem)
