"""Perception kernels: feature detection, descriptors, optical flow."""

from repro.perception.fast import Corner, fast_detect
from repro.perception.flow import (
    FlowEstimate,
    block_matching_flow,
    image_interpolation_flow,
    lucas_kanade_flow,
)
from repro.perception.orb_kernel import OrbKeypoint, orb_detect_and_describe
from repro.perception.sift import SiftKeypoint, sift_detect_and_describe

__all__ = [
    "Corner",
    "fast_detect",
    "FlowEstimate",
    "block_matching_flow",
    "image_interpolation_flow",
    "lucas_kanade_flow",
    "OrbKeypoint",
    "orb_detect_and_describe",
    "SiftKeypoint",
    "sift_detect_and_describe",
]
