"""A two-frame perception front end: detect → describe → match → estimate.

Composes the suite's building blocks into the pipeline the paper's
introduction motivates ("building blocks towards visual(-inertial)
odometry"): FAST corners + BRIEF descriptors in both frames, brute-force
Hamming matching with a ratio test, and a robust homography fit over the
matches — the registration step a hovering robot uses to estimate
inter-frame motion over flat ground.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.mcu.ops import OpCounter
from repro.perception import brief
from repro.perception.fast import fast_detect
from repro.perception.gaussian import gaussian_blur
from repro.pose.relative import homography_dlt, homography_transfer_error


@dataclass(frozen=True)
class FrameMatches:
    """Matched keypoint coordinates between two frames (pixels)."""

    points0: np.ndarray  # (N, 2) as (y, x)
    points1: np.ndarray
    distances: np.ndarray  # Hamming distances

    @property
    def n(self) -> int:
        return len(self.points0)


def detect_and_describe(
    counter: OpCounter,
    frame: np.ndarray,
    max_features: int = 60,
    threshold: int = 20,
) -> Tuple[list, np.ndarray]:
    """FAST + BRIEF on one frame (with the standard pre-blur)."""
    blurred = gaussian_blur(counter, frame.astype(np.float64), sigma=1.0)
    corners = fast_detect(counter, blurred.astype(np.uint8),
                          threshold=threshold)[:max_features]
    descriptors = brief.describe(counter, frame, corners)
    keep = descriptors.any(axis=1)
    corners = [c for c, k in zip(corners, keep) if k]
    return corners, descriptors[keep]


def match_frames(
    counter: OpCounter,
    frame0: np.ndarray,
    frame1: np.ndarray,
    max_features: int = 60,
    max_distance: int = 48,
    ratio: float = 0.85,
) -> FrameMatches:
    """Mutually consistent BRIEF matches with a Lowe-style ratio test."""
    c0, d0 = detect_and_describe(counter, frame0, max_features)
    c1, d1 = detect_and_describe(counter, frame1, max_features)
    if not c0 or not c1:
        empty = np.zeros((0, 2))
        return FrameMatches(empty, empty, np.zeros(0))

    pts0, pts1, dists = [], [], []
    for i in range(len(d0)):
        best_j, best_d, second_d = -1, max_distance + 1, max_distance + 1
        for j in range(len(d1)):
            d = brief.hamming_distance(counter, d0[i], d1[j])
            counter.icmp(2)
            if d < best_d:
                second_d = best_d
                best_j, best_d = j, d
            elif d < second_d:
                second_d = d
        counter.loop_overhead(len(d1))
        if best_j < 0 or best_d > max_distance:
            counter.branch(taken=False)
            continue
        if second_d <= max_distance and best_d > ratio * second_d:
            counter.branch(taken=False)
            continue  # ambiguous match
        pts0.append((c0[i].y, c0[i].x))
        pts1.append((c1[best_j].y, c1[best_j].x))
        dists.append(best_d)
        counter.branch()
    return FrameMatches(
        np.array(pts0, dtype=np.float64).reshape(-1, 2),
        np.array(pts1, dtype=np.float64).reshape(-1, 2),
        np.array(dists, dtype=np.float64),
    )


@dataclass(frozen=True)
class RegistrationResult:
    """Robust inter-frame registration from matched features."""

    homography: Optional[np.ndarray]
    translation_px: Optional[np.ndarray]  # (dy, dx) at the frame center
    n_matches: int
    n_inliers: int


def register_frames(
    counter: OpCounter,
    frame0: np.ndarray,
    frame1: np.ndarray,
    inlier_threshold_px: float = 2.0,
    max_iterations: int = 50,
    seed: int = 0,
) -> RegistrationResult:
    """Match features and robustly fit a homography between two frames.

    RANSAC over 4-point minimal homographies, scored by forward transfer
    error, with a final all-inlier refit — the flat-ground registration an
    altitude-holding robot can use for lateral-drift estimates.
    """
    matches = match_frames(counter, frame0, frame1)
    if matches.n < 4:
        return RegistrationResult(None, None, matches.n, 0)

    # Work in (x, y) order for the homography convention.
    x0 = matches.points0[:, ::-1]
    x1 = matches.points1[:, ::-1]

    rng = np.random.default_rng(seed)
    thr_sq = inlier_threshold_px**2
    best_h, best_mask = None, np.zeros(matches.n, dtype=bool)
    for _ in range(max_iterations):
        counter.loop_overhead(1)
        idx = rng.choice(matches.n, size=4, replace=False)
        counter.ialu(24)
        h = homography_dlt(counter, x0[idx], x1[idx])
        if h is None:
            continue
        err = homography_transfer_error(counter, h, x0, x1)
        mask = err < thr_sq
        counter.fcmp(matches.n)
        if mask.sum() > best_mask.sum():
            best_h, best_mask = h, mask
    if best_h is None or best_mask.sum() < 4:
        return RegistrationResult(None, None, matches.n, int(best_mask.sum()))

    if best_mask.sum() > 4:
        refit = homography_dlt(counter, x0[best_mask], x1[best_mask])
        if refit is not None:
            best_h = refit

    h_img, w_img = frame0.shape
    center = np.array([w_img / 2.0, h_img / 2.0, 1.0])
    mapped = best_h @ center
    counter.mat_vec(3, 3)
    counter.fdiv(2)
    mapped = mapped[:2] / mapped[2]
    translation = np.array([mapped[1] - center[1], mapped[0] - center[0]])
    return RegistrationResult(best_h, translation, matches.n, int(best_mask.sum()))
