"""Command-line interface.

Mirrors the artifact's make-target workflow with subcommands::

    python -m repro list                       # the registered suite
    python -m repro run mahony --arch m4       # one kernel, one core
    python -m repro sweep --kernels mahony,p3p --out results.json
    python -m repro sweep --jobs 4 --cache-dir .trace-cache --resume \
        --out results.json                     # engine: parallel + cached
    python -m repro tables --table 4           # regenerate a paper table
    python -m repro mission hover --arch m33   # closed-loop evaluation
    python -m repro faults --fault brownout --mission hover \
        --severities 0.25,0.5,1.0 --out resilience.json
    python -m repro trace mission hover        # profile: phase report
    python -m repro sweep --trace sweep.trace.json   # Perfetto-loadable
    python -m repro scenarios list             # tiered scenario catalog
    python -m repro scenarios generate --tier b --count 100 --seed 42 \
        --out scenarios.json                   # content-addressed set
    python -m repro scenarios run --tier b --count 1000 --seed 42 \
        --jobs 4 --out campaign.json           # campaign-scale study
    python -m repro lint                       # layering + determinism rules
    python -m repro lint --format json         # machine report (CI gate)
    python -m repro serve --port 7453          # benchmark-query service
    python -m repro query characterize --kernel mahony --arch m33

Observability: ``sweep``, ``mission``, and ``faults`` accept ``--trace``
(Chrome trace-event JSON, open in https://ui.perfetto.dev) and
``--metrics-out`` (JSONL metric dump); ``repro trace <cmd>`` runs the
same command with tracing on and prints a hottest-first phase report.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.backends import arch_names, characterization_archs
from repro.mcu.arch import get_arch
from repro.mcu.cache import CACHE_OFF, CACHE_ON
from repro.scalar import parse_scalar


def _cmd_list(args) -> int:
    print(f"{'stage':6s} {'kernel':18s} {'category':16s} {'dataset':16s}")
    print("-" * 60)
    for name in registry.names():
        problem = registry.create(name)
        print(f"{problem.stage:6s} {name:18s} {problem.category:16s} "
              f"{problem.dataset_name:16s}")
    return 0


def _cmd_backends(args) -> int:
    from repro.backends import list_backends

    if args.backends_command == "list":
        print(f"{'backend':10s} {'archs':34s} characterization")
        print("-" * 78)
        for row in list_backends():
            print(f"{row['backend']:10s} {', '.join(row['archs']):34s} "
                  f"{', '.join(row['characterization'])}")
            print(f"{'':10s} {row['description']}")
        return 0
    if args.backends_command == "show":
        from repro.backends import backend_for

        arch = get_arch(args.arch)
        fpu = ("DP" if arch.fpu.double
               else ("SP" if arch.fpu.single else "soft-float"))
        print(f"{arch.name}: {arch.core} ({arch.isa}) on {arch.board}")
        print(f"  backend: {backend_for(arch).name}")
        print(f"  clock: {arch.clock_mhz:.0f} MHz  pipeline: "
              f"{arch.pipeline_stages} stages  fpu: {fpu}")
        print(f"  caches: {arch.cache.icache_bytes // 1024} KB I / "
              f"{arch.cache.dcache_bytes // 1024} KB D")
        print(f"  memory: {arch.memory.flash_bytes // 1024} KB flash "
              f"(+{arch.memory.flash_wait_cycles:g} waits), "
              f"{arch.memory.sram_bytes // 1024} KB SRAM "
              f"(+{arch.memory.sram_wait_cycles:g} waits)")
        print(f"  power: {arch.power.active_mw:g} mW active, "
              f"{arch.power.idle_mw:g} mW idle, "
              f"{arch.process_node_nm} nm node")
        return 0
    raise ValueError(f"unknown backends command {args.backends_command!r}")


def _cmd_run(args) -> int:
    arch = get_arch(args.arch)
    config = HarnessConfig(reps=args.reps, warmup_reps=args.warmup)
    kwargs = {}
    if args.scalar:
        kwargs["scalar"] = parse_scalar(args.scalar)
    problem = registry.create(args.kernel, **kwargs)
    harness = Harness(arch, config)
    cache = CACHE_ON if args.cache else CACHE_OFF
    result = harness.run(problem, cache)
    if not result.fits:
        print(f"{args.kernel} does not fit {arch.name}: {result.skip_reason}")
        return 1
    print(f"kernel    : {args.kernel} [{problem.scalar}] on {arch.core} "
          f"({cache.label})")
    print(f"validated : {result.all_valid}")
    print(f"cycles    : {result.unit_cycles:,.0f} per unit "
          f"({result.work_units} units/solve)")
    print(f"latency   : {result.unit_latency_us:.2f} us")
    print(f"energy    : {result.unit_energy_uj:.3f} uJ")
    print(f"peak power: {result.peak_power_mw:.0f} mW")
    return 0 if result.all_valid else 1


@contextmanager
def _observation(args, report: bool = False):
    """Enable tracing/metrics around a command when the flags ask for it.

    Args:
        args: Parsed CLI namespace; ``--trace`` / ``--metrics-out`` paths
            are read from it when present.
        report: Also print the text phase report after the command (the
            ``repro trace`` wrapper sets this).

    Yields:
        None; on exit the requested exports are written and the process
        returns to the zero-overhead disabled defaults.
    """
    import repro.obs as obs

    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    if not (trace_path or metrics_path or report):
        yield
        return
    tracer, metrics = obs.observe()
    try:
        yield
    finally:
        if report:
            print()
            print(obs.phase_report(tracer))
        if trace_path:
            path = obs.save_chrome_trace(tracer, trace_path)
            print(f"trace     : {path} (open in https://ui.perfetto.dev)")
        if metrics_path:
            path = obs.save_metrics_jsonl(metrics, metrics_path)
            print(f"metrics   : {path}")
        obs.unobserve()


def _engine_options(args):
    """Build EngineOptions from the shared --jobs/--cache-dir/... flags."""
    from repro.engine import EngineOptions

    checkpoint = getattr(args, "checkpoint", None)
    resume = bool(getattr(args, "resume", False))
    if resume and checkpoint is None and getattr(args, "out", None):
        # --resume without an explicit checkpoint derives one from --out.
        checkpoint = str(Path(args.out).with_suffix(".checkpoint.jsonl"))
    return EngineOptions(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not getattr(args, "no_cache", False),
        checkpoint=checkpoint,
        resume=resume,
        vectorize=getattr(args, "price", "vector") != "serial",
    )


def _cmd_sweep(args) -> int:
    from repro.core.experiment import SweepSpec, run_sweep
    from repro.core.experiment_io import (
        save_results_csv,
        save_results_json,
        save_telemetry_json,
        telemetry_path_for,
    )
    from repro.engine import Telemetry, verbose_subscriber

    kernels = (args.kernels.split(",") if args.kernels else registry.suite())
    archs = ([get_arch(a) for a in args.archs.split(",")]
             if args.archs else list(characterization_archs()))
    spec = SweepSpec(
        kernels=kernels,
        archs=archs,
        config=HarnessConfig(reps=args.reps, warmup_reps=args.warmup),
    )
    telemetry = Telemetry()
    if args.verbose:
        telemetry.subscribe(verbose_subscriber(print))
    results = run_sweep(spec, options=_engine_options(args), telemetry=telemetry)
    summary = telemetry.summary()
    print(f"{len(results)} configurations, {results.datapoints()} datapoints")
    print(
        f"engine    : {summary['solves_executed']} solves, "
        f"{summary['cache_hits']} cache hits "
        f"({summary['cache_hit_rate']:.0%}), "
        f"{summary['cells_resumed']} cells resumed, "
        f"{summary['wall_s']:.2f}s wall "
        f"(~{summary['est_speedup_vs_serial']:.1f}x vs serial)"
    )
    if args.out:
        if args.out.endswith(".csv"):
            path = save_results_csv(results, args.out)
        else:
            path = save_results_json(results, args.out)
        print(f"saved: {path}")
        tpath = save_telemetry_json(summary, telemetry_path_for(args.out))
        print(f"telemetry: {tpath}")
    return 0


def _cmd_tables(args) -> int:
    from repro.analysis import attitude_study, flops, tables

    config = HarnessConfig(reps=args.reps, warmup_reps=args.warmup)
    table = args.table
    if table == 3:
        print(tables.render_table3(tables.table3_static()))
    elif table == 4:
        sweep = tables.table4_dynamic(
            config=config, jobs=args.jobs, cache_dir=args.cache_dir
        )
        print(tables.render_table4(sweep, kernels=tables.TABLE_KERNELS))
    elif table == 5:
        print(tables.render_table5(tables.table5_architectures()))
    elif table == 6:
        print(tables.render_table6(tables.table6_perception(config=config)))
    elif table == 7:
        print(attitude_study.render_table7(
            attitude_study.table7_attitude(config=config)))
    elif table == 8:
        print(flops.render_table8(flops.table8_flops(config=config)))
    else:
        print(f"no such table: {table} (know 3-8)", file=sys.stderr)
        return 2
    return 0


def _cmd_mission(args) -> int:
    from repro.api import MissionSpec, run_mission

    arch = get_arch(args.arch)
    result = run_mission(MissionSpec(mission=args.mission, arch=args.arch))
    print(f"mission   : {result.name} on {arch.core}")
    print(f"completed : {result.completed}")
    print(f"path error: rms={result.path_error_rms_m:.4f} "
          f"max={result.path_error_max_m:.4f}")
    print(f"rate      : {result.effective_rate_hz:.0f} Hz "
          f"(deadline hit {result.deadline_hit_rate:.0%})")
    print(f"compute   : {result.compute_energy_mj:.3f} mJ, "
          f"{result.compute_latency_s * 1e6:.1f} us/step")
    return 0 if result.completed else 1


def _cmd_faults(args) -> int:
    from repro.engine import Telemetry
    from repro.faults import (
        FaultCampaignSpec,
        build_report,
        fault_names,
        get_fault,
        render_report,
        run_campaign,
        save_report,
    )

    if args.list:
        print(f"{'fault':16s} {'seams':22s} summary")
        print("-" * 76)
        for name in fault_names():
            fault = get_fault(name)
            print(f"{name:16s} {'/'.join(fault.kinds):22s} {fault.summary}")
        return 0
    if args.fault is None:
        print("--fault is required (or --list)", file=sys.stderr)
        return 2

    severities = tuple(float(s) for s in args.severities.split(","))
    missions = tuple(args.mission.split(",")) if args.mission else ()
    kernels = tuple(args.kernels.split(",")) if args.kernels else ()
    if not missions and not kernels:
        print("nothing to do: give --mission and/or --kernels",
              file=sys.stderr)
        return 2
    spec = FaultCampaignSpec(
        fault=args.fault,
        severities=severities,
        missions=missions,
        kernels=kernels,
        archs=tuple(args.archs.split(",")),
        seed=args.seed,
        reps=args.reps,
    )
    telemetry = Telemetry()
    campaign = run_campaign(
        spec, jobs=args.jobs,
        options=_engine_options(args) if kernels else None,
        telemetry=telemetry,
    )
    report = build_report(campaign)
    print(render_report(report))
    if args.out:
        path = save_report(report, args.out)
        print(f"\nsaved: {path}")
    return 0


def _cmd_serve(args) -> int:
    import time

    from repro.api import EngineOptions, ServiceServer, ShardPool

    pool = ShardPool(
        config=HarnessConfig(reps=args.reps, warmup_reps=args.warmup),
        engine_options=EngineOptions(jobs=args.jobs, cache_dir=args.cache_dir),
        n_shards=args.shards,
        capacity=args.capacity,
        spill_dir=args.spill_dir,
        max_inflight=args.max_inflight,
        campaign_jobs=args.jobs,
    )
    server = ServiceServer(pool, host=args.host, port=args.port)
    host, port = server.address
    try:
        with server:
            print(f"serving   : {host}:{port} (JSONL over TCP, "
                  f"{args.shards} shard(s))")
            print(f"try       : repro query characterize --kernel mahony "
                  f"--port {port}")
            if args.duration is not None:
                time.sleep(args.duration)
            else:
                while True:  # serve until Ctrl-C
                    time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        pool.close()
    print("stopped")
    return 0


def _service_request(args) -> dict:
    """Assemble the JSONL wire request the query flags describe."""
    request = {"op": args.op}
    if args.op == "characterize":
        if not args.kernel:
            raise SystemExit("characterize needs --kernel")
        request.update(kernel=args.kernel, arch=args.arch, cache=args.cache)
    elif args.op == "mission":
        request.update(mission=args.mission, arch=args.arch)
    elif args.op == "campaign":
        if not args.fault:
            raise SystemExit("campaign needs --fault")
        request.update(
            fault=args.fault,
            severities=[float(s) for s in args.severities.split(",")],
            archs=args.archs.split(","),
            seed=args.seed,
            reps=args.reps,
            warmup=args.warmup,
        )
        if args.kernels:
            request["kernels"] = args.kernels.split(",")
        if args.missions:
            request["missions"] = args.missions.split(",")
    return request


def _cmd_query(args) -> int:
    import json

    from repro.api import QueryOptions, ServiceClient, ServiceError, query
    from repro.service.errors import error_record

    request = _service_request(args)
    options = QueryOptions(priority=args.priority, timeout=args.timeout)
    if args.local:
        if args.op in ("ping", "stats"):
            print(f"--local answers benchmark queries, not {args.op}",
                  file=sys.stderr)
            return 2
        payload = query(request, options=options)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        if args.op in ("ping", "stats"):
            response = client.query(request)
        else:
            try:
                response = client.ask_with_retry(
                    request, options=options, retries=args.retries
                )
            except ServiceError as exc:
                response = {"ok": False, "error": error_record(exc)}
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def _cmd_scenarios(args) -> int:
    from repro.api import ScenarioSet, generate_scenarios, run_scenarios
    from repro.engine import Telemetry
    from repro.scenarios import render_report, save_report, tier_a_set

    cmd = args.scenarios_command
    if cmd == "list":
        print("tier a (the paper's platforms):")
        for scenario in tier_a_set().scenarios:
            mission = (scenario.mission["kind"] if scenario.mission
                       else "kernel-only")
            print(f"  {scenario.name:20s} arch={scenario.arch:7s} "
                  f"mission={mission:12s} "
                  f"kernels={','.join(scenario.kernels)}")
        print("tier b: seeded synthetic generation "
              "(scenarios generate --tier b --count N --seed S)")
        return 0
    if cmd == "generate":
        sset = generate_scenarios(tier=args.tier, count=args.count,
                                  seed=args.seed)
        print(f"generated : {len(sset)} tier-{sset.tier} scenario(s), "
              f"seed {sset.seed}")
        print(f"address   : {sset.address}")
        if args.out:
            path = sset.save(args.out)
            print(f"saved     : {path}")
        return 0
    # cmd == "run"
    if args.set:
        sset = ScenarioSet.load(args.set)
        print(f"loaded    : {len(sset)} tier-{sset.tier} scenario(s) "
              f"from {args.set}")
    else:
        sset = generate_scenarios(tier=args.tier, count=args.count,
                                  seed=args.seed)
    telemetry = Telemetry()
    report = run_scenarios(sset, jobs=args.jobs,
                           options=_engine_options(args),
                           telemetry=telemetry)
    print(render_report(report))
    if args.out:
        path = save_report(report, args.out)
        print(f"\nsaved: {path}")
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import (
        Baseline,
        default_baseline_path,
        default_root,
        render_json,
        render_rule_list,
        render_sarif,
        render_text,
        run_lint,
    )

    if args.list:
        print(render_rule_list())
        return 0
    root = Path(args.root) if args.root else default_root()
    rules = args.rules.split(",") if args.rules else None
    baseline_path = (Path(args.baseline) if args.baseline
                     else default_baseline_path(root))
    cache_path = Path(args.cache) if args.cache else None
    if args.update_baseline:
        result = run_lint(root=root, rules=rules, use_baseline=False,
                          analyze=args.analyze, jobs=args.jobs,
                          cache_path=cache_path)
        path = Baseline.from_findings(result.all_findings).save(baseline_path)
        print(f"baseline  : {path} "
              f"({len(result.all_findings)} finding(s) grandfathered)")
        return 0
    if args.prune_baseline:
        result = run_lint(root=root, rules=rules, use_baseline=False,
                          analyze=args.analyze, jobs=args.jobs,
                          cache_path=cache_path)
        baseline = Baseline.load(baseline_path)
        pruned, dropped = baseline.prune(result.all_findings)
        path = pruned.save(baseline_path)
        kept = sum(pruned.counts.values())
        print(f"baseline  : {path} "
              f"({len(dropped)} stale "
              f"entr{'y' if len(dropped) == 1 else 'ies'} pruned, "
              f"{kept} finding(s) kept)")
        return 0
    result = run_lint(root=root, rules=rules, baseline_path=baseline_path,
                      analyze=args.analyze, jobs=args.jobs,
                      cache_path=cache_path)
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return 0 if result.clean else 1


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    """The shared observability export flags (--trace / --metrics-out)."""
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a Chrome trace-event JSON here "
                        "(open in https://ui.perfetto.dev)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write a JSONL metrics dump here")


def _add_sweep_args(p: argparse.ArgumentParser) -> None:
    """The full sweep flag set (shared with ``repro trace sweep``)."""
    p.add_argument("--kernels", default=None,
                   help="comma-separated (default: full suite)")
    p.add_argument("--archs", default=None,
                   help="comma-separated (default: every backend's "
                        "characterization set)")
    p.add_argument("--reps", type=int, default=1)
    p.add_argument("--warmup", type=int, default=0)
    p.add_argument("--out", default=None, help=".json or .csv path")
    p.add_argument("--verbose", action="store_true")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel solve workers (default: 1 = serial)")
    p.add_argument("--cache-dir", default=None,
                   help="persistent trace-cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the trace cache (always re-solve)")
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint file for kill-resume (JSONL)")
    p.add_argument("--resume", action="store_true",
                   help="resume from the checkpoint's completed cells")
    p.add_argument("--price", choices=("vector", "serial"), default="vector",
                   help="price stage: columnar batch (default) or the "
                        "serial per-cell reference; results are "
                        "byte-identical either way")
    _add_obs_args(p)


def _add_mission_args(p: argparse.ArgumentParser) -> None:
    """The mission flag set (shared with ``repro trace mission``)."""
    from repro.closedloop import mission_names

    # Choices come from the mission registry — the one source of truth —
    # so missions registered by studies appear here automatically.
    p.add_argument("mission", choices=mission_names())
    p.add_argument("--arch", default="m33", choices=sorted(arch_names()))
    _add_obs_args(p)


def _add_faults_args(p: argparse.ArgumentParser) -> None:
    """The fault-campaign flag set (shared with ``repro trace faults``)."""
    p.add_argument("--list", action="store_true",
                   help="list registered fault models and exit")
    p.add_argument("--fault", default=None,
                   help="fault model name (see --list)")
    p.add_argument("--mission", default=None,
                   help="comma-separated missions (hover,waypoints,steer)")
    p.add_argument("--kernels", default=None,
                   help="comma-separated kernels for the static grid")
    p.add_argument("--severities", default="0.25,0.5,0.75,1.0",
                   help="comma-separated severities in [0,1]; "
                        "the 0 baseline is always included")
    p.add_argument("--archs", default="m33",
                   help="comma-separated cores (default: m33)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (per-cell seeds derive from it)")
    p.add_argument("--reps", type=int, default=1)
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel workers for solves and mission cells")
    p.add_argument("--cache-dir", default=None,
                   help="persistent trace-cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the trace cache")
    p.add_argument("--out", default=None,
                   help="write the resilience report JSON here")
    _add_obs_args(p)


def _add_serve_args(p: argparse.ArgumentParser) -> None:
    """The query-service server flag set (``repro serve``)."""
    from repro.service import DEFAULT_PORT

    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: localhost only)")
    p.add_argument("--port", type=int, default=DEFAULT_PORT,
                   help=f"TCP port (default: {DEFAULT_PORT}; 0 = ephemeral)")
    p.add_argument("--jobs", type=int, default=1,
                   help="engine solve workers behind the broker")
    p.add_argument("--cache-dir", default=None,
                   help="persistent trace-cache directory")
    p.add_argument("--reps", type=int, default=3)
    p.add_argument("--warmup", type=int, default=1)
    p.add_argument("--capacity", type=int, default=1024,
                   help="in-memory answer-cache entries (LRU beyond)")
    p.add_argument("--max-pending", type=int, default=256,
                   help="(legacy) bounded submission queue; superseded "
                        "by --max-inflight admission control")
    p.add_argument("--shards", type=int, default=1,
                   help="broker shards partitioned by content address")
    p.add_argument("--spill-dir", default=None,
                   help="L2 directory: answers evicted from the "
                        "in-memory LRU spill here instead of vanishing")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="per-shard admitted-query bound; beyond it, "
                        "queries shed with a retry_after hint")
    p.add_argument("--duration", type=float, default=None,
                   help="serve for N seconds then exit (default: forever)")


def _add_query_args(p: argparse.ArgumentParser) -> None:
    """The query-client flag set (``repro query``)."""
    from repro.service import DEFAULT_PORT

    p.add_argument("op",
                   choices=("characterize", "mission", "campaign",
                            "ping", "stats"),
                   help="what to ask the service")
    p.add_argument("--kernel", default=None,
                   help="kernel to characterize")
    p.add_argument("--arch", default="m33", choices=sorted(arch_names()))
    p.add_argument("--cache", default="C", choices=("C", "NC"),
                   help="cache state for characterize cells")
    p.add_argument("--mission", default="hover",
                   help="mission name for mission queries")
    p.add_argument("--fault", default=None,
                   help="fault model for campaign queries")
    p.add_argument("--severities", default="0.25,0.5,0.75,1.0",
                   help="comma-separated campaign severities")
    p.add_argument("--kernels", default=None,
                   help="comma-separated campaign kernels")
    p.add_argument("--missions", default=None,
                   help="comma-separated campaign missions")
    p.add_argument("--archs", default="m33",
                   help="comma-separated campaign cores")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--reps", type=int, default=1)
    p.add_argument("--warmup", type=int, default=0)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("--timeout", type=float, default=120.0,
                   help="seconds to wait for the answer")
    p.add_argument("--priority", default="interactive",
                   choices=("interactive", "batch"),
                   help="admission priority (batch sheds first under load)")
    p.add_argument("--retries", type=int, default=3,
                   help="retries with backoff when the service sheds "
                        "the query as overloaded")
    p.add_argument("--local", action="store_true",
                   help="answer in-process (no server needed)")


def _add_scenarios_args(p: argparse.ArgumentParser) -> None:
    """The tiered scenario flag sets (``repro scenarios``)."""
    from repro.scenarios import TIERS

    sub = p.add_subparsers(dest="scenarios_command", required=True)
    sub.add_parser("list", help="list the tier-A platform scenarios")

    def _generation_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--tier", default="b", choices=TIERS,
                        help="a = the paper's platforms, b = seeded "
                             "synthetic generation (default: b)")
        sp.add_argument("--count", type=int, default=25,
                        help="tier-b scenarios to generate (default: 25)")
        sp.add_argument("--seed", type=int, default=0,
                        help="generation seed (same seed = byte-identical "
                             "scenario set)")

    generate = sub.add_parser(
        "generate", help="generate a content-addressed scenario set"
    )
    _generation_flags(generate)
    generate.add_argument("--out", default=None,
                          help="write the scenario set JSON here")

    run = sub.add_parser(
        "run", help="execute a scenario campaign (sweeps + mission grids)"
    )
    _generation_flags(run)
    run.add_argument("--set", default=None, metavar="PATH",
                     help="run a saved scenario set instead of generating")
    run.add_argument("--jobs", type=int, default=1,
                     help="parallel workers for solves and mission jobs")
    run.add_argument("--cache-dir", default=None,
                     help="persistent trace-cache directory")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the trace cache")
    run.add_argument("--out", default=None,
                     help="write the campaign report JSON here")
    _add_obs_args(run)


def _add_lint_args(p: argparse.ArgumentParser) -> None:
    """The static-analysis flag set (``repro lint``)."""
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text",
                   help="report format (json is canonical for CI; "
                        "sarif uploads to code-scanning dashboards)")
    p.add_argument("--analyze", choices=("basic", "deep"), default="basic",
                   help="basic = per-module + import-graph rules; "
                        "deep adds call-graph taint, shared-state race "
                        "and API-contract analysis")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="parallel scan workers (findings are "
                        "path-sorted, so output is identical for any N)")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule ids to run "
                        "(default: all; see --list)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="baseline file for grandfathered findings "
                        "(default: lint-baseline.json at the repo root)")
    p.add_argument("--update-baseline", action="store_true",
                   help="grandfather the current findings into the "
                        "baseline and exit")
    p.add_argument("--prune-baseline", action="store_true",
                   help="drop baseline entries no longer matched by "
                        "any live finding and exit")
    p.add_argument("--cache", default=None, metavar="PATH",
                   help="incremental analysis cache file; only changed "
                        "modules (plus their reverse-import cone) are "
                        "re-analyzed")
    p.add_argument("--root", default=None, metavar="PATH",
                   help="package directory to scan "
                        "(default: the installed repro package)")
    p.add_argument("--list", action="store_true",
                   help="list the rule catalog and exit")


#: Commands ``repro trace`` can wrap with a phase report.
TRACEABLE_COMMANDS = ("sweep", "mission", "faults")


def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro`` argparse tree (single source of truth).

    ``tests/test_docs.py`` walks this tree to assert that every flag the
    documentation mentions actually exists, so new flags belong here.
    """
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered kernel suite")

    backends = sub.add_parser(
        "backends", help="inspect the ISA backend registry"
    )
    backends_sub = backends.add_subparsers(
        dest="backends_command", required=True
    )
    backends_sub.add_parser(
        "list", help="list registered backends and their archs"
    )
    show = backends_sub.add_parser(
        "show", help="show one architecture's full spec"
    )
    show.add_argument("arch", choices=sorted(arch_names()))

    run = sub.add_parser("run", help="benchmark one kernel on one core")
    run.add_argument("kernel")
    run.add_argument("--arch", default="m4", choices=sorted(arch_names()))
    run.add_argument("--scalar", default=None,
                     help="f32 / f64 / qM.N (default: f32)")
    run.add_argument("--reps", type=int, default=3)
    run.add_argument("--warmup", type=int, default=1)
    run.add_argument("--no-cache", dest="cache", action="store_false")

    sweep = sub.add_parser("sweep", help="run a kernel x core x cache sweep")
    _add_sweep_args(sweep)

    tables_p = sub.add_parser("tables", help="regenerate a paper table")
    tables_p.add_argument("--table", type=int, required=True, choices=range(3, 9))
    tables_p.add_argument("--reps", type=int, default=1)
    tables_p.add_argument("--warmup", type=int, default=0)
    tables_p.add_argument("--jobs", type=int, default=1,
                          help="parallel solve workers (table 4)")
    tables_p.add_argument("--cache-dir", default=None,
                          help="persistent trace-cache directory (table 4)")

    mission = sub.add_parser("mission", help="closed-loop mission evaluation")
    _add_mission_args(mission)

    faults = sub.add_parser(
        "faults", help="fault-injection campaign with resilience report"
    )
    _add_faults_args(faults)

    scenarios = sub.add_parser(
        "scenarios",
        help="tiered scenario generation and campaign-scale studies",
    )
    _add_scenarios_args(scenarios)

    lint = sub.add_parser(
        "lint", help="static analysis: layering + determinism rules"
    )
    _add_lint_args(lint)

    serve = sub.add_parser(
        "serve", help="run the benchmark-query service (JSONL over TCP)"
    )
    _add_serve_args(serve)

    query = sub.add_parser(
        "query", help="ask the benchmark-query service one question"
    )
    _add_query_args(query)

    trace = sub.add_parser(
        "trace",
        help="run a command with tracing on and print a phase report",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    _add_sweep_args(trace_sub.add_parser(
        "sweep", help="profile a sweep (same flags as `repro sweep`)"))
    _add_mission_args(trace_sub.add_parser(
        "mission", help="profile a mission (same flags as `repro mission`)"))
    _add_faults_args(trace_sub.add_parser(
        "faults", help="profile a campaign (same flags as `repro faults`)"))

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse ``argv`` and dispatch to the subcommand handler."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "backends": _cmd_backends,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "tables": _cmd_tables,
        "mission": _cmd_mission,
        "faults": _cmd_faults,
        "scenarios": _cmd_scenarios,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "query": _cmd_query,
    }
    command = args.command
    report = command == "trace"
    if report:
        command = args.trace_command
    with _observation(args, report=report):
        return handlers[command](args)


if __name__ == "__main__":
    sys.exit(main())
