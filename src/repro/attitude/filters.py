"""High-rate attitude estimation filters: Mahony, Madgwick, Fourati.

All three are implemented scalar-generically: the same code runs over
Python floats (f32/f64 pricing) or Q-format :class:`Fixed` values (real
fixed-point arithmetic whose overflow / near-zero-divisor events feed Case
Study 2's failure-rate analysis).  Mahony and Madgwick run in IMU mode
(accelerometer + gyroscope) or MARG mode (plus magnetometer); Fourati is
MARG-only, as in the paper.

Every update records its operations on the supplied
:class:`~repro.mcu.ops.OpCounter` so the MCU model can price it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.attitude.scalarmath import Number, ScalarMath
from repro.fixedpoint.qformat import FixedPointContext
from repro.mcu.ops import OpCounter
from repro.scalar import F32, ScalarType


def _quat_mul(a: Sequence[Number], b: Sequence[Number]) -> List[Number]:
    aw, ax, ay, az = a
    bw, bx, by, bz = b
    return [
        aw * bw - ax * bx - ay * by - az * bz,
        aw * bx + ax * bw + ay * bz - az * by,
        aw * by - ax * bz + ay * bw + az * bx,
        aw * bz + ax * by - ay * bx + az * bw,
    ]


def _cross(a: Sequence[Number], b: Sequence[Number]) -> List[Number]:
    return [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]


class AttitudeFilter:
    """Shared state handling for the three filters."""

    #: Number of MARG axes this filter requires (None = magnetometer optional).
    requires_mag: bool = False

    def __init__(self, scalar: ScalarType = F32,
                 ctx: Optional[FixedPointContext] = None):
        self.scalar = scalar
        self.math = ScalarMath(scalar, ctx)
        self.reset()

    def reset(self) -> None:
        m = self.math
        self.q: List[Number] = [m.const(1.0), m.const(0.0), m.const(0.0), m.const(0.0)]

    @property
    def ctx(self) -> Optional[FixedPointContext]:
        return self.math.ctx

    def quaternion(self) -> List[float]:
        return self.math.to_floats(self.q)

    def quaternion_norm(self) -> float:
        return sum(float(c) ** 2 for c in self.q) ** 0.5

    def _normalize3(self, v: List[Number], counter: OpCounter) -> List[Number]:
        m = self.math
        norm_sq = v[0] * v[0] + v[1] * v[1] + v[2] * v[2]
        counter.vec_dot(3)
        if m.near_zero(norm_sq):
            return [m.const(0.0)] * 3
        inv = m.inv_sqrt(norm_sq)
        counter.fsqrt()
        counter.fdiv()
        counter.vec_scale(3)
        return [v[0] * inv, v[1] * inv, v[2] * inv]

    def _integrate(self, qdot: List[Number], dt: Number, counter: OpCounter) -> None:
        m = self.math
        self.q = [qi + qd * dt for qi, qd in zip(self.q, qdot)]
        counter.vec_axpy(4)
        norm_sq = sum((qi * qi for qi in self.q[1:]), self.q[0] * self.q[0])
        counter.vec_dot(4)
        if m.near_zero(norm_sq):
            return
        inv = m.inv_sqrt(norm_sq)
        counter.fsqrt()
        counter.fdiv()
        self.q = [qi * inv for qi in self.q]
        counter.vec_scale(4)


class Mahony(AttitudeFilter):
    """Mahony complementary filter with proportional-integral correction."""

    def __init__(self, scalar: ScalarType = F32, kp: float = 2.0, ki: float = 0.05,
                 ctx: Optional[FixedPointContext] = None):
        super().__init__(scalar, ctx)
        m = self.math
        self.kp = m.const(kp)
        self.ki = m.const(ki)
        self.integral: List[Number] = [m.const(0.0)] * 3

    def reset(self) -> None:
        super().reset()
        self.integral = [self.math.const(0.0)] * 3

    def update(
        self,
        gyro: Sequence[float],
        accel: Sequence[float],
        mag: Optional[Sequence[float]],
        dt: float,
        counter: OpCounter,
    ) -> None:
        m = self.math
        g = m.vector(gyro)
        a = m.vector(accel)
        dt_s = m.const(dt)
        counter.load(9)  # sensor fetch
        counter.fcvt(6)

        a = self._normalize3(a, counter)
        qw, qx, qy, qz = self.q
        two = m.const(2.0)

        # Estimated gravity direction in the body frame.
        v = [
            two * (qx * qz - qw * qy),
            two * (qw * qx + qy * qz),
            qw * qw - qx * qx - qy * qy + qz * qz,
        ]
        counter.flop_mix(add=6, mul=13)

        e = _cross(a, v)
        counter.vec_cross()

        if mag is not None:
            mg = self._normalize3(m.vector(mag), counter)
            counter.load(3)
            # Reference field in the earth frame: h = q * m * q^-1, then
            # b = [|h_xy|, 0, h_z]; w is b seen back in the body frame.
            hq = _quat_mul(_quat_mul(list(self.q), [m.const(0.0)] + mg),
                           [qw, -qx, -qy, -qz])
            counter.quat_mul()
            counter.quat_mul()
            hx, hy, hz = hq[1], hq[2], hq[3]
            bx = m.sqrt(hx * hx + hy * hy)
            counter.flop_mix(add=1, mul=2, sqrt=1)
            bz = hz
            w = [
                two * (bx * (m.const(0.5) - qy * qy - qz * qz)
                       + bz * (qx * qz - qw * qy)),
                two * (bx * (qx * qy - qw * qz) + bz * (qw * qx + qy * qz)),
                two * (bx * (qw * qy + qx * qz)
                       + bz * (m.const(0.5) - qx * qx - qy * qy)),
            ]
            counter.flop_mix(add=14, mul=24)
            em = _cross(mg, w)
            counter.vec_cross()
            e = [ea + eb for ea, eb in zip(e, em)]
            counter.vec_add(3)

        # PI correction feeding the gyro.
        self.integral = [ii + ei * dt_s * self.ki for ii, ei in zip(self.integral, e)]
        counter.flop_mix(add=3, mul=6)
        g = [gi + self.kp * ei + ii for gi, ei, ii in zip(g, e, self.integral)]
        counter.flop_mix(add=6, mul=3)

        qdot = _quat_mul(list(self.q), [m.const(0.0)] + g)
        counter.quat_mul()
        half = m.const(0.5)
        qdot = [half * qi for qi in qdot]
        counter.vec_scale(4)
        self._integrate(qdot, dt_s, counter)


class Madgwick(AttitudeFilter):
    """Madgwick gradient-descent filter (IMU and full MARG forms)."""

    def __init__(self, scalar: ScalarType = F32, beta: float = 0.1,
                 ctx: Optional[FixedPointContext] = None):
        super().__init__(scalar, ctx)
        self.beta = self.math.const(beta)

    def update(
        self,
        gyro: Sequence[float],
        accel: Sequence[float],
        mag: Optional[Sequence[float]],
        dt: float,
        counter: OpCounter,
    ) -> None:
        if mag is None:
            self._update_imu(gyro, accel, dt, counter)
        else:
            self._update_marg(gyro, accel, mag, dt, counter)

    def _update_imu(self, gyro, accel, dt, counter: OpCounter) -> None:
        m = self.math
        gx, gy, gz = m.vector(gyro)
        a = self._normalize3(m.vector(accel), counter)
        counter.load(6)
        counter.fcvt(6)
        ax, ay, az = a
        q0, q1, q2, q3 = self.q
        dt_s = m.const(dt)
        two, four = m.const(2.0), m.const(4.0)
        half = m.const(0.5)

        # Rate of change from gyroscope.
        qdot = _quat_mul([q0, q1, q2, q3], [m.const(0.0), gx, gy, gz])
        counter.quat_mul()
        qdot = [half * v for v in qdot]
        counter.vec_scale(4)

        # Gradient-descent corrective step (standard closed form).
        f1 = two * (q1 * q3 - q0 * q2) - ax
        f2 = two * (q0 * q1 + q2 * q3) - ay
        f3 = two * (half - q1 * q1 - q2 * q2) - az
        s0 = -two * q2 * f1 + two * q1 * f2
        s1 = two * q3 * f1 + two * q0 * f2 - four * q1 * f3
        s2 = -two * q0 * f1 + two * q3 * f2 - four * q2 * f3
        s3 = two * q1 * f1 + two * q2 * f2
        counter.flop_mix(add=14, mul=28)

        norm_sq = s0 * s0 + s1 * s1 + s2 * s2 + s3 * s3
        counter.vec_dot(4)
        if not m.near_zero(norm_sq):
            inv = m.inv_sqrt(norm_sq)
            counter.fsqrt()
            counter.fdiv()
            qdot = [qd - self.beta * (s * inv)
                    for qd, s in zip(qdot, (s0, s1, s2, s3))]
            counter.flop_mix(add=4, mul=8)
        self._integrate(qdot, dt_s, counter)

    def _update_marg(self, gyro, accel, mag, dt, counter: OpCounter) -> None:
        m = self.math
        gx, gy, gz = m.vector(gyro)
        a = self._normalize3(m.vector(accel), counter)
        mg = self._normalize3(m.vector(mag), counter)
        counter.load(9)
        counter.fcvt(9)
        ax, ay, az = a
        mx, my, mz = mg
        q0, q1, q2, q3 = self.q
        dt_s = m.const(dt)
        two = m.const(2.0)
        half = m.const(0.5)

        qdot = _quat_mul([q0, q1, q2, q3], [m.const(0.0), gx, gy, gz])
        counter.quat_mul()
        qdot = [half * v for v in qdot]
        counter.vec_scale(4)

        # Auxiliary products (as in the reference implementation).
        _2q0mx, _2q0my, _2q0mz = two * q0 * mx, two * q0 * my, two * q0 * mz
        _2q1mx = two * q1 * mx
        _2q0, _2q1, _2q2, _2q3 = two * q0, two * q1, two * q2, two * q3
        q0q0, q0q1, q0q2, q0q3 = q0 * q0, q0 * q1, q0 * q2, q0 * q3
        q1q1, q1q2, q1q3 = q1 * q1, q1 * q2, q1 * q3
        q2q2, q2q3, q3q3 = q2 * q2, q2 * q3, q3 * q3
        counter.flop_mix(mul=18)

        # Earth-frame reference direction of flux.
        hx = (mx * q0q0 - _2q0my * q3 + _2q0mz * q2 + mx * q1q1
              + _2q1 * my * q2 + _2q1 * mz * q3 - mx * q2q2 - mx * q3q3)
        hy = (_2q0mx * q3 + my * q0q0 - _2q0mz * q1 + _2q1mx * q2
              - my * q1q1 + my * q2q2 + _2q2 * mz * q3 - my * q3q3)
        _2bx = m.sqrt(hx * hx + hy * hy)
        _2bz = (-_2q0mx * q2 + _2q0my * q1 + mz * q0q0 + _2q1mx * q3
                - mz * q1q1 + _2q2 * my * q3 - mz * q2q2 + mz * q3q3)
        _4bx, _4bz = two * _2bx, two * _2bz
        counter.flop_mix(add=22, mul=30, sqrt=1)

        # Gradient-descent step (full MARG closed form).
        e1 = two * (q1q3 - q0q2) - ax
        e2 = two * (q0q1 + q2q3) - ay
        e3 = m.const(1.0) - two * (q1q1 + q2q2) - az
        e4 = (_2bx * (half - q2q2 - q3q3) + _2bz * (q1q3 - q0q2)) - mx
        e5 = (_2bx * (q1q2 - q0q3) + _2bz * (q0q1 + q2q3)) - my
        e6 = (_2bx * (q0q2 + q1q3) + _2bz * (half - q1q1 - q2q2)) - mz
        counter.flop_mix(add=20, mul=18)

        s0 = (-_2q2 * e1 + _2q1 * e2 - _2bz * q2 * e4
              + (-_2bx * q3 + _2bz * q1) * e5 + _2bx * q2 * e6)
        s1 = (_2q3 * e1 + _2q0 * e2 - two * two * q1 * e3 + _2bz * q3 * e4
              + (_2bx * q2 + _2bz * q0) * e5 + (_2bx * q3 - _4bz * q1) * e6)
        s2 = (-_2q0 * e1 + _2q3 * e2 - two * two * q2 * e3
              + (-_4bx * q2 - _2bz * q0) * e4 + (_2bx * q1 + _2bz * q3) * e5
              + (_2bx * q0 - _4bz * q2) * e6)
        s3 = (_2q1 * e1 + _2q2 * e2 + (-_4bx * q3 + _2bz * q1) * e4
              + (-_2bx * q0 + _2bz * q2) * e5 + _2bx * q1 * e6)
        counter.flop_mix(add=28, mul=44)

        norm_sq = s0 * s0 + s1 * s1 + s2 * s2 + s3 * s3
        counter.vec_dot(4)
        if not m.near_zero(norm_sq):
            inv = m.inv_sqrt(norm_sq)
            counter.fsqrt()
            counter.fdiv()
            qdot = [qd - self.beta * (s * inv)
                    for qd, s in zip(qdot, (s0, s1, s2, s3))]
            counter.flop_mix(add=4, mul=8)
        self._integrate(qdot, dt_s, counter)


class Fourati(AttitudeFilter):
    """Fourati's nonlinear MARG filter with a Levenberg-Marquardt gain.

    Fuses gravity and flux direction errors through a damped 3x3 normal
    equation solve each step — noticeably more float work than Mahony or
    Madgwick, matching its position in the paper's Tables III/VII.
    """

    requires_mag = True

    def __init__(self, scalar: ScalarType = F32, beta: float = 0.3,
                 lam: float = 0.6, ctx: Optional[FixedPointContext] = None):
        super().__init__(scalar, ctx)
        self.beta = self.math.const(beta)
        self.lam = self.math.const(lam)

    def update(
        self,
        gyro: Sequence[float],
        accel: Sequence[float],
        mag: Optional[Sequence[float]],
        dt: float,
        counter: OpCounter,
    ) -> None:
        if mag is None:
            raise ValueError("Fourati requires a MARG (magnetometer) architecture")
        m = self.math
        g = m.vector(gyro)
        a = self._normalize3(m.vector(accel), counter)
        mg = self._normalize3(m.vector(mag), counter)
        counter.load(9)
        counter.fcvt(9)
        qw, qx, qy, qz = self.q
        dt_s = m.const(dt)
        two, half = m.const(2.0), m.const(0.5)

        # Estimated gravity and flux directions in the body frame.
        v = [
            two * (qx * qz - qw * qy),
            two * (qw * qx + qy * qz),
            qw * qw - qx * qx - qy * qy + qz * qz,
        ]
        counter.flop_mix(add=6, mul=13)
        hq = _quat_mul(_quat_mul(list(self.q), [m.const(0.0)] + mg),
                       [qw, -qx, -qy, -qz])
        counter.quat_mul()
        counter.quat_mul()
        bx = m.sqrt(hq[1] * hq[1] + hq[2] * hq[2])
        bz = hq[3]
        counter.flop_mix(add=1, mul=2, sqrt=1)
        w = [
            two * (bx * (half - qy * qy - qz * qz) + bz * (qx * qz - qw * qy)),
            two * (bx * (qx * qy - qw * qz) + bz * (qw * qx + qy * qz)),
            two * (bx * (qw * qy + qx * qz) + bz * (half - qx * qx - qy * qy)),
        ]
        counter.flop_mix(add=14, mul=24)

        ea = _cross(a, v)
        em = _cross(mg, w)
        counter.vec_cross()
        counter.vec_cross()

        # Levenberg-Marquardt step: (K + lam*I) delta = ea + em, where
        # K approximates the Gauss-Newton normal matrix from the two
        # direction Jacobians (skew-symmetric outer products).
        k = [[m.const(0.0) for _ in range(3)] for _ in range(3)]
        for src in (v, w):
            for i in range(3):
                for j in range(3):
                    k[i][j] = k[i][j] + src[i] * src[j]
        counter.flop_mix(add=18, mul=18)
        for i in range(3):
            k[i][i] = k[i][i] + self.lam
        counter.flop_mix(add=3)
        rhs = [ea[i] + em[i] for i in range(3)]
        counter.vec_add(3)
        delta = self._solve3(k, rhs, counter)

        gc = [gi + self.beta * di for gi, di in zip(g, delta)]
        counter.flop_mix(add=3, mul=3)
        qdot = _quat_mul(list(self.q), [m.const(0.0)] + gc)
        counter.quat_mul()
        qdot = [half * qi for qi in qdot]
        counter.vec_scale(4)
        self._integrate(qdot, dt_s, counter)

    def _solve3(self, k, rhs, counter: OpCounter):
        """3x3 solve via the adjugate (closed form, as embedded code does)."""
        m = self.math
        a, b, c = k[0]
        d, e, f = k[1]
        g2, h, i = k[2]
        ei_fh = e * i - f * h
        fg_di = f * g2 - d * i
        dh_eg = d * h - e * g2
        det = a * ei_fh + b * fg_di + c * dh_eg
        counter.flop_mix(add=5, mul=9)
        if m.near_zero(det):
            return [m.const(0.0)] * 3
        inv_det = m.divide(m.const(1.0), det)
        counter.fdiv()
        adj = [
            [ei_fh, c * h - b * i, b * f - c * e],
            [fg_di, a * i - c * g2, c * d - a * f],
            [dh_eg, b * g2 - a * h, a * e - b * d],
        ]
        counter.flop_mix(add=6, mul=12)
        out = []
        for row in adj:
            acc = row[0] * rhs[0] + row[1] * rhs[1] + row[2] * rhs[2]
            out.append(acc * inv_det)
        counter.flop_mix(add=6, mul=12)
        return out
