"""Benchmark problems for the attitude-estimation kernels.

Registers ``mahony``, ``madgwick``, and ``fourati`` (Table III's Att. Est.
rows) plus explicit IMU/MARG variants used by Case Study 2.  One solve()
runs the filter over a full synthetic IMU sequence; the tables report
per-update figures via ``work_units``.
"""

from __future__ import annotations

from typing import Optional, Type

import numpy as np

from repro.attitude.filters import AttitudeFilter, Fourati, Madgwick, Mahony
from repro.core.problem import EntoProblem
from repro.core.registry import register
from repro.datasets import imu
from repro.mcu.memory import Footprint
from repro.mcu.ops import OpCounter
from repro.mcu.static import StaticMix, compose
from repro.scalar import F32, ScalarType

#: Attitude error threshold counted as a failure, from Case Study 2.
FAILURE_ERROR_DEG = 2.5


class AttitudeProblem(EntoProblem):
    """Runs one attitude filter over one IMU/MARG sequence."""

    stage = "S"
    category = "Att. Est."
    dataset_name = "bee-synth"
    filter_cls: Type[AttitudeFilter] = Mahony
    use_mag = False
    _blocks = ("quat_update", "vec3_kinematics", "harness_runtime")

    def __init__(
        self,
        scalar: ScalarType = F32,
        seed: int = 0,
        dataset: str = "bee-hover",
        n_samples: int = 200,
        error_window: float = 0.5,
    ):
        super().__init__(scalar, seed)
        self.dataset = dataset
        self.n_samples = n_samples
        self.error_window = error_window
        self.sequence: Optional[imu.ImuSequence] = None
        self.filter: Optional[AttitudeFilter] = None
        self.last_errors_deg: Optional[np.ndarray] = None

    def setup(self, rng: np.random.Generator) -> None:
        self.sequence = imu.load(self.dataset, n=self.n_samples, seed=self.seed)
        self.work_units = len(self.sequence)

    def _make_filter(self) -> AttitudeFilter:
        return self.filter_cls(scalar=self.scalar)

    def solve(self, counter: OpCounter):
        seq = self.sequence
        filt = self._make_filter()
        self.filter = filt
        errors = np.empty(len(seq))
        for i in range(len(seq)):
            mag = seq.mag[i] if self.use_mag else None
            filt.update(seq.gyro[i], seq.accel[i], mag, seq.dt, counter)
            errors[i] = imu.quat_angle_deg(np.array(filt.quaternion()), seq.truth[i])
        self.last_errors_deg = errors
        return filt.quaternion()

    def validate(self, result) -> bool:
        if self.filter is not None and self.filter.ctx is not None:
            if self.filter.ctx.failed:
                return False
        # Judge accuracy after the convergence transient.
        start = int(len(self.last_errors_deg) * self.error_window)
        tail = self.last_errors_deg[start:]
        if abs(self.filter.quaternion_norm() - 1.0) > 0.05:
            return False
        return bool(np.mean(tail) <= FAILURE_ERROR_DEG)

    def failure_events(self) -> dict:
        """Case Study 2 failure accounting for the last solve."""
        ctx = self.filter.ctx if self.filter is not None else None
        start = int(len(self.last_errors_deg) * self.error_window)
        tail = self.last_errors_deg[start:]
        return {
            "overflow": ctx.overflow_events if ctx else 0,
            "div_near_zero": ctx.div_by_near_zero_events if ctx else 0,
            "sqrt_negative": ctx.sqrt_negative_events if ctx else 0,
            "norm_drift": int(abs(self.filter.quaternion_norm() - 1.0) > 0.05),
            "attitude_error": int(np.mean(tail) > FAILURE_ERROR_DEG),
        }

    def static_mix_base(self) -> StaticMix:
        return compose(self._blocks)

    def footprint(self) -> Footprint:
        # Filter state + a handful of sensor samples; code dominates.
        return Footprint(flash_bytes=self.static_mix_base().flash_bytes, data_bytes=512)

    def flop_estimate(self) -> int:
        per_update = {"mahony": 90, "madgwick": 110, "fourati": 280}[self.name.split("-")[0]]
        if self.use_mag:
            per_update = int(per_update * 1.8)
        return per_update * self.work_units


class MahonyProblem(AttitudeProblem):
    name = "mahony"
    filter_cls = Mahony


class MadgwickProblem(AttitudeProblem):
    name = "madgwick"
    filter_cls = Madgwick


class FouratiProblem(AttitudeProblem):
    name = "fourati"
    filter_cls = Fourati
    use_mag = True
    _blocks = ("quat_update", "vec3_kinematics", "marg_correction",
               "matrix_inverse_small", "harness_runtime")


class MahonyMargProblem(MahonyProblem):
    name = "mahony (marg)"
    use_mag = True
    _blocks = ("quat_update", "vec3_kinematics", "marg_correction", "harness_runtime")


class MadgwickMargProblem(MadgwickProblem):
    name = "madgwick (marg)"
    use_mag = True
    _blocks = ("quat_update", "vec3_kinematics", "marg_correction", "harness_runtime")


register("mahony")(MahonyProblem)
register("madgwick")(MadgwickProblem)
register("fourati")(FouratiProblem)
register("mahony (marg)")(MahonyMargProblem)
register("madgwick (marg)")(MadgwickMargProblem)
