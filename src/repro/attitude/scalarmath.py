"""Generic scalar math for attitude filters.

The attitude kernels run the same algorithm over Python floats (priced as
f32/f64 by the pipeline model) or over :class:`~repro.fixedpoint.qformat.Fixed`
values (real Q-format arithmetic with failure tracking).  This module hides
the dispatch: a :class:`ScalarMath` bound to a scalar type converts inputs,
provides sqrt/reciprocal-sqrt, and exposes the near-zero test that decides
the early exits Case Study 2 counts as failure events.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

from repro.fixedpoint.qformat import Fixed, FixedPointContext, QFormat
from repro.scalar import ScalarType

Number = Union[float, Fixed]


class ScalarMath:
    """Scalar-type-generic math operations for filter code."""

    def __init__(self, scalar: ScalarType, ctx: Optional[FixedPointContext] = None):
        self.scalar = scalar
        if scalar.is_fixed:
            if ctx is None:
                ctx = FixedPointContext()
            self.ctx = ctx
            self.fmt = QFormat(scalar.q_int, scalar.q_frac)
        else:
            self.ctx = ctx  # may be None for float paths
            self.fmt = None

    # -- conversions -----------------------------------------------------

    def const(self, x: float) -> Number:
        if self.fmt is not None:
            return Fixed.from_float(x, self.fmt, self.ctx)
        return float(x)

    def vector(self, xs: Sequence[float]) -> List[Number]:
        return [self.const(float(x)) for x in xs]

    def to_float(self, x: Number) -> float:
        return float(x)

    def to_floats(self, xs: Sequence[Number]) -> List[float]:
        return [float(x) for x in xs]

    # -- operations ---------------------------------------------------------

    def sqrt(self, x: Number) -> Number:
        if isinstance(x, Fixed):
            return x.sqrt()
        return math.sqrt(x) if x > 0.0 else 0.0

    def inv_sqrt(self, x: Number) -> Number:
        if isinstance(x, Fixed):
            return x.recip_sqrt()
        if x <= 0.0:
            return 0.0
        return 1.0 / math.sqrt(x)

    def near_zero(self, x: Number, eps: float = 1e-9) -> bool:
        """Near-zero test guarding divisions.

        For fixed point the effective epsilon is the format's resolution —
        narrow-fraction formats trip this far more often, which is one of
        the failure modes the paper's Figure 4 sweeps expose.
        """
        if isinstance(x, Fixed):
            return abs(x.raw) < 4
        return abs(x) < eps

    def divide(self, num: Number, den: Number) -> Number:
        """Division with the near-zero guard; fixed point records failures."""
        if self.near_zero(den):
            if isinstance(den, Fixed):
                # The Fixed division already records the event; drive it.
                return num / den
            return self.const(0.0)
        return num / den

    @property
    def failed(self) -> bool:
        return bool(self.ctx is not None and self.ctx.failed)
