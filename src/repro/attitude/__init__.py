"""Attitude-estimation kernels: Mahony, Madgwick, Fourati."""

from repro.attitude.filters import AttitudeFilter, Fourati, Madgwick, Mahony
from repro.attitude.scalarmath import ScalarMath

__all__ = ["AttitudeFilter", "Fourati", "Madgwick", "Mahony", "ScalarMath"]
