"""Sweep execution engine: parallel, trace-cached, resumable.

The paper's 400+ datapoint characterization is a kernel x core x cache x
scalar grid where the expensive axis — actually executing each kernel's
compute — is independent of core and cache state.  The engine exploits
that: a planner groups a sweep's cells by solve configuration, a
content-addressed trace cache persists solved profiles across runs, a
process-pool executor fans the remaining solves out in parallel with
checkpoint/resume, and a telemetry layer replaces the bare progress
string with structured events and a summary report.  The price stage
runs through the columnar :mod:`repro.vecprice` batch pricer by default
(``EngineOptions(vectorize=False)`` restores the serial per-cell
reference; both produce byte-identical results — ``docs/pricing.md``).

Typical use::

    from repro.core.experiment import SweepSpec
    from repro.engine import EngineOptions, Telemetry, run_sweep_engine

    telemetry = Telemetry()
    results = run_sweep_engine(
        SweepSpec(kernels=["mahony", "p3p"]),
        options=EngineOptions(jobs=4, cache_dir=".trace-cache"),
        telemetry=telemetry,
    )
    print(telemetry.summary())

``repro.core.experiment.run_sweep`` is a thin compatibility wrapper over
this package; its results are bit-identical to the historical serial
driver (see ``tests/test_engine.py``).
"""

from repro.engine.executor import EngineOptions, run_plan, run_sweep_engine
from repro.engine.planner import (
    Cell,
    SolveJob,
    SweepPlan,
    build_cell_plan,
    build_plan,
    solve_key,
)
from repro.engine.profile import KernelProfile, price_profile, solve_profile
from repro.engine.telemetry import (
    Telemetry,
    TelemetryEvent,
    progress_subscriber,
    verbose_subscriber,
)
from repro.engine.trace_cache import CacheStats, TraceCache

__all__ = [
    "Cell",
    "CacheStats",
    "EngineOptions",
    "KernelProfile",
    "SolveJob",
    "SweepPlan",
    "Telemetry",
    "TelemetryEvent",
    "TraceCache",
    "build_cell_plan",
    "build_plan",
    "price_profile",
    "progress_subscriber",
    "run_plan",
    "run_sweep_engine",
    "solve_key",
    "solve_profile",
    "verbose_subscriber",
]
