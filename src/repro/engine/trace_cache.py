"""Content-addressed cache of solved kernel profiles.

Keys are the :func:`~repro.engine.planner.solve_key` hash of (kernel name,
canonical factory kwargs, scalar, seed, repetition counts) — any change to
what a kernel would actually execute changes the key, so invalidation is
automatic.  Two layers back the lookup:

* an in-process dict, so one sweep never solves the same configuration
  twice even without a cache directory;
* an optional on-disk directory of ``<key>.json`` profile snapshots, so
  repeated sweeps (CLI reruns, benchmark regenerations, test sessions)
  hit disk instead of recomputing SIFT pyramids and RANSAC trials.

Disk writes go through a temp file + atomic rename, so a killed sweep
never leaves a torn cache entry; unreadable or version-mismatched entries
are treated as misses and overwritten.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.engine.profile import KernelProfile


@dataclass
class CacheStats:
    """Hit/miss accounting, surfaced through telemetry summaries."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def hits(self) -> int:
        """Total hits, memory and disk combined."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total ``get`` calls that went through the enabled cache."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-safe snapshot for telemetry summaries."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
        }


@dataclass
class TraceCache:
    """Two-level (memory + optional disk) store of kernel profiles."""

    cache_dir: Optional[Union[str, Path]] = None
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: Dict[str, KernelProfile] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> Optional[KernelProfile]:
        """Look up a profile by content address.

        Args:
            key: Solve key from
                :func:`~repro.engine.planner.solve_key`.

        Returns:
            The cached :class:`KernelProfile`, or None on a miss
            (including torn/stale/foreign disk entries, which are
            treated as misses and later overwritten).
        """
        if not self.enabled:
            return None
        if key in self._memory:
            self.stats.memory_hits += 1
            return self._memory[key]
        path = self._path(key)
        if path is not None and path.exists():
            try:
                profile = KernelProfile.from_dict(json.loads(path.read_text()))
            except (ValueError, KeyError, TypeError, json.JSONDecodeError):
                # Torn, stale, or foreign file: treat as a miss; a fresh
                # solve will overwrite it.
                self.stats.misses += 1
                return None
            self._memory[key] = profile
            self.stats.disk_hits += 1
            return profile
        self.stats.misses += 1
        return None

    def put(self, key: str, profile: KernelProfile) -> None:
        """Store a profile in memory and (when configured) on disk.

        Disk writes are atomic (tempfile + rename) so a killed sweep
        can never leave a torn entry behind.
        """
        if not self.enabled:
            return
        self._memory[key] = profile
        path = self._path(key)
        if path is None:
            return
        payload = json.dumps(profile.to_dict(), separators=(",", ":"))
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.cache_dir), prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    def profiles(self) -> Dict[str, KernelProfile]:
        """Snapshot of every profile currently resident in memory.

        Keyed by solve key, in insertion order.  This is the handle
        batch-pricing callers use to re-price a warmed cache without
        re-running any sweep: pair each profile with the (arch, cache)
        cells of interest and hand them to ``repro.api.price_batch``.
        Disk-only entries (never fetched this process) are not included.
        """
        return dict(self._memory)

    def __contains__(self, key: str) -> bool:
        if not self.enabled:
            return False
        if key in self._memory:
            return True
        path = self._path(key)
        return path is not None and path.exists()

    def __len__(self) -> int:
        disk = (
            len(list(self.cache_dir.glob("*.json")))
            if self.cache_dir is not None
            else 0
        )
        return max(len(self._memory), disk)
