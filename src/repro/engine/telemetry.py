"""Structured sweep telemetry.

Replaces the bare ``Callable[[str], None]`` progress hook with typed
events: cell lifecycle (finished / skipped / resumed), solve lifecycle
(started / finished / cache hit), and sweep bracketing.  Subscribers
receive every event as it is emitted; the collector additionally keeps
counters and per-stage wall-clock so a sweep ends with a one-shot
:meth:`Telemetry.summary` report — cache hit rate, cells run vs skipped,
solver wall time, jobs in flight, and the estimated speedup over the
serial driver (which would have re-executed each kernel once per cell).

The legacy string callback remains available through
:func:`progress_subscriber`, which renders ``cell_finished`` /
``cell_skipped`` events into the exact lines ``run_sweep`` always printed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Event kinds, for reference and validation.
EVENT_KINDS = (
    "sweep_started",
    "solve_started",
    "solve_finished",
    "cache_hit",
    "cell_finished",
    "cell_skipped",
    "cell_resumed",
    "sweep_finished",
    # Fault-campaign lifecycle (repro.faults): campaign bracketing, one
    # event per mission cell, one per injected fault occurrence, and the
    # closed-loop runner's overrun-degradation attribution event.
    "campaign_started",
    "campaign_finished",
    "mission_started",
    "mission_finished",
    "fault_injected",
    "overrun_degraded",
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured progress event."""

    kind: str
    #: Seconds since the sweep started (engine wall clock).
    t_s: float
    kernel: str = ""
    arch: str = ""
    cache: str = ""
    detail: dict = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable one-liner (for verbose CLI output)."""
        where = "/".join(p for p in (self.arch, self.cache) if p)
        subject = " ".join(p for p in (self.kernel, f"on {where}" if where else "") if p)
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.t_s:8.3f}s] {self.kind:14s} {subject} {extras}".rstrip()


class Telemetry:
    """Collects events, counters, and stage timings for one sweep."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._t0 = clock()
        self.events: List[TelemetryEvent] = []
        self.counts: Dict[str, int] = {kind: 0 for kind in EVENT_KINDS}
        self._subscribers: List[Callable[[TelemetryEvent], None]] = []
        self._stage_wall: Dict[str, float] = {}
        self._stage_open: Dict[str, float] = {}
        #: Concurrency high-water mark, maintained by the executor.
        self.in_flight = 0
        self.max_in_flight = 0
        #: Observed solve wall seconds per job key (executor-provided).
        self.solve_wall_by_key: Dict[str, float] = {}
        #: Solve wall seconds recorded in cache-hit profiles at the time
        #: they were originally solved.
        self.cached_solve_s: Dict[str, float] = {}
        #: Filled by the executor: cells each solve key had to cover.
        self.cells_by_key: Dict[str, int] = {}
        self.cache_stats: dict = {}
        self.jobs_requested = 1

    # -- event flow ----------------------------------------------------------

    def subscribe(self, fn: Callable[[TelemetryEvent], None]) -> None:
        """Call ``fn`` synchronously with every subsequently emitted event."""
        self._subscribers.append(fn)

    def emit(
        self,
        kind: str,
        kernel: str = "",
        arch: str = "",
        cache: str = "",
        **detail,
    ) -> TelemetryEvent:
        """Record one event, bump its kind counter, notify subscribers.

        Args:
            kind: Event kind (``solve_started``, ``cache_hit``, ...).
            kernel: Kernel the event concerns, when applicable.
            arch: Core the event concerns, when applicable.
            cache: Cache label the event concerns, when applicable.
            **detail: Free-form extra payload stored on the event.

        Returns:
            The recorded :class:`TelemetryEvent`.
        """
        event = TelemetryEvent(
            kind=kind,
            t_s=self._clock() - self._t0,
            kernel=kernel,
            arch=arch,
            cache=cache,
            detail=detail,
        )
        self.events.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        for fn in self._subscribers:
            fn(event)
        return event

    # -- concurrency + stage accounting --------------------------------------

    def job_launched(self) -> None:
        """Count one solve job entering flight (tracks peak concurrency)."""
        self.in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.in_flight)

    def job_retired(self) -> None:
        """Count one solve job leaving flight."""
        self.in_flight = max(self.in_flight - 1, 0)

    def stage_start(self, name: str) -> None:
        """Open the wall-clock window for a named stage (solve/price)."""
        self._stage_open[name] = self._clock()

    def stage_end(self, name: str) -> None:
        """Close a stage window, accumulating its wall time."""
        start = self._stage_open.pop(name, None)
        if start is not None:
            self._stage_wall[name] = (
                self._stage_wall.get(name, 0.0) + self._clock() - start
            )

    @property
    def wall_s(self) -> float:
        """Wall seconds since this collector was created."""
        return self._clock() - self._t0

    # -- reporting ------------------------------------------------------------

    def serial_estimate_s(self) -> float:
        """What the serial driver's kernel compute would have cost.

        The serial path re-solves a kernel once per priced cell; the
        engine solved (or cache-hit) each job once.  The estimate sums
        per-job solve wall time — observed this run, or recorded in the
        cached profile at original solve time — multiplied by that job's
        cell count; jobs with neither contribute the mean known solve
        time per cell (zero if nothing is known at all).
        """
        known = dict(self.cached_solve_s)
        known.update(self.solve_wall_by_key)
        mean_solve = sum(known.values()) / len(known) if known else 0.0
        total = 0.0
        for key, n_cells in self.cells_by_key.items():
            total += known.get(key, mean_solve) * n_cells
        return total

    def summary(self) -> dict:
        """One flat dict summarizing the run (cells, solves, cache, speedup)."""
        cells_run = self.counts.get("cell_finished", 0)
        cells_skipped = self.counts.get("cell_skipped", 0)
        cells_resumed = self.counts.get("cell_resumed", 0)
        solves = self.counts.get("solve_finished", 0)
        cache_hits = self.counts.get("cache_hit", 0)
        lookups = solves + cache_hits
        wall = self.wall_s
        serial_est = self.serial_estimate_s()
        return {
            "cells_total": cells_run + cells_skipped + cells_resumed,
            "cells_run": cells_run,
            "cells_skipped": cells_skipped,
            "cells_resumed": cells_resumed,
            "solves_executed": solves,
            "cache_hits": cache_hits,
            "cache_hit_rate": cache_hits / lookups if lookups else 0.0,
            "cache": dict(self.cache_stats),
            "jobs_requested": self.jobs_requested,
            "max_jobs_in_flight": self.max_in_flight,
            "wall_s": wall,
            "stage_wall_s": dict(self._stage_wall),
            "serial_estimate_s": serial_est,
            "est_speedup_vs_serial": serial_est / wall if wall > 0 else 0.0,
            "events": len(self.events),
        }


def progress_subscriber(
    progress: Callable[[str], None],
) -> Callable[[TelemetryEvent], None]:
    """Adapt a legacy string-progress callback into an event subscriber.

    Emits exactly the lines the pre-engine ``run_sweep`` produced: one
    ``"<kernel> on <arch>/<cache>: ok|skip"`` per completed cell.
    """

    def on_event(event: TelemetryEvent) -> None:
        if event.kind == "cell_finished":
            status = "ok" if event.detail.get("fits", True) else "skip"
            progress(f"{event.kernel} on {event.arch}/{event.cache}: {status}")
        elif event.kind == "cell_skipped":
            progress(f"{event.kernel} on {event.arch}/{event.cache}: skip")

    return on_event


def verbose_subscriber(
    write: Callable[[str], None],
) -> Callable[[TelemetryEvent], None]:
    """Render every event as a structured one-liner (CLI ``--verbose``)."""

    def on_event(event: TelemetryEvent) -> None:
        write(event.render())

    return on_event
