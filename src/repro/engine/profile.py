"""Kernel solve profiles: the cacheable unit of sweep execution.

A :class:`KernelProfile` captures everything about one kernel configuration
that is *architecture-independent*: the dynamic op-trace of every measured
repetition, the validation verdicts, the memory footprint, the base static
instruction mix, and the work-unit count.  The expensive part of a sweep —
actually running the kernel's real compute (SIFT pyramids, LO-RANSAC
trials, ADMM iterations) — produces a profile once; re-pricing the profile
on any core / cache state through :class:`~repro.mcu.pipeline.PipelineModel`
and :class:`~repro.mcu.energy.EnergyModel` costs microseconds.

``solve_profile`` replicates the harness's repetition loop exactly
(including warm-up repetitions, which advance problem state), and
``price_profile`` replicates the harness's pricing math exactly, so results
assembled from a profile are bit-identical to a direct
:meth:`~repro.core.harness.Harness.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core import registry
from repro.core.results import BenchmarkResult, RunRecord
from repro.mcu.arch import ArchSpec
from repro.mcu.cache import CacheConfig, CacheModel
from repro.mcu.energy import EnergyModel
from repro.mcu.memory import Footprint, check_fit
from repro.mcu.ops import OpCounter, OpTrace
from repro.mcu.pipeline import PipelineModel
from repro.mcu.static import StaticMix, static_profile
from repro.scalar import parse_scalar

#: Bump when the profile layout (or anything that feeds it) changes; stale
#: cache entries are then treated as misses.
PROFILE_FORMAT_VERSION = 1


@dataclass
class KernelProfile:
    """Architecture-independent record of one kernel configuration's runs."""

    kernel: str
    scalar: str
    seed: int
    reps: int
    warmup_reps: int
    dataset: str
    stage: str
    work_units: int
    footprint: Footprint
    static_mix: StaticMix
    #: One ``(trace, valid)`` pair per *measured* repetition, in order.
    measured: List[Tuple[OpTrace, bool]] = field(default_factory=list)
    #: Wall seconds the original solve took; rides along in the cache so
    #: warm sweeps can still estimate their speedup over the serial driver.
    solve_s: float = 0.0

    def to_dict(self) -> dict:
        """JSON-safe dict for the trace cache and worker transport."""
        return {
            "format_version": PROFILE_FORMAT_VERSION,
            "kernel": self.kernel,
            "scalar": self.scalar,
            "seed": self.seed,
            "reps": self.reps,
            "warmup_reps": self.warmup_reps,
            "dataset": self.dataset,
            "stage": self.stage,
            "work_units": self.work_units,
            "footprint": {
                "flash_bytes": self.footprint.flash_bytes,
                "data_bytes": self.footprint.data_bytes,
                "stack_bytes": self.footprint.stack_bytes,
            },
            "static_mix": {
                "flash_bytes": self.static_mix.flash_bytes,
                "f": self.static_mix.f,
                "i": self.static_mix.i,
                "m": self.static_mix.m,
                "b": self.static_mix.b,
            },
            "measured": [
                {"trace": trace.as_dict(), "valid": valid}
                for trace, valid in self.measured
            ],
            "solve_s": self.solve_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KernelProfile":
        """Rebuild a profile from :meth:`to_dict` output.

        Raises:
            ValueError: On a missing or incompatible format version
                (stale cache entries become cache misses upstream).
        """
        version = data.get("format_version")
        if version != PROFILE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported profile format version {version!r} "
                f"(expected {PROFILE_FORMAT_VERSION})"
            )
        return cls(
            kernel=data["kernel"],
            scalar=data["scalar"],
            seed=data["seed"],
            reps=data["reps"],
            warmup_reps=data["warmup_reps"],
            dataset=data["dataset"],
            stage=data["stage"],
            work_units=data["work_units"],
            footprint=Footprint(**data["footprint"]),
            static_mix=StaticMix(**data["static_mix"]),
            measured=[
                (OpTrace(**entry["trace"]), bool(entry["valid"]))
                for entry in data["measured"]
            ],
            solve_s=data.get("solve_s", 0.0),
        )


def solve_profile(
    kernel: str,
    factory_kwargs: dict,
    reps: int,
    warmup_reps: int,
) -> KernelProfile:
    """Run one kernel configuration for real and record its profile.

    Mirrors the harness repetition loop: warm-up repetitions execute (they
    advance any internal problem state) but only measured repetitions are
    recorded, each with its own fresh :class:`OpCounter` snapshot and
    validation verdict.
    """
    problem = registry.create(kernel, **factory_kwargs)
    footprint = problem.footprint()
    rng = np.random.default_rng(problem.seed)
    problem.ensure_setup(rng)

    measured: List[Tuple[OpTrace, bool]] = []
    for rep in range(warmup_reps + reps):
        counter = OpCounter()
        solve_result = problem.solve(counter)
        if rep >= warmup_reps:
            measured.append(
                (counter.snapshot(), bool(problem.validate(solve_result)))
            )

    return KernelProfile(
        kernel=problem.name,
        scalar=problem.scalar.name,
        seed=problem.seed,
        reps=reps,
        warmup_reps=warmup_reps,
        dataset=problem.dataset_name,
        stage=problem.stage,
        work_units=max(int(problem.work_units), 1),
        footprint=footprint,
        static_mix=problem.static_mix_base(),
        measured=measured,
    )


def skip_result(
    kernel: str,
    scalar: str,
    dataset: str,
    stage: str,
    footprint: Footprint,
    arch: ArchSpec,
    cache: CacheConfig,
) -> BenchmarkResult:
    """The does-not-fit result, byte-compatible with the harness's."""
    fit = check_fit(footprint, arch)
    result = BenchmarkResult(
        kernel=kernel,
        arch=arch.name,
        cache=cache.label,
        scalar=scalar,
        dataset=dataset,
        stage=stage,
    )
    result.fits = False
    result.skip_reason = (
        f"needs {fit.flash_used} B flash / {fit.sram_used} B SRAM; "
        f"{arch.name} offers {fit.flash_available} / {fit.sram_available}"
    )
    return result


def price_profile(
    profile: KernelProfile,
    arch: ArchSpec,
    cache: CacheConfig,
) -> BenchmarkResult:
    """Re-price a solved profile on one (arch, cache state) cell.

    Pure model math — no kernel compute.  The sequence of operations
    matches :meth:`Harness.run` so the produced :class:`BenchmarkResult`
    is bit-identical to a direct harness run of the same configuration.
    """
    fit = check_fit(profile.footprint, arch)
    if not fit.fits:
        return skip_result(
            profile.kernel, profile.scalar, profile.dataset, profile.stage,
            profile.footprint, arch, cache,
        )

    result = BenchmarkResult(
        kernel=profile.kernel,
        arch=arch.name,
        cache=cache.label,
        scalar=profile.scalar,
        dataset=profile.dataset,
        stage=profile.stage,
    )
    result.work_units = profile.work_units

    scalar = parse_scalar(profile.scalar)
    static = static_profile(profile.kernel, profile.static_mix, arch)
    code_bytes = static.flash_bytes
    data_bytes = profile.footprint.data_bytes
    cache_model = CacheModel(arch, cache)
    cache_activity = cache_model.activity(code_bytes, data_bytes)
    pipeline = PipelineModel(arch)
    energy = EnergyModel(arch)

    for rep, (trace, valid) in enumerate(profile.measured):
        breakdown = pipeline.cycles(trace, scalar, cache, code_bytes, data_bytes)
        report = energy.report(trace, breakdown, cache_activity)
        result.runs.append(
            RunRecord(
                rep=rep,
                cycles=breakdown.total,
                latency_s=report.latency_s,
                energy_j=report.energy_j,
                avg_power_w=report.avg_power_w,
                peak_power_w=report.peak_power_w,
                # Copy so records priced from one shared profile never
                # alias a mutable trace across cells.
                trace=trace.copy(),
                valid=valid,
            )
        )
    return result
