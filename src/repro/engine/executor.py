"""The sweep execution engine.

Orchestrates a planned sweep end to end:

1. **Resume** — with a checkpoint file, previously completed cells are
   reloaded (guarded by a plan fingerprint) and neither re-priced nor,
   when a whole job's cells are already done, re-solved.
2. **Cache lookup** — each remaining job's profile is fetched from the
   :class:`~repro.engine.trace_cache.TraceCache` by content address.
3. **Solve** — cache misses fan out across a ``ProcessPoolExecutor``
   (``jobs > 1``) or run inline (``jobs == 1``); each job executes its
   kernel's real compute exactly once, however many cells need it.
4. **Price** — every cell is priced from its job's profile in the
   canonical (arch, cache, kernel) order, producing a
   :class:`~repro.core.experiment.SweepResults` whose ordering and values
   are bit-identical to the serial driver's; each priced cell is appended
   to the checkpoint so a killed sweep restarts from where it died.
   By default the whole stage runs through the columnar
   :func:`repro.vecprice.price_batch` pricer (one batched matrix op for
   every remaining cell, byte-identical to per-cell
   :func:`~repro.engine.profile.price_profile` — see ``docs/pricing.md``);
   ``EngineOptions(vectorize=False)`` keeps the serial reference path.

Telemetry events trace every stage; the collector's summary reports cache
hit rate, cells run/skipped/resumed, and the estimated speedup over the
serial driver.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Union

from repro.engine.planner import Cell, SolveJob, SweepPlan, build_plan
from repro.engine.profile import KernelProfile, price_profile, skip_result, solve_profile
from repro.engine.telemetry import Telemetry, progress_subscriber
from repro.engine.trace_cache import TraceCache
from repro.obs import get_metrics, get_tracer
from repro.vecprice import price_batch


@dataclass
class EngineOptions:
    """How to execute a planned sweep."""

    #: Worker processes for kernel solves; 1 = serial in-process.
    jobs: int = 1
    #: Directory for the persistent trace cache; None = in-memory only.
    cache_dir: Optional[Union[str, Path]] = None
    #: Disable the trace cache entirely (every job re-solves).
    use_cache: bool = True
    #: Share a pre-built cache instance (overrides cache_dir/use_cache).
    trace_cache: Optional[TraceCache] = None
    #: Checkpoint file (JSONL) for kill-resume; None = no checkpointing.
    checkpoint: Optional[Union[str, Path]] = None
    #: Reload completed cells from an existing checkpoint before running.
    resume: bool = False
    #: Price cells through the columnar :mod:`repro.vecprice` batch path
    #: (byte-identical to the serial reference, ~10x faster at campaign
    #: scale); False falls back to per-cell ``price_profile``.
    vectorize: bool = True

    def make_cache(self) -> TraceCache:
        """The trace cache these options describe (shared or fresh)."""
        if self.trace_cache is not None:
            return self.trace_cache
        return TraceCache(cache_dir=self.cache_dir, enabled=self.use_cache)


def _solve_job_worker(payload: tuple) -> dict:
    """Process-pool entry point: solve one job, return its profile dict."""
    kernel, factory_kwargs, reps, warmup_reps = payload
    start = perf_counter()
    profile = solve_profile(kernel, factory_kwargs, reps, warmup_reps)
    profile.solve_s = perf_counter() - start
    return profile.to_dict()


def _strict_memory_prescan(plan: SweepPlan, config) -> None:
    """Replicate the serial driver's strict-memory failure, up front."""
    if not config.strict_memory:
        return
    for cell in plan.cells:
        job = plan.job_of_kernel[cell.kernel]
        if cell in job.skip_cells:
            from repro.mcu.memory import MemoryFitError

            raise MemoryFitError(
                f"{job.problem_name} exceeds {cell.arch} memory"
            )


def _resolve_profiles(
    plan: SweepPlan,
    pending: List[SolveJob],
    options: EngineOptions,
    cache: TraceCache,
    telemetry: Telemetry,
) -> Dict[str, KernelProfile]:
    """Fetch or compute the profile for every job that needs one.

    Args:
        plan: The expanded sweep plan (for job/cell bookkeeping).
        pending: Jobs whose profiles are still required.
        options: Execution options (worker count, cache wiring).
        cache: The trace cache to consult and fill.
        telemetry: Event collector for solve/cache lifecycle events.

    Returns:
        Mapping of solve key -> :class:`KernelProfile` for every pending
        job, whether cache-hit or freshly solved.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    profiles: Dict[str, KernelProfile] = {}
    to_solve: List[SolveJob] = []
    for job in pending:
        telemetry.cells_by_key[job.key] = len(job.priced_cells)
        hit = cache.get(job.key)
        if hit is not None:
            profiles[job.key] = hit
            telemetry.cached_solve_s[job.key] = hit.solve_s
            telemetry.emit("cache_hit", kernel=job.kernel, key=job.key)
            metrics.inc("engine.cache_hits")
            if tracer.enabled:
                tracer.instant("engine.cache_hit", cat="engine",
                               kernel=job.kernel, key=job.key)
        else:
            to_solve.append(job)
            metrics.inc("engine.cache_misses")

    if not to_solve:
        return profiles

    telemetry.stage_start("solve")
    if options.jobs > 1 and len(to_solve) > 1:
        max_workers = min(options.jobs, len(to_solve))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            future_of = {}
            for job in to_solve:
                telemetry.emit("solve_started", kernel=job.kernel, key=job.key)
                telemetry.job_launched()
                payload = (job.kernel, job.factory_kwargs, job.reps, job.warmup_reps)
                future_of[pool.submit(_solve_job_worker, payload)] = job
            outstanding = set(future_of)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    job = future_of[future]
                    out = future.result()  # worker errors propagate here
                    telemetry.job_retired()
                    profile = KernelProfile.from_dict(out)
                    profiles[job.key] = profile
                    cache.put(job.key, profile)
                    telemetry.solve_wall_by_key[job.key] = profile.solve_s
                    telemetry.emit(
                        "solve_finished", kernel=job.kernel,
                        key=job.key, solve_s=round(profile.solve_s, 6),
                    )
                    if tracer.enabled:
                        # Worker processes trace nothing; reconstruct the
                        # solve span on a per-kernel lane from the
                        # worker-reported duration, ending now.
                        end = tracer.now()
                        tracer.add_span(
                            "engine.solve", max(end - profile.solve_s, 0.0),
                            end, cat="engine", track=f"solve:{job.kernel}",
                            kernel=job.kernel, key=job.key, worker=True,
                        )
    else:
        for job in to_solve:
            telemetry.emit("solve_started", kernel=job.kernel, key=job.key)
            telemetry.job_launched()
            span = tracer.span("engine.solve", cat="engine",
                               kernel=job.kernel, key=job.key)
            with span:
                start = perf_counter()
                profile = solve_profile(
                    job.kernel, job.factory_kwargs, job.reps, job.warmup_reps
                )
                profile.solve_s = perf_counter() - start
            telemetry.job_retired()
            profiles[job.key] = profile
            cache.put(job.key, profile)
            telemetry.solve_wall_by_key[job.key] = profile.solve_s
            telemetry.emit(
                "solve_finished", kernel=job.kernel,
                key=job.key, solve_s=round(profile.solve_s, 6),
            )
    telemetry.stage_end("solve")
    # Collation-path metrics: derived here, in plan order, so worker
    # scheduling can never reorder the aggregation.
    if metrics.enabled:
        for job in to_solve:
            metrics.inc("engine.solves")
            metrics.observe("engine.solve_wall_s", profiles[job.key].solve_s)
    return profiles


def run_plan(
    plan: SweepPlan,
    options: Optional[EngineOptions] = None,
    telemetry: Optional[Telemetry] = None,
):
    """Execute a planned sweep; returns ordered ``SweepResults``."""
    from repro.core import experiment_io
    from repro.core.experiment import SweepResults

    options = options or EngineOptions()
    telemetry = telemetry or Telemetry()
    telemetry.jobs_requested = options.jobs
    cache = options.make_cache()
    tracer = get_tracer()
    metrics = get_metrics()
    metrics.set_gauge("engine.jobs", options.jobs)

    telemetry.emit(
        "sweep_started",
        cells=len(plan.cells), jobs=len(plan.jobs),
        solves_saved=plan.n_solves_saved, workers=options.jobs,
    )

    # Config invariants (strict memory) fail before any compute is spent.
    config = plan.config
    _strict_memory_prescan(plan, config)

    # Resume: reload completed cells, guarded by the plan fingerprint.
    fingerprint = plan.fingerprint()
    done: Dict[Cell, object] = {}
    checkpoint = Path(options.checkpoint) if options.checkpoint else None
    if checkpoint is not None:
        if options.resume and checkpoint.exists():
            done = experiment_io.load_checkpoint(checkpoint, fingerprint)
        else:
            experiment_io.init_checkpoint(checkpoint, fingerprint)

    # Jobs whose cells are all checkpointed need no profile at all.
    pending = [
        job for job in plan.jobs
        if job.needs_solve and any(c not in done for c in job.priced_cells)
    ]
    profiles = _resolve_profiles(plan, pending, options, cache, telemetry)

    # Price every cell in canonical order.
    telemetry.stage_start("price")
    out = SweepResults()
    ckpt_fh = checkpoint.open("a") if checkpoint is not None else None
    price_span = tracer.span("engine.price", cat="engine",
                             cells=len(plan.cells))
    try:
        price_span.__enter__()
        # Vectorized path: price every remaining cell in one columnar
        # batch up front (byte-identical to per-cell price_profile),
        # then drain the results through the same bookkeeping loop so
        # ordering, telemetry, metrics, and checkpoint lines are
        # indistinguishable from the serial path.
        batched: Dict[Cell, object] = {}
        if options.vectorize:
            todo = [
                cell for cell in plan.cells
                if cell not in done
                and cell not in plan.job_of_kernel[cell.kernel].skip_cells
            ]
            if todo:
                with tracer.span("engine.price_batch", cat="engine",
                                 cells=len(todo)):
                    priced = price_batch([
                        (
                            profiles[plan.job_of_kernel[cell.kernel].key],
                            plan.archs[cell.arch],
                            plan.caches[cell.cache],
                        )
                        for cell in todo
                    ])
                batched = dict(zip(todo, priced))
        for cell in plan.cells:
            job = plan.job_of_kernel[cell.kernel]
            if cell in done:
                out.add(done[cell])
                telemetry.emit(
                    "cell_resumed",
                    kernel=cell.kernel, arch=cell.arch, cache=cell.cache,
                )
                metrics.inc("engine.cells_resumed")
                continue
            arch = plan.archs[cell.arch]
            cache_config = plan.caches[cell.cache]
            if cell in job.skip_cells:
                result = skip_result(
                    job.problem_name, job.scalar, job.dataset, job.stage,
                    job.footprint, arch, cache_config,
                )
                out.add(result)
                telemetry.emit(
                    "cell_skipped",
                    kernel=cell.kernel, arch=cell.arch, cache=cell.cache,
                    reason="memory",
                )
                metrics.inc("engine.cells_skipped")
            else:
                if options.vectorize:
                    result = batched.pop(cell)
                elif tracer.enabled:
                    with tracer.span("engine.price_cell", cat="engine",
                                     kernel=cell.kernel, arch=cell.arch,
                                     cache=cell.cache):
                        result = price_profile(
                            profiles[job.key], arch, cache_config
                        )
                else:
                    result = price_profile(profiles[job.key], arch, cache_config)
                out.add(result)
                telemetry.emit(
                    "cell_finished",
                    kernel=cell.kernel, arch=cell.arch, cache=cell.cache,
                    fits=result.fits, reps=len(result.runs),
                )
                if metrics.enabled:
                    metrics.inc("engine.cells_run")
                    if result.fits and result.runs:
                        metrics.observe("engine.cell_latency_us",
                                        result.unit_latency_us)
                        metrics.observe("engine.cell_energy_uj",
                                        result.unit_energy_uj)
                        metrics.inc(f"engine.energy_uj.{cell.arch}",
                                    result.unit_energy_uj)
            if ckpt_fh is not None:
                experiment_io.write_checkpoint_line(ckpt_fh, cell, result)
    finally:
        price_span.__exit__(None, None, None)
        if ckpt_fh is not None:
            ckpt_fh.close()
    telemetry.stage_end("price")

    telemetry.cache_stats = cache.stats.as_dict()
    telemetry.emit(
        "sweep_finished",
        cells=len(out), solves=len(telemetry.solve_wall_by_key),
        cache_hits=telemetry.counts.get("cache_hit", 0),
    )
    return out


def run_sweep_engine(
    spec,
    options: Optional[EngineOptions] = None,
    telemetry: Optional[Telemetry] = None,
    progress=None,
):
    """Plan and execute a :class:`~repro.core.experiment.SweepSpec`.

    ``progress`` accepts the legacy string callback; it is adapted into a
    telemetry subscriber producing the exact historical lines.
    """
    telemetry = telemetry or Telemetry()
    if progress is not None:
        telemetry.subscribe(progress_subscriber(progress))
    tracer = get_tracer()
    with tracer.span("engine.sweep", cat="engine", kernels=len(spec.kernels)):
        with tracer.span("engine.plan", cat="engine"):
            plan = build_plan(spec)
        return run_plan(plan, options=options, telemetry=telemetry)
