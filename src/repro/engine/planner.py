"""Sweep planning: expand a :class:`SweepSpec` into a deduplicated job graph.

The serial driver runs ``archs x caches x kernels`` full kernel executions.
The planner observes that a kernel's dynamic behaviour depends only on
(kernel, factory kwargs, scalar, seed, repetition counts) — not on the core
or cache state it is later priced for — and therefore groups the sweep's
cells under one :class:`SolveJob` per kernel configuration.  Each job's
profile is solved once (or loaded from the trace cache) and re-priced
across every requested (arch, cache) cell.

Cells that cannot fit an arch's memory are planned as skips up front, from
the pre-setup footprint, exactly as the harness would decide them — a
kernel that fits nowhere is never solved at all.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.engine.profile import PROFILE_FORMAT_VERSION
from repro.mcu.arch import ArchSpec
from repro.mcu.cache import CacheConfig
from repro.mcu.memory import Footprint, check_fit
from repro.scalar import ScalarType


class Cell(NamedTuple):
    """One sweep datacell: a kernel priced on one core and cache state."""

    kernel: str
    arch: str
    cache: str


def canonical_kwargs(kwargs: dict) -> str:
    """Stable, hash-friendly rendering of factory kwargs.

    Primitives serialize as JSON; :class:`ScalarType` by its name (so
    ``q(7, 24)`` and ``parse_scalar("q7.24")`` key identically); anything
    else falls back to ``repr``.
    """

    def render(value):
        if isinstance(value, ScalarType):
            return f"scalar:{value.name}"
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        if isinstance(value, (list, tuple)):
            return [render(v) for v in value]
        if isinstance(value, dict):
            return {str(k): render(v) for k, v in sorted(value.items())}
        return repr(value)

    return json.dumps(
        {str(k): render(v) for k, v in sorted(kwargs.items())},
        sort_keys=True, separators=(",", ":"),
    )


def solve_key(
    kernel: str,
    factory_kwargs: dict,
    scalar: str,
    seed: int,
    reps: int,
    warmup_reps: int,
) -> str:
    """Content address of one kernel configuration's solve profile."""
    payload = json.dumps(
        {
            "format_version": PROFILE_FORMAT_VERSION,
            "kernel": kernel,
            "kwargs": canonical_kwargs(factory_kwargs),
            "scalar": scalar,
            "seed": seed,
            "reps": reps,
            "warmup_reps": warmup_reps,
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


@dataclass
class SolveJob:
    """One unit of real kernel compute, shared by many cells."""

    kernel: str
    factory_kwargs: dict
    reps: int
    warmup_reps: int
    #: From a throwaway pre-setup instantiation (cheap; datasets load in
    #: ``setup``): the identity fields the cache key and skip cells need.
    #: ``problem_name`` is what results report (usually equal to the
    #: registry key the sweep requested).
    problem_name: str
    scalar: str
    seed: int
    dataset: str
    stage: str
    footprint: Footprint
    key: str
    #: Cells this job's profile will be priced for, and cells that are
    #: planned skips (memory misfit) needing no profile.
    priced_cells: List[Cell] = field(default_factory=list)
    skip_cells: List[Cell] = field(default_factory=list)

    @property
    def needs_solve(self) -> bool:
        """True when at least one cell will price from this job's profile."""
        return bool(self.priced_cells)


@dataclass
class SweepPlan:
    """A fully expanded sweep: canonical cell order plus the job graph."""

    cells: List[Cell]
    jobs: List[SolveJob]
    archs: Dict[str, ArchSpec]
    caches: Dict[str, CacheConfig]
    job_of_kernel: Dict[str, SolveJob]
    #: The sweep's validated harness configuration.
    config: HarnessConfig

    @property
    def n_solves_saved(self) -> int:
        """Kernel executions the serial driver would have run beyond ours."""
        return sum(
            len(job.priced_cells) - 1 for job in self.jobs if job.needs_solve
        )

    def fingerprint(self) -> str:
        """Identity of the planned work, used to guard checkpoint resume."""
        payload = json.dumps(
            {
                "cells": [list(c) for c in self.cells],
                "keys": [job.key for job in self.jobs],
            },
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:32]


def _make_job(kernel: str, kwargs: dict, config: HarnessConfig) -> SolveJob:
    """Instantiate a throwaway probe and derive one kernel's solve job."""
    probe = registry.create(kernel, **kwargs)
    return SolveJob(
        kernel=kernel,
        factory_kwargs=kwargs,
        reps=config.reps,
        warmup_reps=config.warmup_reps,
        problem_name=probe.name,
        scalar=probe.scalar.name,
        seed=probe.seed,
        dataset=probe.dataset_name,
        stage=probe.stage,
        footprint=probe.footprint(),
        key=solve_key(
            kernel, kwargs, probe.scalar.name, probe.seed,
            config.reps, config.warmup_reps,
        ),
    )


def _assign_cell(cell: Cell, job: SolveJob, arch: ArchSpec) -> None:
    """File a cell under its job as priced work or a planned memory skip."""
    if check_fit(job.footprint, arch).fits:
        job.priced_cells.append(cell)
    else:
        job.skip_cells.append(cell)


def build_plan(spec) -> SweepPlan:
    """Expand a :class:`~repro.core.experiment.SweepSpec` into a plan.

    The canonical cell order matches the serial driver's loop nest
    (arch, then cache state, then kernel) so engine results collate into
    the exact sequence ``run_sweep`` has always produced.
    """
    config = spec.config.validated()
    archs = {arch.name: arch for arch in spec.archs}
    caches = {cache.label: cache for cache in spec.caches}

    jobs: List[SolveJob] = []
    job_of_kernel: Dict[str, SolveJob] = {}
    for kernel in spec.kernels:
        if kernel in job_of_kernel:
            continue
        job = _make_job(kernel, spec.factory_kwargs(kernel), config)
        jobs.append(job)
        job_of_kernel[kernel] = job

    cells: List[Cell] = []
    seen: set = set()
    for arch in spec.archs:
        for cache in spec.caches:
            for kernel in spec.kernels:
                cell = Cell(kernel, arch.name, cache.label)
                if cell in seen:
                    continue
                seen.add(cell)
                cells.append(cell)
                _assign_cell(cell, job_of_kernel[kernel], arch)

    return SweepPlan(
        cells=cells,
        jobs=jobs,
        archs=archs,
        caches=caches,
        job_of_kernel=job_of_kernel,
        config=config,
    )


def build_cell_plan(
    requests,
    config: HarnessConfig = None,
    overrides: Dict[str, dict] = None,
) -> SweepPlan:
    """Expand explicit ``(kernel, ArchSpec, CacheConfig)`` requests into a plan.

    The batch entry point for the query service: where :func:`build_plan`
    expands the full cross product of a :class:`SweepSpec`, this plans
    exactly the cells requested — a coalesced batch of queries covers an
    arbitrary, possibly sparse subset of the sweep grid, and planning the
    cross product would solve kernels nobody asked about.

    Duplicate requests collapse to one cell (first occurrence fixes the
    collation position); kernels still share one :class:`SolveJob` per
    configuration, so a batch of N queries against one kernel costs one
    solve.  Because each cell prices independently from its job's profile,
    results are byte-identical to the same cells planned via
    :func:`build_plan` — batch composition cannot leak between cells.
    """
    config = (config if config is not None else HarnessConfig()).validated()
    overrides = overrides or {}

    def factory_kwargs(kernel: str) -> dict:
        kwargs = dict(overrides.get("*", {}))
        kwargs.update(overrides.get(kernel, {}))
        return kwargs

    archs: Dict[str, ArchSpec] = {}
    caches: Dict[str, CacheConfig] = {}
    jobs: List[SolveJob] = []
    job_of_kernel: Dict[str, SolveJob] = {}
    cells: List[Cell] = []
    seen: set = set()
    for kernel, arch, cache in requests:
        cell = Cell(kernel, arch.name, cache.label)
        if cell in seen:
            continue
        seen.add(cell)
        cells.append(cell)
        archs.setdefault(arch.name, arch)
        caches.setdefault(cache.label, cache)
        if kernel not in job_of_kernel:
            job = _make_job(kernel, factory_kwargs(kernel), config)
            jobs.append(job)
            job_of_kernel[kernel] = job
        _assign_cell(cell, job_of_kernel[kernel], arch)

    return SweepPlan(
        cells=cells,
        jobs=jobs,
        archs=archs,
        caches=caches,
        job_of_kernel=job_of_kernel,
        config=config,
    )
