"""Hash-keyed per-module analysis cache for incremental lint runs.

CI (and any warm local run) should not re-analyze 150 modules because
one changed.  The engine's per-module work — parsing, module-rule
findings, pragma tables, raw import records, deep-rule fact extraction
— is pure in the file content, so it caches under the file's sha256.
The whole-program *solve* phases (layering, taint fixpoint, race
reachability, contracts) always re-run over the combined fact pool;
they are cheap next to parsing and their inputs may span modules.

Invalidation is deliberately conservative:

* a module re-analyzes when its content hash changes;
* its **reverse-dependency cone** (every module that transitively
  imports it) re-analyzes too, because ``from X import y`` resolution
  depends on the global module-name set and re-export facts flow
  through importers;
* adding or removing any module invalidates everything (name-set
  changes can re-resolve imports anywhere; module churn is rare);
* a change in the selected rule set or analyzer version invalidates
  everything (the cached facts may be for different extractors).

The cache file is plain JSON with sorted keys, so repeated runs over
an unchanged tree rewrite it byte-identically — the linter obeys the
determinism discipline it enforces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Bump when extraction output shapes change (invalidates all caches).
ANALYZER_VERSION = 1

CACHE_VERSION = 1


def content_hash(text: str) -> str:
    """sha256 of a module's source text (the cache key)."""
    return hashlib.sha256(text.encode()).hexdigest()


def rules_signature(rule_ids: Sequence[str]) -> str:
    """Digest of the selected rule set + analyzer version."""
    payload = json.dumps(
        {"analyzer": ANALYZER_VERSION, "rules": sorted(rule_ids)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class ModuleEntry:
    """Everything the engine needs to skip re-analyzing one module."""

    hash: str
    name: str  #: dotted module name
    findings: List[dict] = field(default_factory=list)
    pragma_findings: List[dict] = field(default_factory=list)
    #: ``{line (str): {rule id: reason string ('' = none)}}``
    suppressions: Dict[str, Dict[str, str]] = field(default_factory=dict)
    imports: List[dict] = field(default_factory=list)  #: raw records
    facts: Dict[str, dict] = field(default_factory=dict)  #: per facts_key

    def to_dict(self) -> dict:
        """JSON form."""
        return {
            "hash": self.hash, "name": self.name,
            "findings": self.findings,
            "pragma_findings": self.pragma_findings,
            "suppressions": self.suppressions,
            "imports": self.imports,
            "facts": self.facts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleEntry":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            hash=data["hash"], name=data["name"],
            findings=list(data["findings"]),
            pragma_findings=list(data["pragma_findings"]),
            suppressions={k: dict(v)
                          for k, v in data["suppressions"].items()},
            imports=list(data["imports"]),
            facts=dict(data["facts"]),
        )


@dataclass
class AnalysisCache:
    """The on-disk cache: one :class:`ModuleEntry` per relpath."""

    signature: str = ""
    modules: Dict[str, ModuleEntry] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Optional[Path], signature: str) -> "AnalysisCache":
        """Read a cache file; any mismatch degrades to an empty cache."""
        if path is None or not Path(path).exists():
            return cls(signature=signature)
        try:
            data = json.loads(Path(path).read_text())
        except (json.JSONDecodeError, OSError):
            return cls(signature=signature)
        if (
            data.get("version") != CACHE_VERSION
            or data.get("signature") != signature
        ):
            return cls(signature=signature)
        return cls(
            signature=signature,
            modules={
                relpath: ModuleEntry.from_dict(entry)
                for relpath, entry in data.get("modules", {}).items()
            },
        )

    def save(self, path: Path) -> None:
        """Write the cache with sorted keys (byte-stable on no change)."""
        payload = {
            "version": CACHE_VERSION,
            "signature": self.signature,
            "modules": {
                relpath: self.modules[relpath].to_dict()
                for relpath in sorted(self.modules)
            },
        }
        Path(path).write_text(json.dumps(payload, sort_keys=True) + "\n")

    def plan(
        self, current: Dict[str, Tuple[str, str]]
    ) -> Tuple[Set[str], Set[str]]:
        """Decide what to re-analyze.

        Args:
            current: ``{relpath: (content hash, dotted name)}`` for the
                files on disk right now.

        Returns:
            ``(dirty, reused)`` relpath sets.  ``dirty`` includes the
            changed modules plus their transitive reverse-dependency
            cone; ``reused`` is everything served from cache.
        """
        cached_paths = set(self.modules)
        current_paths = set(current)
        if cached_paths != current_paths:
            # Name-set change: import resolution may shift anywhere.
            return set(current_paths), set()
        changed = {
            relpath for relpath, (digest, _) in current.items()
            if self.modules[relpath].hash != digest
        }
        if not changed:
            return set(), set(current_paths)
        dirty = changed | self._reverse_cone(changed, current)
        return dirty, current_paths - dirty

    def _reverse_cone(
        self, changed: Set[str], current: Dict[str, Tuple[str, str]]
    ) -> Set[str]:
        """Transitive reverse importers of ``changed``, from cached records."""
        relpath_of = {name: relpath
                      for relpath, (_, name) in current.items()}
        importers: Dict[str, Set[str]] = {}
        for relpath, entry in self.modules.items():
            for record in entry.imports:
                targets = [record["target"]]
                if record["kind"] == "from":
                    base = record["target"]
                    targets.append(f"{base}.{record['name']}"
                                   if base else record["name"])
                for target in targets:
                    dep = relpath_of.get(target)
                    if dep is not None and dep != relpath:
                        importers.setdefault(dep, set()).add(relpath)
        cone: Set[str] = set()
        frontier = sorted(changed)
        while frontier:
            node = frontier.pop()
            for importer in importers.get(node, ()):
                if importer not in cone and importer not in changed:
                    cone.add(importer)
                    frontier.append(importer)
        return cone
