"""The lint runner: scan, parse once, dispatch rules, apply suppressions.

One :func:`run_lint` call walks a package root (``src/repro`` by
default) in sorted order, analyzes every file exactly once, hands the
modules to each per-file rule, the import graph to each whole-program
rule, and the extracted fact pool to each deep rule, then filters the
findings through the suppression pragmas and the committed baseline.
Everything downstream — the text/JSON/SARIF reporters, the CLI exit
code, the pytest entry point — works off the returned
:class:`LintResult`.

Three engine axes compose:

* ``analyze="deep"`` adds the flow-sensitive whole-program rules
  (taint propagation, race detection, contract checking) on top of the
  per-file set;
* ``jobs=N`` parallelizes the per-module phase across a process pool
  — findings stay byte-identical to ``jobs=1`` because per-module
  records merge in sorted path order and all whole-program solving
  happens in the parent;
* ``cache_path=...`` enables the incremental cache: only changed
  modules and their reverse-dependency cone re-analyze.

Suppression pragma::

    risky_call()  # repro: lint-ignore[iteration-order]
    # repro: lint-ignore[no-wall-clock,no-unseeded-rng]  (next line)
    # repro: lint-ignore  (all rules, same/next line)
    hot()  # repro: lint-ignore[taint-determinism] -- measured, not priced

A pragma naming a rule id that does not exist is itself a finding
(``pragma-hygiene``), so typos cannot silently disable a check — and
suppressing a *deep* rule without a ``-- reason`` string is a finding
too, so whole-program exemptions stay documented.
"""

from __future__ import annotations

import ast
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.baseline import Baseline
from repro.lint.incremental import (
    AnalysisCache,
    ModuleEntry,
    content_hash,
    rules_signature,
)
from repro.lint.rules import (
    DeepRule,
    Finding,
    Module,
    Rule,
    all_rules,
    get_rule,
    graph_from_records,
    collect_import_records,
    register_rule,
    rule_ids,
)

#: Matches ``# repro: lint-ignore``, ``...[a,b]``, and an optional
#: ``-- reason`` tail documenting why the suppression is sound.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*lint-ignore"
    r"(?:\[(?P<rules>[^\]]*)\])?"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)

#: Sentinel meaning "suppress every rule on this line".
ALL_RULES = "*"


class PragmaHygieneRule(Rule):
    """Suppression pragmas must name real rule ids and carry reasons.

    Implemented by the engine itself (pragmas are an engine concept),
    registered here so the id shows up in the catalog, the docs test,
    and ``repro lint --list`` like any other rule.  Two obligations:
    the pragma must name registered rule ids, and suppressions of deep
    (whole-program) rules must carry a ``-- reason`` string.
    """

    id = "pragma-hygiene"
    summary = "lint-ignore pragmas must name registered rule ids"
    rationale = (
        "a typo in a suppression would otherwise silently disable "
        "nothing and hide the intent"
    )


register_rule(PragmaHygieneRule())


@dataclass
class Suppressions:
    """Per-line suppression table for one module.

    Each line maps suppressed rule ids to the pragma's reason string
    (empty when the pragma gave none); deep-rule enforcement reads the
    reason back through :meth:`reason`.
    """

    by_line: Dict[int, Dict[str, str]] = field(default_factory=dict)

    def covers(self, line: int, rule_id: str) -> bool:
        """True when ``rule_id`` is suppressed on ``line``."""
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return ALL_RULES in rules or rule_id in rules

    def reason(self, line: int, rule_id: str) -> str:
        """The documented reason for a suppression ('' when absent)."""
        rules = self.by_line.get(line, {})
        if rule_id in rules:
            return rules[rule_id]
        return rules.get(ALL_RULES, "")

    def to_dict(self) -> Dict[str, Dict[str, str]]:
        """JSON form for the incremental cache (line keys as strings)."""
        return {str(line): dict(sorted(rules.items()))
                for line, rules in sorted(self.by_line.items())}

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, str]]) -> "Suppressions":
        """Rebuild from :meth:`to_dict` output."""
        return cls(by_line={int(line): dict(rules)
                            for line, rules in data.items()})


def scan_pragmas(module: Module) -> Tuple[Suppressions, List[Finding]]:
    """Extract the suppression table and any pragma-hygiene findings.

    A pragma applies to its own line; a standalone comment line applies
    to the following line as well, covering both placement styles.
    """
    suppressions = Suppressions()
    findings: List[Finding] = []
    known = set(rule_ids())
    for lineno, text in enumerate(module.lines, start=1):
        match = PRAGMA_RE.search(text)
        if not match:
            continue
        raw = match.group("rules")
        reason = (match.group("reason") or "").strip()
        if raw is None:
            rules: Set[str] = {ALL_RULES}
        else:
            rules = {r.strip() for r in raw.split(",") if r.strip()}
            for rule_id in sorted(rules - known):
                findings.append(Finding(
                    rule="pragma-hygiene", path=module.relpath, line=lineno,
                    message=f"pragma suppresses unknown rule {rule_id!r}",
                ))
        targets = [lineno]
        if text.lstrip().startswith("#"):
            targets.append(lineno + 1)
        for target in targets:
            merged = dict(suppressions.by_line.get(target, {}))
            for rule_id in rules:
                merged[rule_id] = reason
            suppressions.by_line[target] = merged
    return suppressions, findings


def default_root() -> Path:
    """The installed ``repro`` package directory (``src/repro``)."""
    return Path(__file__).resolve().parents[1]


def default_baseline_path(root: Path) -> Path:
    """The committed baseline next to the repo root: ``lint-baseline.json``."""
    return root.parents[1] / "lint-baseline.json"


def _module_meta(root: Path, path: Path) -> Tuple[str, str]:
    """(relpath, dotted name) for one file under ``root``."""
    rel = path.relative_to(root)
    parts = list(rel.parts)
    if parts[-1] == "__init__.py":
        dotted = [root.name] + parts[:-1]
    else:
        dotted = [root.name] + parts[:-1] + [rel.stem]
    return f"{root.name}/{rel.as_posix()}", ".".join(dotted)


def _parse_module(root: Path, relpath: str) -> Module:
    """Parse one file (relative to ``root``'s parent) into a Module."""
    path = root.parent / relpath
    _, name = _module_meta(root, path)
    text = path.read_text()
    return Module(
        path=path, relpath=relpath, name=name,
        tree=ast.parse(text, filename=str(path)),
        lines=text.splitlines(),
    )


def scan_root(root: Path) -> List[Module]:
    """Parse every ``*.py`` under ``root`` into :class:`Module` objects.

    The walk is sorted — the linter obeys the determinism rules it
    enforces — and module names are derived from the root directory
    name, so synthetic test trees work the same as ``src/repro``.
    """
    modules: List[Module] = []
    for path in sorted(root.rglob("*.py")):
        relpath, name = _module_meta(root, path)
        text = path.read_text()
        modules.append(Module(
            path=path, relpath=relpath, name=name,
            tree=ast.parse(text, filename=str(path)),
            lines=text.splitlines(),
        ))
    return modules


@dataclass
class LintResult:
    """Everything one lint run produced, pre-rendered for reporters."""

    findings: List[Finding]  #: new findings (post-suppression, post-baseline)
    all_findings: List[Finding]  #: post-suppression, pre-baseline
    suppressed: int  #: findings silenced by pragmas
    baselined: int  #: findings matched by the committed baseline
    stale_baseline: List[str]  #: baseline fingerprints that matched nothing
    files: int  #: modules scanned
    rules: List[str]  #: rule ids that ran
    analyze: str = "basic"  #: analysis mode this result came from
    analyzed: List[str] = field(default_factory=list)  #: re-analyzed relpaths
    reused: List[str] = field(default_factory=list)  #: cache-served relpaths

    @property
    def clean(self) -> bool:
        """True when no new findings remain."""
        return not self.findings


def select_rules(
    rules: Optional[Sequence[str]] = None, analyze: str = "basic"
) -> List[Rule]:
    """Resolve a rule-id filter to rule objects.

    ``None`` selects every registered per-file/program rule; the deep
    (whole-program dataflow) rules join only under ``analyze="deep"``.
    An explicit id list always wins, so ``--rules taint-determinism``
    runs the deep pipeline regardless of the mode flag.
    """
    if rules is None:
        selected = all_rules()
        if analyze != "deep":
            selected = [r for r in selected if not isinstance(r, DeepRule)]
        return selected
    return [get_rule(rule_id) for rule_id in rules]


def _analyze_module(
    module: Module,
    module_rules: Sequence[Rule],
    extractors: Dict[str, "DeepRule"],
    digest: str,
) -> ModuleEntry:
    """Run the cacheable per-module phase for one parsed module."""
    findings: List[Finding] = []
    for rule in module_rules:
        findings.extend(rule.check_module(module))
    suppressions, pragma_findings = scan_pragmas(module)

    def _snip(finding: Finding) -> Finding:
        if 1 <= finding.line <= len(module.lines):
            return finding.with_snippet(module.lines[finding.line - 1])
        return finding

    facts = {key: extractor.extract(module)
             for key, extractor in sorted(extractors.items())}
    return ModuleEntry(
        hash=digest,
        name=module.name,
        findings=[_snip(f).to_dict() for f in findings],
        pragma_findings=[_snip(f).to_dict() for f in pragma_findings],
        suppressions=suppressions.to_dict(),
        imports=collect_import_records(module),
        facts=facts,
    )


def _extractors_for(deep_rules: Sequence[DeepRule]) -> Dict[str, DeepRule]:
    """One representative extractor per shared facts key."""
    extractors: Dict[str, DeepRule] = {}
    for rule in deep_rules:
        extractors.setdefault(rule.facts_key, rule)
    return extractors


def _scan_worker(
    payload: Tuple[str, List[str], List[str], List[str]],
) -> List[Tuple[str, dict]]:
    """Process-pool worker: analyze a chunk of files, return JSON records.

    Workers re-import :mod:`repro.lint` to register the rule registry in
    their own process, parse each assigned file, and ship back plain
    dicts — no AST trees cross the pickle boundary.
    """
    import repro.lint  # noqa: F401  (registers every rule)

    root_str, relpaths, module_rule_ids, facts_keys = payload
    root = Path(root_str)
    module_rules = [get_rule(rid) for rid in module_rule_ids]
    deep_rules = [r for r in all_rules()
                  if isinstance(r, DeepRule) and r.facts_key in facts_keys]
    extractors = _extractors_for(deep_rules)
    out: List[Tuple[str, dict]] = []
    for relpath in relpaths:
        module = _parse_module(root, relpath)
        text = module.path.read_text()
        entry = _analyze_module(
            module, module_rules, extractors, content_hash(text)
        )
        out.append((relpath, entry.to_dict()))
    return out


def run_lint(
    root: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
    analyze: str = "basic",
    jobs: int = 1,
    cache_path: Optional[Path] = None,
) -> LintResult:
    """Run the framework over ``root`` and return the filtered result.

    Args:
        root: Package directory to scan (default: the installed
            ``src/repro``).
        rules: Rule-id filter; None runs every registered rule of the
            selected ``analyze`` mode.
        baseline_path: Baseline file (default:
            ``<repo>/lint-baseline.json`` relative to ``root``; a
            missing file is an empty baseline).
        use_baseline: Set False to report grandfathered findings too.
        analyze: ``"basic"`` (per-file + import-graph rules) or
            ``"deep"`` (adds taint/race/contract whole-program rules).
        jobs: Worker processes for the per-module phase; findings are
            byte-identical at any value.
        cache_path: Incremental-cache file; when given, unchanged
            modules (outside the reverse-dependency cone of changes)
            are served from cache.
    """
    root = Path(root) if root is not None else default_root()
    selected = select_rules(rules, analyze)
    selected_ids = {rule.id for rule in selected}
    deep_rules = [r for r in selected if isinstance(r, DeepRule)]
    deep_ids = {r.id for r in deep_rules}
    module_rules = [r for r in selected if not isinstance(r, DeepRule)]
    module_rule_ids = sorted(r.id for r in module_rules)
    extractors = _extractors_for(deep_rules)
    facts_keys = sorted(extractors)

    # -- discover files and plan the incremental work -----------------------
    current: Dict[str, Tuple[str, str]] = {}
    for path in sorted(root.rglob("*.py")):
        relpath, name = _module_meta(root, path)
        current[relpath] = (content_hash(path.read_text()), name)

    signature = rules_signature(sorted(selected_ids))
    cache = AnalysisCache.load(cache_path, signature)
    dirty, reused = cache.plan(current)

    # -- per-module phase: inline or fan out over a process pool ------------
    todo = sorted(dirty)
    if todo:
        if jobs > 1 and len(todo) > 1:
            workers = min(jobs, len(todo))
            chunks: List[List[str]] = [[] for _ in range(workers)]
            for index, relpath in enumerate(todo):
                chunks[index % workers].append(relpath)
            payloads = [
                (str(root), chunk, module_rule_ids, facts_keys)
                for chunk in chunks if chunk
            ]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for result in pool.map(_scan_worker, payloads):
                    for relpath, entry in result:
                        cache.modules[relpath] = ModuleEntry.from_dict(entry)
        else:
            for relpath in todo:
                module = _parse_module(root, relpath)
                cache.modules[relpath] = _analyze_module(
                    module, module_rules, extractors, current[relpath][0]
                )
    cache.modules = {rp: entry for rp, entry in cache.modules.items()
                     if rp in current}

    # -- whole-program phase: always re-solved in the parent ----------------
    relpaths = sorted(current)
    entries = {rp: cache.modules[rp] for rp in relpaths}
    stub_modules = [
        Module(path=root.parent / rp, relpath=rp,
               name=entries[rp].name, tree=None, lines=[])
        for rp in relpaths
    ]
    graph = graph_from_records(
        {entries[rp].name: (rp, entries[rp].imports) for rp in relpaths},
        [entries[rp].name for rp in relpaths],
    )

    suppression_of: Dict[str, Suppressions] = {
        rp: Suppressions.from_dict(entries[rp].suppressions)
        for rp in relpaths
    }
    collected: List[Finding] = []
    for rp in relpaths:
        collected.extend(
            Finding.from_dict(f) for f in entries[rp].findings
        )
        if "pragma-hygiene" in selected_ids:
            collected.extend(
                Finding.from_dict(f) for f in entries[rp].pragma_findings
            )
    for rule in module_rules:
        collected.extend(rule.check_program(stub_modules, graph))
    for rule in deep_rules:
        facts = {rp: entries[rp].facts[rule.facts_key] for rp in relpaths}
        collected.extend(rule.solve(facts, stub_modules, graph))

    # -- attach snippets (fingerprint input) to late findings ---------------
    lines_of: Dict[str, List[str]] = {}

    def _snippet(finding: Finding) -> Finding:
        if finding.snippet:
            return finding
        if finding.path not in lines_of:
            candidate = root.parent / finding.path
            if not candidate.is_file():
                candidate = root.parents[1] / finding.path
            try:
                lines_of[finding.path] = (
                    candidate.read_text().splitlines()
                )
            except OSError:
                lines_of[finding.path] = []
        lines = lines_of[finding.path]
        if 1 <= finding.line <= len(lines):
            return finding.with_snippet(lines[finding.line - 1])
        return finding

    collected = [_snippet(f) for f in collected]

    # -- suppressions (with deep-rule reason enforcement) -------------------
    raw: List[Finding] = []
    suppressed = 0
    reasonless: Set[Tuple[str, int, str]] = set()
    for finding in collected:
        table = suppression_of.get(finding.path)
        if table is not None and table.covers(finding.line, finding.rule):
            suppressed += 1
            if (
                finding.rule in deep_ids
                and not table.reason(finding.line, finding.rule)
                and "pragma-hygiene" in selected_ids
            ):
                reasonless.add((finding.path, finding.line, finding.rule))
        else:
            raw.append(finding)
    for path, line, rule_id in sorted(reasonless):
        raw.append(_snippet(Finding(
            rule="pragma-hygiene", path=path, line=line,
            message=(
                f"suppressing whole-program rule {rule_id!r} requires a "
                f"documented reason: append ' -- <why>' to the pragma"
            ),
        )))

    raw.sort(key=Finding.sort_key)

    if use_baseline:
        baseline = Baseline.load(
            baseline_path if baseline_path is not None
            else default_baseline_path(root)
        )
        new, baselined, stale = baseline.apply(raw)
    else:
        new, baselined, stale = list(raw), 0, []

    if cache_path is not None:
        cache.save(Path(cache_path))

    return LintResult(
        findings=new,
        all_findings=raw,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        files=len(relpaths),
        rules=sorted(rule.id for rule in selected),
        analyze=analyze,
        analyzed=sorted(dirty),
        reused=sorted(reused),
    )
