"""The lint runner: scan, parse once, dispatch rules, apply suppressions.

One :func:`run_lint` call walks a package root (``src/repro`` by
default) in sorted order, parses every file exactly once, hands the
modules to each per-file rule and the import graph to each
whole-program rule, then filters the findings through the suppression
pragmas and the committed baseline.  Everything downstream — the text
and JSON reporters, the CLI exit code, the pytest entry point — works
off the returned :class:`LintResult`.

Suppression pragma::

    risky_call()  # repro: lint-ignore[iteration-order]
    # repro: lint-ignore[no-wall-clock,no-unseeded-rng]  (next line)
    # repro: lint-ignore  (all rules, same/next line)

A pragma naming a rule id that does not exist is itself a finding
(``pragma-hygiene``), so typos cannot silently disable a check.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.baseline import Baseline
from repro.lint.rules import (
    Finding,
    ImportGraph,
    Module,
    Rule,
    all_rules,
    build_import_graph,
    get_rule,
    register_rule,
    rule_ids,
)

#: Matches ``# repro: lint-ignore`` and ``# repro: lint-ignore[a,b]``.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*lint-ignore(?:\[(?P<rules>[^\]]*)\])?"
)

#: Sentinel meaning "suppress every rule on this line".
ALL_RULES = "*"


class PragmaHygieneRule(Rule):
    """Suppression pragmas must name real rule ids.

    Implemented by the engine itself (pragmas are an engine concept),
    registered here so the id shows up in the catalog, the docs test,
    and ``repro lint --list`` like any other rule.
    """

    id = "pragma-hygiene"
    summary = "lint-ignore pragmas must name registered rule ids"
    rationale = (
        "a typo in a suppression would otherwise silently disable "
        "nothing and hide the intent"
    )


register_rule(PragmaHygieneRule())


@dataclass
class Suppressions:
    """Per-line suppression table for one module."""

    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def covers(self, line: int, rule_id: str) -> bool:
        """True when ``rule_id`` is suppressed on ``line``."""
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return ALL_RULES in rules or rule_id in rules


def scan_pragmas(module: Module) -> Tuple[Suppressions, List[Finding]]:
    """Extract the suppression table and any pragma-hygiene findings.

    A pragma applies to its own line; a standalone comment line applies
    to the following line as well, covering both placement styles.
    """
    suppressions = Suppressions()
    findings: List[Finding] = []
    known = set(rule_ids())
    for lineno, text in enumerate(module.lines, start=1):
        match = PRAGMA_RE.search(text)
        if not match:
            continue
        raw = match.group("rules")
        if raw is None:
            rules: Set[str] = {ALL_RULES}
        else:
            rules = {r.strip() for r in raw.split(",") if r.strip()}
            for rule_id in sorted(rules - known):
                findings.append(Finding(
                    rule="pragma-hygiene", path=module.relpath, line=lineno,
                    message=f"pragma suppresses unknown rule {rule_id!r}",
                ))
        targets = [lineno]
        if text.lstrip().startswith("#"):
            targets.append(lineno + 1)
        for target in targets:
            merged = set(suppressions.by_line.get(target, frozenset()))
            merged |= rules
            suppressions.by_line[target] = frozenset(merged)
    return suppressions, findings


def default_root() -> Path:
    """The installed ``repro`` package directory (``src/repro``)."""
    return Path(__file__).resolve().parents[1]


def default_baseline_path(root: Path) -> Path:
    """The committed baseline next to the repo root: ``lint-baseline.json``."""
    return root.parents[1] / "lint-baseline.json"


def scan_root(root: Path) -> List[Module]:
    """Parse every ``*.py`` under ``root`` into :class:`Module` objects.

    The walk is sorted — the linter obeys the determinism rules it
    enforces — and module names are derived from the root directory
    name, so synthetic test trees work the same as ``src/repro``.
    """
    modules: List[Module] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        parts = list(rel.parts)
        if parts[-1] == "__init__.py":
            dotted = [root.name] + parts[:-1]
        else:
            dotted = [root.name] + parts[:-1] + [rel.stem]
        text = path.read_text()
        modules.append(Module(
            path=path,
            relpath=f"{root.name}/{rel.as_posix()}",
            name=".".join(dotted),
            tree=ast.parse(text, filename=str(path)),
            lines=text.splitlines(),
        ))
    return modules


@dataclass
class LintResult:
    """Everything one lint run produced, pre-rendered for reporters."""

    findings: List[Finding]  #: new findings (post-suppression, post-baseline)
    all_findings: List[Finding]  #: post-suppression, pre-baseline
    suppressed: int  #: findings silenced by pragmas
    baselined: int  #: findings matched by the committed baseline
    stale_baseline: List[str]  #: baseline fingerprints that matched nothing
    files: int  #: modules scanned
    rules: List[str]  #: rule ids that ran

    @property
    def clean(self) -> bool:
        """True when no new findings remain."""
        return not self.findings


def select_rules(rules: Optional[Sequence[str]]) -> List[Rule]:
    """Resolve a rule-id filter to rule objects (all rules when None)."""
    if rules is None:
        return all_rules()
    return [get_rule(rule_id) for rule_id in rules]


def run_lint(
    root: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
) -> LintResult:
    """Run the framework over ``root`` and return the filtered result.

    Args:
        root: Package directory to scan (default: the installed
            ``src/repro``).
        rules: Rule-id filter; None runs every registered rule.
        baseline_path: Baseline file (default:
            ``<repo>/lint-baseline.json`` relative to ``root``; a
            missing file is an empty baseline).
        use_baseline: Set False to report grandfathered findings too.
    """
    root = Path(root) if root is not None else default_root()
    selected = select_rules(rules)
    selected_ids = {rule.id for rule in selected}
    modules = scan_root(root)
    graph = build_import_graph(modules)

    suppression_of: Dict[str, Suppressions] = {}
    collected: List[Finding] = []
    for module in modules:
        suppressions, pragma_findings = scan_pragmas(module)
        suppression_of[module.relpath] = suppressions
        if "pragma-hygiene" in selected_ids:
            collected.extend(pragma_findings)
        for rule in selected:
            collected.extend(rule.check_module(module))
    for rule in selected:
        collected.extend(rule.check_program(modules, graph))

    raw: List[Finding] = []
    suppressed = 0
    for finding in collected:
        table = suppression_of.get(finding.path)
        if table is not None and table.covers(finding.line, finding.rule):
            suppressed += 1
        else:
            raw.append(finding)

    raw.sort(key=Finding.sort_key)

    if use_baseline:
        baseline = Baseline.load(
            baseline_path if baseline_path is not None
            else default_baseline_path(root)
        )
        new, baselined, stale = baseline.apply(raw)
    else:
        new, baselined, stale = list(raw), 0, []

    return LintResult(
        findings=new,
        all_findings=raw,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        files=len(modules),
        rules=sorted(rule.id for rule in selected),
    )
