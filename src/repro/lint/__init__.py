"""repro.lint — AST + import-graph static analysis for repo invariants.

The reproduction's headline guarantees — byte-identical results across
runs and ``--jobs`` counts, and a strict layer map ("observing never
changes what is observed") — are enforced here as machine-checked
rules rather than prose.  The framework is stdlib-only (``ast``,
``json``, ``re``) and is itself an import leaf in the layer map it
polices.

Entry points::

    python -m repro lint                      # CLI gate (text report)
    python -m repro lint --analyze deep       # + taint/race/contract engines
    python -m repro lint --jobs 4             # parallel per-module phase
    python -m repro lint --format json        # machine report for CI
    python -m repro lint --format sarif       # GitHub code-scanning log
    python -m repro lint --list               # rule catalog
    pytest tests/test_lint.py                 # the same engine as tests

See ``docs/static-analysis.md`` for the rule catalog, the
``lint-ignore[rule-id] -- reason`` suppression-pragma syntax, and the
baseline workflow.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    LintResult,
    default_baseline_path,
    default_root,
    run_lint,
    scan_root,
    select_rules,
)
from repro.lint.incremental import AnalysisCache
from repro.lint.layering import (
    ALLOWED,
    DEFERRED_ALLOWED,
    GROUPS,
    allowed_edges,
    group_of,
    render_rule_table,
)
from repro.lint.report import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)
from repro.lint.rules import (
    DeepRule,
    Finding,
    all_rules,
    build_import_graph,
    get_rule,
    rule_ids,
)

# Importing the checker modules registers every rule.
import repro.lint.archconstants  # noqa: F401,E402
import repro.lint.checkers  # noqa: F401,E402
import repro.lint.contracts  # noqa: F401,E402
import repro.lint.facade  # noqa: F401,E402
import repro.lint.races  # noqa: F401,E402
import repro.lint.taint  # noqa: F401,E402

__all__ = [
    "ALLOWED",
    "AnalysisCache",
    "Baseline",
    "DEFERRED_ALLOWED",
    "DeepRule",
    "Finding",
    "GROUPS",
    "LintResult",
    "all_rules",
    "allowed_edges",
    "build_import_graph",
    "default_baseline_path",
    "default_root",
    "get_rule",
    "group_of",
    "render_json",
    "render_rule_list",
    "render_rule_table",
    "render_sarif",
    "render_text",
    "rule_ids",
    "run_lint",
    "scan_root",
    "select_rules",
]
