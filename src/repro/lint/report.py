"""Reporters: render a :class:`~repro.lint.engine.LintResult`.

Two formats: human text (grouped by file, one finding per line, summary
last) and machine JSON (canonical key order, stable across runs — the
CI gate diffs it).  Both render only what the engine already computed;
no rule logic lives here.
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.engine import LintResult
from repro.lint.rules import all_rules

#: JSON report format version.
REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: findings per file plus a summary line."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}: [{finding.rule}] "
            f"{finding.message}"
        )
    if lines:
        lines.append("")
    status = "clean" if result.clean else f"{len(result.findings)} finding(s)"
    lines.append(
        f"{status}: {result.files} files, {len(result.rules)} rules, "
        f"{result.suppressed} suppressed, {result.baselined} baselined, "
        f"{len(result.stale_baseline)} stale baseline entrie(s)"
    )
    for stale in result.stale_baseline:
        lines.append(f"stale baseline entry (fixed? prune it): {stale}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Canonical JSON report (sorted keys, deterministic ordering)."""
    payload = {
        "version": REPORT_VERSION,
        "rules": result.rules,
        "summary": {
            "files": result.files,
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline": len(result.stale_baseline),
            "clean": result.clean,
        },
        "findings": [f.to_dict() for f in result.findings],
        "stale_baseline": result.stale_baseline,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``repro lint --list`` catalog: id, summary, rationale."""
    lines = [f"{'rule':22s} summary", "-" * 72]
    for rule in all_rules():
        lines.append(f"{rule.id:22s} {rule.summary}")
        lines.append(f"{'':22s}   why: {rule.rationale}")
    return "\n".join(lines)
