"""Reporters: render a :class:`~repro.lint.engine.LintResult`.

Three formats: human text (grouped by file, one finding per line,
summary last), machine JSON (canonical key order, stable across runs —
the CI gate diffs it), and SARIF 2.1.0 (what GitHub code scanning
ingests to annotate PR diffs).  All render only what the engine
already computed; no rule logic lives here.
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.engine import LintResult
from repro.lint.rules import all_rules

#: JSON report format version.
REPORT_VERSION = 1

#: SARIF schema pin (the version GitHub code scanning accepts).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """Human-readable report: findings per file plus a summary line."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}: [{finding.rule}] "
            f"{finding.message}"
        )
    if lines:
        lines.append("")
    status = "clean" if result.clean else f"{len(result.findings)} finding(s)"
    lines.append(
        f"{status}: {result.files} files, {len(result.rules)} rules, "
        f"{result.suppressed} suppressed, {result.baselined} baselined, "
        f"{len(result.stale_baseline)} stale baseline entrie(s)"
    )
    if result.reused:
        lines.append(
            f"incremental: {len(result.analyzed)} module(s) re-analyzed, "
            f"{len(result.reused)} served from cache"
        )
    for stale in result.stale_baseline:
        lines.append(f"stale baseline entry (fixed? prune it): {stale}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Canonical JSON report (sorted keys, deterministic ordering)."""
    payload = {
        "version": REPORT_VERSION,
        "rules": result.rules,
        "summary": {
            "files": result.files,
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline": len(result.stale_baseline),
            "clean": result.clean,
        },
        "findings": [f.to_dict() for f in result.findings],
        "stale_baseline": result.stale_baseline,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 log for GitHub code-scanning PR annotations.

    File URIs are repo-root relative (``src/repro/...`` for package
    findings, ``examples/...`` as-is for external trees), and each
    result carries the baseline fingerprint as a partial fingerprint so
    code scanning deduplicates findings across pushes the same way the
    baseline file does.
    """
    rules_meta = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules()
        if rule.id in result.rules
    ]
    index_of = {meta["id"]: index for index, meta in enumerate(rules_meta)}
    results = []
    for finding in result.findings:
        uri = finding.path
        if uri.startswith("repro/"):
            uri = f"src/{uri}"
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": index_of.get(finding.rule, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": max(finding.line, 1)},
                },
            }],
            "partialFingerprints": {
                "reproLintFingerprint/v2": finding.fingerprint(),
            },
        })
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": rules_meta,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``repro lint --list`` catalog: id, summary, rationale."""
    lines = [f"{'rule':22s} summary", "-" * 72]
    for rule in all_rules():
        lines.append(f"{rule.id:22s} {rule.summary}")
        lines.append(f"{'':22s}   why: {rule.rationale}")
    return "\n".join(lines)
