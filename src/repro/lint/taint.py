"""Determinism taint propagation across the intra-project call graph.

The basic ``no-wall-clock`` / ``no-unseeded-rng`` rules catch the
*literal* call site.  This engine catches the laundered version: a
helper three frames above ``price_batch`` that returns ``time.time()``
through two intermediaries taints every value derived from it, and the
byte-identity invariant breaks only where the tainted value finally
reaches a priced, serialized, or cache-keyed output.

The solve phase runs a summary-based interprocedural fixpoint over the
per-function dataflow summaries produced by
:mod:`repro.lint.callgraph`:

* ``RET[f]`` — the nondeterminism sources ``f``'s return value may
  carry, each with the call chain that delivered it;
* ``PARAM[f][i]`` — sources the ``i``-th parameter may receive from
  any call site in the project.

Atoms bind the two: a ``("call", g)`` atom pulls in ``RET[g]``, a
``("param", i)`` atom pulls in ``PARAM[f][i]``, and a ``("src", label)``
atom seeds taint.  The analysis is context-insensitive (one PARAM/RET
summary per function) which keeps the fixpoint linear and the findings
deterministic; chains are capped and sorted so repeated runs emit
byte-identical messages.

Modules on the sanctioned wall-clock seam list (the tracer, engine
telemetry, the executor's host-side timing, the service broker) do not
*seed* taint: their clock reads are measurement, documented as never
reaching priced values — the basic rule already polices direct use.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.lint.callgraph import FunctionTable, ModuleSummary, summarize_module
from repro.lint.rules import (
    DeepRule,
    Finding,
    ImportGraph,
    Module,
    register_rule,
)

#: Modules whose wall-clock/env reads are sanctioned measurement seams —
#: they never seed taint (mirrors ``WallClockRule.ALLOWED_MODULES``).
SANCTIONED_SOURCE_MODULES = frozenset({
    "repro/obs/tracer.py",
    "repro/engine/telemetry.py",
    "repro/engine/executor.py",
    "repro/service/broker.py",
})

#: Longest call chain rendered in a finding message.
MAX_CHAIN = 6

Chain = Tuple[str, ...]


def _merge(
    into: Dict[str, Chain], sources: Dict[str, Chain]
) -> bool:
    """Union ``sources`` into ``into``; True when anything was added."""
    changed = False
    for label in sorted(sources):
        if label not in into:
            into[label] = sources[label]
            changed = True
    return changed


class TaintSolver:
    """The interprocedural fixpoint over one program's summaries."""

    def __init__(self, summaries: Dict[str, ModuleSummary]):
        self.table = FunctionTable(summaries)
        self.ret: Dict[str, Dict[str, Chain]] = {}
        self.param: Dict[str, Dict[str, Dict[str, Chain]]] = {}
        for qualname in self.table.functions:
            self.ret[qualname] = {}
            self.param[qualname] = {}

    def _seeds_allowed(self, qualname: str) -> bool:
        relpath = self.table.module_of.get(qualname, "")
        return relpath not in SANCTIONED_SOURCE_MODULES

    def eval_atoms(
        self, qualname: str, atoms: Iterable[Sequence[str]]
    ) -> Dict[str, Chain]:
        """Resolve an atom set to ``{source label: call chain}``."""
        out: Dict[str, Chain] = {}
        for atom in atoms:
            tag = atom[0]
            if tag == "src":
                if self._seeds_allowed(qualname):
                    _merge(out, {atom[1]: (qualname,)})
            elif tag == "call":
                callee = self.table.resolve(atom[1])
                if callee is not None:
                    for label, chain in sorted(self.ret[callee].items()):
                        extended = ((qualname,) + chain)[:MAX_CHAIN]
                        _merge(out, {label: extended})
            elif tag == "param":
                index = atom[1]
                _merge(out, self.param[qualname].get(index, {}))
        return out

    def run(self) -> None:
        """Iterate RET/PARAM to a fixpoint (bounded by program depth)."""
        for _ in range(len(self.table.functions) + 2):
            changed = False
            for qualname in sorted(self.table.functions):
                fn = self.table.functions[qualname]
                # Propagate argument taint into callee parameter slots.
                for call in fn.calls:
                    callee = self.table.resolve(call.callee)
                    if callee is None:
                        continue
                    callee_fn = self.table.functions[callee]
                    offset = 0
                    if callee_fn.params[:1] in (["self"], ["cls"]):
                        offset = 1
                    for pos, atoms in enumerate(call.args):
                        index = str(pos + offset)
                        sources = self.eval_atoms(qualname, atoms)
                        if sources:
                            slot = self.param[callee].setdefault(index, {})
                            changed |= _merge(slot, sources)
                    for kw_name, atoms in sorted(call.kwargs.items()):
                        if kw_name in callee_fn.params:
                            index = str(callee_fn.params.index(kw_name))
                            sources = self.eval_atoms(qualname, atoms)
                            if sources:
                                slot = self.param[callee].setdefault(
                                    index, {})
                                changed |= _merge(slot, sources)
                # Recompute the return summary.
                sources = self.eval_atoms(qualname, fn.returns)
                changed |= _merge(self.ret[qualname], sources)
            if not changed:
                return

    def findings(self) -> List[Finding]:
        """One finding per sink call receiving at least one source."""
        out: List[Finding] = []
        for qualname in sorted(self.table.functions):
            fn = self.table.functions[qualname]
            relpath = self.table.module_of[qualname]
            if relpath in SANCTIONED_SOURCE_MODULES:
                continue
            for sink in fn.sinks:
                sources = self.eval_atoms(qualname, sink.atoms)
                if not sources:
                    continue
                label = sorted(sources)[0]
                chain = sources[label]
                via = " -> ".join(chain)
                extra = ""
                if len(sources) > 1:
                    extra = f" (+{len(sources) - 1} more source(s))"
                out.append(Finding(
                    rule="taint-determinism",
                    path=relpath,
                    line=sink.line,
                    message=(
                        f"{sink.kind} sink {sink.sink}() receives a value "
                        f"tainted by {label}{extra}; flow: {via}"
                    ),
                ))
        return out


class TaintDeterminismRule(DeepRule):
    """Nondeterminism sources must not reach priced/serialized values.

    Seeds taint at wall-clock reads, unseeded RNG constructors, and
    environment/host-identity lookups; propagates it through the
    project call graph (calls, returns, assignments); and flags any
    tainted value reaching a pricing, cache-key, or serialized-output
    sink.  The finding lands on the sink call and names the full flow
    chain, so the fix site and the root cause are both visible.
    """

    id = "taint-determinism"
    summary = "no nondeterministic value may flow into priced/reported output"
    rationale = (
        "the byte-identity invariant fails exactly when wall-clock, "
        "unseeded-RNG, or environment values reach a priced, cache-keyed, "
        "or serialized result — even through helper functions the "
        "per-file rules cannot see across"
    )
    facts_key = "callgraph"

    def extract(self, module: Module) -> dict:
        """Summarize the module's functions for the shared fact pool."""
        return summarize_module(module).to_dict()

    def solve(
        self,
        facts: Dict[str, dict],
        modules: Sequence[Module],
        graph: ImportGraph,
    ) -> Iterable[Finding]:
        """Run the fixpoint over every module's summaries."""
        summaries = {
            relpath: ModuleSummary.from_dict(data)
            for relpath, data in facts.items()
        }
        solver = TaintSolver(summaries)
        solver.run()
        return solver.findings()


register_rule(TaintDeterminismRule())
