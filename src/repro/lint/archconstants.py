"""The arch-constants rule: per-ISA cost tables live in ``repro.backends``.

The backend registry (:mod:`repro.backends`) is the single home for
everything that prices an architecture — CPI/cost tables, per-core
static factors, and the ``ArchSpec`` constants themselves.  History
shows these tables metastasize: before the registry existed, float CPI
dictionaries lived in ``repro.mcu.pipeline`` and per-core factors in
``repro.mcu.static``, so adding an ISA meant editing three pricing
modules.  This rule makes the consolidation permanent:

* a module-level (or class-level) call to one of the spec constructors
  (``ArchSpec``, ``FpuSpec``, ``CacheSpec``, ``MemorySpec``,
  ``PowerSpec``) outside ``repro.backends`` is a finding — concrete
  cores belong to a backend module;
* a module-level constant whose name follows the cost-table conventions
  (``_SOFT_F32``, ``_HW_F64``, ``_FIXED_RV``, ``*_CPI*``,
  ``*ARCH_FACTORS*``) is a finding — cost tables belong to a backend.

Function-scope construction stays legal everywhere: fault injectors
derive stressed ``PowerSpec`` variants at run time, which is modeling,
not a new architecture definition.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from repro.lint.rules import (
    Finding,
    ImportAliases,
    Module,
    Rule,
    register_rule,
    walk_with_parents,
)

#: The one package allowed to define arch constants.
BACKENDS_PACKAGE = "repro.backends"

#: Spec dataclasses whose module-level instantiation defines a core.
SPEC_CLASSES = frozenset({
    "ArchSpec", "FpuSpec", "CacheSpec", "MemorySpec", "PowerSpec",
})

#: Constant-naming conventions used by the per-ISA cost tables.
TABLE_NAME = re.compile(
    r"^_?("
    r"(SOFT|HW|FIXED)_[A-Z0-9_]+"
    r"|[A-Z0-9_]*(CPI|ARCH_FACTORS)[A-Z0-9_]*"
    r")$"
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _in_backends(module_name: str) -> bool:
    return (
        module_name == BACKENDS_PACKAGE
        or module_name.startswith(BACKENDS_PACKAGE + ".")
    )


def _target_names(node: ast.AST) -> List[str]:
    """Plain names bound by an Assign/AnnAssign target (tuples unpacked)."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, (ast.Tuple, ast.List)):
        names: List[str] = []
        for elt in node.elts:
            names.extend(_target_names(elt))
        return names
    return []


class ArchConstantsRule(Rule):
    """Arch cost tables and core specs may only live in ``repro.backends``.

    Per-file: walks each module's top-level (and class-level) bindings,
    flagging spec-constructor calls and cost-table-named constants in any
    module outside the backends package.
    """

    id = "arch-constants"
    summary = "CPI/power tables and core specs only in repro.backends"
    rationale = (
        "one registry home for every per-ISA constant means adding an "
        "architecture never touches the pricing modules"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Yield one finding per misplaced spec constant or cost table."""
        if _in_backends(module.name):
            return
        aliases = ImportAliases.from_tree(module.tree)
        for node, ancestors in walk_with_parents(module.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            if any(isinstance(a, _SCOPE_NODES) for a in ancestors):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            names = [n for t in targets for n in _target_names(t)]
            value = node.value
            spec = self._spec_call(value, aliases)
            if spec is not None:
                yield Finding(
                    rule=self.id, path=module.relpath, line=node.lineno,
                    message=(
                        f"module-level {spec} constant outside "
                        f"{BACKENDS_PACKAGE}; concrete cores belong to an "
                        "ArchBackend module"
                    ),
                )
                continue
            for name in names:
                if TABLE_NAME.match(name):
                    yield Finding(
                        rule=self.id, path=module.relpath, line=node.lineno,
                        message=(
                            f"cost-table constant {name} outside "
                            f"{BACKENDS_PACKAGE}; per-ISA tables belong to "
                            "an ArchBackend"
                        ),
                    )

    @staticmethod
    def _spec_call(value: ast.AST, aliases: ImportAliases) -> str:
        """The spec class a call expression constructs, if any."""
        if value is None or not isinstance(value, ast.Call):
            return None
        resolved = aliases.resolve(value.func)
        if resolved is None:
            return None
        leaf = resolved.split(".")[-1]
        return leaf if leaf in SPEC_CLASSES else None


register_rule(ArchConstantsRule())
