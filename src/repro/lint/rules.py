"""Core types of the static-analysis framework: findings, modules, rules.

A *rule* inspects parsed modules and yields :class:`Finding` objects.
Per-file rules implement :meth:`Rule.check_module`; whole-program rules
(the layering analysis) implement :meth:`Rule.check_program` and see
every module plus the import graph at once.  Rules register themselves
into a process-wide registry keyed by a short, documented rule id — the
same id the suppression pragma and the baseline file use.

Everything here is standard library only: the linter must be importable
(and fast) in contexts where numpy is not, and it must obey the same
layering discipline it enforces (``repro.lint`` is an import leaf).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``message`` is deliberately line-number free so that a finding's
    :meth:`fingerprint` survives unrelated edits above it — that is what
    makes the committed baseline file stable across refactors.
    """

    rule: str
    path: str  #: package-relative posix path, e.g. ``repro/engine/executor.py``
    line: int
    message: str

    def fingerprint(self) -> str:
        """Stable identity used by the baseline file (no line numbers)."""
        return f"{self.rule}::{self.path}::{self.message}"

    def sort_key(self) -> tuple:
        """Canonical ordering: path, then line, then rule, then message."""
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> dict:
        """JSON-reporter representation."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class Module:
    """A parsed source file handed to every rule.

    The engine parses each file exactly once; rules share the tree and
    the raw source lines (the latter drive pragma detection).
    """

    path: Path  #: absolute filesystem path
    relpath: str  #: package-relative posix path (``repro/obs/tracer.py``)
    name: str  #: dotted module name (``repro.obs.tracer``)
    tree: ast.Module
    lines: List[str]


class Rule:
    """Base class for all checkers.

    Subclasses set :attr:`id`, :attr:`summary`, and :attr:`rationale`
    (the doc catalog is asserted against these in ``tests/test_lint.py``)
    and override one of the two hooks.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Yield findings for one file; default checks nothing."""
        return ()

    def check_program(
        self, modules: Sequence[Module], graph: "ImportGraph"
    ) -> Iterable[Finding]:
        """Yield whole-program findings; default checks nothing."""
        return ()


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (id collisions are programmer error)."""
    if not rule.id:
        raise ValueError(f"rule {rule!r} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule


def rule_ids() -> List[str]:
    """All registered rule ids, sorted."""
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (KeyError with the known ids otherwise)."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule id {rule_id!r}; known: {', '.join(rule_ids())}"
        ) from None


def all_rules() -> List[Rule]:
    """Every registered rule, in id order."""
    return [_REGISTRY[rid] for rid in rule_ids()]


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, attributed to its source location.

    ``deferred`` marks imports that happen inside a function or method
    body — lazy imports, which the layering rule may treat differently
    (the ``core -> engine`` delegation seam is deferred-only).
    """

    src_module: str
    target: str
    path: str
    line: int
    deferred: bool


@dataclass
class ImportGraph:
    """All intra-repo import edges plus the scanned module names."""

    edges: List[ImportEdge] = field(default_factory=list)
    module_names: List[str] = field(default_factory=list)

    def edges_from(self, module_name: str) -> List[ImportEdge]:
        """Edges whose source is ``module_name`` (in file order)."""
        return [e for e in self.edges if e.src_module == module_name]


def _resolve_relative(module_name: str, level: int, base: Optional[str]) -> str:
    """Resolve a ``from ... import`` target for relative imports."""
    if level == 0:
        return base or ""
    parts = module_name.split(".")
    # level 1 from a module means "its package": drop the module leaf.
    anchor = parts[: len(parts) - level] if len(parts) >= level else []
    if base:
        anchor = anchor + [base]
    return ".".join(anchor)


def build_import_graph(modules: Sequence[Module]) -> ImportGraph:
    """Collect every import edge from every module, tagging deferred ones."""
    graph = ImportGraph(module_names=[m.name for m in modules])
    for module in modules:
        _collect_edges(module, module.tree, deferred=False, graph=graph)
    return graph


def _collect_edges(
    module: Module, node: ast.AST, deferred: bool, graph: ImportGraph
) -> None:
    for child in ast.iter_child_nodes(node):
        child_deferred = deferred or isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef)
        )
        if isinstance(child, ast.Import):
            for alias in child.names:
                graph.edges.append(ImportEdge(
                    src_module=module.name, target=alias.name,
                    path=module.relpath, line=child.lineno,
                    deferred=deferred,
                ))
        elif isinstance(child, ast.ImportFrom):
            base = _resolve_relative(module.name, child.level, child.module)
            for alias in child.names:
                # ``from repro.x import y``: y may be a submodule or a
                # symbol; record the joined candidate when it names a
                # scanned module, else the base package.
                joined = f"{base}.{alias.name}" if base else alias.name
                target = joined if joined in graph.module_names else base
                graph.edges.append(ImportEdge(
                    src_module=module.name, target=target,
                    path=module.relpath, line=child.lineno,
                    deferred=deferred,
                ))
        else:
            _collect_edges(module, child, child_deferred, graph)


@dataclass
class ImportAliases:
    """Name-resolution table for one module, shared by the AST checkers.

    Maps local names to the canonical dotted thing they refer to:
    ``np -> numpy`` (module alias), ``perf_counter -> time.perf_counter``
    (symbol alias).  :meth:`resolve` then turns any ``Name`` /
    ``Attribute`` chain into its canonical dotted path, so checkers can
    match ``time.perf_counter`` however it was imported.
    """

    modules: Dict[str, str] = field(default_factory=dict)
    symbols: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportAliases":
        """Walk every import statement (any depth) into an alias table."""
        aliases = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c->a.b.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    aliases.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    aliases.symbols[local] = f"{node.module}.{alias.name}"
        return aliases

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name for a Name/Attribute chain, if known."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        head = node.id
        if head in self.modules:
            return ".".join([self.modules[head]] + parts)
        if head in self.symbols:
            return ".".join([self.symbols[head]] + parts)
        return ".".join([head] + parts) if parts else head


def walk_with_parents(
    tree: ast.AST,
) -> Iterable[Tuple[ast.AST, List[ast.AST]]]:
    """Yield ``(node, ancestors)`` pairs, ancestors innermost-last."""
    stack: List[ast.AST] = []

    def visit(node: ast.AST) -> Iterable[Tuple[ast.AST, List[ast.AST]]]:
        yield node, list(stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    yield from visit(tree)
