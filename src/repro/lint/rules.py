"""Core types of the static-analysis framework: findings, modules, rules.

A *rule* inspects parsed modules and yields :class:`Finding` objects.
Per-file rules implement :meth:`Rule.check_module`; whole-program rules
(the layering analysis) implement :meth:`Rule.check_program` and see
every module plus the import graph at once.  Rules register themselves
into a process-wide registry keyed by a short, documented rule id — the
same id the suppression pragma and the baseline file use.

Everything here is standard library only: the linter must be importable
(and fast) in contexts where numpy is not, and it must obey the same
layering discipline it enforces (``repro.lint`` is an import leaf).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``message`` and ``snippet`` are deliberately line-number free so
    that a finding's :meth:`fingerprint` survives unrelated edits above
    it — that is what makes the committed baseline file stable across
    refactors.  ``snippet`` is the whitespace-normalized source line the
    finding points at; the engine attaches it after rules run.
    """

    rule: str
    path: str  #: package-relative posix path, e.g. ``repro/engine/executor.py``
    line: int
    message: str
    snippet: str = ""  #: source line at ``line``, attached by the engine

    def snippet_hash(self) -> str:
        """Short digest of the normalized snippet (baseline key part)."""
        normalized = " ".join(self.snippet.split())
        return hashlib.sha256(normalized.encode()).hexdigest()[:12]

    def fingerprint(self) -> str:
        """Stable identity used by the baseline file (no line numbers).

        Keyed on (rule, path, snippet hash, message): unrelated edits
        above the finding move its line but not its fingerprint, while
        editing the flagged line itself invalidates the entry — exactly
        the staleness semantics a suppress-and-review baseline wants.
        """
        return f"{self.rule}::{self.path}::{self.snippet_hash()}::{self.message}"

    def with_snippet(self, snippet: str) -> "Finding":
        """Copy of this finding carrying the given source snippet."""
        return Finding(rule=self.rule, path=self.path, line=self.line,
                       message=self.message, snippet=snippet)

    def sort_key(self) -> tuple:
        """Canonical ordering: path, then line, then rule, then message."""
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> dict:
        """JSON-reporter representation."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache/workers)."""
        return cls(
            rule=data["rule"], path=data["path"], line=data["line"],
            message=data["message"], snippet=data.get("snippet", ""),
        )


@dataclass
class Module:
    """A parsed source file handed to every rule.

    The engine parses each file exactly once; rules share the tree and
    the raw source lines (the latter drive pragma detection).
    """

    path: Path  #: absolute filesystem path
    relpath: str  #: package-relative posix path (``repro/obs/tracer.py``)
    name: str  #: dotted module name (``repro.obs.tracer``)
    tree: ast.Module
    lines: List[str]


class Rule:
    """Base class for all checkers.

    Subclasses set :attr:`id`, :attr:`summary`, and :attr:`rationale`
    (the doc catalog is asserted against these in ``tests/test_lint.py``)
    and override one of the two hooks.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Yield findings for one file; default checks nothing."""
        return ()

    def check_program(
        self, modules: Sequence[Module], graph: "ImportGraph"
    ) -> Iterable[Finding]:
        """Yield whole-program findings; default checks nothing."""
        return ()


class DeepRule(Rule):
    """Whole-program rules split into extraction and solving phases.

    Deep rules (``repro lint --analyze deep``) separate the per-module
    work from the whole-program reasoning:

    * :meth:`extract` reads one parsed module and returns **JSON-able
      facts** — this half is parallelized across worker processes and
      cached per-module by the incremental engine;
    * :meth:`solve` sees every module's facts at once (fresh or from
      cache) and yields findings — this half always re-runs, because a
      change in one module can create a violation reported in another.

    Rules sharing :attr:`facts_key` share one extraction pass: the
    taint and race engines both solve over the call-graph summaries
    produced by :func:`repro.lint.callgraph.summarize_module`.
    """

    #: Extraction-cache key; rules with the same key share extract output.
    facts_key: str = ""

    def extract(self, module: Module) -> dict:
        """Per-module JSON-able facts for :meth:`solve` (cacheable)."""
        return {}

    def solve(
        self,
        facts: Dict[str, dict],
        modules: Sequence[Module],
        graph: "ImportGraph",
    ) -> Iterable[Finding]:
        """Whole-program pass over ``{relpath: facts}``; always re-runs."""
        return ()


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (id collisions are programmer error)."""
    if not rule.id:
        raise ValueError(f"rule {rule!r} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule


def rule_ids() -> List[str]:
    """All registered rule ids, sorted."""
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (KeyError with the known ids otherwise)."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule id {rule_id!r}; known: {', '.join(rule_ids())}"
        ) from None


def all_rules() -> List[Rule]:
    """Every registered rule, in id order."""
    return [_REGISTRY[rid] for rid in rule_ids()]


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, attributed to its source location.

    ``deferred`` marks imports that happen inside a function or method
    body — lazy imports, which the layering rule may treat differently
    (the ``core -> engine`` delegation seam is deferred-only).
    """

    src_module: str
    target: str
    path: str
    line: int
    deferred: bool


@dataclass
class ImportGraph:
    """All intra-repo import edges plus the scanned module names."""

    edges: List[ImportEdge] = field(default_factory=list)
    module_names: List[str] = field(default_factory=list)

    def edges_from(self, module_name: str) -> List[ImportEdge]:
        """Edges whose source is ``module_name`` (in file order)."""
        return [e for e in self.edges if e.src_module == module_name]


def _resolve_relative(module_name: str, level: int, base: Optional[str]) -> str:
    """Resolve a ``from ... import`` target for relative imports."""
    if level == 0:
        return base or ""
    parts = module_name.split(".")
    # level 1 from a module means "its package": drop the module leaf.
    anchor = parts[: len(parts) - level] if len(parts) >= level else []
    if base:
        anchor = anchor + [base]
    return ".".join(anchor)


def collect_import_records(module: Module) -> List[dict]:
    """Raw, *unresolved* import records for one module (JSON-able).

    ``from X import y`` targets cannot be resolved per-module: whether
    ``y`` names a scanned submodule or a symbol depends on the global
    module-name set.  The incremental cache therefore stores these raw
    records and the engine resolves them against the current scan via
    :func:`graph_from_records` — which is also why a module edit must
    re-analyze its reverse-dependency cone.
    """
    records: List[dict] = []
    _collect_records(module, module.tree, deferred=False, records=records)
    return records


def _collect_records(
    module: Module, node: ast.AST, deferred: bool, records: List[dict]
) -> None:
    for child in ast.iter_child_nodes(node):
        child_deferred = deferred or isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef)
        )
        if isinstance(child, ast.Import):
            for alias in child.names:
                records.append({
                    "kind": "import", "target": alias.name,
                    "name": "", "line": child.lineno, "deferred": deferred,
                })
        elif isinstance(child, ast.ImportFrom):
            base = _resolve_relative(module.name, child.level, child.module)
            for alias in child.names:
                records.append({
                    "kind": "from", "target": base,
                    "name": alias.name, "line": child.lineno,
                    "deferred": deferred,
                })
        else:
            _collect_records(module, child, child_deferred, records)


def graph_from_records(
    records_by_module: Dict[str, Tuple[str, List[dict]]],
    module_names: Sequence[str],
) -> ImportGraph:
    """Resolve raw records into an :class:`ImportGraph`.

    ``records_by_module`` maps dotted module name -> (relpath, records).
    """
    graph = ImportGraph(module_names=list(module_names))
    names = set(module_names)
    for src_module in sorted(records_by_module):
        relpath, records = records_by_module[src_module]
        for record in records:
            if record["kind"] == "import":
                target = record["target"]
            else:
                base = record["target"]
                # ``from repro.x import y``: y may be a submodule or a
                # symbol; use the joined candidate when it names a
                # scanned module, else the base package.
                joined = (f"{base}.{record['name']}" if base
                          else record["name"])
                target = joined if joined in names else base
            graph.edges.append(ImportEdge(
                src_module=src_module, target=target,
                path=relpath, line=record["line"],
                deferred=record["deferred"],
            ))
    return graph


def build_import_graph(modules: Sequence[Module]) -> ImportGraph:
    """Collect every import edge from every module, tagging deferred ones."""
    records_by_module = {
        m.name: (m.relpath, collect_import_records(m)) for m in modules
    }
    return graph_from_records(records_by_module, [m.name for m in modules])


@dataclass
class ImportAliases:
    """Name-resolution table for one module, shared by the AST checkers.

    Maps local names to the canonical dotted thing they refer to:
    ``np -> numpy`` (module alias), ``perf_counter -> time.perf_counter``
    (symbol alias).  :meth:`resolve` then turns any ``Name`` /
    ``Attribute`` chain into its canonical dotted path, so checkers can
    match ``time.perf_counter`` however it was imported.
    """

    modules: Dict[str, str] = field(default_factory=dict)
    symbols: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportAliases":
        """Walk every import statement (any depth) into an alias table."""
        aliases = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c->a.b.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    aliases.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    aliases.symbols[local] = f"{node.module}.{alias.name}"
        return aliases

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name for a Name/Attribute chain, if known."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        head = node.id
        if head in self.modules:
            return ".".join([self.modules[head]] + parts)
        if head in self.symbols:
            return ".".join([self.symbols[head]] + parts)
        return ".".join([head] + parts) if parts else head


def walk_with_parents(
    tree: ast.AST,
) -> Iterable[Tuple[ast.AST, List[ast.AST]]]:
    """Yield ``(node, ancestors)`` pairs, ancestors innermost-last."""
    stack: List[ast.AST] = []

    def visit(node: ast.AST) -> Iterable[Tuple[ast.AST, List[ast.AST]]]:
        yield node, list(stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    yield from visit(tree)
