"""Declarative API-contract checking.

The repo's public-surface guarantees were previously enforced by
scattered import-time asserts and test snippets: ``repro.api`` pins its
``__all__``, deprecated names go through a warn-once ``__getattr__``
shim, ``repro.vecprice.lowering`` refuses to import if its column order
drifts from ``ALL_KINDS``, and every ``ArchBackend`` must implement the
columnar ``tables_as_arrays`` lowering.  This engine turns those into
*declared contracts the analyzer verifies*:

* every module with a literal ``__all__`` must bind each listed name
  (no drift, no duplicates);
* pinned facades (``repro/api.py``) must carry a literal ``__all__``;
* a ``_DEPRECATED`` shim table implies a module ``__getattr__`` that
  calls ``warnings.warn``, keys absent from ``__all__`` (deprecated
  names are not re-advertised) and replacement values present in it;
* field-order-guarded modules must keep their import-time guard
  comparing against the declared order constant;
* classes subclassing ``ArchBackend`` must define ``tables_as_arrays``.

Extraction is per-module and JSON-able like the other deep engines, so
the contracts ride the same incremental cache.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.rules import (
    DeepRule,
    Finding,
    ImportGraph,
    Module,
    register_rule,
)

#: Facade modules that must pin a literal ``__all__``.
PINNED_ALL = ("repro/api.py",)

#: ``relpath -> order constant``: the module must keep a top-level
#: ``if`` guard referencing the constant with a ``raise`` in its body.
GUARDED_FIELD_ORDER = {
    "repro/vecprice/lowering.py": "ALL_KINDS",
}

#: Backend base class whose subclasses owe the columnar lowering hook.
BACKEND_BASE = "ArchBackend"
BACKEND_REQUIRED_METHOD = "tables_as_arrays"


def _literal_strings(node: ast.AST) -> Optional[List[str]]:
    """The string elements of a literal list/tuple, else None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: List[str] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            out.append(elt.value)
        else:
            return None
    return out


def _literal_str_dict(node: ast.AST) -> Optional[Dict[str, str]]:
    """A literal ``{str: str}`` dict, else None."""
    if not isinstance(node, ast.Dict):
        return None
    out: Dict[str, str] = {}
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant) and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            out[key.value] = value.value
        else:
            return None
    return out


def extract_contract_facts(module: Module) -> dict:
    """Per-module declarations the contract solver checks."""
    facts: dict = {
        "all": None, "all_line": 0,
        "bound": [],
        "deprecated": None, "deprecated_line": 0,
        "has_getattr": False,
        "getattr_warns": False,
        "has_star": False,
        "guards": [],
        "classes": {},
    }
    bound: set = set()
    for node in ast.iter_child_nodes(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
            if node.name == "__getattr__":
                facts["has_getattr"] = True
                calls_warn = any(
                    isinstance(child, ast.Call)
                    and isinstance(child.func, (ast.Name, ast.Attribute))
                    and (child.func.id if isinstance(child.func, ast.Name)
                         else child.func.attr) == "warn"
                    for child in ast.walk(node)
                )
                facts["getattr_warns"] = calls_warn
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
            bases = [
                base.attr if isinstance(base, ast.Attribute)
                else base.id if isinstance(base, ast.Name) else ""
                for base in node.bases
            ]
            methods = sorted({
                child.name for child in ast.iter_child_nodes(node)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            })
            facts["classes"][node.name] = {
                "bases": bases, "methods": methods, "line": node.lineno,
            }
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    facts["has_star"] = True
                else:
                    bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                bound.add(target.id)
                if target.id == "__all__" and node.value is not None:
                    facts["all"] = _literal_strings(node.value)
                    facts["all_line"] = node.lineno
                elif target.id == "_DEPRECATED" and node.value is not None:
                    facts["deprecated"] = _literal_str_dict(node.value)
                    facts["deprecated_line"] = node.lineno
        elif isinstance(node, ast.If):
            has_raise = any(
                isinstance(child, ast.Raise) for child in node.body
            )
            if has_raise:
                names = sorted({
                    child.id for child in ast.walk(node.test)
                    if isinstance(child, ast.Name)
                })
                facts["guards"].extend(names)
    facts["bound"] = sorted(bound)
    return facts


class ApiContractRule(DeepRule):
    """Declared public-surface contracts must hold program-wide."""

    id = "api-contract"
    summary = "__all__ pins, deprecation shims, and lowering hooks must hold"
    rationale = (
        "the facade's pinned __all__, the warn-once deprecation shims, "
        "and the tables_as_arrays/ALL_KINDS field-order guards are "
        "load-bearing compatibility contracts; verifying them statically "
        "catches drift before an import-time assert or a user does"
    )
    facts_key = "contracts"

    def extract(self, module: Module) -> dict:
        """Collect the module's contract declarations."""
        return extract_contract_facts(module)

    def solve(
        self,
        facts: Dict[str, dict],
        modules: Sequence[Module],
        graph: ImportGraph,
    ) -> Iterable[Finding]:
        """Check every declared contract against the extracted facts."""
        findings: List[Finding] = []
        # A program-wide base class may satisfy the lowering contract for
        # every subclass (ArchBackend ships a generic tables_as_arrays).
        base_provides_method = any(
            BACKEND_REQUIRED_METHOD
            in data["classes"].get(BACKEND_BASE, {}).get("methods", ())
            for data in facts.values()
        )
        for relpath in sorted(facts):
            data = facts[relpath]
            exported = data["all"]
            bound = set(data["bound"])
            # ``from x import *`` and module __getattr__ both bind names
            # invisibly to static analysis; skip drift checking there.
            drift_checkable = not (data["has_star"] or data["has_getattr"])

            if exported is not None:
                seen: set = set()
                for name in exported:
                    if name in seen:
                        findings.append(Finding(
                            rule=self.id, path=relpath,
                            line=data["all_line"],
                            message=f"__all__ lists {name!r} twice",
                        ))
                    seen.add(name)
                    if name not in bound and drift_checkable:
                        findings.append(Finding(
                            rule=self.id, path=relpath,
                            line=data["all_line"],
                            message=(
                                f"__all__ exports {name!r} but the module "
                                f"never binds it (export drift)"
                            ),
                        ))
            elif relpath in PINNED_ALL:
                findings.append(Finding(
                    rule=self.id, path=relpath, line=1,
                    message=(
                        "facade module must pin a literal __all__ "
                        "(the compatibility surface is the contract)"
                    ),
                ))

            deprecated = data["deprecated"]
            if deprecated is not None:
                if not data["getattr_warns"]:
                    findings.append(Finding(
                        rule=self.id, path=relpath,
                        line=data["deprecated_line"],
                        message=(
                            "_DEPRECATED table without a module "
                            "__getattr__ calling warnings.warn — the "
                            "shim never fires"
                        ),
                    ))
                for old, new in sorted(deprecated.items()):
                    if exported is not None and old in exported:
                        findings.append(Finding(
                            rule=self.id, path=relpath,
                            line=data["deprecated_line"],
                            message=(
                                f"deprecated name {old!r} is still "
                                f"advertised in __all__"
                            ),
                        ))
                    if exported is not None and new not in exported:
                        findings.append(Finding(
                            rule=self.id, path=relpath,
                            line=data["deprecated_line"],
                            message=(
                                f"deprecation shim {old!r} -> {new!r} "
                                f"points at a name missing from __all__"
                            ),
                        ))

            guard_const = GUARDED_FIELD_ORDER.get(relpath)
            if guard_const is not None and guard_const not in data["guards"]:
                findings.append(Finding(
                    rule=self.id, path=relpath, line=1,
                    message=(
                        f"missing import-time field-order guard against "
                        f"{guard_const} (a silent column reorder would "
                        f"misprice every trace)"
                    ),
                ))

            for cls_name, cls in sorted(data["classes"].items()):
                if BACKEND_BASE in cls["bases"]:
                    provided = (
                        BACKEND_REQUIRED_METHOD in cls["methods"]
                        or base_provides_method
                    )
                    if not provided:
                        findings.append(Finding(
                            rule=self.id, path=relpath, line=cls["line"],
                            message=(
                                f"{cls_name} subclasses {BACKEND_BASE} "
                                f"but does not implement "
                                f"{BACKEND_REQUIRED_METHOD}() — the "
                                f"columnar pricer cannot lower its tables"
                            ),
                        ))
        return findings


register_rule(ApiContractRule())
