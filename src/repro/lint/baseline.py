"""The committed-baseline mechanism for grandfathered findings.

A baseline is a JSON file mapping finding fingerprints (rule, path,
normalized-snippet hash, message — deliberately no line numbers, see
:meth:`repro.lint.rules.Finding.fingerprint`) to occurrence counts.
Findings that match a baseline entry are *grandfathered*: reported in
the summary but not as failures, so a new rule can land before every
historical violation is fixed, while any **new** violation still gates.
Because the key hashes the flagged source line rather than recording
where it sits, unrelated edits above a suppressed finding leave the
baseline intact; editing the flagged line itself invalidates the entry.

Workflow::

    python -m repro lint                      # new findings fail
    python -m repro lint --update-baseline    # grandfather the current set
    python -m repro lint --prune-baseline     # drop + report stale entries

Baseline entries that no longer match anything are reported as *stale*
so the file shrinks as debt is paid down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.rules import Finding

#: On-disk format version, bumped on incompatible changes.  v2 keys
#: fingerprints on the normalized-snippet hash instead of nothing but
#: the message, so they survive line moves *and* invalidate on edits.
BASELINE_VERSION = 2


@dataclass
class Baseline:
    """Fingerprint -> allowed occurrence count."""

    counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version "
                f"{data.get('version')!r} (expected {BASELINE_VERSION}; "
                f"regenerate with --update-baseline)"
            )
        counts = {str(k): int(v) for k, v in data.get("findings", {}).items()}
        return cls(counts=counts)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Build the baseline that grandfathers exactly ``findings``."""
        counts: Dict[str, int] = {}
        for finding in findings:
            key = finding.fingerprint()
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts)

    def save(self, path: Path) -> Path:
        """Write the canonical (sorted, versioned) baseline file."""
        path = Path(path)
        payload = {
            "version": BASELINE_VERSION,
            "findings": {k: self.counts[k] for k in sorted(self.counts)},
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int, List[str]]:
        """Split findings into (new, grandfathered count, stale entries).

        Each fingerprint absorbs up to its recorded count of matching
        findings; the overflow and every unmatched fingerprint are
        returned for reporting.
        """
        remaining = dict(self.counts)
        new: List[Finding] = []
        baselined = 0
        for finding in findings:
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                new.append(finding)
        stale = sorted(k for k, count in remaining.items() if count > 0)
        return new, baselined, stale

    def prune(self, findings: Sequence[Finding]) -> Tuple["Baseline", List[str]]:
        """Drop entries that no longer match any current finding.

        Returns the pruned baseline plus the dropped fingerprints (for
        reporting).  Counts shrink to the number of matching findings,
        so half-fixed entries shrink rather than vanish.
        """
        live: Dict[str, int] = {}
        for finding in findings:
            key = finding.fingerprint()
            if key in self.counts and live.get(key, 0) < self.counts[key]:
                live[key] = live.get(key, 0) + 1
        dropped = sorted(
            key for key, count in self.counts.items()
            if live.get(key, 0) < count
        )
        return Baseline(counts=live), dropped
