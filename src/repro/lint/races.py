"""Shared-state race detection across concurrency domain boundaries.

The repo has three concurrency domains where the byte-identity
invariant is exposed: ProcessPool workers (engine executor, fault and
scenario campaigns), the ``ServiceBroker`` dispatcher thread, and
campaign collation.  This engine models each dispatch site
(``pool.submit``/``pool.map``/``threading.Thread(target=...)``) as a
domain entry point, computes call-graph reachability from the entries,
and flags state that worker-side code mutates without going through a
sanctioned seam:

* writes to module-global mutable containers (append/update/item
  assignment on a top-level ``list``/``dict``/``set``) — in a forked
  worker the write is silently lost, in a thread it races collation;
* ``global`` declarations in worker-reachable functions;
* direct attribute mutation of the process-wide observability
  singletons (``get_metrics().enabled = ...``,
  ``get_tracer().track = ...``) from *anywhere* — the sanctioned seams
  are ``MetricsRegistry.suspended()`` and ``Tracer.on_track()``, which
  restore state exception-safely and keep the serial path byte-identical
  with the pooled one.

A sibling rule, ``pool-pickle-safety``, verifies every process-pool
dispatch ships picklable work: lambdas and nested functions cannot
cross the pickle boundary, whether as the mapped callable or as an
argument.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.lint.callgraph import FunctionTable, ModuleSummary, summarize_module
from repro.lint.rules import (
    DeepRule,
    Finding,
    ImportGraph,
    Module,
    register_rule,
)

#: Modules that *are* the sanctioned shared-state seams: the metrics
#: registry and tracer (process-safe by design, jobs-invariant
#: collation), the content-addressed trace cache, and engine telemetry.
SANCTIONED_STATE_MODULES = frozenset({
    "repro/obs/metrics.py",
    "repro/obs/tracer.py",
    "repro/obs/export.py",
    "repro/engine/trace_cache.py",
    "repro/engine/telemetry.py",
})


def _entries_by_domain(
    summaries: Dict[str, ModuleSummary],
) -> Dict[str, List[Tuple[str, str]]]:
    """``{domain: [(entry qualname, dispatch site qualname)]}``."""
    entries: Dict[str, List[Tuple[str, str]]] = {}
    for relpath in sorted(summaries):
        for qualname, fn in sorted(summaries[relpath].functions.items()):
            for submit in fn.submits:
                if submit.target is None:
                    continue
                entries.setdefault(submit.domain, []).append(
                    (submit.target, qualname)
                )
    return entries


class WorkerSharedStateRule(DeepRule):
    """Worker-reachable code must not mutate shared module state."""

    id = "worker-shared-state"
    summary = "no shared mutable state written from worker-side code paths"
    rationale = (
        "module globals mutated inside a pool worker are lost at the "
        "process boundary (or race the dispatcher thread), so results "
        "silently depend on --jobs; all cross-domain state must flow "
        "through the sanctioned seams (metrics registry, trace cache, "
        "SeedSequence spawning)"
    )
    facts_key = "callgraph"

    def extract(self, module: Module) -> dict:
        """Summarize the module's functions for the shared fact pool."""
        return summarize_module(module).to_dict()

    def solve(
        self,
        facts: Dict[str, dict],
        modules: Sequence[Module],
        graph: ImportGraph,
    ) -> Iterable[Finding]:
        """Reachability from every dispatch entry; flag unsafe writes."""
        summaries = {
            relpath: ModuleSummary.from_dict(data)
            for relpath, data in facts.items()
        }
        table = FunctionTable(summaries)
        findings: List[Finding] = []
        seen: set = set()

        for domain, entries in sorted(
            _entries_by_domain(summaries).items()
        ):
            reachable = table.reachable_from([e for e, _ in entries])
            for qualname in sorted(reachable):
                fn = table.functions.get(qualname)
                if fn is None:
                    continue
                relpath = table.module_of[qualname]
                if relpath in SANCTIONED_STATE_MODULES:
                    continue
                chain = " -> ".join(reachable[qualname])
                for name, line, how in fn.global_writes:
                    key = (relpath, line, name, domain)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(Finding(
                        rule=self.id, path=relpath, line=line,
                        message=(
                            f"module-global {name!r} mutated via {how} in "
                            f"{domain}-reachable code ({chain}); route "
                            f"through a sanctioned seam or return the "
                            f"value instead"
                        ),
                    ))
                for names, line in fn.global_decls:
                    key = (relpath, line, names, domain)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(Finding(
                        rule=self.id, path=relpath, line=line,
                        message=(
                            f"'global {names}' declared in {domain}-"
                            f"reachable code ({chain}); worker-side "
                            f"rebinding never survives the process "
                            f"boundary"
                        ),
                    ))

        # Obs-singleton attribute mutation is unsafe from *any* path:
        # the serial campaign branch and a pooled worker must share one
        # discipline or --jobs 1 and --jobs N diverge on restore bugs.
        for relpath in sorted(summaries):
            if relpath in SANCTIONED_STATE_MODULES:
                continue
            for qualname, fn in sorted(summaries[relpath].functions.items()):
                for line, attr, what in fn.obs_mutations:
                    findings.append(Finding(
                        rule=self.id, path=relpath, line=line,
                        message=(
                            f"direct attribute mutation of the process-wide "
                            f"{what} (.{attr} = ...); use the sanctioned "
                            f"seam (MetricsRegistry.suspended() / "
                            f"Tracer.on_track()) so state restores are "
                            f"exception-safe and jobs-invariant"
                        ),
                    ))
        return findings


class PoolPickleSafetyRule(DeepRule):
    """Process-pool dispatches must ship picklable callables and args."""

    id = "pool-pickle-safety"
    summary = "pool submit/map must ship pickle-safe callables and arguments"
    rationale = (
        "lambdas and nested functions fail to pickle at dispatch time "
        "(or, worse, only under the spawn start method on another "
        "platform), so every process-pool entry point must ship "
        "module-level callables and plain-data arguments"
    )
    facts_key = "callgraph"

    def extract(self, module: Module) -> dict:
        """Summarize the module's functions for the shared fact pool."""
        return summarize_module(module).to_dict()

    def solve(
        self,
        facts: Dict[str, dict],
        modules: Sequence[Module],
        graph: ImportGraph,
    ) -> Iterable[Finding]:
        """Flag pickle hazards recorded at process-pool dispatch sites."""
        summaries = {
            relpath: ModuleSummary.from_dict(data)
            for relpath, data in facts.items()
        }
        findings: List[Finding] = []
        for relpath in sorted(summaries):
            for qualname, fn in sorted(summaries[relpath].functions.items()):
                for submit in fn.submits:
                    if submit.domain != "process-pool":
                        continue
                    for position, what in submit.hazards:
                        role = ("mapped callable" if position == "callable"
                                else "dispatch argument")
                        findings.append(Finding(
                            rule=self.id, path=relpath, line=submit.line,
                            message=(
                                f"{what} shipped as {role} to a process "
                                f"pool from {qualname}; it cannot be "
                                f"pickled — hoist it to module level and "
                                f"pass plain data"
                            ),
                        ))
        return findings


register_rule(WorkerSharedStateRule())
register_rule(PoolPickleSafetyRule())
