"""The facade-only-imports rule: consumers go through ``repro.api``.

The ``repro.api`` facade is the single supported import surface for
orchestration work — specs, verbs, and the query service.  This rule
keeps it honest: *consumer* code (the ``analysis`` package plus the
out-of-package ``examples/`` and ``benchmarks/`` trees) may not reach
around the facade into the deep orchestration modules it wraps.

Two scopes, one rule:

* **Scanned package** — every import edge whose source lives in a
  consumer group (:data:`CONSUMER_GROUPS`) and whose target sits under a
  deep prefix (:data:`DEEP_PREFIXES`) is a finding.  This rides on the
  same import graph the layering rule uses, so deferred imports are
  covered too.
* **Out-of-package trees** — ``examples/*.py`` and ``benchmarks/*.py``
  are not part of the installed package, so the engine never scans
  them.  The rule locates the repository root (the nearest ancestor of
  the scanned package carrying ``pyproject.toml``) and parses those
  trees itself.  Synthetic lint trees in tests have no such anchor and
  skip this half cleanly.

Building-block layers (``repro.mcu``, ``repro.datasets``, kernel
packages, ``repro.core.config`` ...) stay importable directly: the
facade harmonizes *orchestration*, not arithmetic.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.layering import group_of
from repro.lint.rules import (
    Finding,
    ImportGraph,
    Module,
    Rule,
    register_rule,
)

#: The one blessed import surface consumers should use instead.
FACADE_MODULE = "repro.api"

#: Deep orchestration modules the facade wraps.  A target matches when
#: it *is* one of these or lives underneath one (segment-aware, so
#: ``repro.core.experiment_io`` does not match ``repro.core.experiment``).
DEEP_PREFIXES: Tuple[str, ...] = (
    "repro.closedloop",
    "repro.core.experiment",
    "repro.engine",
    "repro.faults",
    "repro.scenarios",
    "repro.service",
    "repro.vecprice",
)

#: Layer groups (see :mod:`repro.lint.layering`) held to facade-only
#: imports.  The facade itself, the CLI, and the service are plumbing
#: and keep their deep imports.
CONSUMER_GROUPS = frozenset({"analysis"})

#: Repo-root directories scanned in addition to the package tree.
EXTERNAL_DIRS: Tuple[str, ...] = ("benchmarks", "examples")


def deep_prefix_of(module_name: str) -> Optional[str]:
    """The matching deep prefix for a dotted module name, or ``None``."""
    for prefix in DEEP_PREFIXES:
        if module_name == prefix or module_name.startswith(prefix + "."):
            return prefix
    return None


def find_repo_root(modules: Sequence[Module]) -> Optional[Path]:
    """Nearest ancestor of the scanned tree carrying ``pyproject.toml``.

    Returns ``None`` for synthetic test trees, which have no anchor —
    the external-tree half of the rule then skips.
    """
    if not modules:
        return None
    start = modules[0].path.resolve().parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


class FacadeOnlyImportsRule(Rule):
    """Consumer code must import orchestration via :data:`FACADE_MODULE`.

    Whole-program: checks consumer-group edges on the shared import
    graph, then independently parses the repo's ``examples/`` and
    ``benchmarks/`` trees (which live outside the package root).
    """

    id = "facade-only-imports"
    summary = "examples/analysis/benchmarks import via repro.api only"
    rationale = (
        "one supported surface keeps spec naming harmonized and lets "
        "internals refactor without breaking every consumer"
    )

    def check_program(
        self, modules: Sequence[Module], graph: ImportGraph
    ) -> Iterable[Finding]:
        """Yield one finding per deep import from a consumer site."""
        for edge in graph.edges:
            if group_of(edge.src_module) not in CONSUMER_GROUPS:
                continue
            prefix = deep_prefix_of(edge.target)
            if prefix is None:
                continue
            yield Finding(
                rule=self.id, path=edge.path, line=edge.line,
                message=(
                    f"{edge.src_module} imports {edge.target} directly; "
                    f"consumer code must go through {FACADE_MODULE}"
                ),
            )
        root = find_repo_root(modules)
        if root is None:
            return
        for dirname in EXTERNAL_DIRS:
            folder = root / dirname
            if not folder.is_dir():
                continue
            for path in sorted(folder.glob("*.py")):
                yield from self._check_external(path, f"{dirname}/{path.name}")

    def _check_external(self, path: Path, relpath: str) -> Iterable[Finding]:
        """Parse one out-of-package file and flag its deep imports."""
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:
            yield Finding(
                rule=self.id, path=relpath, line=exc.lineno or 1,
                message="file does not parse; cannot check facade imports",
            )
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                targets: List[str] = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                # ``from repro.core import experiment`` reaches a deep
                # module through its package, so check joined names too.
                targets = [node.module] + [
                    f"{node.module}.{alias.name}" for alias in node.names
                ]
            else:
                continue
            flagged = sorted({
                prefix for prefix in map(deep_prefix_of, targets)
                if prefix is not None
            })
            for prefix in flagged:
                yield Finding(
                    rule=self.id, path=relpath, line=node.lineno,
                    message=(
                        f"imports {prefix} directly; consumer code must "
                        f"go through {FACADE_MODULE}"
                    ),
                )


register_rule(FacadeOnlyImportsRule())
