"""Per-module call-graph and dataflow extraction for the deep analyzers.

The flow-sensitive engines (:mod:`repro.lint.taint`,
:mod:`repro.lint.races`) share one extraction pass: every function in a
module is summarized into a :class:`FunctionSummary` — its calls (with
per-argument dataflow *atoms*), what its return value is made of, which
designated sinks it feeds, which module globals it writes, and which
concurrency entry points it registers.  Summaries are plain JSON-able
data, which is what makes the incremental analysis cache
(:mod:`repro.lint.incremental`) possible: extraction is strictly
per-module, and the whole-program fixpoint in each engine's ``solve``
re-runs from cached summaries without re-parsing unchanged files.

**Atoms** describe where a value may come from, without needing the
rest of the program at extraction time:

* ``("src", name)`` — directly produced by a nondeterminism source
  (``time.time``, an unseeded RNG call, ``os.environ``...);
* ``("call", qualname)`` — the return value of a project function,
  resolved lazily against the whole-program function table;
* ``("param", i)`` — the function's own ``i``-th parameter, bound to
  concrete sources at call sites during the interprocedural fixpoint.

The intra-procedural walk is flow-sensitive: statements are processed
in order, straight-line reassignment kills old atoms, and branches
merge by union.  Loop bodies are processed twice so loop-carried taint
is observed.  Everything here is stdlib-only (``ast``), like the rest
of ``repro.lint``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.rules import ImportAliases, Module

#: Atom tuples are (tag, payload) / (tag, payload, extra); see module doc.
Atom = Tuple[str, ...]

#: Wall-clock reads (mirrors the basic ``no-wall-clock`` rule's set).
WALL_CLOCK_SOURCES = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Environment / host-identity reads that vary between machines and runs.
ENV_SOURCES = frozenset({
    "os.getenv", "os.environ.get", "os.urandom", "os.getpid",
    "uuid.uuid1", "uuid.uuid4", "socket.gethostname",
})

#: Non-call attribute reads that are sources by themselves.
ENV_ATTR_SOURCES = frozenset({"os.environ"})

#: Seeded numpy.random constructors (identical to ``no-unseeded-rng``).
NP_RNG_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Seeded stdlib random constructors.
STDLIB_RNG_ALLOWED = frozenset({"Random", "SystemRandom"})

#: Method leaf names treated as pricing sinks wherever they are called.
PRICING_SINK_LEAVES = frozenset({
    "price", "price_trace", "price_batch", "price_profile",
})

#: Resolved callables treated as serialized-output sinks.
SERIALIZED_SINKS = frozenset({"json.dump", "json.dumps"})

#: Cache-key sinks: content addressing and raw digest constructors.
CACHE_KEY_LEAVES = frozenset({"content_address", "query_key", "cache_key"})
CACHE_KEY_CALLS = frozenset({
    "hashlib.sha256", "hashlib.sha1", "hashlib.md5", "hashlib.blake2b",
})

#: Container-mutating method names for the global-write detector.
MUTATOR_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "pop", "popitem",
    "clear", "setdefault", "remove", "discard", "sort",
})

#: Calls that bind the returned process-wide observability singleton.
OBS_GETTERS = {"get_metrics": "metrics registry", "get_tracer": "tracer"}

#: Pool/thread dispatch method leaves and constructors.
POOL_DISPATCH_LEAVES = frozenset({"submit", "map"})
THREAD_CONSTRUCTORS = frozenset({"threading.Thread", "Thread"})


def sink_kind(resolved: Optional[str], leaf: str) -> Optional[str]:
    """Classify a call as a sink: pricing / serialized-output / cache-key."""
    if resolved in SERIALIZED_SINKS:
        return "serialized-output"
    if resolved in CACHE_KEY_CALLS:
        return "cache-key"
    if leaf in PRICING_SINK_LEAVES:
        return "pricing"
    if leaf in CACHE_KEY_LEAVES:
        return "cache-key"
    return None


def classify_source(resolved: Optional[str]) -> Optional[str]:
    """The nondeterminism-source label for a resolved call target."""
    if resolved is None:
        return None
    if resolved in WALL_CLOCK_SOURCES:
        return f"wall-clock {resolved}"
    if resolved in ENV_SOURCES:
        return f"environment {resolved}"
    parts = resolved.split(".")
    if len(parts) == 2 and parts[0] == "random":
        if parts[1] not in STDLIB_RNG_ALLOWED:
            return f"unseeded-rng {resolved}"
    if len(parts) == 3 and parts[:2] == ["numpy", "random"]:
        if parts[2] not in NP_RNG_ALLOWED:
            return f"unseeded-rng {resolved}"
    return None


@dataclass
class CallRecord:
    """One call site: resolved callee plus per-argument atom sets."""

    callee: str
    line: int
    args: List[List[Atom]] = field(default_factory=list)
    kwargs: Dict[str, List[Atom]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON form (atoms as lists)."""
        return {
            "callee": self.callee, "line": self.line,
            "args": [[list(a) for a in arg] for arg in self.args],
            "kwargs": {k: [list(a) for a in v]
                       for k, v in sorted(self.kwargs.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallRecord":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            callee=data["callee"], line=data["line"],
            args=[[tuple(a) for a in arg] for arg in data["args"]],
            kwargs={k: [tuple(a) for a in v]
                    for k, v in data["kwargs"].items()},
        )


@dataclass
class SinkFlow:
    """Atoms flowing into one sink call."""

    sink: str  #: display label of the callee
    kind: str  #: pricing / serialized-output / cache-key
    line: int
    atoms: List[Atom] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON form."""
        return {"sink": self.sink, "kind": self.kind, "line": self.line,
                "atoms": [list(a) for a in self.atoms]}

    @classmethod
    def from_dict(cls, data: dict) -> "SinkFlow":
        """Rebuild from :meth:`to_dict` output."""
        return cls(sink=data["sink"], kind=data["kind"], line=data["line"],
                   atoms=[tuple(a) for a in data["atoms"]])


@dataclass
class SubmitRecord:
    """One concurrency dispatch: pool submit/map or Thread(target=...)."""

    domain: str  #: "process-pool" or "thread"
    target: Optional[str]  #: resolved worker callable, when known
    line: int
    #: Pickle-hazard descriptors: ("callable"|"arg", "lambda"|"nested <f>")
    hazards: List[List[str]] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON form."""
        return {"domain": self.domain, "target": self.target,
                "line": self.line, "hazards": self.hazards}

    @classmethod
    def from_dict(cls, data: dict) -> "SubmitRecord":
        """Rebuild from :meth:`to_dict` output."""
        return cls(domain=data["domain"], target=data["target"],
                   line=data["line"], hazards=list(data["hazards"]))


@dataclass
class FunctionSummary:
    """Everything the solvers need to know about one function."""

    qualname: str
    line: int
    params: List[str] = field(default_factory=list)
    calls: List[CallRecord] = field(default_factory=list)
    returns: List[Atom] = field(default_factory=list)
    sinks: List[SinkFlow] = field(default_factory=list)
    global_decls: List[Tuple[str, int]] = field(default_factory=list)
    global_writes: List[Tuple[str, int, str]] = field(default_factory=list)
    obs_mutations: List[Tuple[int, str, str]] = field(default_factory=list)
    submits: List[SubmitRecord] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON form."""
        return {
            "qualname": self.qualname, "line": self.line,
            "params": self.params,
            "calls": [c.to_dict() for c in self.calls],
            "returns": [list(a) for a in self.returns],
            "sinks": [s.to_dict() for s in self.sinks],
            "global_decls": [list(g) for g in self.global_decls],
            "global_writes": [list(g) for g in self.global_writes],
            "obs_mutations": [list(m) for m in self.obs_mutations],
            "submits": [s.to_dict() for s in self.submits],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            qualname=data["qualname"], line=data["line"],
            params=list(data["params"]),
            calls=[CallRecord.from_dict(c) for c in data["calls"]],
            returns=[tuple(a) for a in data["returns"]],
            sinks=[SinkFlow.from_dict(s) for s in data["sinks"]],
            global_decls=[tuple(g) for g in data["global_decls"]],
            global_writes=[tuple(g) for g in data["global_writes"]],
            obs_mutations=[tuple(m) for m in data["obs_mutations"]],
            submits=[SubmitRecord.from_dict(s) for s in data["submits"]],
        )


@dataclass
class ModuleSummary:
    """Per-module extraction result shared by the deep engines."""

    name: str  #: dotted module name
    relpath: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: ``{local dotted name -> imported dotted target}`` for re-export
    #: resolution (``repro.closedloop.make_runner`` -> the runner module).
    export_aliases: Dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to mutable containers, name -> line.
    top_mutables: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON form."""
        return {
            "name": self.name, "relpath": self.relpath,
            "functions": {q: f.to_dict()
                          for q, f in sorted(self.functions.items())},
            "export_aliases": dict(sorted(self.export_aliases.items())),
            "top_mutables": dict(sorted(self.top_mutables.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"], relpath=data["relpath"],
            functions={q: FunctionSummary.from_dict(f)
                       for q, f in data["functions"].items()},
            export_aliases=dict(data["export_aliases"]),
            top_mutables=dict(data["top_mutables"]),
        )


_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter",
})


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


class _Resolver:
    """Dotted-name resolution for one module: defs, methods, imports."""

    def __init__(self, module: Module):
        self.module = module
        self.aliases = ImportAliases.from_tree(module.tree)
        self.top_defs: Dict[str, str] = {}
        self.methods: Dict[str, Set[str]] = {}
        for node in ast.iter_child_nodes(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.top_defs[node.name] = f"{module.name}.{node.name}"
            elif isinstance(node, ast.ClassDef):
                self.top_defs[node.name] = f"{module.name}.{node.name}"
                names = {
                    child.name for child in ast.iter_child_nodes(node)
                    if isinstance(child,
                                  (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                self.methods[node.name] = names

    def resolve(self, node: ast.AST, cls: Optional[str]) -> Optional[str]:
        """Canonical dotted target of a Name/Attribute, best effort."""
        if isinstance(node, ast.Name):
            if node.id in self.top_defs:
                return self.top_defs[node.id]
            return self.aliases.resolve(node)
        if isinstance(node, ast.Attribute):
            # self.method() inside a class resolves to the sibling method.
            if (
                cls is not None
                and isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
                and node.attr in self.methods.get(cls, ())
            ):
                return f"{self.module.name}.{cls}.{node.attr}"
            return self.aliases.resolve(node)
        return None


def _leaf(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class _FunctionWalker:
    """Flow-sensitive intra-procedural walk of one function body."""

    def __init__(self, resolver: _Resolver, summary: FunctionSummary,
                 cls: Optional[str], root_pkg: str,
                 nested_names: Set[str], uses_pools: bool):
        self.resolver = resolver
        self.summary = summary
        self.cls = cls
        self.root_pkg = root_pkg
        self.nested_names = nested_names
        self.uses_pools = uses_pools
        self.env: Dict[str, FrozenSet[Atom]] = {
            name: frozenset({("param", str(i))})
            for i, name in enumerate(summary.params)
        }
        #: Local names bound to get_metrics()/get_tracer() results.
        self.obs_locals: Dict[str, str] = {}

    # -- expression atoms ----------------------------------------------------

    def atoms_of(self, node: Optional[ast.AST]) -> FrozenSet[Atom]:
        """The atom set an expression's value may carry."""
        if node is None or isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Call):
            return self._call_atoms(node)
        if isinstance(node, ast.Attribute):
            resolved = self.resolver.resolve(node, self.cls)
            if resolved in ENV_ATTR_SOURCES:
                return frozenset({("src", f"environment {resolved}")})
            if resolved in WALL_CLOCK_SOURCES:
                return frozenset({("src", f"wall-clock {resolved}")})
            return self.atoms_of(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self.atoms_of(node.left) | self.atoms_of(node.right)
        if isinstance(node, ast.BoolOp):
            out: FrozenSet[Atom] = frozenset()
            for value in node.values:
                out |= self.atoms_of(value)
            return out
        if isinstance(node, ast.Compare):
            out = self.atoms_of(node.left)
            for comp in node.comparators:
                out |= self.atoms_of(comp)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.atoms_of(node.operand)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for elt in node.elts:
                out |= self.atoms_of(elt)
            return out
        if isinstance(node, ast.Dict):
            out = frozenset()
            for key in node.keys:
                if key is not None:
                    out |= self.atoms_of(key)
            for value in node.values:
                out |= self.atoms_of(value)
            return out
        if isinstance(node, ast.Subscript):
            return self.atoms_of(node.value) | self.atoms_of(node.slice)
        if isinstance(node, ast.IfExp):
            return (self.atoms_of(node.body) | self.atoms_of(node.test)
                    | self.atoms_of(node.orelse))
        if isinstance(node, ast.JoinedStr):
            out = frozenset()
            for value in node.values:
                out |= self.atoms_of(value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.atoms_of(node.value)
        if isinstance(node, ast.Starred):
            return self.atoms_of(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = self.atoms_of(node.elt)
            for gen in node.generators:
                out |= self.atoms_of(gen.iter)
            return out
        if isinstance(node, ast.DictComp):
            out = self.atoms_of(node.key) | self.atoms_of(node.value)
            for gen in node.generators:
                out |= self.atoms_of(gen.iter)
            return out
        if isinstance(node, ast.Await):
            return self.atoms_of(node.value)
        if isinstance(node, ast.NamedExpr):
            atoms = self.atoms_of(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = atoms
            return atoms
        return frozenset()

    def _call_atoms(self, node: ast.Call) -> FrozenSet[Atom]:
        resolved = self.resolver.resolve(node.func, self.cls)
        leaf = _leaf(node.func)
        source = classify_source(resolved)
        arg_atoms = [self.atoms_of(a) for a in node.args]
        kw_atoms = {kw.arg: self.atoms_of(kw.value)
                    for kw in node.keywords if kw.arg is not None}
        for kw in node.keywords:  # **kwargs expansion
            if kw.arg is None:
                kw_atoms.setdefault("**", self.atoms_of(kw.value))

        # Record the call for the interprocedural fixpoint + reachability.
        is_project = (resolved is not None
                      and resolved.split(".")[0] == self.root_pkg)
        if is_project:
            call_record = CallRecord(
                callee=resolved, line=node.lineno,
                args=[sorted(a) for a in arg_atoms],
                kwargs={k: sorted(v) for k, v in kw_atoms.items()
                        if k != "**"},
            )
            if call_record not in self.summary.calls:
                self.summary.calls.append(call_record)

        # Sink classification (independent of project resolution: pricing
        # sinks are usually method calls on unresolvable instances).
        kind = sink_kind(resolved, leaf)
        if kind is not None:
            flowing: FrozenSet[Atom] = frozenset()
            for a in arg_atoms:
                flowing |= a
            for a in kw_atoms.values():
                flowing |= a
            if flowing:
                sink_record = SinkFlow(
                    sink=resolved or leaf, kind=kind, line=node.lineno,
                    atoms=sorted(flowing),
                )
                if sink_record not in self.summary.sinks:
                    self.summary.sinks.append(sink_record)

        # Concurrency dispatches and in-place mutation of module globals.
        self._record_submit(node, resolved, leaf)
        self._check_mutator_call(node, self.top_mutables)

        if source is not None:
            return frozenset({("src", source)})
        if is_project:
            return frozenset({("call", resolved)})
        # Unknown / stdlib call: assume it may pass its arguments through
        # (max(), float(), np.clip() all do).
        out: FrozenSet[Atom] = frozenset()
        for a in arg_atoms:
            out |= a
        for a in kw_atoms.values():
            out |= a
        if isinstance(node.func, ast.Attribute):
            out |= self.atoms_of(node.func.value)
        return out

    # -- concurrency dispatch records ---------------------------------------

    def _hazard(self, node: ast.AST, position: str) -> Optional[List[str]]:
        if isinstance(node, ast.Lambda):
            return [position, "lambda"]
        if isinstance(node, ast.Name) and node.id in self.nested_names:
            return [position, f"nested function {node.id}"]
        return None

    def _record_submit(self, node: ast.Call, resolved: Optional[str],
                       leaf: str) -> None:
        domain = None
        target_node: Optional[ast.AST] = None
        hazard_args: Sequence[ast.AST] = ()
        if (
            self.uses_pools
            and isinstance(node.func, ast.Attribute)
            and leaf in POOL_DISPATCH_LEAVES
            and node.args
        ):
            domain = "process-pool"
            target_node = node.args[0]
            hazard_args = node.args[1:]
        elif resolved in THREAD_CONSTRUCTORS or (
            resolved is not None and resolved.endswith("threading.Thread")
        ):
            domain = "thread"
            for kw in node.keywords:
                if kw.arg == "target":
                    target_node = kw.value
            hazard_args = node.args
        if domain is None:
            return
        target = (self.resolver.resolve(target_node, self.cls)
                  if target_node is not None else None)
        hazards: List[List[str]] = []
        if target_node is not None and domain == "process-pool":
            hz = self._hazard(target_node, "callable")
            if hz and leaf == "map":
                # submit-position lambdas belong to the basic pool-safety
                # rule; map() callables are this rule's to report.
                hazards.append(hz)
        for arg in hazard_args:
            hz = self._hazard(arg, "argument")
            if hz:
                hazards.append(hz)
        record = SubmitRecord(
            domain=domain, target=target, line=node.lineno, hazards=hazards,
        )
        if record not in self.summary.submits:
            self.summary.submits.append(record)

    # -- statements ----------------------------------------------------------

    def _bind(self, target: ast.AST, atoms: FrozenSet[Atom]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = atoms
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, atoms)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, atoms)
        # Attribute/subscript targets do not bind local names.

    def _check_global_write(self, stmt: ast.stmt,
                            top_mutables: Dict[str, int]) -> None:
        """Record writes that hit module-global mutable containers."""
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            base = target
            how = "assignment"
            if isinstance(base, ast.Subscript):
                base = base.value
                how = "item assignment"
            elif isinstance(base, ast.Attribute):
                base = base.value
                how = "attribute assignment"
            if (
                isinstance(base, ast.Name)
                and base.id in top_mutables
                and base.id not in self.env  # shadowed by a local binding
                and how != "assignment"
            ):
                record = (base.id, stmt.lineno, how)
                if record not in self.summary.global_writes:
                    self.summary.global_writes.append(record)

    def _check_mutator_call(self, node: ast.Call,
                            top_mutables: Dict[str, int]) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in top_mutables
            and func.value.id not in self.env
        ):
            record = (func.value.id, node.lineno, f"{func.attr}() call")
            if record not in self.summary.global_writes:
                self.summary.global_writes.append(record)

    def _check_obs_mutation(self, stmt: ast.stmt) -> None:
        if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
            return
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in self.obs_locals
            ):
                record = (stmt.lineno, target.attr,
                          self.obs_locals[target.value.id])
                if record not in self.summary.obs_mutations:
                    self.summary.obs_mutations.append(record)

    def run(self, body: Sequence[ast.stmt],
            top_mutables: Dict[str, int]) -> None:
        """Process the function body statements in order."""
        self.top_mutables = top_mutables
        self._block(body)

    def _block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        # Track obs-singleton bindings before generic assignment handling.
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            leaf = _leaf(stmt.value.func)
            if leaf in OBS_GETTERS:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.obs_locals[target.id] = OBS_GETTERS[leaf]
        self._check_obs_mutation(stmt)
        self._check_global_write(stmt, self.top_mutables)

        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            atoms = self.atoms_of(stmt.value)
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                self._bind(target, atoms)
        elif isinstance(stmt, ast.AugAssign):
            atoms = self.atoms_of(stmt.value)
            if isinstance(stmt.target, ast.Name):
                atoms = atoms | self.env.get(stmt.target.id, frozenset())
                self.env[stmt.target.id] = atoms
        elif isinstance(stmt, ast.Return):
            for atom in sorted(self.atoms_of(stmt.value)):
                if atom not in self.summary.returns:
                    self.summary.returns.append(atom)
        elif isinstance(stmt, ast.Expr):
            self._scan_calls(stmt.value)
        elif isinstance(stmt, ast.Global):
            record = (", ".join(stmt.names), stmt.lineno)
            if record not in self.summary.global_decls:
                self.summary.global_decls.append(record)
        elif isinstance(stmt, (ast.If,)):
            self.atoms_of(stmt.test)
            before = dict(self.env)
            self._block(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self._block(stmt.orelse)
            self._merge_env(after_body)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self.atoms_of(stmt.iter))
            self._block(stmt.body)
            self._block(stmt.body)  # second pass: loop-carried atoms
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            self.atoms_of(stmt.test)
            self._block(stmt.body)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                atoms = self.atoms_of(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, atoms)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self._block(stmt.body)
            merged = self.env
            for handler in stmt.handlers:
                self.env = dict(before)
                self._block(handler.body)
                self._merge_env(merged)
                merged = self.env
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self._scan_calls(stmt.exc)
            if isinstance(stmt, ast.Assert):
                self._scan_calls(stmt.test)
        # Nested defs/classes are summarized separately; skip here.

    def _merge_env(self, other: Dict[str, FrozenSet[Atom]]) -> None:
        for name, atoms in other.items():
            self.env[name] = self.env.get(name, frozenset()) | atoms

    def _scan_calls(self, node: ast.AST) -> None:
        """Evaluate an expression purely for its call/sink side effects."""
        self.atoms_of(node)


def _uses_pools(module: Module) -> bool:
    aliases = ImportAliases.from_tree(module.tree)
    targets = list(aliases.modules.values()) + [
        v.rsplit(".", 1)[0] for v in aliases.symbols.values()
    ]
    return any(
        t == pool or t.startswith(pool + ".")
        for t in targets
        for pool in ("concurrent.futures", "multiprocessing")
    )


def summarize_module(module: Module) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` the deep engines solve over."""
    summary = ModuleSummary(name=module.name, relpath=module.relpath)
    resolver = _Resolver(module)
    root_pkg = module.name.split(".")[0]
    uses_pools = _uses_pools(module)

    # Re-export aliases: ``from X import y`` binds ``<module>.y`` -> X.y.
    for node in ast.iter_child_nodes(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                summary.export_aliases[f"{module.name}.{local}"] = (
                    f"{node.module}.{alias.name}"
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            value = node.value
            if value is not None and _is_mutable_value(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        summary.top_mutables[target.id] = node.lineno

    def walk_function(node, qualname: str, cls: Optional[str]) -> None:
        params = [a.arg for a in (
            node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        )]
        fn = FunctionSummary(qualname=qualname, line=node.lineno,
                             params=params)
        nested = {
            child.name for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not node
        }
        walker = _FunctionWalker(resolver, fn, cls, root_pkg,
                                 nested, uses_pools)
        walker.run(node.body, summary.top_mutables)
        summary.functions[qualname] = fn

    for node in ast.iter_child_nodes(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walk_function(node, f"{module.name}.{node.name}", None)
        elif isinstance(node, ast.ClassDef):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk_function(
                        child, f"{module.name}.{node.name}.{child.name}",
                        node.name,
                    )
    return summary


class FunctionTable:
    """Whole-program view over every module's summaries.

    Resolves callee names through package re-export aliases
    (``repro.closedloop.make_runner`` -> the defining module's qualname)
    and offers call-graph reachability — shared by the taint and race
    solvers.
    """

    def __init__(self, summaries: Dict[str, ModuleSummary]):
        self.summaries = summaries
        self.functions: Dict[str, FunctionSummary] = {}
        self.module_of: Dict[str, str] = {}
        self.aliases: Dict[str, str] = {}
        for relpath in sorted(summaries):
            summary = summaries[relpath]
            self.aliases.update(summary.export_aliases)
            for qualname, fn in summary.functions.items():
                self.functions[qualname] = fn
                self.module_of[qualname] = relpath

    def resolve(self, name: Optional[str]) -> Optional[str]:
        """Follow re-export aliases until a known function (or dead end)."""
        seen = set()
        while name is not None and name not in self.functions:
            if name in seen:
                return None
            seen.add(name)
            target = self.aliases.get(name)
            if target is None:
                # ``pkg.sub.f`` may re-export through ``pkg.f``.
                parts = name.rsplit(".", 1)
                if len(parts) == 2 and parts[0] in {
                    s.name for s in self.summaries.values()
                }:
                    return None
                return None
            name = target
        return name

    def reachable_from(self, entries: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
        """Functions reachable from ``entries``; value = call chain."""
        chains: Dict[str, Tuple[str, ...]] = {}
        frontier: List[Tuple[str, Tuple[str, ...]]] = []
        for entry in sorted(set(entries)):
            resolved = self.resolve(entry)
            if resolved is not None and resolved not in chains:
                chains[resolved] = (resolved,)
                frontier.append((resolved, (resolved,)))
        while frontier:
            qualname, chain = frontier.pop(0)
            fn = self.functions.get(qualname)
            if fn is None:
                continue
            callees = sorted({c.callee for c in fn.calls})
            for callee in callees:
                resolved = self.resolve(callee)
                if resolved is None or resolved in chains:
                    continue
                next_chain = chain + (resolved,) if len(chain) < 8 else chain
                chains[resolved] = next_chain
                frontier.append((resolved, next_chain))
        return chains
