"""The layer map as data, and the import-graph rule that enforces it.

This module is the single source of truth for the repo's dependency
arrows.  ``docs/architecture.md`` embeds :func:`render_rule_table`
verbatim and its mermaid diagram's arrows are asserted against
:data:`ALLOWED` in ``tests/test_lint.py`` — so the prose map, the
diagram, and the machine check can never drift apart.

The model is group-level: every ``repro.*`` module belongs to exactly
one *group* (``engine``, ``kernels``, ``data``, ...), and a group may
only import from itself plus its :data:`ALLOWED` set.  Two refinements
keep the model honest about the real code:

* **Deferred seams** (:data:`DEFERRED_ALLOWED`): ``repro.core.experiment``
  delegates ``run_sweep`` to the engine through a function-scope import.
  That upward edge is deliberate and cycle-free at import time, so it is
  legal *only* as a deferred import — hoisting it to module level is a
  finding.
* **Unmapped modules are findings**: a new top-level package that is not
  in :data:`GROUPS` fails the lint until it is added here *and* to the
  architecture doc, which is exactly the forcing function we want.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.lint.rules import (
    Finding,
    ImportGraph,
    Module,
    Rule,
    register_rule,
)

#: Kernel packages: the 31 benchmark algorithms, one package per family.
KERNEL_PACKAGES: Tuple[str, ...] = (
    "attitude", "control", "ekf", "factorgraph", "nn", "perception", "pose",
)

#: Shared data/number substrate: importable from anywhere, imports nothing
#: above numpy.
DATA_MODULES: Tuple[str, ...] = ("datasets", "fixedpoint", "scalar")

#: group name -> the top-level ``repro.*`` components it contains.
GROUPS: Dict[str, Tuple[str, ...]] = {
    "cli": ("cli", "__main__", ""),  # "" is the root repro/__init__.py
    "api": ("api",),
    "service": ("service",),
    "analysis": ("analysis",),
    "lint": ("lint",),
    "engine": ("engine",),
    "vecprice": ("vecprice",),
    "scenarios": ("scenarios",),
    "closedloop": ("closedloop",),
    "faults": ("faults",),
    "obs": ("obs",),
    "core": ("core",),
    "instrumentation": ("instrumentation",),
    "kernels": KERNEL_PACKAGES,
    "backends": ("backends",),
    "mcu": ("mcu",),
    "data": DATA_MODULES,
}

#: group -> groups it may import from (itself is always allowed).
#: This is the checked rule table; architecture.md renders it.
ALLOWED: Dict[str, FrozenSet[str]] = {
    "cli": frozenset({
        "analysis", "api", "backends", "closedloop", "core", "data",
        "engine", "faults", "lint", "mcu", "obs", "scenarios", "service",
    }),
    "api": frozenset({
        "backends", "closedloop", "core", "engine", "faults", "mcu",
        "scenarios", "service", "vecprice",
    }),
    "service": frozenset({
        "backends", "closedloop", "core", "engine", "faults", "mcu", "obs",
    }),
    "analysis": frozenset({
        "api", "core", "data", "kernels", "mcu",
    }),
    "lint": frozenset(),
    "scenarios": frozenset({
        "backends", "closedloop", "core", "data", "engine", "faults",
        "mcu", "obs",
    }),
    "faults": frozenset({
        "closedloop", "core", "data", "engine", "instrumentation",
        "mcu", "obs",
    }),
    "closedloop": frozenset({"core", "data", "kernels", "mcu", "obs"}),
    "engine": frozenset({"core", "data", "mcu", "obs", "vecprice"}),
    "vecprice": frozenset({"backends", "core", "data", "mcu"}),
    "core": frozenset({"data", "instrumentation", "mcu"}),
    "instrumentation": frozenset({"data", "mcu"}),
    "kernels": frozenset({"core", "data", "mcu"}),
    "backends": frozenset({"data", "mcu"}),
    "mcu": frozenset({"data"}),
    "obs": frozenset(),
    "data": frozenset(),
}

#: (src group, dst group) edges that are legal ONLY as deferred
#: (function-scope) imports, with the reason documented.
DEFERRED_ALLOWED: Dict[Tuple[str, str], str] = {
    ("core", "engine"): (
        "run_sweep delegation seam: core stays importable without the "
        "orchestration layer"
    ),
    ("core", "kernels"): (
        "registry population seam: kernel suites self-register on first "
        "registry use"
    ),
    ("core", "backends"): (
        "default-arch seam: sweep specs resolve the registry's "
        "characterization set at construction time"
    ),
    ("mcu", "backends"): (
        "pricing seam: backends defines cores in terms of repro.mcu spec "
        "types, so the pricing models reach the registry at call time only"
    ),
}

#: Groups that may import nothing from repro at all (stdlib-only leaves).
LEAF_GROUPS: Tuple[str, ...] = ("obs", "lint", "data")

_COMPONENT_TO_GROUP: Dict[str, str] = {
    component: group
    for group, components in GROUPS.items()
    for component in components
}


def group_of(module_name: str) -> Optional[str]:
    """The layer group of a dotted ``repro.*`` module name.

    Returns ``None`` for modules outside the repro namespace (stdlib,
    numpy, ...) — the layering rule ignores those — and for unmapped
    ``repro.*`` components, which the rule reports.
    """
    parts = module_name.split(".")
    if parts[0] != "repro":
        return None
    component = parts[1] if len(parts) > 1 else ""
    return _COMPONENT_TO_GROUP.get(component)


def allowed_edges() -> List[Tuple[str, str]]:
    """Every (src, dst) group edge the table permits, sorted."""
    return sorted(
        (src, dst) for src, dsts in ALLOWED.items() for dst in dsts
    )


def render_rule_table() -> str:
    """The markdown dependency-rule table embedded in architecture.md.

    ``tests/test_lint.py`` asserts the doc contains this text verbatim,
    which is what makes this module the doc's source of truth.
    """
    lines = [
        "| group | modules | may import |",
        "|---|---|---|",
    ]
    for group in sorted(GROUPS):
        members = ", ".join(
            f"`repro.{c}`" if c else "`repro`" for c in GROUPS[group]
        )
        targets = ", ".join(f"`{t}`" for t in sorted(ALLOWED[group]))
        if not targets:
            targets = "*(imports nothing from repro)*"
        lines.append(f"| `{group}` | {members} | {targets} |")
    for (src, dst), reason in sorted(DEFERRED_ALLOWED.items()):
        lines.append(
            f"| `{src}` → `{dst}` | *deferred-only seam* | "
            f"function-scope import only: {reason} |"
        )
    return "\n".join(lines)


class LayeringRule(Rule):
    """Enforce the dependency arrows of ``docs/architecture.md``.

    Whole-program: builds on the import graph the engine collected and
    checks every intra-repo edge against :data:`ALLOWED`, including the
    deferred-only seams and unmapped-module detection.
    """

    id = "layering"
    summary = "imports must follow the architecture layer map"
    rationale = (
        "lower layers must never depend on orchestration or surface "
        "code; observing never changes what is observed"
    )

    def check_program(
        self, modules: Sequence[Module], graph: ImportGraph
    ) -> Iterable[Finding]:
        """Yield one finding per illegal edge or unmapped module."""
        for module in modules:
            if group_of(module.name) is None:
                yield Finding(
                    rule=self.id, path=module.relpath, line=1,
                    message=(
                        f"module {module.name} is not in the layer map; "
                        "add its package to repro.lint.layering.GROUPS "
                        "and docs/architecture.md"
                    ),
                )
        for edge in graph.edges:
            dst_group = group_of(edge.target)
            if dst_group is None:
                if edge.target.split(".")[0] == "repro":
                    yield Finding(
                        rule=self.id, path=edge.path, line=edge.line,
                        message=(
                            f"{edge.src_module} imports unmapped repro "
                            f"module {edge.target}"
                        ),
                    )
                continue
            src_group = group_of(edge.src_module)
            if src_group is None or src_group == dst_group:
                continue
            if dst_group in ALLOWED.get(src_group, frozenset()):
                continue
            if (src_group, dst_group) in DEFERRED_ALLOWED:
                if edge.deferred:
                    continue
                yield Finding(
                    rule=self.id, path=edge.path, line=edge.line,
                    message=(
                        f"{edge.src_module} imports {edge.target} at module "
                        f"level; the {src_group} -> {dst_group} seam is "
                        "deferred-only (import inside the function that "
                        "needs it)"
                    ),
                )
                continue
            yield Finding(
                rule=self.id, path=edge.path, line=edge.line,
                message=(
                    f"{edge.src_module} imports {edge.target}: layer "
                    f"'{src_group}' may not depend on '{dst_group}'"
                ),
            )


register_rule(LayeringRule())
