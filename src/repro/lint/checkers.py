"""Per-file AST checkers for the determinism and hygiene rules.

Each rule here protects one of the repo's headline guarantees — sweeps
and campaigns are byte-identical across runs and ``--jobs`` counts — or
a hygiene invariant the suite already enforced piecemeal.  All pattern
matching goes through :class:`repro.lint.rules.ImportAliases`, so
``time.perf_counter`` is caught however it was imported.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.lint.rules import (
    Finding,
    ImportAliases,
    Module,
    Rule,
    register_rule,
    walk_with_parents,
)


def _call_name(node: ast.AST, aliases: ImportAliases) -> Optional[str]:
    """Canonical dotted name of a call's callee, when resolvable."""
    if isinstance(node, ast.Call):
        return aliases.resolve(node.func)
    return None


class WallClockRule(Rule):
    """Ban wall-clock reads outside the sanctioned timing seams.

    Sim-time determinism means results never depend on host time; only
    the tracer, the telemetry clock, and the executor's wall-time
    profiling are allowed to look at a real clock.
    """

    id = "no-wall-clock"
    summary = "wall-clock reads only inside the allowlisted timing seams"
    rationale = (
        "results must be a function of the spec and the seed, never of "
        "host time; timing belongs to obs/telemetry"
    )

    #: Attribute paths whose *use* (call or reference) is banned.
    BANNED = frozenset({
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns", "time.clock_gettime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    #: Modules that own a real clock on purpose.
    ALLOWED_MODULES = frozenset({
        "repro/obs/tracer.py",
        "repro/engine/telemetry.py",
        "repro/engine/executor.py",
        "repro/service/broker.py",
    })

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Flag imports and uses of banned clock functions."""
        if module.relpath in self.ALLOWED_MODULES:
            return
        aliases = ImportAliases.from_tree(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and not node.level:
                for alias in node.names:
                    full = f"{node.module}.{alias.name}"
                    if full in self.BANNED:
                        yield Finding(
                            rule=self.id, path=module.relpath,
                            line=node.lineno,
                            message=f"imports wall-clock symbol {full}",
                        )
            elif isinstance(node, ast.Attribute) or (
                isinstance(node, ast.Name) and node.id in aliases.symbols
            ):
                resolved = aliases.resolve(node)
                if resolved in self.BANNED:
                    yield Finding(
                        rule=self.id, path=module.relpath, line=node.lineno,
                        message=f"wall-clock use of {resolved}",
                    )


class UnseededRngRule(Rule):
    """Ban global-state RNG calls in favor of injected generators.

    ``np.random.default_rng(seed)`` / ``SeedSequence`` give every solve
    and campaign cell its own stream; module-level ``random.*`` and
    legacy ``np.random.*`` calls share hidden global state that worker
    scheduling can interleave differently run to run.
    """

    id = "no-unseeded-rng"
    summary = "no global-state random calls; inject seeded Generators"
    rationale = (
        "hidden RNG state is shared across call sites and processes; "
        "only explicit Generator/SeedSequence objects keep --jobs 1 and "
        "--jobs N byte-identical"
    )

    #: Seeded constructors on numpy.random that are fine to call.
    NP_ALLOWED = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    })

    #: Stdlib random attributes that are fine (seeded instances).
    STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Flag global-state RNG calls and from-imports of them."""
        aliases = ImportAliases.from_tree(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and not node.level:
                if node.module == "numpy.random":
                    banned = [a.name for a in node.names
                              if a.name not in self.NP_ALLOWED]
                elif node.module == "random":
                    banned = [a.name for a in node.names
                              if a.name not in self.STDLIB_ALLOWED]
                else:
                    banned = []
                for name in banned:
                    yield Finding(
                        rule=self.id, path=module.relpath, line=node.lineno,
                        message=(
                            f"imports global-state rng {node.module}.{name}"
                        ),
                    )
            resolved = _call_name(node, aliases)
            if resolved is None:
                continue
            parts = resolved.split(".")
            if (
                len(parts) == 3
                and parts[:2] == ["numpy", "random"]
                and parts[2] not in self.NP_ALLOWED
            ):
                yield Finding(
                    rule=self.id, path=module.relpath, line=node.lineno,
                    message=f"global-state rng call {resolved}",
                )
            elif (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] not in self.STDLIB_ALLOWED
            ):
                yield Finding(
                    rule=self.id, path=module.relpath, line=node.lineno,
                    message=f"global-state rng call {resolved}",
                )


class IterationOrderRule(Rule):
    """Flag unordered iteration feeding downstream work.

    Filesystem listings come back in inode order and sets iterate in
    hash order — both can differ between machines, runs, and ``--jobs``
    counts.  Anything iterated must go through ``sorted()`` first unless
    the consumer is order-insensitive (``len``, ``set``, ``sum``, ...).
    """

    id = "iteration-order"
    summary = "sort filesystem listings and never iterate raw sets"
    rationale = (
        "os.listdir/glob order and set order are platform/hash dependent "
        "— the classic jobs-1-vs-N nondeterminism source"
    )

    #: Call targets that return unordered filesystem listings.
    FS_CALLS = frozenset({
        "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
    })

    #: Attribute method names treated as pathlib listing calls.
    FS_METHODS = frozenset({"glob", "rglob", "iterdir"})

    #: Enclosing calls that consume in an order-insensitive way.
    ORDER_FREE = frozenset({
        "sorted", "len", "set", "frozenset", "sum", "any", "all",
        "max", "min",
    })

    #: Transparent wrappers to look through when climbing ancestors.
    WRAPPERS = frozenset({"list", "tuple"})

    def _consumed_unordered(
        self, ancestors: List[ast.AST], aliases: ImportAliases
    ) -> bool:
        """True when no enclosing call neutralizes the ordering."""
        for ancestor in reversed(ancestors):
            name = _call_name(ancestor, aliases)
            if name is None:
                continue
            leaf = name.split(".")[-1]
            if name in self.WRAPPERS:
                continue
            return name not in self.ORDER_FREE and leaf not in self.ORDER_FREE
        return True

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Flag unsorted fs listings and for-loops over set expressions."""
        aliases = ImportAliases.from_tree(module.tree)
        for node, ancestors in walk_with_parents(module.tree):
            if isinstance(node, ast.Call):
                resolved = aliases.resolve(node.func)
                is_fs = resolved in self.FS_CALLS or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.FS_METHODS
                    and resolved not in aliases.symbols.values()
                )
                if is_fs and self._consumed_unordered(ancestors, aliases):
                    label = resolved or node.func.attr
                    yield Finding(
                        rule=self.id, path=module.relpath, line=node.lineno,
                        message=(
                            f"unsorted filesystem listing {label}(...); "
                            "wrap in sorted()"
                        ),
                    )
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if isinstance(it, (ast.Set, ast.SetComp)) or _call_name(
                    it, aliases
                ) in ("set", "frozenset"):
                    yield Finding(
                        rule=self.id, path=module.relpath, line=it.lineno,
                        message=(
                            "iterating a set expression; iterate "
                            "sorted(...) instead"
                        ),
                    )


class PoolSafetyRule(Rule):
    """Guard the process-pool dispatch paths against shared-state bugs.

    In modules that fan work out to worker processes, ``global``
    statements signal parent-side state that workers will *not* see (or
    vice versa), and lambdas / nested functions handed to ``submit`` do
    not pickle.
    """

    id = "pool-safety"
    summary = "no global mutation or unpicklable callables near pools"
    rationale = (
        "worker processes get a copy of the module, not the parent's "
        "globals; mutated globals silently diverge between --jobs 1 "
        "and --jobs N"
    )

    #: Imports that mark a module as pool-dispatching.
    POOL_MODULES = ("concurrent.futures", "multiprocessing")

    def _uses_pools(self, aliases: ImportAliases) -> bool:
        targets = list(aliases.modules.values()) + [
            v.rsplit(".", 1)[0] for v in aliases.symbols.values()
        ]
        return any(
            t == pool or t.startswith(pool + ".")
            for t in targets for pool in self.POOL_MODULES
        )

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Flag globals and unpicklable submissions in pool modules."""
        aliases = ImportAliases.from_tree(module.tree)
        if not self._uses_pools(aliases):
            return
        nested: set = set()
        for node, ancestors in walk_with_parents(module.tree):
            in_function = any(
                isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                for a in ancestors
            )
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if in_function:
                    nested.add(node.name)
            if isinstance(node, ast.Global) and in_function:
                yield Finding(
                    rule=self.id, path=module.relpath, line=node.lineno,
                    message=(
                        f"global statement ({', '.join(node.names)}) in a "
                        "process-pool module; pass state explicitly"
                    ),
                )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                first = node.args[0]
                if isinstance(first, ast.Lambda) or (
                    isinstance(first, ast.Name) and first.id in nested
                ):
                    yield Finding(
                        rule=self.id, path=module.relpath, line=node.lineno,
                        message=(
                            "unpicklable callable submitted to a pool; "
                            "use a module-level function"
                        ),
                    )


class MutableDefaultRule(Rule):
    """Flag mutable default argument values."""

    id = "mutable-default-args"
    summary = "no list/dict/set literals or constructors as defaults"
    rationale = (
        "defaults evaluate once at def time; mutation aliases across "
        "every call and every sweep cell"
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set"})

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Flag mutable defaults on any function or lambda."""
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(default, (
                    ast.List, ast.Dict, ast.Set,
                    ast.ListComp, ast.DictComp, ast.SetComp,
                )) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self._MUTABLE_CALLS
                )
                if mutable:
                    yield Finding(
                        rule=self.id, path=module.relpath,
                        line=default.lineno,
                        message=f"mutable default argument on {name}()",
                    )


#: Packages whose public API must be fully documented (was the scope of
#: the old standalone ``tests/test_docstrings.py``; lint now dogfoods).
DOC_PACKAGES: Tuple[str, ...] = ("engine", "faults", "lint", "obs", "vecprice",
                                 "scenarios", "service")


class DocstringRule(Rule):
    """Docstring coverage for the observability-adjacent packages.

    The migrated ``tests/test_docstrings.py`` lint: every module, public
    class, and public function/method in :data:`DOC_PACKAGES` carries a
    docstring.  Dunders document themselves by convention; private names
    and nested closures are exempt.
    """

    id = "docstring-coverage"
    summary = ("public API of engine/faults/lint/obs/scenarios/service "
               "must be documented")
    rationale = (
        "the orchestration and tooling layers are the repo's public "
        "surface; undocumented API regresses silently without a gate"
    )

    def _in_scope(self, module: Module) -> bool:
        return any(
            module.relpath.startswith(f"repro/{pkg}/")
            for pkg in DOC_PACKAGES
        )

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Yield one finding per undocumented public definition."""
        if not self._in_scope(module):
            return
        if ast.get_docstring(module.tree) is None:
            yield Finding(
                rule=self.id, path=module.relpath, line=1,
                message="module docstring missing",
            )
        yield from self._walk(module, module.tree, prefix="")

    def _walk(
        self, module: Module, node: ast.AST, prefix: str
    ) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if child.name.startswith("_"):
                    continue
                if ast.get_docstring(child) is None:
                    yield Finding(
                        rule=self.id, path=module.relpath, line=child.lineno,
                        message=(
                            f"class {prefix}{child.name} missing docstring"
                        ),
                    )
                yield from self._walk(
                    module, child, prefix=f"{child.name}."
                )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child.name.startswith("_"):
                    continue
                if ast.get_docstring(child) is None:
                    yield Finding(
                        rule=self.id, path=module.relpath, line=child.lineno,
                        message=f"def {prefix}{child.name} missing docstring",
                    )


register_rule(WallClockRule())
register_rule(UnseededRngRule())
register_rule(IterationOrderRule())
register_rule(PoolSafetyRule())
register_rule(MutableDefaultRule())
register_rule(DocstringRule())
