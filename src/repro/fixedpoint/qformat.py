"""Q-format fixed-point arithmetic with failure tracking.

Implements signed 32-bit Q(m, n) arithmetic the way a Cortex-M kernel
without an FPU would: values are stored as raw integer words, multiplies go
through a 64-bit intermediate and shift back, divides pre-shift the
numerator.  Saturation is *not* silent — every overflow, every near-zero
divisor, and every square root of a negative value is recorded on the
enclosing :class:`FixedPointContext`, because the paper's Case Study 2 is
precisely about counting these failure events across Q formats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List


@dataclass
class FixedPointContext:
    """Failure-event accumulator shared by all values of one kernel run."""

    overflow_events: int = 0
    div_by_near_zero_events: int = 0
    sqrt_negative_events: int = 0
    messages: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return (
            self.overflow_events > 0
            or self.div_by_near_zero_events > 0
            or self.sqrt_negative_events > 0
        )

    def note(self, message: str) -> None:
        if len(self.messages) < 16:  # keep the first few for diagnostics
            self.messages.append(message)


class QFormat:
    """A Q(m, n) fixed-point format over a signed 32-bit container."""

    __slots__ = ("int_bits", "frac_bits", "scale", "max_raw", "min_raw")

    def __init__(self, int_bits: int, frac_bits: int):
        if int_bits + frac_bits != 31:
            raise ValueError("int_bits + frac_bits must equal 31 (32-bit signed)")
        if frac_bits < 1:
            raise ValueError("need at least one fractional bit")
        self.int_bits = int_bits
        self.frac_bits = frac_bits
        self.scale = 1 << frac_bits
        self.max_raw = (1 << 31) - 1
        self.min_raw = -(1 << 31)

    @property
    def name(self) -> str:
        return f"q{self.int_bits}.{self.frac_bits}"

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale

    @property
    def max_value(self) -> float:
        return self.max_raw / self.scale

    def __repr__(self) -> str:
        return f"QFormat({self.int_bits}, {self.frac_bits})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, QFormat)
            and other.int_bits == self.int_bits
            and other.frac_bits == self.frac_bits
        )

    def __hash__(self) -> int:
        return hash((self.int_bits, self.frac_bits))


class Fixed:
    """One fixed-point value bound to a format and a failure context.

    Arithmetic mirrors bare-metal integer code: multiply widens to 64 bits
    then shifts back (losing low bits), divide pre-shifts the numerator.
    Saturating on overflow keeps the computation going, as an embedded
    implementation with saturating intrinsics would, while the event is
    tallied on the context.
    """

    __slots__ = ("raw", "fmt", "ctx")

    def __init__(self, raw: int, fmt: QFormat, ctx: FixedPointContext):
        self.raw = raw
        self.fmt = fmt
        self.ctx = ctx

    # -- construction -----------------------------------------------------

    @classmethod
    def from_float(cls, value: float, fmt: QFormat, ctx: FixedPointContext) -> "Fixed":
        raw = int(round(value * fmt.scale))
        return cls(cls._saturate(raw, fmt, ctx, f"from_float({value})"), fmt, ctx)

    def to_float(self) -> float:
        return self.raw / self.fmt.scale

    @staticmethod
    def _saturate(raw: int, fmt: QFormat, ctx: FixedPointContext, what: str) -> int:
        if raw > fmt.max_raw:
            ctx.overflow_events += 1
            ctx.note(f"overflow(+) in {what}")
            return fmt.max_raw
        if raw < fmt.min_raw:
            ctx.overflow_events += 1
            ctx.note(f"overflow(-) in {what}")
            return fmt.min_raw
        return raw

    def _wrap(self, raw: int, what: str) -> "Fixed":
        return Fixed(self._saturate(raw, self.fmt, self.ctx, what), self.fmt, self.ctx)

    def _coerce(self, other) -> "Fixed":
        if isinstance(other, Fixed):
            if other.fmt != self.fmt:
                raise ValueError("mixed Q formats in one expression")
            return other
        return Fixed.from_float(float(other), self.fmt, self.ctx)

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other) -> "Fixed":
        o = self._coerce(other)
        return self._wrap(self.raw + o.raw, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Fixed":
        o = self._coerce(other)
        return self._wrap(self.raw - o.raw, "sub")

    def __rsub__(self, other) -> "Fixed":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Fixed":
        o = self._coerce(other)
        wide = self.raw * o.raw  # 64-bit intermediate on hardware
        return self._wrap(wide >> self.fmt.frac_bits, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Fixed":
        o = self._coerce(other)
        if o.raw == 0 or abs(o.raw) < 2:
            # Near-zero divisor: embedded kernels early-exit here.
            self.ctx.div_by_near_zero_events += 1
            self.ctx.note("division by near-zero")
            return self._wrap(self.fmt.max_raw if self.raw >= 0 else self.fmt.min_raw, "div")
        wide = (self.raw << self.fmt.frac_bits)
        # Round-to-nearest division preserving sign semantics of C.
        quot = int(wide / o.raw)
        return self._wrap(quot, "div")

    def __rtruediv__(self, other) -> "Fixed":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Fixed":
        return self._wrap(-self.raw, "neg")

    def __abs__(self) -> "Fixed":
        return self._wrap(abs(self.raw), "abs")

    def sqrt(self) -> "Fixed":
        if self.raw < 0:
            self.ctx.sqrt_negative_events += 1
            self.ctx.note("sqrt of negative")
            return Fixed(0, self.fmt, self.ctx)
        # Integer Newton iteration on the raw value, as embedded isqrt does.
        value = self.raw << self.fmt.frac_bits
        if value == 0:
            return Fixed(0, self.fmt, self.ctx)
        x = 1 << ((value.bit_length() + 1) // 2)
        for _ in range(32):
            nx = (x + value // x) >> 1
            if nx >= x:
                break
            x = nx
        return self._wrap(x, "sqrt")

    def recip_sqrt(self) -> "Fixed":
        """1/sqrt(x), via sqrt then divide (no fast-inverse trick)."""
        s = self.sqrt()
        return Fixed.from_float(1.0, self.fmt, self.ctx) / s

    # -- comparisons --------------------------------------------------------

    def __lt__(self, other) -> bool:
        return self.raw < self._coerce(other).raw

    def __le__(self, other) -> bool:
        return self.raw <= self._coerce(other).raw

    def __gt__(self, other) -> bool:
        return self.raw > self._coerce(other).raw

    def __ge__(self, other) -> bool:
        return self.raw >= self._coerce(other).raw

    def __eq__(self, other) -> bool:
        try:
            return self.raw == self._coerce(other).raw
        except (TypeError, ValueError):
            return NotImplemented

    def __hash__(self) -> int:
        return hash((self.raw, self.fmt))

    def __float__(self) -> float:
        return self.to_float()

    def __repr__(self) -> str:
        return f"Fixed({self.to_float():.6g}, {self.fmt.name})"


class FixedVector:
    """A small fixed-point vector (list-backed; these kernels are tiny)."""

    __slots__ = ("values",)

    def __init__(self, values: Iterable[Fixed]):
        self.values = list(values)

    @classmethod
    def from_floats(cls, xs, fmt: QFormat, ctx: FixedPointContext) -> "FixedVector":
        return cls(Fixed.from_float(float(x), fmt, ctx) for x in xs)

    def to_floats(self) -> List[float]:
        return [v.to_float() for v in self.values]

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, i: int) -> Fixed:
        return self.values[i]

    def __setitem__(self, i: int, v: Fixed) -> None:
        self.values[i] = v

    def __iter__(self):
        return iter(self.values)

    def __add__(self, other: "FixedVector") -> "FixedVector":
        return FixedVector(a + b for a, b in zip(self.values, other.values))

    def __sub__(self, other: "FixedVector") -> "FixedVector":
        return FixedVector(a - b for a, b in zip(self.values, other.values))

    def scale(self, s: Fixed) -> "FixedVector":
        return FixedVector(v * s for v in self.values)

    def dot(self, other: "FixedVector") -> Fixed:
        acc = self.values[0] * other.values[0]
        for a, b in zip(self.values[1:], other.values[1:]):
            acc = acc + a * b
        return acc

    def norm(self) -> Fixed:
        return self.dot(self).sqrt()

    def cross(self, other: "FixedVector") -> "FixedVector":
        a, b = self.values, other.values
        return FixedVector(
            [
                a[1] * b[2] - a[2] * b[1],
                a[2] * b[0] - a[0] * b[2],
                a[0] * b[1] - a[1] * b[0],
            ]
        )


def all_q_formats(min_int: int = 0, max_int: int = 30) -> List[QFormat]:
    """Every Q(m, 31-m) format in the given integer-bit range.

    Case Study 2 sweeps "the full range of possible values" of the fixed
    point format; this enumerates that sweep.
    """
    return [QFormat(m, 31 - m) for m in range(min_int, max_int + 1)]


def required_int_bits(max_abs_value: float) -> int:
    """Minimum integer bits needed to represent ``max_abs_value``."""
    if max_abs_value <= 0:
        return 0
    return max(0, int(math.floor(math.log2(max_abs_value))) + 1)
