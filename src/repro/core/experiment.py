"""Experiment orchestration: kernel x core x cache x scalar sweeps.

This is the driver behind the paper's 400+ measured datapoints: it walks
the registry, runs each kernel on each requested core with caches on and
off, and collects the aggregate results that the analysis layer formats
into the paper's tables.

Since the engine landed, :func:`run_sweep` is a thin compatibility wrapper
over :mod:`repro.engine`, which solves each kernel configuration once and
re-prices its op-traces across every (core, cache) cell — optionally in
parallel, against a persistent trace cache, and resumable from a
checkpoint.  :func:`run_sweep_serial` keeps the original quadruple loop as
the reference implementation; the engine's results are asserted
bit-identical to it in ``tests/test_engine.py``.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core import registry
from repro.core.config import HarnessConfig
from repro.core.harness import Harness
from repro.core.results import BenchmarkResult
from repro.mcu.arch import ArchSpec
from repro.mcu.cache import CACHE_OFF, CACHE_ON, CacheConfig


def _default_archs() -> List[ArchSpec]:
    """Registry-derived default core set for sweeps and characterization.

    Every backend's characterization cores, so a newly registered ISA
    appears in ``characterize`` without edits here (the paper tables pin
    themselves to ``characterization_archs(isa="cortex-m")`` instead).
    """
    # Deferred: repro.backends sits above the measurement layer's types.
    from repro.backends import characterization_archs

    return list(characterization_archs())


class ResultKeyError(KeyError):
    """A ``(kernel, arch, cache[, scalar])`` cell missing from the results.

    Raised by :meth:`SweepResults.lookup` instead of a bare dict miss so
    callers (the fault campaign's grid join, the query service) can catch
    the lookup failure specifically, and so the message names the nearest
    indexed cell rather than echoing an opaque tuple.
    """

    def __init__(self, requested: tuple, suggestion: Optional[tuple] = None):
        self.requested = requested
        self.suggestion = suggestion
        message = f"no result for cell {requested!r}"
        if suggestion is not None:
            message += f"; nearest indexed cell is {suggestion!r}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its arg; keep the prose.
        return self.args[0]


@dataclass
class SweepSpec:
    """What to sweep: kernels, cores, cache states, and factory overrides."""

    kernels: List[str]
    archs: List[ArchSpec] = field(default_factory=_default_archs)
    caches: Tuple[CacheConfig, ...] = (CACHE_ON, CACHE_OFF)
    #: Each spec owns its config (default_factory, not a shared module
    #: instance) so per-spec adjustments can never alias across sweeps.
    config: HarnessConfig = field(default_factory=HarnessConfig)
    #: Extra kwargs passed to each kernel factory, keyed by kernel name
    #: ("*" applies to all).
    overrides: Dict[str, dict] = field(default_factory=dict)

    def factory_kwargs(self, kernel: str) -> dict:
        kwargs = dict(self.overrides.get("*", {}))
        kwargs.update(self.overrides.get(kernel, {}))
        return kwargs


@dataclass
class SweepResults:
    """All results of one sweep, with O(1) lookup helpers.

    ``add()`` maintains a ``(kernel, arch, cache[, scalar])`` index;
    analysis/table code performs thousands of :meth:`get` calls per table,
    which used to linear-scan the whole result list each time.  The index
    rebuilds itself transparently if ``results`` was mutated directly.
    """

    results: List[BenchmarkResult] = field(default_factory=list)
    _index: Dict[tuple, BenchmarkResult] = field(
        default_factory=dict, repr=False, compare=False
    )
    _indexed_count: int = field(default=0, repr=False, compare=False)

    def _index_one(self, result: BenchmarkResult) -> None:
        # First-added wins both keys, preserving the original scan's
        # first-match semantics.
        full = (result.kernel, result.arch, result.cache, result.scalar)
        self._index.setdefault(full, result)
        any_scalar = (result.kernel, result.arch, result.cache)
        self._index.setdefault(any_scalar, result)

    def _refresh_index(self) -> None:
        if self._indexed_count == len(self.results):
            return
        self._index.clear()
        for result in self.results:
            self._index_one(result)
        self._indexed_count = len(self.results)

    def add(self, result: BenchmarkResult) -> None:
        self._refresh_index()
        self.results.append(result)
        self._index_one(result)
        self._indexed_count = len(self.results)

    def get(
        self,
        kernel: str,
        arch: str,
        cache: str = "C",
        scalar: Optional[str] = None,
    ) -> Optional[BenchmarkResult]:
        self._refresh_index()
        if scalar is None:
            return self._index.get((kernel, arch, cache))
        return self._index.get((kernel, arch, cache, scalar))

    def lookup(
        self,
        kernel: str,
        arch: str,
        cache: str = "C",
        scalar: Optional[str] = None,
    ) -> BenchmarkResult:
        """Like :meth:`get`, but a miss raises :class:`ResultKeyError`.

        The error carries the nearest indexed cell (by key similarity), so
        a typo'd arch name or a stale cache label fails with an actionable
        message instead of ``None`` propagating into downstream math.
        """
        found = self.get(kernel, arch, cache, scalar)
        if found is not None:
            return found
        requested = (kernel, arch, cache) if scalar is None else (
            kernel, arch, cache, scalar
        )
        candidates = [k for k in self._index if len(k) == len(requested)]
        rendered = {"|".join(k): k for k in candidates}
        near = difflib.get_close_matches(
            "|".join(requested), sorted(rendered), n=1, cutoff=0.0
        )
        raise ResultKeyError(
            requested, rendered[near[0]] if near else None
        )

    def kernels(self) -> List[str]:
        seen: List[str] = []
        for r in self.results:
            if r.kernel not in seen:
                seen.append(r.kernel)
        return seen

    def __len__(self) -> int:
        return len(self.results)

    def datapoints(self) -> int:
        """Number of measured datapoints (runs across all configurations)."""
        return sum(len(r.runs) for r in self.results)


def run_sweep_serial(
    spec: SweepSpec,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResults:
    """The original serial driver: one full harness run per cell.

    Re-executes each kernel's real compute for every (arch, cache) cell.
    Kept as the engine's reference implementation — the equivalence tests
    assert the engine reproduces this bit for bit — and for harness-level
    instrumentation studies that want the plain loop.
    """
    out = SweepResults()
    for arch in spec.archs:
        for cache in spec.caches:
            config = spec.config.with_cache(cache.enabled)
            harness = Harness(arch, config)
            for kernel in spec.kernels:
                problem = registry.create(kernel, **spec.factory_kwargs(kernel))
                result = harness.run(problem, cache)
                out.add(result)
                if progress is not None:
                    status = "ok" if result.fits else "skip"
                    progress(f"{kernel} on {arch.name}/{cache.label}: {status}")
    return out


def run_sweep(
    spec: SweepSpec,
    progress: Optional[Callable[[str], None]] = None,
    *,
    options=None,
    telemetry=None,
) -> SweepResults:
    """Execute a sweep and return the collected results.

    Compatibility wrapper over :func:`repro.engine.run_sweep_engine`:
    same signature and bit-identical results as the historical serial
    driver, but each kernel configuration is solved only once and
    re-priced across cells.  Pass ``options``
    (:class:`repro.engine.EngineOptions`) for parallel workers, a
    persistent trace cache, or checkpoint/resume, and ``telemetry``
    (:class:`repro.engine.Telemetry`) to capture structured events.
    """
    from repro.engine import run_sweep_engine

    return run_sweep_engine(
        spec, options=options, telemetry=telemetry, progress=progress
    )


def characterize_suite(
    kernels: Optional[Iterable[str]] = None,
    config: Optional[HarnessConfig] = None,
    archs: Optional[List[ArchSpec]] = None,
    *,
    jobs: int = 1,
    cache_dir=None,
    telemetry=None,
) -> SweepResults:
    """Run the paper's full workload characterization (Table IV).

    ``jobs`` and ``cache_dir`` thread through to the execution engine:
    with a warm cache the whole characterization re-prices persisted
    traces without a single kernel ``solve()``.
    """
    from repro.engine import EngineOptions

    spec = SweepSpec(
        kernels=list(kernels) if kernels is not None else registry.suite(),
        archs=archs if archs is not None else _default_archs(),
        config=config if config is not None else HarnessConfig(),
    )
    return run_sweep(
        spec,
        options=EngineOptions(jobs=jobs, cache_dir=cache_dir),
        telemetry=telemetry,
    )
