"""Experiment orchestration: kernel x core x cache x scalar sweeps.

This is the driver behind the paper's 400+ measured datapoints: it walks
the registry, runs each kernel on each requested core with caches on and
off, and collects the aggregate results that the analysis layer formats
into the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core import registry
from repro.core.config import DEFAULT_CONFIG, HarnessConfig
from repro.core.harness import Harness
from repro.core.results import BenchmarkResult
from repro.mcu.arch import CHARACTERIZATION_ARCHS, ArchSpec
from repro.mcu.cache import CACHE_OFF, CACHE_ON, CacheConfig


@dataclass
class SweepSpec:
    """What to sweep: kernels, cores, cache states, and factory overrides."""

    kernels: List[str]
    archs: List[ArchSpec] = field(default_factory=lambda: list(CHARACTERIZATION_ARCHS))
    caches: Tuple[CacheConfig, ...] = (CACHE_ON, CACHE_OFF)
    config: HarnessConfig = DEFAULT_CONFIG
    #: Extra kwargs passed to each kernel factory, keyed by kernel name
    #: ("*" applies to all).
    overrides: Dict[str, dict] = field(default_factory=dict)

    def factory_kwargs(self, kernel: str) -> dict:
        kwargs = dict(self.overrides.get("*", {}))
        kwargs.update(self.overrides.get(kernel, {}))
        return kwargs


@dataclass
class SweepResults:
    """All results of one sweep, with lookup helpers."""

    results: List[BenchmarkResult] = field(default_factory=list)

    def add(self, result: BenchmarkResult) -> None:
        self.results.append(result)

    def get(
        self,
        kernel: str,
        arch: str,
        cache: str = "C",
        scalar: Optional[str] = None,
    ) -> Optional[BenchmarkResult]:
        for r in self.results:
            if r.kernel == kernel and r.arch == arch and r.cache == cache:
                if scalar is None or r.scalar == scalar:
                    return r
        return None

    def kernels(self) -> List[str]:
        seen: List[str] = []
        for r in self.results:
            if r.kernel not in seen:
                seen.append(r.kernel)
        return seen

    def __len__(self) -> int:
        return len(self.results)

    def datapoints(self) -> int:
        """Number of measured datapoints (runs across all configurations)."""
        return sum(len(r.runs) for r in self.results)


def run_sweep(
    spec: SweepSpec,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResults:
    """Execute a sweep and return the collected results."""
    out = SweepResults()
    for arch in spec.archs:
        for cache in spec.caches:
            config = spec.config.with_cache(cache.enabled)
            harness = Harness(arch, config)
            for kernel in spec.kernels:
                problem = registry.create(kernel, **spec.factory_kwargs(kernel))
                result = harness.run(problem, cache)
                out.add(result)
                if progress is not None:
                    status = "ok" if result.fits else "skip"
                    progress(f"{kernel} on {arch.name}/{cache.label}: {status}")
    return out


def characterize_suite(
    kernels: Optional[Iterable[str]] = None,
    config: HarnessConfig = DEFAULT_CONFIG,
    archs: Optional[List[ArchSpec]] = None,
) -> SweepResults:
    """Run the paper's full workload characterization (Table IV)."""
    spec = SweepSpec(
        kernels=list(kernels) if kernels is not None else registry.suite(),
        archs=archs if archs is not None else list(CHARACTERIZATION_ARCHS),
        config=config,
    )
    return run_sweep(spec)
