"""ExperimentIO: persistence for benchmark results and experiment logs.

The C++ framework's ``ExperimentIO`` moves data between host and MCU over
semihosting and lets problems buffer results on-device (``SavesResults``).
Here it persists sweeps: results serialize to JSON (full fidelity,
including operation traces) and CSV (one summary row per configuration,
convenient for plotting), and reload into the same dataclasses.  The
execution engine additionally persists through this module: sweep
checkpoints (JSONL of completed cells, for kill-resume) and per-sweep
telemetry summaries (cache hit rate, cells run/skipped, wall time) written
next to the experiment output.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, TextIO, Tuple, Union

from repro.core.experiment import SweepResults
from repro.core.results import BenchmarkResult, RunRecord
from repro.mcu.ops import OpTrace

PathLike = Union[str, Path]

_FORMAT_VERSION = 1
_CHECKPOINT_VERSION = 1


def _run_to_dict(run: RunRecord) -> dict:
    return {
        "rep": run.rep,
        "cycles": run.cycles,
        "latency_s": run.latency_s,
        "energy_j": run.energy_j,
        "avg_power_w": run.avg_power_w,
        "peak_power_w": run.peak_power_w,
        "trace": run.trace.as_dict(),
        "valid": run.valid,
    }


def _run_from_dict(data: dict) -> RunRecord:
    return RunRecord(
        rep=data["rep"],
        cycles=data["cycles"],
        latency_s=data["latency_s"],
        energy_j=data["energy_j"],
        avg_power_w=data["avg_power_w"],
        peak_power_w=data["peak_power_w"],
        trace=OpTrace(**data["trace"]),
        valid=data["valid"],
    )


def _result_to_dict(result: BenchmarkResult) -> dict:
    return {
        "kernel": result.kernel,
        "arch": result.arch,
        "cache": result.cache,
        "scalar": result.scalar,
        "dataset": result.dataset,
        "stage": result.stage,
        "fits": result.fits,
        "skip_reason": result.skip_reason,
        "work_units": result.work_units,
        "runs": [_run_to_dict(r) for r in result.runs],
    }


def _result_from_dict(data: dict) -> BenchmarkResult:
    result = BenchmarkResult(
        kernel=data["kernel"],
        arch=data["arch"],
        cache=data["cache"],
        scalar=data["scalar"],
        dataset=data["dataset"],
        stage=data["stage"],
        fits=data["fits"],
        skip_reason=data.get("skip_reason"),
        work_units=data.get("work_units", 1),
    )
    result.runs = [_run_from_dict(r) for r in data["runs"]]
    return result


def result_to_dict(result: BenchmarkResult) -> dict:
    """Serialize one result with full per-run fidelity (public API)."""
    return _result_to_dict(result)


def result_from_dict(data: dict) -> BenchmarkResult:
    """Rebuild a result serialized by :func:`result_to_dict`."""
    return _result_from_dict(data)


def save_results_json(results: SweepResults, path: PathLike) -> Path:
    """Persist a sweep with full per-run fidelity."""
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "results": [_result_to_dict(r) for r in results.results],
    }
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_results_json(path: PathLike) -> SweepResults:
    """Reload a sweep saved by :func:`save_results_json`."""
    data = json.loads(Path(path).read_text())
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    out = SweepResults()
    for entry in data["results"]:
        out.add(_result_from_dict(entry))
    return out


CSV_COLUMNS = [
    "kernel", "arch", "cache", "scalar", "dataset", "stage", "fits",
    "reps", "work_units", "cycles", "unit_cycles", "latency_us",
    "unit_latency_us", "energy_uj", "unit_energy_uj", "avg_power_mw",
    "peak_power_mw", "valid",
]


def save_results_csv(results: SweepResults, path: PathLike) -> Path:
    """One summary row per configuration — the plotting-friendly export."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        for r in results.results:
            writer.writerow(
                {
                    "kernel": r.kernel,
                    "arch": r.arch,
                    "cache": r.cache,
                    "scalar": r.scalar,
                    "dataset": r.dataset,
                    "stage": r.stage,
                    "fits": r.fits,
                    "reps": len(r.runs),
                    "work_units": r.work_units,
                    "cycles": r.mean_cycles if r.runs else "",
                    "unit_cycles": r.unit_cycles if r.runs else "",
                    "latency_us": r.mean_latency_us if r.runs else "",
                    "unit_latency_us": r.unit_latency_us if r.runs else "",
                    "energy_uj": r.mean_energy_uj if r.runs else "",
                    "unit_energy_uj": r.unit_energy_uj if r.runs else "",
                    "avg_power_mw": r.mean_power_mw if r.runs else "",
                    "peak_power_mw": r.peak_power_mw if r.runs else "",
                    "valid": r.all_valid if r.runs else "",
                }
            )
    return path


def load_results_csv(path: PathLike) -> List[dict]:
    """Read back the CSV summary (as dicts; numbers remain strings)."""
    with Path(path).open(newline="") as fh:
        return list(csv.DictReader(fh))


# -- engine checkpoints -------------------------------------------------------
#
# A checkpoint is a JSONL file: a header line carrying the format version
# and the sweep plan's fingerprint, then one line per completed cell.  The
# engine appends a line (and flushes) after pricing each cell, so a killed
# sweep loses at most the in-flight cell; on resume, completed cells are
# reloaded and neither re-priced nor — when a whole kernel's cells are
# covered — re-solved.

CellKey = Tuple[str, str, str]  # (kernel, arch, cache label)


def init_checkpoint(path: PathLike, fingerprint: str) -> Path:
    """Start (or restart) a checkpoint file for one planned sweep."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    header = {"checkpoint_version": _CHECKPOINT_VERSION, "fingerprint": fingerprint}
    path.write_text(json.dumps(header) + "\n")
    return path


def write_checkpoint_line(fh: TextIO, cell: CellKey, result: BenchmarkResult) -> None:
    """Append one completed cell; flushed so a kill loses at most one."""
    fh.write(json.dumps({"cell": list(cell), "result": _result_to_dict(result)}) + "\n")
    fh.flush()


def load_checkpoint(path: PathLike, fingerprint: str) -> Dict[CellKey, BenchmarkResult]:
    """Reload completed cells from a checkpoint.

    Raises ``ValueError`` if the checkpoint belongs to a different sweep
    plan (changed kernels/archs/caches/config would make its cells lie).
    A torn final line — the kill happened mid-write — is ignored.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        return {}
    header = json.loads(lines[0])
    version = header.get("checkpoint_version")
    if version != _CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {_CHECKPOINT_VERSION})"
        )
    if header.get("fingerprint") != fingerprint:
        raise ValueError(
            "checkpoint does not match this sweep plan "
            "(kernels/archs/caches/config changed); delete it or drop --resume"
        )
    done: Dict[CellKey, BenchmarkResult] = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            cell = tuple(entry["cell"])
            done[cell] = _result_from_dict(entry["result"])
        except (ValueError, KeyError, TypeError):
            break  # torn tail from a mid-write kill; everything before is good
    return done


# -- telemetry summaries ------------------------------------------------------


def save_telemetry_json(summary: dict, path: PathLike) -> Path:
    """Persist an engine telemetry summary next to the experiment output.

    Benchmark trajectories (``BENCH_*.json``) and CI can diff these across
    PRs to track engine performance: cache hit rate, cells run/skipped,
    solver wall time, estimated speedup over the serial driver.
    """
    path = Path(path)
    path.write_text(json.dumps(summary, indent=1, sort_keys=True))
    return path


def telemetry_path_for(out_path: PathLike) -> Path:
    """Conventional sidecar location: ``results.json`` -> ``results.telemetry.json``."""
    out_path = Path(out_path)
    return out_path.with_name(out_path.stem + ".telemetry.json")
