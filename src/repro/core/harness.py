"""The benchmark harness.

Drives an :class:`~repro.core.problem.EntoProblem` on a simulated core:
checks the memory fit, performs cache warm-up repetitions, runs the
measured repetitions, prices each repetition's operation trace through the
pipeline and energy models, and (optionally) toggles simulated GPIO lines
so the instrumentation substrate can observe the run exactly as a logic
analyzer and current probe would on real hardware.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import DEFAULT_CONFIG, HarnessConfig
from repro.core.problem import EntoProblem
from repro.core.results import BenchmarkResult, RunRecord
from repro.mcu.arch import ArchSpec
from repro.mcu.cache import CacheConfig, CacheModel
from repro.mcu.energy import EnergyModel
from repro.mcu.memory import check_fit
from repro.mcu.ops import OpCounter
from repro.mcu.pipeline import PipelineModel
from repro.mcu.static import static_profile


class Harness:
    """Runs problems on one simulated core."""

    def __init__(
        self,
        arch: ArchSpec,
        config: HarnessConfig = DEFAULT_CONFIG,
        gpio=None,
        power_monitor=None,
    ):
        self.arch = arch
        self.config = config.validated()
        self.pipeline = PipelineModel(arch)
        self.energy = EnergyModel(arch)
        self.gpio = gpio  # repro.instrumentation.gpio.GpioBus, optional
        self.power_monitor = power_monitor  # optional current-probe sim
        self._sim_time_s = 0.0

    # -- time bookkeeping ---------------------------------------------------

    @property
    def sim_time_s(self) -> float:
        """Current simulated wall-clock position of the harness."""
        return self._sim_time_s

    def _advance(self, dt_s: float) -> None:
        self._sim_time_s += dt_s

    def _mark(self, pin: str, state: bool) -> None:
        if self.gpio is not None:
            self.gpio.write(pin, state, self._sim_time_s)

    def _record_power_segment(self, duration_s: float, power_w: float,
                              peak_w: Optional[float] = None) -> None:
        if self.power_monitor is not None:
            self.power_monitor.add_segment(
                self._sim_time_s, duration_s, power_w,
                peak_w if peak_w is not None else power_w,
            )

    # -- main entry -----------------------------------------------------------

    def run(self, problem: EntoProblem, cache: CacheConfig) -> BenchmarkResult:
        """Run one problem configuration; returns the aggregate result."""
        result = BenchmarkResult(
            kernel=problem.name,
            arch=self.arch.name,
            cache=cache.label,
            scalar=problem.scalar.name,
            dataset=problem.dataset_name,
            stage=problem.stage,
        )

        footprint = problem.footprint()
        fit = check_fit(footprint, self.arch)
        if not fit.fits:
            if self.config.strict_memory:
                from repro.mcu.memory import MemoryFitError

                raise MemoryFitError(
                    f"{problem.name} exceeds {self.arch.name} memory"
                )
            result.fits = False
            result.skip_reason = (
                f"needs {fit.flash_used} B flash / {fit.sram_used} B SRAM; "
                f"{self.arch.name} offers {fit.flash_available} / {fit.sram_available}"
            )
            return result

        rng = np.random.default_rng(problem.seed)
        problem.ensure_setup(rng)
        result.work_units = max(int(problem.work_units), 1)

        static = static_profile(problem.name, problem.static_mix_base(), self.arch)
        code_bytes = static.flash_bytes
        data_bytes = footprint.data_bytes
        cache_model = CacheModel(self.arch, cache)
        cache_activity = cache_model.activity(code_bytes, data_bytes)

        # Benchmark start: raise the trigger pin that starts the current
        # probe's acquisition on real hardware.
        self._mark("trigger", True)
        self._advance(10e-6)
        self._mark("trigger", False)

        total_reps = self.config.warmup_reps + self.config.reps
        for rep in range(total_reps):
            measured = rep >= self.config.warmup_reps
            counter = OpCounter()
            solve_result = problem.solve(counter)
            trace = counter.snapshot()

            breakdown = self.pipeline.cycles(
                trace, problem.scalar, cache, code_bytes, data_bytes
            )
            report = self.energy.report(trace, breakdown, cache_activity)

            # ROI window: latency pin high for exactly the kernel runtime.
            self._mark("roi", True)
            self._record_power_segment(
                report.latency_s, report.avg_power_w, report.peak_power_w
            )
            self._advance(report.latency_s)
            self._mark("roi", False)

            # Idle gap between repetitions.
            self._record_power_segment(
                self.config.inter_rep_gap_s, self.energy.idle_power_w()
            )
            self._advance(self.config.inter_rep_gap_s)

            if measured:
                valid = bool(problem.validate(solve_result))
                result.runs.append(
                    RunRecord(
                        rep=rep - self.config.warmup_reps,
                        cycles=breakdown.total,
                        latency_s=report.latency_s,
                        energy_j=report.energy_j,
                        avg_power_w=report.avg_power_w,
                        peak_power_w=report.peak_power_w,
                        trace=trace,
                        valid=valid,
                    )
                )
        return result
