"""Kernel registry.

Every benchmark problem registers a factory here under its table name
(``fastbrief``, ``fly-ekf (seq)``, ``rel-lo-ransac``, ...).  The
characterization experiments iterate the registry to sweep the full suite,
and users add new kernels by registering new factories — the framework's
"modular and extensible" design goal.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List

from repro.core.problem import EntoProblem

_FACTORIES: Dict[str, Callable[..., EntoProblem]] = {}
_ORDER: List[str] = []


def register(name: str):
    """Decorator registering a problem factory under ``name``."""

    def deco(factory: Callable[..., EntoProblem]):
        if name in _FACTORIES:
            raise ValueError(f"kernel {name!r} already registered")
        _FACTORIES[name] = factory
        _ORDER.append(name)
        return factory

    return deco


def create(name: str, **kwargs) -> EntoProblem:
    """Instantiate a registered problem by table name."""
    _ensure_loaded()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def names() -> List[str]:
    """All registered kernel names, in suite (table) order."""
    _ensure_loaded()
    return list(_ORDER)


def by_stage(stage: str) -> List[str]:
    """Kernel names for one pipeline stage ('P', 'S', or 'C')."""
    _ensure_loaded()
    out = []
    for name in _ORDER:
        problem = _FACTORIES[name]()
        if problem.stage == stage:
            out.append(name)
    return out


def is_registered(name: str) -> bool:
    _ensure_loaded()
    return name in _FACTORIES


_loaded = False
#: Loading must be race-free: the query service probes the registry from
#: many client threads at once, and an unguarded flag let a second thread
#: observe an empty registry while the first was still importing suites.
#: The flag flips only after every suite import completes; re-entry from
#: the same thread (a suite touching the registry during its own import)
#: passes the RLock and re-imports harmlessly via ``sys.modules``.
_load_lock = threading.RLock()


def _ensure_loaded() -> None:
    """Import all kernel packages so their registrations run."""
    # repro: lint-ignore[worker-shared-state] -- idempotent lazy suite load behind a double-checked RLock; every thread converges on the same registry
    global _loaded
    if _loaded:
        return
    with _load_lock:
        if _loaded:
            return
        _import_suites()
        _loaded = True


def _import_suites() -> None:
    """Import every kernel package (their ``register`` calls populate us)."""
    # Imports are deferred to avoid circular imports at package init.
    import repro.perception.suite  # noqa: F401
    import repro.attitude.suite  # noqa: F401
    import repro.ekf.suite  # noqa: F401
    import repro.pose.suite  # noqa: F401
    import repro.control.suite  # noqa: F401
    import repro.factorgraph.suite  # noqa: F401
    import repro.nn.suite  # noqa: F401


def suite(stages: Iterable[str] = ("P", "S", "C")) -> List[str]:
    """The full 31-kernel suite in table order, filtered by stage."""
    wanted = set(stages)
    return [n for n in names() if create(n).stage in wanted]
