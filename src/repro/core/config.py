"""JSON experiment configuration.

The C++ build system configures benchmarks through JSON files carrying
build-time parameters (Reps, Verbosity, TotalRuns, cache control...).  The
same schema drives this framework's harness at run time.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Union


@dataclass(frozen=True)
class HarnessConfig:
    """Harness orchestration parameters (the paper's Table II, Harness row)."""

    reps: int = 3
    warmup_reps: int = 1
    cache_enabled: bool = True
    verbosity: int = 0
    total_runs: int = 1
    #: Inter-repetition idle gap (seconds of simulated time) — long enough
    #: for the current probe to see distinct ROI windows.
    inter_rep_gap_s: float = 200e-6
    #: Fail hard when a kernel does not fit the target's memory instead of
    #: recording a skipped result.
    strict_memory: bool = False

    def validated(self) -> "HarnessConfig":
        if self.reps < 1:
            raise ValueError("reps must be >= 1")
        if self.warmup_reps < 0:
            raise ValueError("warmup_reps must be >= 0")
        if self.inter_rep_gap_s < 0:
            raise ValueError("inter_rep_gap_s must be >= 0")
        return self

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "HarnessConfig":
        data = json.loads(text)
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        return cls(**data).validated()

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "HarnessConfig":
        return cls.from_json(Path(path).read_text())

    def with_cache(self, enabled: bool) -> "HarnessConfig":
        return HarnessConfig(
            reps=self.reps,
            warmup_reps=self.warmup_reps,
            cache_enabled=enabled,
            verbosity=self.verbosity,
            total_runs=self.total_runs,
            inter_rep_gap_s=self.inter_rep_gap_s,
            strict_memory=self.strict_memory,
        )


DEFAULT_CONFIG = HarnessConfig()
