"""Result records and aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.mcu.ops import OpTrace


@dataclass(frozen=True)
class RunRecord:
    """One repetition of one benchmark configuration."""

    rep: int
    cycles: float
    latency_s: float
    energy_j: float
    avg_power_w: float
    peak_power_w: float
    trace: OpTrace
    valid: bool

    @property
    def latency_us(self) -> float:
        return self.latency_s * 1e6

    @property
    def energy_uj(self) -> float:
        return self.energy_j * 1e6


@dataclass
class BenchmarkResult:
    """Aggregate of all repetitions of one configuration."""

    kernel: str
    arch: str
    cache: str  # "C" or "NC"
    scalar: str
    dataset: str
    stage: str
    runs: List[RunRecord] = field(default_factory=list)
    fits: bool = True
    skip_reason: Optional[str] = None
    #: Algorithmic units per solve() (filter updates, control steps...).
    work_units: int = 1

    def _values(self, attr: str) -> List[float]:
        return [getattr(r, attr) for r in self.runs]

    @property
    def mean_cycles(self) -> float:
        vals = self._values("cycles")
        return sum(vals) / len(vals) if vals else float("nan")

    @property
    def mean_latency_s(self) -> float:
        vals = self._values("latency_s")
        return sum(vals) / len(vals) if vals else float("nan")

    @property
    def mean_latency_us(self) -> float:
        return self.mean_latency_s * 1e6

    @property
    def mean_energy_j(self) -> float:
        vals = self._values("energy_j")
        return sum(vals) / len(vals) if vals else float("nan")

    @property
    def mean_energy_uj(self) -> float:
        return self.mean_energy_j * 1e6

    @property
    def peak_power_w(self) -> float:
        vals = self._values("peak_power_w")
        return max(vals) if vals else float("nan")

    @property
    def peak_power_mw(self) -> float:
        return self.peak_power_w * 1e3

    @property
    def mean_power_mw(self) -> float:
        vals = self._values("avg_power_w")
        return (sum(vals) / len(vals)) * 1e3 if vals else float("nan")

    # -- per-unit figures (what the paper's tables show for high-rate
    # kernels: latency/energy *per update*, not per full-sequence solve) --

    @property
    def unit_cycles(self) -> float:
        return self.mean_cycles / max(self.work_units, 1)

    @property
    def unit_latency_us(self) -> float:
        return self.mean_latency_us / max(self.work_units, 1)

    @property
    def unit_energy_uj(self) -> float:
        return self.mean_energy_uj / max(self.work_units, 1)

    @property
    def all_valid(self) -> bool:
        return all(r.valid for r in self.runs)

    @property
    def mean_trace(self) -> OpTrace:
        total = OpTrace()
        for r in self.runs:
            total += r.trace
        return total.scaled(1.0 / max(len(self.runs), 1))

    def summary(self) -> dict:
        return {
            "kernel": self.kernel,
            "arch": self.arch,
            "cache": self.cache,
            "scalar": self.scalar,
            "dataset": self.dataset,
            "stage": self.stage,
            "fits": self.fits,
            "reps": len(self.runs),
            "cycles": self.mean_cycles,
            "latency_us": self.mean_latency_us,
            "energy_uj": self.mean_energy_uj,
            "peak_power_mw": self.peak_power_mw,
            "avg_power_mw": self.mean_power_mw,
            "valid": self.all_valid,
        }


def si_format(value: float, digits: int = 3) -> str:
    """Compact engineering formatting like the paper's tables (26K, 2M...)."""
    if value != value:  # NaN
        return "-"
    a = abs(value)
    if a >= 1e6:
        return f"{value / 1e6:.0f}M"
    if a >= 1e3:
        return f"{value / 1e3:.0f}K"
    if a >= 100:
        return f"{value:.0f}"
    if a >= 10:
        return f"{value:.0f}"
    if a >= 1:
        return f"{value:.0f}"
    return f"{value:.1f}"
