"""Core framework: problems, harness, registry, experiments."""

from repro.core.config import DEFAULT_CONFIG, HarnessConfig
from repro.core.experiment import (
    ResultKeyError,
    SweepResults,
    SweepSpec,
    characterize_suite,
    run_sweep,
    run_sweep_serial,
)
from repro.core.harness import Harness
from repro.core.problem import EntoProblem
from repro.core.results import BenchmarkResult, RunRecord, si_format
from repro.scalar import F32, F64, ScalarType, parse_scalar, q

__all__ = [
    "DEFAULT_CONFIG",
    "HarnessConfig",
    "ResultKeyError",
    "SweepResults",
    "SweepSpec",
    "characterize_suite",
    "run_sweep",
    "run_sweep_serial",
    "Harness",
    "EntoProblem",
    "BenchmarkResult",
    "RunRecord",
    "si_format",
    "F32",
    "F64",
    "ScalarType",
    "parse_scalar",
    "q",
]
