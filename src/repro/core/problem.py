"""The :class:`EntoProblem` abstraction.

The C++ framework wraps each kernel in a CRTP problem specification that
defines how inputs are synthesized or loaded, how the kernel is invoked
(``solve()``), and how results are validated (``validate()``), plus
metadata such as dataset needs.  This is the Python equivalent: a small
abstract base class the harness drives.

A problem instance is *one* fully-parameterized benchmark configuration —
kernel variant, scalar type, dimensions, dataset — exactly like one
instantiation of the C++ template.
"""

from __future__ import annotations

import abc
from typing import Any, Optional

import numpy as np

from repro.scalar import F32, ScalarType
from repro.mcu.memory import Footprint
from repro.mcu.ops import OpCounter
from repro.mcu.static import StaticMix


class EntoProblem(abc.ABC):
    """Base class for every benchmark problem.

    Lifecycle, as driven by the harness::

        problem.setup(rng)        # synthesize or load inputs
        result = problem.solve(counter)   # run kernel, recording ops
        ok = problem.validate(result)     # task-specific correctness

    Subclasses must set the class attributes below and implement the three
    lifecycle methods plus the modeling hooks (:meth:`static_mix_base`,
    :meth:`footprint`).
    """

    #: Kernel name as it appears in the paper's tables (e.g. ``"p3p"``).
    name: str = "unnamed"
    #: Pipeline stage: ``"P"`` (perception), ``"S"`` (state estimation),
    #: or ``"C"`` (control).
    stage: str = "?"
    #: Task category column of Table III (e.g. ``"Abs. Pose"``).
    category: str = "?"
    #: Dataset identifier of Table III (e.g. ``"abs-synth"``).
    dataset_name: str = "?"
    #: Whether the problem needs externally loaded data (microbenchmarks
    #: with synthesized inputs set this False).
    requires_dataset: bool = False
    #: Whether results are buffered on-device to reduce host interaction.
    saves_results: bool = False

    def __init__(self, scalar: ScalarType = F32, seed: int = 0):
        self.scalar = scalar
        self.seed = seed
        self._is_setup = False
        #: How many algorithmic units (filter updates, control steps...) one
        #: solve() call performs.  The paper's tables report per-unit
        #: figures for the high-rate kernels; result formatting divides the
        #: measured latency/energy by this.
        self.work_units = 1

    # -- lifecycle ---------------------------------------------------------

    @abc.abstractmethod
    def setup(self, rng: np.random.Generator) -> None:
        """Synthesize or load the problem inputs."""

    @abc.abstractmethod
    def solve(self, counter: OpCounter) -> Any:
        """Run the kernel on the prepared inputs, recording operations."""

    @abc.abstractmethod
    def validate(self, result: Any) -> bool:
        """Task-specific correctness check of a solve() result."""

    # -- modeling hooks ------------------------------------------------------

    @abc.abstractmethod
    def static_mix_base(self) -> StaticMix:
        """Composed static code model (base = M4 build)."""

    @abc.abstractmethod
    def footprint(self) -> Footprint:
        """Flash + SRAM demand of this configuration."""

    def flop_estimate(self) -> Optional[int]:
        """Static FLOP tally as the papers the suite critiques would count.

        Returns None for kernels where the literature does not publish
        FLOP-based feasibility claims.  Used by Case Study 3.
        """
        return None

    # -- conveniences --------------------------------------------------------

    def ensure_setup(self, rng: Optional[np.random.Generator] = None) -> None:
        if not self._is_setup:
            self.setup(rng if rng is not None else np.random.default_rng(self.seed))
            self._is_setup = True

    @property
    def variant_label(self) -> str:
        """Display label including scalar type, e.g. ``p3p[f32]``."""
        return f"{self.name}[{self.scalar.name}]"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.variant_label}>"
