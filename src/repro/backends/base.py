"""The :class:`ArchBackend` interface and the multi-ISA registry.

A *backend* owns everything that is specific to one instruction-set
family: which cores exist, their CPI tables per scalar type, the integer
/ memory / branch cost model, the instruction-fetch geometry, and how the
static code model's per-core factors and soft-float expansions behave.
The pricing stack in :mod:`repro.mcu` is generic over this interface —
``mcu.pipeline`` / ``mcu.static`` / ``mcu.cache`` look their constants up
through :func:`backend_for` instead of hard-coding Cortex-M tables.

Backends register themselves at import time (see
:mod:`repro.backends.cortex_m` and :mod:`repro.backends.riscv`); the
registry then answers every "which architectures exist?" question in the
repo: :func:`get_arch` (typed errors with a nearest-match suggestion),
:func:`arch_names`, and :func:`characterization_archs` (the default core
set for sweeps, filterable by ISA so the paper's Cortex-M tables stay
pinned while new ISAs appear in ``characterize`` automatically).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.mcu.arch import ArchSpec
from repro.mcu.cache import _footprint_hit_rate
from repro.mcu.ops import FLOAT_KINDS
from repro.scalar import ScalarType


@dataclass(frozen=True)
class IntCostTable:
    """Per-op integer / memory / call costs (cycles per dynamic op)."""

    ialu: float = 1.0
    imul: float = 1.0
    idiv: float = 6.0
    icmp: float = 1.0
    simd: float = 1.0
    load: float = 2.0
    store: float = 1.0
    call: float = 4.0


@dataclass(frozen=True)
class BranchCostTable:
    """Taken-branch and not-taken (refill) costs in cycles."""

    taken: float
    refill: float = 1.0


@dataclass(frozen=True, eq=False)
class ArchTables:
    """One (core, scalar) cost model lowered to dense pricing vectors.

    Produced by :meth:`ArchBackend.tables_as_arrays` and consumed by the
    columnar batch pricer (:mod:`repro.vecprice`): instead of walking a
    CPI dict and two cost dataclasses per repetition, the pricer prices a
    whole op-count matrix against :attr:`cpi` in one vector op.  ``cpi``
    is ordered exactly as :data:`repro.mcu.ops.ALL_KINDS`; the remaining
    fields are the per-cell scalars the stall and power formulas need,
    copied out of the :class:`~repro.mcu.arch.ArchSpec` so a batch never
    chases attribute chains per row.
    """

    #: (18,) float64 cycles-per-op vector in ``ALL_KINDS`` order.  The
    #: three branch slots price ``br_taken`` / ``br_not`` / ``call`` (the
    #: call cost lives on :class:`IntCostTable`, exactly as
    #: ``PipelineModel.compute_cycles`` charges it).
    cpi: np.ndarray
    #: Dual-issue overlap divisor for int/mem/branch work.
    overlap: float
    #: Adverse-operating-point CPI multiplier (1.0 on nominal cores).
    cpi_scale: float
    #: Fraction of dynamic instructions needing a new fetch word.
    fetch_fraction: float
    flash_wait_cycles: float
    sram_wait_cycles: float
    clock_hz: float
    #: Power-model parameters (milliwatts), from the core's PowerSpec.
    idle_mw: float
    active_mw: float
    activity_span_mw: float
    cache_bonus_mw: float


@dataclass(frozen=True)
class SoftFloatExpansion:
    """Static-code inflation on FPU-less cores: float ops become
    integer / memory / branch instructions in the compiled library."""

    i_per_f: float
    m_per_f: float
    b_per_f: float


class ArchKeyError(KeyError):
    """An unknown architecture name, with a nearest-match suggestion.

    The architecture counterpart of
    :class:`~repro.closedloop.missions.MissionKeyError`: raised instead
    of a bare ``KeyError`` so callers (the CLI, the query service,
    scenario validation) can catch the lookup failure specifically, and
    so the message names the closest registered core rather than echoing
    an opaque string.
    """

    def __init__(self, requested: str, suggestion: Optional[str] = None):
        self.requested = requested
        self.suggestion = suggestion
        message = (
            f"unknown architecture {requested!r}; available: {arch_names()}"
        )
        if suggestion is not None:
            message += f" (did you mean {suggestion!r}?)"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its arg; keep the prose.
        return self.args[0]


class ArchBackend:
    """One ISA family: its cores plus every family-specific cost policy.

    Subclasses override :meth:`archs`, :meth:`characterization`,
    :meth:`float_cpi`, and :meth:`static_factors`; the remaining methods
    have generic defaults that match a simple in-order scalar core and
    may be overridden where the family's microarchitecture differs (the
    Cortex-M backend, for example, overrides :meth:`ifetch_hit_rate` to
    model ST's ART flash accelerator).
    """

    #: Registry key and ISA-family label (``cortex-m``, ``riscv``).
    name: str = ""
    #: Human-readable family description for ``repro backends list``.
    description: str = ""

    # -- core inventory -------------------------------------------------
    def archs(self) -> Tuple[ArchSpec, ...]:
        """Every core this backend registers, in canonical order."""
        raise NotImplementedError

    def characterization(self) -> Tuple[str, ...]:
        """Core names included in the default characterization set."""
        raise NotImplementedError

    # -- dynamic cost model ---------------------------------------------
    def float_cpi(self, arch: ArchSpec, scalar: ScalarType) -> Mapping[str, float]:
        """The float-op cost table for this core and scalar type."""
        raise NotImplementedError

    def int_costs(self, arch: ArchSpec) -> IntCostTable:
        """Integer / memory / call op costs for this core."""
        return IntCostTable(idiv=6.0 if arch.has_hw_divide else 45.0)

    def branch_costs(self, arch: ArchSpec) -> BranchCostTable:
        """Branch costs: predictors hide most of the taken penalty."""
        if arch.branch_predictor:
            return BranchCostTable(taken=1.2, refill=1.0)
        return BranchCostTable(taken=float(arch.pipeline_stages - 1), refill=1.0)

    def tables_as_arrays(self, arch: ArchSpec, scalar: ScalarType) -> ArchTables:
        """Lower every cost table for (core, scalar) into pricing vectors.

        The generic lowering: gathers :meth:`float_cpi`,
        :meth:`int_costs`, and :meth:`branch_costs` into one 18-wide CPI
        vector (``ALL_KINDS`` order) plus the scalar pricing parameters,
        for the columnar batch pricer in :mod:`repro.vecprice`.  Every
        value is exactly the one the per-cell serial path would read —
        the float conversions are identity on floats and exact on the
        integer CPI entries — which is what makes batched results
        byte-identical to ``PipelineModel.compute_cycles``.  A backend
        that overrides the scalar cost methods needs no override here;
        one that adds bespoke cost channels must extend this lowering in
        the same change.
        """
        f = self.float_cpi(arch, scalar)
        c = self.int_costs(arch)
        b = self.branch_costs(arch)
        cpi = [float(f[k]) for k in FLOAT_KINDS]
        cpi += [float(c.ialu), float(c.imul), float(c.idiv), float(c.icmp),
                float(c.simd)]
        cpi += [float(c.load), float(c.store)]
        cpi += [float(b.taken), float(b.refill), float(c.call)]
        p = arch.power
        return ArchTables(
            cpi=np.array(cpi, dtype=np.float64),
            overlap=float(arch.superscalar_ipc),
            cpi_scale=float(arch.cpi_scale),
            fetch_fraction=float(self.fetch_fraction(arch)),
            flash_wait_cycles=float(arch.memory.flash_wait_cycles),
            sram_wait_cycles=float(arch.memory.sram_wait_cycles),
            clock_hz=float(arch.clock_hz),
            idle_mw=float(p.idle_mw),
            active_mw=float(p.active_mw),
            activity_span_mw=float(p.activity_span_mw),
            cache_bonus_mw=float(p.cache_bonus_mw),
        )

    # -- instruction-fetch / cache policy -------------------------------
    def fetch_fraction(self, arch: ArchSpec) -> float:
        """Fraction of dynamic instructions needing a new fetch word."""
        return 0.35

    def ifetch_hit_rate(self, arch: ArchSpec, enabled: bool,
                        code_bytes: int) -> float:
        """Instruction-side hit rate for a code footprint."""
        cache = arch.cache
        if not cache.has_icache or not enabled:
            return 0.0
        return _footprint_hit_rate(code_bytes, cache.icache_bytes, floor=0.55)

    def dmem_hit_rate(self, arch: ArchSpec, enabled: bool,
                      data_bytes: int) -> float:
        """Data-side hit rate for a working set."""
        cache = arch.cache
        if not cache.has_dcache or not enabled:
            return 0.0
        return _footprint_hit_rate(data_bytes, cache.dcache_bytes, floor=0.45)

    # -- static code model ----------------------------------------------
    def static_factors(self, core: str) -> Tuple[float, float, float, float]:
        """(F, I, M, B) static-mix multipliers vs the base (M4) mix."""
        raise NotImplementedError

    def softfloat_static_expansion(
        self, core: str
    ) -> Optional[SoftFloatExpansion]:
        """Static soft-float library expansion, or ``None`` with an FPU."""
        return None


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BACKENDS: Dict[str, ArchBackend] = {}
_BACKEND_ORDER: List[str] = []
_ARCH_INDEX: Dict[str, ArchSpec] = {}
_ARCH_BACKEND: Dict[str, str] = {}


def register_backend(backend: ArchBackend) -> ArchBackend:
    """Register a backend and index every core it provides."""
    if not backend.name:
        raise ValueError("backend must set a non-empty name")
    if backend.name in _BACKENDS:
        raise ValueError(f"backend {backend.name!r} already registered")
    specs = backend.archs()
    for spec in specs:
        if spec.name in _ARCH_INDEX:
            raise ValueError(
                f"arch {spec.name!r} already registered by backend "
                f"{_ARCH_BACKEND[spec.name]!r}"
            )
    _BACKENDS[backend.name] = backend
    _BACKEND_ORDER.append(backend.name)
    for spec in specs:
        _ARCH_INDEX[spec.name] = spec
        _ARCH_BACKEND[spec.name] = backend.name
    for core in backend.characterization():
        if core not in _ARCH_INDEX:
            raise ValueError(
                f"backend {backend.name!r} characterization names unknown "
                f"core {core!r}"
            )
    return backend


def backend_names() -> List[str]:
    """Registered backend (ISA family) names, in registration order."""
    return list(_BACKEND_ORDER)


def get_backend(name: str) -> ArchBackend:
    """Look up a backend by ISA-family name (``cortex-m``, ``riscv``)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {backend_names()}"
        ) from None


def backend_for(arch) -> ArchBackend:
    """The backend owning an arch (spec, name, or derated variant).

    Fault-derated variants (``m33+brownout:0.5``) resolve through
    :attr:`~repro.mcu.arch.ArchSpec.base_name` — they run the same
    compiled binary, and therefore the same cost tables, as their base
    core.
    """
    base = arch.base_name if isinstance(arch, ArchSpec) else str(arch).split("+", 1)[0]
    try:
        return _BACKENDS[_ARCH_BACKEND[base]]
    except KeyError:
        raise ArchKeyError(base, _closest(base)) from None


def _closest(requested: str) -> Optional[str]:
    matches = difflib.get_close_matches(
        requested.lower(), sorted(_ARCH_INDEX), n=1, cutoff=0.4
    )
    return matches[0] if matches else None


def get_arch(name: str) -> ArchSpec:
    """Look up an architecture by short name (``m4``, ``rv32imafc``, ...)."""
    try:
        return _ARCH_INDEX[name.lower()]
    except (KeyError, AttributeError):
        requested = str(name)
        raise ArchKeyError(requested, _closest(requested)) from None


def arch_names() -> List[str]:
    """Every registered core name, in backend registration order."""
    return list(_ARCH_INDEX)


def all_archs() -> Tuple[ArchSpec, ...]:
    """Every registered core spec, in backend registration order."""
    return tuple(_ARCH_INDEX.values())


def characterization_archs(isa: Optional[str] = None) -> Tuple[ArchSpec, ...]:
    """The default characterization core set, derived from the registry.

    With ``isa=None`` every backend contributes its characterization
    cores — a newly registered ISA appears in default ``characterize``
    sweeps without touching :mod:`repro.mcu.arch`.  Pass a backend name
    (``"cortex-m"``) to pin a study to one family, as the paper-table
    code does.
    """
    if isa is not None:
        backends = [get_backend(isa)]
    else:
        backends = [_BACKENDS[n] for n in _BACKEND_ORDER]
    out: List[ArchSpec] = []
    for backend in backends:
        out.extend(_ARCH_INDEX[core] for core in backend.characterization())
    return tuple(out)


def list_backends() -> List[dict]:
    """Registry summary rows (one per backend) for the API and CLI."""
    rows = []
    for name in _BACKEND_ORDER:
        backend = _BACKENDS[name]
        rows.append(
            {
                "backend": name,
                "description": backend.description,
                "archs": [spec.name for spec in backend.archs()],
                "characterization": list(backend.characterization()),
            }
        )
    return rows
