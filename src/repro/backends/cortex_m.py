"""The Cortex-M backend: the paper's four boards as one ISA family.

Four cores are modeled, matching the boards the paper measures on:

* ``m0plus`` — a generic STM32 Cortex-M0+ part (Case Study 2 only): 2-stage
  pipeline, no FPU, no caches, low clock, very low power.
* ``m4`` — NUCLEO-STM32G474RE: 3-stage ARMv7E-M, SP FPU, 170 MHz, 128 KB
  SRAM.  Its "cache" is ST's small ART flash accelerator, which barely
  changes timing — the paper observes near-identical cache on/off numbers.
* ``m33`` — NUCLEO-STM32U575ZIQ: 3-stage ARMv8-M Mainline, SP FPU, 160 MHz,
  8 KB I/D caches, modern low-power process node → by far the most energy
  efficient core in the study.
* ``m7`` — NUCLEO-STM32H7A3ZIQ: 6-stage superscalar ARMv7E-M with branch
  prediction, DP FPU, 280 MHz, 16 KB I/D caches.  Heavily cache dependent:
  the vendor linker script places the stack in AXI SRAM, so uncached runs
  pay large wait-state penalties.

All quantitative parameters are calibrated so the *relationships* the paper
reports (who wins, by what factor, where caches matter) are reproduced; they
are not datasheet transcriptions.  Every constant here moved verbatim from
``mcu/arch.py`` / ``mcu/pipeline.py`` / ``mcu/static.py`` — the registry
refactor is byte-identical for Cortex-M outputs (asserted against committed
goldens in ``tests/test_backends.py``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.backends.base import (
    ArchBackend,
    SoftFloatExpansion,
    register_backend,
)
from repro.mcu.arch import ArchSpec, CacheSpec, FpuSpec, MemorySpec, PowerSpec
from repro.mcu.cache import _footprint_hit_rate
from repro.scalar import ScalarType

# Software-emulated float costs (cycles per op) for cores lacking the
# relevant FPU.  These match the rough magnitudes of GCC's soft-float
# routines on ARMv6-M / ARMv7-M.
_SOFT_F32 = {"fadd": 48, "fmul": 40, "fdiv": 130, "fsqrt": 220, "ffma": 90,
             "fcmp": 20, "fcvt": 25, "ffunc": 420}
_SOFT_F64 = {"fadd": 28, "fmul": 34, "fdiv": 110, "fsqrt": 200, "ffma": 64,
             "fcmp": 14, "fcvt": 16, "ffunc": 320}
# Hardware single-precision FPU costs (M4/M33/M7 class).
_HW_F32 = {"fadd": 1, "fmul": 1, "fdiv": 14, "fsqrt": 14, "ffma": 3,
           "fcmp": 1, "fcvt": 1, "ffunc": 55}
# Hardware double-precision FPU costs (M7 only).
_HW_F64 = {"fadd": 1, "fmul": 2, "fdiv": 27, "fsqrt": 27, "ffma": 5,
           "fcmp": 1, "fcvt": 1, "ffunc": 80}
# Fixed-point costs on cores with a 32x32->64 multiplier: a multiply is
# SMULL + shift + saturate checks, a divide needs a pre-shift and hardware
# (or software) division.  The "ffunc" entry prices the iterative
# integer routines (sqrt via Newton, trig via CORDIC/polynomials).
_FIXED_FAST = {"fadd": 1, "fmul": 4, "fdiv": 20, "fsqrt": 90, "ffma": 5,
               "fcmp": 1, "fcvt": 2, "ffunc": 160}
# Fixed point on the M0+ (32x32->32 only; wide multiply is synthesized).
_FIXED_M0 = {"fadd": 1, "fmul": 16, "fdiv": 70, "fsqrt": 160, "ffma": 18,
             "fcmp": 1, "fcvt": 2, "ffunc": 260}

M0PLUS = ArchSpec(
    name="m0plus",
    core="Cortex-M0+",
    board="generic STM32 M0+",
    isa="ARMv6-M",
    pipeline_stages=2,
    clock_hz=32e6,
    superscalar_ipc=1.0,
    branch_predictor=False,
    fpu=FpuSpec(single=False, double=False),
    cache=CacheSpec(icache_bytes=0, dcache_bytes=0),
    memory=MemorySpec(
        flash_bytes=128 * 1024,
        sram_bytes=36 * 1024,
        flash_wait_cycles=1.0,
        sram_wait_cycles=0.0,
    ),
    power=PowerSpec(active_mw=13.0, cache_bonus_mw=0.0, activity_span_mw=3.0, idle_mw=1.0),
    process_node_nm=90,
    has_hw_divide=False,
    has_dsp_simd=False,
)

M4 = ArchSpec(
    name="m4",
    core="Cortex-M4",
    board="NUCLEO-STM32G474RE",
    isa="ARMv7E-M",
    pipeline_stages=3,
    clock_hz=170e6,
    superscalar_ipc=1.0,
    branch_predictor=False,
    fpu=FpuSpec(single=True, double=False),
    cache=CacheSpec(icache_bytes=1024, dcache_bytes=0),  # ART flash accelerator
    memory=MemorySpec(
        flash_bytes=512 * 1024,
        sram_bytes=128 * 1024,
        flash_wait_cycles=4.0,
        sram_wait_cycles=0.0,
    ),
    power=PowerSpec(active_mw=104.0, cache_bonus_mw=3.0, activity_span_mw=55.0, idle_mw=12.0),
    process_node_nm=90,
    has_hw_divide=True,
    has_dsp_simd=True,
)

M33 = ArchSpec(
    name="m33",
    core="Cortex-M33",
    board="NUCLEO-STM32U575ZIQ",
    isa="ARMv8-M Mainline",
    pipeline_stages=3,
    clock_hz=160e6,
    superscalar_ipc=1.0,
    branch_predictor=False,
    fpu=FpuSpec(single=True, double=False),
    cache=CacheSpec(icache_bytes=8 * 1024, dcache_bytes=8 * 1024),
    memory=MemorySpec(
        flash_bytes=2 * 1024 * 1024,
        sram_bytes=786 * 1024,
        flash_wait_cycles=4.0,
        sram_wait_cycles=1.0,
    ),
    power=PowerSpec(active_mw=29.0, cache_bonus_mw=2.0, activity_span_mw=12.0, idle_mw=3.0),
    process_node_nm=40,
    has_hw_divide=True,
    has_dsp_simd=True,
)

M7 = ArchSpec(
    name="m7",
    core="Cortex-M7",
    board="NUCLEO-STM32H7A3ZIQ",
    isa="ARMv7E-M",
    pipeline_stages=6,
    clock_hz=280e6,
    superscalar_ipc=1.45,
    branch_predictor=True,
    fpu=FpuSpec(single=True, double=True),
    cache=CacheSpec(icache_bytes=16 * 1024, dcache_bytes=16 * 1024),
    memory=MemorySpec(
        flash_bytes=2 * 1024 * 1024,
        sram_bytes=1408 * 1024,
        flash_wait_cycles=6.0,
        sram_wait_cycles=3.0,  # AXI SRAM stack placement
    ),
    power=PowerSpec(active_mw=118.0, cache_bonus_mw=38.0, activity_span_mw=60.0, idle_mw=18.0),
    process_node_nm=40,
    has_hw_divide=True,
    has_dsp_simd=True,
)

# Per-arch systematic factors applied on top of the base (M4) mix.
_ARCH_FACTORS: Dict[str, Tuple[float, float, float, float]] = {
    # (F, I, M, B) multipliers
    "m0plus": (0.0, 1.35, 1.20, 1.25),  # soft-float: F ops become I/M/B code
    "m4": (1.0, 1.0, 1.0, 1.0),
    "m33": (1.01, 0.99, 1.01, 0.99),
    "m7": (0.94, 0.93, 0.97, 0.82),  # better scheduling & predication
}

# Soft-float libraries add float code expressed as int/mem/branch.
_SOFTFLOAT_EXPANSION = SoftFloatExpansion(i_per_f=2.2, m_per_f=0.8, b_per_f=0.6)


class CortexMBackend(ArchBackend):
    """ARMv6-M / ARMv7E-M / ARMv8-M cores: the paper's measurement fleet."""

    name = "cortex-m"
    description = "ARM Cortex-M cores matching the paper's four boards"

    def archs(self) -> Tuple[ArchSpec, ...]:
        return (M0PLUS, M4, M33, M7)

    def characterization(self) -> Tuple[str, ...]:
        # The three cores characterized in the paper's Section V tables.
        return ("m4", "m33", "m7")

    def float_cpi(self, arch: ArchSpec, scalar: ScalarType) -> Mapping[str, float]:
        if scalar.is_fixed:
            return _FIXED_FAST if arch.has_hw_divide else _FIXED_M0
        if scalar.kind == "f32":
            return _HW_F32 if arch.fpu.single else _SOFT_F32
        # f64
        if arch.fpu.double:
            return _HW_F64
        base = _SOFT_F64 if not arch.fpu.single else {
            # SP FPU present but doubles still go through software, partially
            # accelerated by single-precision hardware in the helper routines.
            k: max(1, int(v * 0.8)) for k, v in _SOFT_F64.items()
        }
        return base

    def ifetch_hit_rate(self, arch: ArchSpec, enabled: bool,
                        code_bytes: int) -> float:
        cache = arch.cache
        if not cache.has_icache:
            return 0.0
        if not enabled:
            # The M4's ART accelerator is modeled as a tiny always-on
            # prefetcher: "disabling" it still leaves sequential prefetch.
            return 0.55 if cache.icache_bytes <= 1024 else 0.0
        if cache.icache_bytes <= 1024:
            # Flash accelerator: high hit rate for loopy code.
            return 0.92
        return _footprint_hit_rate(code_bytes, cache.icache_bytes, floor=0.55)

    def static_factors(self, core: str) -> Tuple[float, float, float, float]:
        return _ARCH_FACTORS[core]

    def softfloat_static_expansion(
        self, core: str
    ) -> Optional[SoftFloatExpansion]:
        return _SOFTFLOAT_EXPANSION if core == "m0plus" else None


BACKEND = register_backend(CortexMBackend())
