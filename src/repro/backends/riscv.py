"""The RISC-V backend: an RV32 MCU family alongside the Cortex-M fleet.

Three cores spanning the same design space the paper's boards cover, so
cross-ISA sweeps compare like against like:

* ``rv32imc`` — an E31-class embedded core (FE310 lineage): 5-stage
  single-issue RV32IMC with a gshare predictor, 16 KB I-cache over XIP
  QSPI flash (the characteristic RISC-V MCU memory geometry: executing
  from external flash is expensive, the I-cache is what makes it viable),
  a 64 KB data scratchpad (DTIM — single cycle, no D-cache), and **no
  FPU**: float kernels run through RV32IM soft-float libraries.
* ``rv32imafc`` — a modern low-power SP-FPU core (E7/ESP32-C lineage) on
  a 40 nm node with real 8 KB I/D caches: the RISC-V counterpart of the
  M33 class.  Doubles still lower to (partially accelerated) soft float —
  there is no D extension.
* ``rv32ec`` — an E2-class RV32EC minimum-footprint core: 2-stage, 16
  registers, no M extension (multiplies are synthesized shift/add
  loops), no caches, microwatt-class power — the RISC-V counterpart of
  the M0+.

As with the Cortex-M tables, all parameters are calibrated to reproduce
*relationships* (soft-float cliffs, cache sensitivity, process-node
efficiency ordering), not transcribed from datasheets.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.backends.base import (
    ArchBackend,
    IntCostTable,
    SoftFloatExpansion,
    register_backend,
)
from repro.mcu.arch import ArchSpec, CacheSpec, FpuSpec, MemorySpec, PowerSpec
from repro.scalar import ScalarType

# Soft-float costs on RV32IM: the fast 32x32->64 multiplier (MUL/MULHU)
# speeds mantissa work vs ARMv6-M, but the lack of flags/predication costs
# a little on compare-and-branch-dense paths.
_SOFT_F32_RV = {"fadd": 50, "fmul": 36, "fdiv": 120, "fsqrt": 210, "ffma": 92,
                "fcmp": 18, "fcvt": 22, "ffunc": 400}
_SOFT_F64_RV = {"fadd": 30, "fmul": 38, "fdiv": 115, "fsqrt": 205, "ffma": 70,
                "fcmp": 15, "fcvt": 18, "ffunc": 330}
# Soft float on RV32E without the M extension: every mantissa multiply is
# a synthesized shift/add loop — the steepest cliff in the whole registry.
_SOFT_F32_RVE = {"fadd": 56, "fmul": 88, "fdiv": 190, "fsqrt": 300,
                 "ffma": 150, "fcmp": 22, "fcvt": 28, "ffunc": 520}
_SOFT_F64_RVE = {"fadd": 36, "fmul": 120, "fdiv": 240, "fsqrt": 380,
                 "ffma": 180, "fcmp": 18, "fcvt": 24, "ffunc": 560}
# Hardware single precision (F extension): fused FMADD.S is the RV win.
_HW_F32_RV = {"fadd": 1, "fmul": 1, "fdiv": 16, "fsqrt": 18, "ffma": 2,
              "fcmp": 1, "fcvt": 1, "ffunc": 58}
# Fixed point through MUL/MULH + shift-back; RV lacks the DSP saturating
# ops ARMv7E-M has, so saturation checks cost a branch each.
_FIXED_RV = {"fadd": 1, "fmul": 5, "fdiv": 22, "fsqrt": 95, "ffma": 6,
             "fcmp": 1, "fcvt": 2, "ffunc": 170}
_FIXED_RVE = {"fadd": 1, "fmul": 20, "fdiv": 85, "fsqrt": 180, "ffma": 22,
              "fcmp": 1, "fcvt": 2, "ffunc": 290}

RV32IMC = ArchSpec(
    name="rv32imc",
    core="E31-class RV32",
    board="FE310-class devkit",
    isa="RV32IMC",
    pipeline_stages=5,
    clock_hz=150e6,
    superscalar_ipc=1.0,
    branch_predictor=True,  # gshare + small BTB
    fpu=FpuSpec(single=False, double=False),
    cache=CacheSpec(icache_bytes=16 * 1024, dcache_bytes=0),
    memory=MemorySpec(
        flash_bytes=4 * 1024 * 1024,  # external QSPI flash, XIP
        sram_bytes=64 * 1024,  # DTIM scratchpad
        flash_wait_cycles=10.0,  # XIP over QSPI: the I-cache earns its keep
        sram_wait_cycles=0.0,  # single-cycle DTIM
    ),
    power=PowerSpec(active_mw=45.0, cache_bonus_mw=5.0, activity_span_mw=18.0, idle_mw=4.0),
    process_node_nm=180,
    has_hw_divide=True,
    has_dsp_simd=False,
)

RV32IMAFC = ArchSpec(
    name="rv32imafc",
    core="E7-class RV32 SP-FPU",
    board="generic RV32 SP-FPU SoC",
    isa="RV32IMAFC",
    pipeline_stages=4,
    clock_hz=160e6,
    superscalar_ipc=1.0,
    branch_predictor=True,
    fpu=FpuSpec(single=True, double=False),
    cache=CacheSpec(icache_bytes=8 * 1024, dcache_bytes=8 * 1024),
    memory=MemorySpec(
        flash_bytes=2 * 1024 * 1024,
        sram_bytes=512 * 1024,
        flash_wait_cycles=4.0,
        sram_wait_cycles=1.0,
    ),
    power=PowerSpec(active_mw=31.0, cache_bonus_mw=2.5, activity_span_mw=13.0, idle_mw=3.0),
    process_node_nm=40,
    has_hw_divide=True,
    has_dsp_simd=False,
)

RV32EC = ArchSpec(
    name="rv32ec",
    core="E2-class RV32E",
    board="generic RV32E LP MCU",
    isa="RV32EC",
    pipeline_stages=2,
    clock_hz=48e6,
    superscalar_ipc=1.0,
    branch_predictor=False,
    fpu=FpuSpec(single=False, double=False),
    cache=CacheSpec(icache_bytes=0, dcache_bytes=0),
    memory=MemorySpec(
        flash_bytes=256 * 1024,
        sram_bytes=32 * 1024,
        flash_wait_cycles=1.0,
        sram_wait_cycles=0.0,
    ),
    power=PowerSpec(active_mw=7.5, cache_bonus_mw=0.0, activity_span_mw=2.2, idle_mw=0.6),
    process_node_nm=55,
    has_hw_divide=False,  # no M extension
    has_dsp_simd=False,
)

# Per-arch (F, I, M, B) static-mix multipliers vs the base (M4) mix.
# RV32 emits somewhat more instructions than Thumb-2 for the same source
# (no predication, no flexible addressing modes, compare-and-branch pairs).
_ARCH_FACTORS: Dict[str, Tuple[float, float, float, float]] = {
    "rv32imc": (0.0, 1.42, 1.24, 1.30),  # soft float: F code becomes I/M/B
    "rv32imafc": (1.03, 1.06, 1.08, 1.12),
    "rv32ec": (0.0, 1.55, 1.30, 1.38),
}

# Static soft-float library expansion per FPU-less core.
_SOFTFLOAT_EXPANSION: Dict[str, SoftFloatExpansion] = {
    "rv32imc": SoftFloatExpansion(i_per_f=2.4, m_per_f=0.9, b_per_f=0.65),
    "rv32ec": SoftFloatExpansion(i_per_f=2.8, m_per_f=1.0, b_per_f=0.75),
}

_INT_COSTS: Dict[str, IntCostTable] = {
    # E31: pipelined MUL has a 2-cycle result latency, DIV is iterative.
    "rv32imc": IntCostTable(imul=2.0, idiv=7.0, call=3.0),
    "rv32imafc": IntCostTable(imul=1.0, idiv=7.0, call=3.0),
    # RV32E without M: MUL is a shift/add loop, DIV a full soft routine.
    "rv32ec": IntCostTable(imul=14.0, idiv=44.0, call=4.0),
}


class RiscVBackend(ArchBackend):
    """RV32 embedded cores: soft-float, SP-FPU, and minimum-footprint."""

    name = "riscv"
    description = "RV32 embedded cores (E31-class, SP-FPU, RV32E LP)"

    def archs(self) -> Tuple[ArchSpec, ...]:
        return (RV32IMC, RV32IMAFC, RV32EC)

    def characterization(self) -> Tuple[str, ...]:
        return ("rv32imc", "rv32imafc", "rv32ec")

    def float_cpi(self, arch: ArchSpec, scalar: ScalarType) -> Mapping[str, float]:
        has_m = arch.has_hw_divide  # the M extension brings MUL and DIV
        if scalar.is_fixed:
            return _FIXED_RV if has_m else _FIXED_RVE
        if scalar.kind == "f32":
            if arch.fpu.single:
                return _HW_F32_RV
            return _SOFT_F32_RV if has_m else _SOFT_F32_RVE
        # f64: no RV32 core here has the D extension.
        if arch.fpu.single:
            # Soft doubles with SP-hardware-assisted helper routines.
            return {k: max(1, int(v * 0.85)) for k, v in _SOFT_F64_RV.items()}
        return _SOFT_F64_RV if has_m else _SOFT_F64_RVE

    def int_costs(self, arch: ArchSpec) -> IntCostTable:
        return _INT_COSTS[arch.base_name]

    def fetch_fraction(self, arch: ArchSpec) -> float:
        # RV32C code is slightly less dense than Thumb-2: a few more
        # fetch words per hundred instructions.
        return 0.38

    def static_factors(self, core: str) -> Tuple[float, float, float, float]:
        return _ARCH_FACTORS[core]

    def softfloat_static_expansion(
        self, core: str
    ) -> Optional[SoftFloatExpansion]:
        return _SOFTFLOAT_EXPANSION.get(core)


BACKEND = register_backend(RiscVBackend())
