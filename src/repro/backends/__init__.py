"""Multi-ISA architecture backends.

``repro.backends`` owns every architecture constant in the repo: which
cores exist, their CPI tables, cache/wait-state policies, and static-mix
factors.  The pricing models in :mod:`repro.mcu` are generic over the
:class:`ArchBackend` interface and resolve their constants through this
registry (a lint rule — ``arch-constants`` — rejects CPI/power tables
defined anywhere else).

Importing this package registers the built-in backends: the Cortex-M
fleet the paper measures on and an RV32 family for cross-ISA studies.
See ``docs/backends.md`` for the interface contract and how to add an
ISA.
"""

from repro.backends.base import (
    ArchBackend,
    ArchKeyError,
    ArchTables,
    BranchCostTable,
    IntCostTable,
    SoftFloatExpansion,
    all_archs,
    arch_names,
    backend_for,
    backend_names,
    characterization_archs,
    get_arch,
    get_backend,
    list_backends,
    register_backend,
)

# Importing the built-in backend modules runs their register_backend()
# calls; registration order fixes arch_names() / characterization order.
from repro.backends import cortex_m as _cortex_m  # noqa: F401,E402
from repro.backends import riscv as _riscv  # noqa: F401,E402

__all__ = [
    "ArchBackend",
    "ArchKeyError",
    "ArchTables",
    "BranchCostTable",
    "IntCostTable",
    "SoftFloatExpansion",
    "all_archs",
    "arch_names",
    "backend_for",
    "backend_names",
    "characterization_archs",
    "get_arch",
    "get_backend",
    "list_backends",
    "register_backend",
]
