"""Mission definitions and task-level metrics for closed-loop evaluation.

The roadmap's question: kernel timing tells only part of the story — what
matters when closing the loop is *task-level* performance: disturbance
rejection, path error, completion rate, and energy per mission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

#: The registered mission names, in canonical order.  This tuple is the
#: single source of truth for every layer that enumerates missions (the
#: CLI choices, fault campaigns, the query service).
MISSION_NAMES = ("hover", "waypoints", "steer")


@dataclass(frozen=True)
class MissionSpec:
    """What to fly: a registered mission on one core.

    The closed-loop counterpart of :class:`~repro.core.experiment.SweepSpec`
    and the fault layer's campaign spec — the canonical, hashable
    description of one mission run that ``repro.api.run_mission`` and the
    query service accept.
    """

    mission: str = "hover"
    arch: str = "m33"

    def validated(self) -> "MissionSpec":
        """Return self after checking the mission name is registered."""
        if self.mission not in MISSION_NAMES:
            raise KeyError(
                f"unknown mission {self.mission!r}; available: {MISSION_NAMES}"
            )
        return self


def make_mission(name: str):
    """Instantiate a registered mission by name (see :data:`MISSION_NAMES`)."""
    if name == "hover":
        return HoverMission()
    if name == "waypoints":
        return WaypointMission()
    if name == "steer":
        return SteeringCourse()
    raise KeyError(f"unknown mission {name!r}; available: {MISSION_NAMES}")


def control_period_s(mission_name: str) -> float:
    """The control-loop period each mission's runner steps at (seconds)."""
    return 1.0 / (200.0 if mission_name == "steer" else 2000.0)


@dataclass(frozen=True)
class MissionResult:
    """Task-level outcome plus the compute cost of achieving it."""

    name: str
    completed: bool
    duration_s: float
    #: RMS distance to the reference path/setpoint over the mission (m).
    path_error_rms_m: float
    #: Worst-case excursion from the reference (m).
    path_error_max_m: float
    #: Compute energy spent by the autonomy stack over the mission (J).
    compute_energy_j: float
    #: Average compute latency per control period (s).
    compute_latency_s: float
    #: Fraction of control periods whose compute met the deadline.
    deadline_hit_rate: float
    #: Effective control rate actually achieved (Hz).
    effective_rate_hz: float
    #: Control steps whose compute overran the loop period.
    overruns: int = 0
    #: Worst single-step compute latency observed (s).
    worst_latency_s: float = 0.0
    #: Fault that terminated the mission early (e.g. "brownout_reset"),
    #: None when the mission ran to its natural end or aborted on error.
    aborted_by: Optional[str] = None
    #: Fault injections that occurred during the mission.
    fault_events: int = 0

    @property
    def compute_energy_mj(self) -> float:
        return self.compute_energy_j * 1e3

    @property
    def time_to_failure_s(self) -> Optional[float]:
        """Mission time at which flight was lost (None if completed)."""
        return None if self.completed else self.duration_s

    @property
    def energy_to_abort_j(self) -> Optional[float]:
        """Compute energy burned before losing flight (None if completed)."""
        return None if self.completed else self.compute_energy_j


@dataclass
class HoverMission:
    """Hold position at a setpoint under stroke disturbance."""

    name: str = "hover-hold"
    duration_s: float = 0.5
    setpoint: np.ndarray = field(default_factory=lambda: np.array([0.0, 0.0, 0.3]))
    #: Mission succeeds when the RMS position error stays below this.
    success_rms_m: float = 0.05
    #: And no excursion beyond this (a crash / flyaway bound).
    abort_error_m: float = 0.5
    #: Steady-state attitude must settle below this (a tumbling body that
    #: happens to hover on average is not a success).
    max_steady_tilt_rad: float = 0.26

    def reference(self, t: float) -> np.ndarray:
        return self.setpoint


@dataclass
class WaypointMission:
    """Traverse a short sequence of waypoints (flapping-wing)."""

    name: str = "waypoints"
    duration_s: float = 1.2
    waypoints: tuple = (
        (0.0, 0.0, 0.3),
        (0.15, 0.0, 0.35),
        (0.15, 0.15, 0.3),
    )
    success_rms_m: float = 0.09
    abort_error_m: float = 0.6
    max_steady_tilt_rad: float = 0.35

    def reference(self, t: float) -> np.ndarray:
        """Piecewise-constant waypoint schedule."""
        idx = min(int(t / (self.duration_s / len(self.waypoints))),
                  len(self.waypoints) - 1)
        return np.asarray(self.waypoints[idx], dtype=np.float64)


@dataclass
class SteeringCourse:
    """Water-strider heading course: follow a heading profile."""

    name: str = "steering-course"
    duration_s: float = 2.0
    turn_rate_rad_s: float = 1.2
    success_rms_rad: float = 0.25
    abort_error_rad: float = 1.5

    def reference(self, t: float) -> float:
        """Heading reference: straight, then a constant-rate turn."""
        if t < 0.5:
            return 0.0
        return self.turn_rate_rad_s * (t - 0.5)


def score_trajectory(
    errors: np.ndarray,
    abort_threshold: float,
    success_rms: float,
) -> dict:
    """Common task scoring: completion + RMS/max error."""
    max_err = float(np.max(errors)) if len(errors) else float("inf")
    rms = float(np.sqrt(np.mean(errors**2))) if len(errors) else float("inf")
    aborted = max_err > abort_threshold
    return {
        "completed": (not aborted) and rms <= success_rms,
        "rms": rms,
        "max": max_err,
    }
