"""Mission definitions and task-level metrics for closed-loop evaluation.

The roadmap's question: kernel timing tells only part of the story — what
matters when closing the loop is *task-level* performance: disturbance
rejection, path error, completion rate, and energy per mission.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


class MissionKeyError(KeyError):
    """An unregistered mission name, with a nearest-match suggestion.

    The closed-loop counterpart of
    :class:`~repro.core.experiment.ResultKeyError`: raised instead of a
    bare ``KeyError`` so callers (the CLI, fault campaigns, the query
    service) can catch the lookup failure specifically, and so the
    message names the closest registered mission rather than echoing an
    opaque string.
    """

    def __init__(self, requested: str, suggestion: Optional[str] = None):
        self.requested = requested
        self.suggestion = suggestion
        message = (
            f"unknown mission {requested!r}; available: {mission_names()}"
        )
        if suggestion is not None:
            message += f" (did you mean {suggestion!r}?)"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its arg; keep the prose.
        return self.args[0]


@dataclass(frozen=True)
class MissionEntry:
    """One registered mission: how to build it and how to fly it."""

    #: Registry name, e.g. ``"hover"``.
    name: str
    #: Zero-argument factory returning a fresh mission object.
    factory: Callable[[], object]
    #: Control-loop rate the mission's runner steps at (Hz).
    control_rate_hz: float = 2000.0
    #: Which runner flies it: ``"flapping"`` or ``"strider"``.
    runner: str = "flapping"


#: The mission registry, in registration order.  Built-ins register at
#: import below; Tier-B generated missions (``repro.scenarios``) and
#: custom studies register through :func:`register_mission`.
_MISSIONS: Dict[str, MissionEntry] = {}

#: Runner kinds :func:`register_mission` accepts.
_RUNNER_KINDS = ("flapping", "strider")


def register_mission(
    name: str,
    factory: Callable[[], object],
    *,
    control_rate_hz: float = 2000.0,
    runner: str = "flapping",
    replace: bool = False,
) -> MissionEntry:
    """Register a mission so every layer can enumerate and fly it.

    The single source of truth the CLI choices, fault campaigns, and the
    query service all read: registering here is the only step a new
    mission type needs to become sweepable everywhere.

    Args:
        name: Registry key (also the ``MissionSpec.mission`` value).
        factory: Zero-argument callable building a fresh mission object.
        control_rate_hz: The runner's control-loop rate for this mission.
        runner: ``"flapping"`` or ``"strider"``.
        replace: Allow overwriting an existing registration.

    Returns:
        The stored :class:`MissionEntry`.
    """
    if not name:
        raise ValueError("mission name must be non-empty")
    if runner not in _RUNNER_KINDS:
        raise ValueError(
            f"unknown runner kind {runner!r}; available: {_RUNNER_KINDS}"
        )
    if control_rate_hz <= 0:
        raise ValueError(f"control_rate_hz must be positive, got {control_rate_hz!r}")
    if name in _MISSIONS and not replace:
        raise ValueError(
            f"mission {name!r} is already registered (pass replace=True)"
        )
    entry = MissionEntry(
        name=name, factory=factory,
        control_rate_hz=float(control_rate_hz), runner=runner,
    )
    _MISSIONS[name] = entry
    return entry


def unregister_mission(name: str) -> None:
    """Remove a registered mission (built-ins included; use with care)."""
    _MISSIONS.pop(name, None)


def mission_names() -> Tuple[str, ...]:
    """Every registered mission name, in registration order."""
    return tuple(_MISSIONS)


def mission_entry(name: str) -> MissionEntry:
    """The registry entry for ``name``; raises :class:`MissionKeyError`."""
    entry = _MISSIONS.get(name)
    if entry is None:
        near = difflib.get_close_matches(name, mission_names(), n=1, cutoff=0.0)
        raise MissionKeyError(name, near[0] if near else None)
    return entry


@dataclass(frozen=True)
class MissionSpec:
    """What to fly: a registered mission on one core.

    The closed-loop counterpart of :class:`~repro.core.experiment.SweepSpec`
    and the fault layer's campaign spec — the canonical, hashable
    description of one mission run that ``repro.api.run_mission`` and the
    query service accept.
    """

    mission: str = "hover"
    arch: str = "m33"

    def validated(self) -> "MissionSpec":
        """Return self after checking the mission name is registered.

        Raises:
            MissionKeyError: Unregistered name, carrying the requested
                name and the nearest registered match.
        """
        mission_entry(self.mission)
        return self


def make_mission(name: str):
    """Instantiate a registered mission by name (see :func:`mission_names`)."""
    return mission_entry(name).factory()


def control_period_s(mission_name: str) -> float:
    """The control-loop period each mission's runner steps at (seconds)."""
    return 1.0 / mission_entry(mission_name).control_rate_hz


@dataclass(frozen=True)
class MissionResult:
    """Task-level outcome plus the compute cost of achieving it."""

    name: str
    completed: bool
    duration_s: float
    #: RMS distance to the reference path/setpoint over the mission (m).
    path_error_rms_m: float
    #: Worst-case excursion from the reference (m).
    path_error_max_m: float
    #: Compute energy spent by the autonomy stack over the mission (J).
    compute_energy_j: float
    #: Average compute latency per control period (s).
    compute_latency_s: float
    #: Fraction of control periods whose compute met the deadline.
    deadline_hit_rate: float
    #: Effective control rate actually achieved (Hz).
    effective_rate_hz: float
    #: Control steps whose compute overran the loop period.
    overruns: int = 0
    #: Worst single-step compute latency observed (s).
    worst_latency_s: float = 0.0
    #: Fault that terminated the mission early (e.g. "brownout_reset"),
    #: None when the mission ran to its natural end or aborted on error.
    aborted_by: Optional[str] = None
    #: Fault injections that occurred during the mission.
    fault_events: int = 0

    @property
    def compute_energy_mj(self) -> float:
        return self.compute_energy_j * 1e3

    @property
    def time_to_failure_s(self) -> Optional[float]:
        """Mission time at which flight was lost (None if completed)."""
        return None if self.completed else self.duration_s

    @property
    def energy_to_abort_j(self) -> Optional[float]:
        """Compute energy burned before losing flight (None if completed)."""
        return None if self.completed else self.compute_energy_j


@dataclass
class HoverMission:
    """Hold position at a setpoint under stroke disturbance."""

    name: str = "hover-hold"
    duration_s: float = 0.5
    setpoint: np.ndarray = field(default_factory=lambda: np.array([0.0, 0.0, 0.3]))
    #: Mission succeeds when the RMS position error stays below this.
    success_rms_m: float = 0.05
    #: And no excursion beyond this (a crash / flyaway bound).
    abort_error_m: float = 0.5
    #: Steady-state attitude must settle below this (a tumbling body that
    #: happens to hover on average is not a success).
    max_steady_tilt_rad: float = 0.26

    def reference(self, t: float) -> np.ndarray:
        return self.setpoint


@dataclass
class WaypointMission:
    """Traverse a short sequence of waypoints (flapping-wing)."""

    name: str = "waypoints"
    duration_s: float = 1.2
    waypoints: tuple = (
        (0.0, 0.0, 0.3),
        (0.15, 0.0, 0.35),
        (0.15, 0.15, 0.3),
    )
    success_rms_m: float = 0.09
    abort_error_m: float = 0.6
    max_steady_tilt_rad: float = 0.35

    def reference(self, t: float) -> np.ndarray:
        """Piecewise-constant waypoint schedule."""
        idx = min(int(t / (self.duration_s / len(self.waypoints))),
                  len(self.waypoints) - 1)
        return np.asarray(self.waypoints[idx], dtype=np.float64)


@dataclass
class SteeringCourse:
    """Water-strider heading course: follow a heading profile."""

    name: str = "steering-course"
    duration_s: float = 2.0
    turn_rate_rad_s: float = 1.2
    success_rms_rad: float = 0.25
    abort_error_rad: float = 1.5

    def reference(self, t: float) -> float:
        """Heading reference: straight, then a constant-rate turn."""
        if t < 0.5:
            return 0.0
        return self.turn_rate_rad_s * (t - 0.5)


# The paper's built-in missions.  Registration order is canonical:
# every enumeration (CLI choices, campaign grids, docs) lists them so.
register_mission("hover", HoverMission, control_rate_hz=2000.0,
                 runner="flapping")
register_mission("waypoints", WaypointMission, control_rate_hz=2000.0,
                 runner="flapping")
register_mission("steer", SteeringCourse, control_rate_hz=200.0,
                 runner="strider")

#: The built-in mission names, frozen at import in registration order.
#: Dynamic enumeration — which also sees missions registered later via
#: :func:`register_mission` — is :func:`mission_names`.
MISSION_NAMES = mission_names()


def score_trajectory(
    errors: np.ndarray,
    abort_threshold: float,
    success_rms: float,
) -> dict:
    """Common task scoring: completion + RMS/max error."""
    max_err = float(np.max(errors)) if len(errors) else float("inf")
    rms = float(np.sqrt(np.mean(errors**2))) if len(errors) else float("inf")
    aborted = max_err > abort_threshold
    return {
        "completed": (not aborted) and rms <= success_rms,
        "rms": rms,
        "max": max_err,
    }
