"""Lightweight insect-scale dynamics simulators.

The paper's long-term roadmap (Section VI.E): "extend EntoBench with an
open insect-scale simulator that plugs into the current evaluation
harness", so controllers run end-to-end while the framework logs both
compute cost and task-level metrics.  This module provides that simulator
for two representative platforms:

* :class:`FlappingWingBody` — a RoboBee-class 3D rigid body: thrust along
  the body z-axis, three body moments, stroke-synchronous disturbance
  forces, and rigid-body rotational dynamics.
* :class:`WaterStrider`    — a GammaBot-class planar surface vehicle:
  surge force and yaw torque against quadratic drag on the water surface.

Simulators are *environment*, not kernel: their integration cost is never
recorded on the operation counters.  They expose noisy onboard-style
sensor readouts so estimation kernels see realistic inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

GRAVITY = 9.81


def _hat(v: np.ndarray) -> np.ndarray:
    return np.array(
        [[0.0, -v[2], v[1]], [v[2], 0.0, -v[0]], [-v[1], v[0], 0.0]]
    )


def _expm_so3(w: np.ndarray) -> np.ndarray:
    angle = float(np.linalg.norm(w))
    if angle < 1e-12:
        return np.eye(3)
    axis = w / angle
    k = _hat(axis)
    return np.eye(3) + np.sin(angle) * k + (1 - np.cos(angle)) * (k @ k)


@dataclass
class RigidBodyState:
    """Full state of the flapping-wing body."""

    pos: np.ndarray = field(default_factory=lambda: np.zeros(3))
    vel: np.ndarray = field(default_factory=lambda: np.zeros(3))
    rot: np.ndarray = field(default_factory=lambda: np.eye(3))  # body->world
    omega: np.ndarray = field(default_factory=lambda: np.zeros(3))  # body rates

    def copy(self) -> "RigidBodyState":
        return RigidBodyState(self.pos.copy(), self.vel.copy(),
                              self.rot.copy(), self.omega.copy())

    @property
    def tilt_rad(self) -> float:
        return float(np.arccos(np.clip(self.rot[2, 2], -1.0, 1.0)))


class FlappingWingBody:
    """RoboBee-class rigid body with stroke-coupled disturbances."""

    def __init__(
        self,
        mass: float = 8.0e-5,
        inertia_diag: tuple = (1.4e-9, 1.4e-9, 0.5e-9),
        stroke_freq_hz: float = 120.0,
        disturbance_force: float = 2.0e-5,
        drag_lin: float = 2.0e-4,
        drag_rot: float = 2.0e-9,
        seed: int = 0,
    ):
        self.mass = mass
        self.j = np.diag(inertia_diag)
        self.j_inv = np.linalg.inv(self.j)
        self.stroke_freq = stroke_freq_hz
        self.disturbance_force = disturbance_force
        self.drag_lin = drag_lin
        self.drag_rot = drag_rot
        self._rng = np.random.default_rng(seed)
        self.state = RigidBodyState()
        self.t = 0.0

    def reset(self, tilt_rad: float = 0.0, tilt_axis: Optional[np.ndarray] = None,
              pos: Optional[np.ndarray] = None) -> RigidBodyState:
        self.state = RigidBodyState()
        self.t = 0.0
        if pos is not None:
            self.state.pos = np.asarray(pos, dtype=np.float64).copy()
        if tilt_rad:
            axis = tilt_axis if tilt_axis is not None else np.array([1.0, 0.0, 0.0])
            axis = axis / np.linalg.norm(axis)
            self.state.rot = _expm_so3(axis * tilt_rad)
        return self.state.copy()

    def step(self, thrust: float, moment: np.ndarray, dt: float) -> RigidBodyState:
        """Advance the body by one control period under (thrust, moment)."""
        s = self.state
        # Stroke-synchronous lateral disturbance plus broadband buffeting.
        phase = 2 * np.pi * self.stroke_freq * self.t
        disturbance = self.disturbance_force * np.array(
            [np.sin(phase), np.cos(phase), 0.15 * np.sin(2 * phase)]
        )
        disturbance += self._rng.normal(0.0, 0.2 * self.disturbance_force, 3)

        force_world = (
            thrust * s.rot[:, 2]
            - np.array([0.0, 0.0, self.mass * GRAVITY])
            + disturbance
            - self.drag_lin * s.vel
        )
        acc = force_world / self.mass
        s.vel = s.vel + acc * dt
        s.pos = s.pos + s.vel * dt

        torque = (
            np.asarray(moment, dtype=np.float64)
            - np.cross(s.omega, self.j @ s.omega)
            - self.drag_rot * s.omega
        )
        s.omega = s.omega + (self.j_inv @ torque) * dt
        s.rot = s.rot @ _expm_so3(s.omega * dt)
        self.t += dt
        return s.copy()

    # -- onboard-style sensor readouts ------------------------------------

    def read_imu(self, gyro_noise: float = 0.02, accel_noise: float = 0.02):
        """(gyro rad/s, specific force in g) with sensor noise."""
        s = self.state
        gyro = s.omega + self._rng.normal(0.0, gyro_noise, 3)
        # Specific force in the body frame (normalized to g units).
        f_world = np.array([0.0, 0.0, 1.0])  # hover-dominated approximation
        accel = s.rot.T @ f_world + self._rng.normal(0.0, accel_noise, 3)
        return gyro, accel

    def read_tof(self, noise: float = 0.003) -> float:
        """Downward range along the body axis."""
        s = self.state
        cos_tilt = max(float(s.rot[2, 2]), 0.2)
        return max(s.pos[2], 0.0) / cos_tilt + self._rng.normal(0.0, noise)


@dataclass
class StriderState:
    """Planar surface-vehicle state: position, heading, surge, yaw rate."""

    x: float = 0.0
    y: float = 0.0
    heading: float = 0.0
    surge: float = 0.0
    yaw_rate: float = 0.0

    def copy(self) -> "StriderState":
        return StriderState(self.x, self.y, self.heading, self.surge, self.yaw_rate)

    @property
    def pos(self) -> np.ndarray:
        return np.array([self.x, self.y])


class WaterStrider:
    """GammaBot-class planar vehicle on the water surface."""

    def __init__(
        self,
        mass: float = 0.55e-3,
        inertia: float = 3.0e-8,
        drag_surge: float = 2.5e-3,
        drag_yaw: float = 6.0e-8,
        seed: int = 0,
    ):
        self.mass = mass
        self.inertia = inertia
        self.drag_surge = drag_surge
        self.drag_yaw = drag_yaw
        self._rng = np.random.default_rng(seed)
        self.state = StriderState()
        self.t = 0.0

    def reset(self, x: float = 0.0, y: float = 0.0, heading: float = 0.0) -> StriderState:
        self.state = StriderState(x=x, y=y, heading=heading)
        self.t = 0.0
        return self.state.copy()

    def step(self, surge_force: float, yaw_torque: float, dt: float) -> StriderState:
        s = self.state
        # Surface ripple disturbance.
        ripple = self._rng.normal(0.0, 0.05e-3)
        surge_acc = (surge_force + ripple - self.drag_surge * s.surge) / self.mass
        yaw_acc = (yaw_torque - self.drag_yaw * s.yaw_rate) / self.inertia
        s.surge += surge_acc * dt
        s.yaw_rate += yaw_acc * dt
        s.heading += s.yaw_rate * dt
        s.x += s.surge * np.cos(s.heading) * dt
        s.y += s.surge * np.sin(s.heading) * dt
        self.t += dt
        return s.copy()

    def read_compass(self, noise: float = 0.02) -> float:
        return float(self.state.heading + self._rng.normal(0.0, noise))

    def read_gyro_z(self, noise: float = 0.03) -> float:
        return float(self.state.yaw_rate + self._rng.normal(0.0, noise))
