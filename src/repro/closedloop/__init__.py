"""Closed-loop evaluation: insect-scale simulators + mission scoring.

The paper's Section VI.E roadmap, implemented: controllers run end-to-end
against lightweight dynamics simulators while the framework logs both the
compute cost (via the MCU models) and task-level metrics (path error,
completion rate, energy per mission).
"""

from repro.closedloop.missions import (
    HoverMission,
    MissionResult,
    SteeringCourse,
    WaypointMission,
)
from repro.closedloop.runner import (
    FlappingWingRunner,
    MissionFaultHook,
    StriderRunner,
)
from repro.closedloop.simulator import FlappingWingBody, WaterStrider

__all__ = [
    "HoverMission",
    "MissionResult",
    "SteeringCourse",
    "WaypointMission",
    "FlappingWingRunner",
    "MissionFaultHook",
    "StriderRunner",
    "FlappingWingBody",
    "WaterStrider",
]
