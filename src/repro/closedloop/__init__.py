"""Closed-loop evaluation: insect-scale simulators + mission scoring.

The paper's Section VI.E roadmap, implemented: controllers run end-to-end
against lightweight dynamics simulators while the framework logs both the
compute cost (via the MCU models) and task-level metrics (path error,
completion rate, energy per mission).
"""

from repro.closedloop.missions import (
    MISSION_NAMES,
    HoverMission,
    MissionEntry,
    MissionKeyError,
    MissionResult,
    MissionSpec,
    SteeringCourse,
    WaypointMission,
    control_period_s,
    make_mission,
    mission_entry,
    mission_names,
    register_mission,
    unregister_mission,
)
from repro.closedloop.runner import (
    FlappingWingRunner,
    MissionFaultHook,
    StriderRunner,
    make_runner,
)
from repro.closedloop.simulator import FlappingWingBody, WaterStrider

__all__ = [
    "MISSION_NAMES",
    "HoverMission",
    "MissionEntry",
    "MissionKeyError",
    "MissionResult",
    "MissionSpec",
    "SteeringCourse",
    "WaypointMission",
    "control_period_s",
    "make_mission",
    "make_runner",
    "mission_entry",
    "mission_names",
    "register_mission",
    "unregister_mission",
    "FlappingWingRunner",
    "MissionFaultHook",
    "StriderRunner",
    "FlappingWingBody",
    "WaterStrider",
]
