"""Closed-loop evaluation runner.

Wires a full autonomy stack — estimation kernel + control kernel — against
an insect-scale dynamics simulator, while pricing every control step's
operation trace on a simulated core.  This answers the questions the paper
says kernel timing alone cannot (Section VI.E):

* **Task-level metrics**: path error, completion rate, energy per mission.
* **Compute-task coupling**: if a control step's compute latency exceeds
  the loop period on the chosen core, the next update is simply late — the
  runner degrades the effective control rate accordingly, so an
  underpowered MCU shows up as *worse flight*, not just a bigger number in
  a table.

The physics integrates at a fine fixed step; the autonomy stack runs at
its own (possibly compute-limited) rate, with zero-order-hold commands in
between — exactly how a bare-metal control loop behaves when it overruns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.attitude.filters import Mahony
from repro.closedloop.missions import (
    HoverMission,
    MissionResult,
    SteeringCourse,
    score_trajectory,
)
from repro.closedloop.simulator import FlappingWingBody, WaterStrider
from repro.control.geometric import GeometricController
from repro.control.smac import SlidingModeAdaptiveController
from repro.mcu.arch import ArchSpec, M33
from repro.mcu.cache import CACHE_ON, CacheConfig, CacheModel
from repro.mcu.energy import EnergyModel
from repro.mcu.ops import ALL_KINDS, OpCounter, OpTrace
from repro.mcu.pipeline import PipelineModel
from repro.obs import get_metrics, get_tracer
from repro.scalar import F32, ScalarType

#: Flash/working-set footprints used to price the closed-loop stack.
STACK_CODE_BYTES = 40_000
STACK_DATA_BYTES = 6_000


@dataclass
class ComputeLog:
    """Accumulated compute cost over a mission."""

    energy_j: float = 0.0
    latency_sum_s: float = 0.0
    steps: int = 0
    deadline_hits: int = 0
    #: Control steps whose compute exceeded the loop period, and the worst
    #: single-step latency seen — the attribution data overrun-degradation
    #: telemetry reports.
    overruns: int = 0
    worst_latency_s: float = 0.0

    def record(self, latency_s: float, energy_j: float, period_s: float) -> None:
        self.energy_j += energy_j
        self.latency_sum_s += latency_s
        self.steps += 1
        if latency_s <= period_s:
            self.deadline_hits += 1
        else:
            self.overruns += 1
        self.worst_latency_s = max(self.worst_latency_s, latency_s)

    @property
    def mean_latency_s(self) -> float:
        return self.latency_sum_s / max(self.steps, 1)

    @property
    def deadline_hit_rate(self) -> float:
        return self.deadline_hits / max(self.steps, 1)


class MissionFaultHook:
    """Per-step fault-injection interface the mission runners accept.

    The runners stay ignorant of fault semantics: a hook (usually built by
    ``repro.faults``) transforms sensor readings, adjusts the priced
    (latency, energy) of a control step, and may declare the platform dead
    (a brownout reset).  This no-op base doubles as the protocol
    definition; with ``fault_hook=None`` the runners' arithmetic is
    bit-identical to the fault-free original.
    """

    #: Injection event dicts appended by subclasses (step, kind, ...).
    events: List[dict]

    def __init__(self) -> None:
        self.events = []

    def log(self, kind: str, step: int, t: float, **detail) -> dict:
        event = {"kind": kind, "step": step, "t_s": round(t, 9), **detail}
        self.events.append(event)
        return event

    def on_imu(self, step: int, t: float, gyro, accel):
        """Transform one IMU sample (flapping-wing stack)."""
        return gyro, accel

    def on_heading(self, step: int, t: float, heading: float, rate: float):
        """Transform one compass/gyro-z sample (strider stack)."""
        return heading, rate

    def on_price(self, step: int, t: float, latency_s: float, energy_j: float):
        """Adjust the priced cost of one control step (throttle, sag...)."""
        return latency_s, energy_j

    def abort_reason(self, step: int, t: float) -> Optional[str]:
        """Non-None kills the platform at this instant (brownout reset)."""
        return None


def _mission_track(tracer, mission_name: str) -> str:
    """Timeline lane for one mission run's sim-time spans.

    A campaign driver may pre-select a distinct lane per cell by setting
    ``tracer.track`` (e.g. ``mission:hover/m33 s=0.5``); a standalone run
    defaults to ``mission:<name>``.
    """
    return tracer.track if tracer.track != "main" else f"mission:{mission_name}"


def _emit_step_obs(tracer, track: str, step_idx: int, t: float,
                   latency_s: float, est_frac: float, energy_j: float,
                   period_s: float) -> None:
    """Sim-time spans for one control step: step + estimate/control split.

    All times are mission (simulated) seconds, so the emitted spans are
    byte-identical across runs.  ``est_frac`` is the estimation phase's
    share of the step's priced latency (0 when the stack has no separate
    estimator); the step span carries zero self time so phase reports
    attribute cost to the estimate/control children.
    """
    end = t + latency_s
    split = t + latency_s * est_frac
    tracer.add_span("mission.step", t, end, cat="mission", track=track,
                    self_s=0.0, step=step_idx,
                    energy_uj=round(energy_j * 1e6, 6))
    if est_frac > 0.0:
        tracer.add_span("mission.estimate", t, split, cat="mission",
                        track=track, depth=1, step=step_idx)
    tracer.add_span("mission.control", split, end, cat="mission",
                    track=track, depth=1, step=step_idx)
    if latency_s > period_s:
        tracer.instant("mission.overrun", t_s=t, cat="mission", track=track,
                       step=step_idx, latency_us=round(latency_s * 1e6, 3))


def _emit_mission_obs(tracer, metrics, track: str, mission_name: str,
                      arch_name: str, duration_s: float, completed: bool,
                      log: ComputeLog, fault_hook) -> None:
    """Mission-level span, fault-injection instants, and metrics."""
    if tracer.enabled:
        tracer.add_span(
            "mission.run", 0.0, duration_s, cat="mission", track=track,
            self_s=0.0, mission=mission_name, arch=arch_name,
            completed=completed, overruns=log.overruns, steps=log.steps,
            compute_energy_uj=round(log.energy_j * 1e6, 6),
        )
        if fault_hook is not None:
            for event in fault_hook.events:
                detail = {k: v for k, v in event.items()
                          if k not in ("kind", "t_s")}
                tracer.instant(f"fault.{event['kind']}", t_s=event["t_s"],
                               cat="faults", track=track, **detail)
    if metrics.enabled:
        metrics.inc("mission.runs")
        metrics.inc("mission.completed" if completed else "mission.failed")
        metrics.inc(f"mission.compute_energy_uj.{arch_name}",
                    log.energy_j * 1e6)
        metrics.inc("mission.overruns", log.overruns)
        if fault_hook is not None:
            metrics.inc("faults.injections", len(fault_hook.events))


def _emit_mission_telemetry(telemetry, mission_name: str, arch_name: str,
                            log: ComputeLog, fault_hook) -> None:
    """Overrun attribution + per-injection events, if a collector listens."""
    if telemetry is None:
        return
    telemetry.emit(
        "overrun_degraded",
        kernel=mission_name,
        arch=arch_name,
        count=log.overruns,
        worst_latency_us=round(log.worst_latency_s * 1e6, 3),
        steps=log.steps,
    )
    if fault_hook is not None:
        for event in fault_hook.events:
            detail = dict(event)
            fault_kind = detail.pop("kind", "")
            telemetry.emit(
                "fault_injected", kernel=mission_name, arch=arch_name,
                fault=fault_kind, **detail,
            )


class _StepPricer:
    """Prices one control step's trace on the target core.

    Steady-state missions execute the same op mix on almost every
    control step, so pricing is memoized on the trace's op-count tuple:
    the pipeline/energy models run once per *distinct* trace instead of
    once per step (the ROADMAP's "batch the mission-job price calls"
    follow-on).  Pricing is a pure function of the trace, so the memo
    is byte-identical to re-pricing — the runner's latency feedback
    loop (step latency gates the next control deadline) is untouched.
    """

    def __init__(self, arch: ArchSpec, cache: CacheConfig, scalar: ScalarType):
        self.arch = arch
        self.cache = cache
        self.scalar = scalar
        self.pipeline = PipelineModel(arch)
        self.energy = EnergyModel(arch)
        self.cache_activity = CacheModel(arch, cache).activity(
            STACK_CODE_BYTES, STACK_DATA_BYTES
        )
        self._memo: dict = {}

    def price(self, counter: OpCounter):
        """Price the counter's accumulated trace; returns (latency_s, energy_j)."""
        return self.price_trace(counter.snapshot())

    def price_trace(self, trace: OpTrace):
        """Price one explicit op-trace (used for per-phase attribution)."""
        key = tuple(getattr(trace, kind) for kind in ALL_KINDS)
        priced = self._memo.get(key)
        if priced is None:
            breakdown = self.pipeline.cycles(
                trace, self.scalar, self.cache,
                STACK_CODE_BYTES, STACK_DATA_BYTES,
            )
            report = self.energy.report(trace, breakdown, self.cache_activity)
            priced = self._memo[key] = (report.latency_s, report.energy_j)
        return priced


class FlappingWingRunner:
    """Hover / waypoint missions: Mahony attitude + SE(3) geometric control.

    Position and velocity come from external tracking (the lab's motion
    capture, as on real RoboBee flights); attitude is estimated onboard
    from the simulated IMU — the configuration most published flights use.
    """

    def __init__(
        self,
        arch: ArchSpec = M33,
        cache: CacheConfig = CACHE_ON,
        scalar: ScalarType = F32,
        control_rate_hz: float = 2000.0,
        physics_dt: float = 1.25e-4,
        kx: float = 0.045,
        kv: float = 0.009,
        kr: float = 3.2e-5,
        kw: float = 2.9e-7,
        seed: int = 0,
        fault_hook: Optional[MissionFaultHook] = None,
        telemetry=None,
    ):
        self.pricer = _StepPricer(arch, cache, scalar)
        self.arch = arch
        self.control_period = 1.0 / control_rate_hz
        self.physics_dt = physics_dt
        self.seed = seed
        self.kx = kx
        self.kv = kv
        self.kr = kr
        self.kw = kw
        self.scalar = scalar
        self.fault_hook = fault_hook
        self.telemetry = telemetry

    def run(self, mission: HoverMission) -> MissionResult:
        """Fly one hover/waypoint mission; returns its :class:`MissionResult`.

        When the process-wide tracer is enabled, every control step emits
        sim-time spans (``mission.step`` with ``mission.estimate`` /
        ``mission.control`` children) without perturbing any numeric
        result — the same counter and pricer drive the mission outcome.
        """
        body = FlappingWingBody(seed=self.seed)
        body.reset(tilt_rad=0.15, pos=mission.reference(0.0) + np.array([0.04, -0.03, -0.05]))
        filt = Mahony(scalar=self.scalar)
        ctrl = GeometricController(mass=body.mass, kx=self.kx, kv=self.kv,
                                   kr=self.kr, kw=self.kw)
        tracer = get_tracer()
        metrics = get_metrics()
        traced = tracer.enabled
        track = _mission_track(tracer, mission.name)
        log = ComputeLog()
        hook = self.fault_hook
        errors = []
        tilts = []
        thrust, moment = body.mass * 9.81, np.zeros(3)
        next_control_t = 0.0
        step_idx = 0
        aborted_by: Optional[str] = None

        t = 0.0
        while t < mission.duration_s:
            if t >= next_control_t:
                counter = OpCounter()
                gyro, accel = body.read_imu()
                if hook is not None:
                    gyro, accel = hook.on_imu(step_idx, t, gyro, accel)
                filt.update(gyro, accel, None, self.control_period, counter)
                est_trace = counter.snapshot() if traced else None
                r_est = _quat_to_matrix(filt.quaternion())
                ref = mission.reference(t)
                cmd = ctrl.compute(
                    counter,
                    body.state.pos, body.state.vel, r_est, body.state.omega,
                    ref, np.zeros(3), np.zeros(3),
                )
                thrust = float(np.clip(cmd.thrust, 0.0, 2.5 * body.mass * 9.81))
                moment = np.clip(cmd.moment, -6e-6, 6e-6)
                latency_s, energy_j = self.pricer.price(counter)
                raw_latency_s = latency_s
                if hook is not None:
                    latency_s, energy_j = hook.on_price(
                        step_idx, t, latency_s, energy_j
                    )
                log.record(latency_s, energy_j, self.control_period)
                if traced:
                    est_latency_s, _ = self.pricer.price_trace(est_trace)
                    est_frac = (min(est_latency_s / raw_latency_s, 1.0)
                                if raw_latency_s > 0 else 0.0)
                    _emit_step_obs(tracer, track, step_idx, t, latency_s,
                                   est_frac, energy_j, self.control_period)
                if metrics.enabled:
                    metrics.inc("mission.steps")
                    metrics.observe("mission.step_latency_us", latency_s * 1e6)
                    metrics.observe("mission.step_energy_uj", energy_j * 1e6)
                # Compute-limited rate: the next update can't start before
                # this one's computation has finished.
                next_control_t = t + max(self.control_period, latency_s)
                if hook is not None:
                    aborted_by = hook.abort_reason(step_idx, t)
                step_idx += 1
            if aborted_by is not None:
                break
            body.step(thrust, moment, self.physics_dt)
            t += self.physics_dt
            err = float(np.linalg.norm(body.state.pos - mission.reference(t)))
            errors.append(err)
            tilts.append(body.state.tilt_rad)
            if err > mission.abort_error_m:
                break

        score = score_trajectory(np.array(errors), mission.abort_error_m,
                                 mission.success_rms_m)
        # A tumbling body that hovers on average is not a success: the
        # steady-state attitude must settle.
        steady_tilt = float(np.mean(tilts[len(tilts) // 2 :])) if tilts else np.inf
        attitude_ok = steady_tilt <= mission.max_steady_tilt_rad
        _emit_mission_telemetry(self.telemetry, mission.name, self.arch.name,
                                log, hook)
        completed = score["completed"] and attitude_ok and aborted_by is None
        _emit_mission_obs(tracer, metrics, track, mission.name,
                          self.arch.name, t, completed, log, hook)
        return MissionResult(
            name=mission.name,
            completed=completed,
            duration_s=t,
            path_error_rms_m=score["rms"],
            path_error_max_m=score["max"],
            compute_energy_j=log.energy_j,
            compute_latency_s=log.mean_latency_s,
            deadline_hit_rate=log.deadline_hit_rate,
            effective_rate_hz=log.steps / max(t, 1e-9),
            overruns=log.overruns,
            worst_latency_s=log.worst_latency_s,
            aborted_by=aborted_by,
            fault_events=len(hook.events) if hook is not None else 0,
        )


class StriderRunner:
    """Heading-course missions: SMAC yaw control on the water strider."""

    def __init__(
        self,
        arch: ArchSpec = M33,
        cache: CacheConfig = CACHE_ON,
        scalar: ScalarType = F32,
        control_rate_hz: float = 200.0,
        physics_dt: float = 5e-4,
        surge_force: float = 1.2e-3,
        torque_scale: float = 4.0e-8,
        seed: int = 0,
        fault_hook: Optional[MissionFaultHook] = None,
        telemetry=None,
    ):
        self.pricer = _StepPricer(arch, cache, scalar)
        self.arch = arch
        self.control_period = 1.0 / control_rate_hz
        self.physics_dt = physics_dt
        self.surge_force = surge_force
        self.torque_scale = torque_scale
        self.seed = seed
        self.fault_hook = fault_hook
        self.telemetry = telemetry

    def run(self, mission: SteeringCourse) -> MissionResult:
        """Steer one heading course; returns its :class:`MissionResult`.

        Tracing mirrors :meth:`FlappingWingRunner.run`, except the strider
        stack has no separate estimator, so each ``mission.step`` span
        carries a single ``mission.control`` child.
        """
        strider = WaterStrider(seed=self.seed)
        strider.reset()
        ctrl = SlidingModeAdaptiveController(lam=10.0, eta=1.5, gamma=0.2)
        tracer = get_tracer()
        metrics = get_metrics()
        traced = tracer.enabled
        track = _mission_track(tracer, mission.name)
        log = ComputeLog()
        hook = self.fault_hook
        errors = []
        yaw_torque = 0.0
        next_control_t = 0.0
        step_idx = 0
        aborted_by: Optional[str] = None

        t = 0.0
        while t < mission.duration_s:
            if t >= next_control_t:
                counter = OpCounter()
                heading = strider.read_compass()
                rate = strider.read_gyro_z()
                if hook is not None:
                    heading, rate = hook.on_heading(step_idx, t, heading, rate)
                ref = mission.reference(t)
                ref_rate = (mission.reference(t + 1e-3) - ref) / 1e-3
                err = np.array([heading - ref, 0.0, 0.0])
                derr = np.array([rate - ref_rate, 0.0, 0.0])
                cmd = ctrl.compute(counter, t, self.control_period, err, derr)
                yaw_torque = float(np.clip(
                    cmd.u[0] * self.torque_scale, -3e-7, 3e-7
                ))
                latency_s, energy_j = self.pricer.price(counter)
                if hook is not None:
                    latency_s, energy_j = hook.on_price(
                        step_idx, t, latency_s, energy_j
                    )
                log.record(latency_s, energy_j, self.control_period)
                if traced:
                    _emit_step_obs(tracer, track, step_idx, t, latency_s,
                                   0.0, energy_j, self.control_period)
                if metrics.enabled:
                    metrics.inc("mission.steps")
                    metrics.observe("mission.step_latency_us", latency_s * 1e6)
                    metrics.observe("mission.step_energy_uj", energy_j * 1e6)
                next_control_t = t + max(self.control_period, latency_s)
                if hook is not None:
                    aborted_by = hook.abort_reason(step_idx, t)
                step_idx += 1
            if aborted_by is not None:
                break
            strider.step(self.surge_force, yaw_torque, self.physics_dt)
            t += self.physics_dt
            err_now = abs(strider.state.heading - mission.reference(t))
            errors.append(err_now)
            if err_now > mission.abort_error_rad:
                break

        score = score_trajectory(np.array(errors), mission.abort_error_rad,
                                 mission.success_rms_rad)
        _emit_mission_telemetry(self.telemetry, mission.name, self.arch.name,
                                log, hook)
        completed = score["completed"] and aborted_by is None
        _emit_mission_obs(tracer, metrics, track, mission.name,
                          self.arch.name, t, completed, log, hook)
        return MissionResult(
            name=mission.name,
            completed=completed,
            duration_s=t,
            path_error_rms_m=score["rms"],
            path_error_max_m=score["max"],
            compute_energy_j=log.energy_j,
            compute_latency_s=log.mean_latency_s,
            deadline_hit_rate=log.deadline_hit_rate,
            effective_rate_hz=log.steps / max(t, 1e-9),
            overruns=log.overruns,
            worst_latency_s=log.worst_latency_s,
            aborted_by=aborted_by,
            fault_events=len(hook.events) if hook is not None else 0,
        )


#: Runner-kind name -> runner class (see ``MissionEntry.runner``).
RUNNER_CLASSES = {
    "flapping": FlappingWingRunner,
    "strider": StriderRunner,
}


def make_runner(
    mission_name: str,
    arch_name: str = "m33",
    fault_hook: Optional[MissionFaultHook] = None,
    telemetry=None,
):
    """Build the runner that flies ``mission_name`` on core ``arch_name``.

    Reads the mission registry (:func:`~repro.closedloop.missions.mission_entry`)
    for the runner class and control rate, so the fault campaign planner,
    the query service, ``repro.api.run_mission``, and the scenario layer
    all fly a registered mission — built-in or generated — through one
    construction site.
    """
    from repro.closedloop.missions import mission_entry
    from repro.mcu.arch import get_arch

    arch = get_arch(arch_name)
    entry = mission_entry(mission_name)
    runner_cls = RUNNER_CLASSES[entry.runner]
    return runner_cls(arch=arch, control_rate_hz=entry.control_rate_hz,
                      fault_hook=fault_hook, telemetry=telemetry)


def _quat_to_matrix(q) -> np.ndarray:
    w, x, y, z = q
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )
