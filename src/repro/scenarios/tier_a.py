"""Tier A: the paper's real platforms, pinned as scenario specs.

The benchmark suite's anchor points — the RoboBee flapping-wing vehicle
in hover and on a waypoint tour, the water-strider steering course, and
the visual-odometry frontend pipeline — each expressed as a
:class:`~repro.scenarios.spec.ScenarioSpec` so campaign tooling treats
the reference platforms and Tier-B synthetics uniformly.  Tier A is a
fixed registry: the same four scenarios every time, regardless of seed.
"""

from __future__ import annotations

from typing import Tuple

from repro.scenarios.spec import ScenarioSet, ScenarioSpec


def _robobee_hover() -> ScenarioSpec:
    """RoboBee hover-hold with the full attitude + control stack."""
    return ScenarioSpec(
        name="robobee-hover",
        tier="a",
        arch="m4",
        mission={"kind": "hover", "name": "hover-hold", "duration_s": 0.5},
        kernels=("mahony", "bee-geom", "bee-ceekf"),
        scalar="f32",
    )


def _robobee_waypoints() -> ScenarioSpec:
    """RoboBee waypoint tour: the paper's trajectory-tracking mission."""
    return ScenarioSpec(
        name="robobee-waypoints",
        tier="a",
        arch="m4",
        mission={
            "kind": "tour",
            "name": "waypoints",
            "duration_s": 1.2,
            "waypoints": [
                [0.0, 0.0, 0.3],
                [0.15, 0.0, 0.35],
                [0.15, 0.15, 0.3],
            ],
        },
        kernels=("madgwick", "bee-smac"),
        scalar="f32",
    )


def _strider_course() -> ScenarioSpec:
    """Water-strider heading course on the smallest supported core."""
    return ScenarioSpec(
        name="strider-course",
        tier="a",
        arch="m0plus",
        mission={
            "kind": "steer",
            "name": "steering-course",
            "duration_s": 2.0,
            "turn_rate_rad_s": 1.2,
        },
        kernels=("fourati",),
        scalar="f32",
    )


def _vo_frontend() -> ScenarioSpec:
    """Visual-odometry frontend: kernel-only, no closed-loop mission."""
    return ScenarioSpec(
        name="vo-frontend",
        tier="a",
        arch="m7",
        mission=None,
        kernels=("fastbrief", "lkof", "p3p", "homography"),
        scalar="f32",
    )


#: Tier-A scenario factories, in canonical order.
_TIER_A = (
    _robobee_hover,
    _robobee_waypoints,
    _strider_course,
    _vo_frontend,
)


def tier_a_names() -> Tuple[str, ...]:
    """The Tier-A scenario names, in canonical order."""
    return tuple(factory().name for factory in _TIER_A)


def tier_a_set() -> ScenarioSet:
    """The full Tier-A scenario set (validated, deterministic)."""
    return ScenarioSet(
        scenarios=tuple(factory() for factory in _TIER_A),
        tier="a",
        seed=0,
        generator="tier-a-registry",
    ).validated()
