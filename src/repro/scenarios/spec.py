"""Scenario specs, sets, and their content addresses.

A *scenario* is one self-contained benchmark question: a mission profile
(what to fly), a kernel-config set (what to price), an arch (where), and
an optional fault at a severity (under what adversity) — all pinned by a
seed.  A :class:`ScenarioSet` is an ordered collection of scenarios plus
the provenance needed to regenerate it (tier, seed, generator id).

Content addressing uses the same canonical-JSON + sha256 scheme as the
engine's trace cache (:func:`repro.engine.planner.solve_key`) and the
service broker (:func:`repro.service.queries.query_key`): two scenario
sets with equal addresses describe byte-for-byte the same workload, which
is what makes campaign reports diffable with ``cmp`` and lets downstream
caches coalesce repeated studies.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Bumped when the scenario schema changes: a version bump changes every
#: content address, exactly like the trace cache's format version.
SCENARIO_FORMAT_VERSION = 1

#: The scenario tiers: ``"a"`` = the paper's real platforms, ``"b"`` =
#: seeded synthetic generation (see :mod:`repro.scenarios.generator`).
TIERS = ("a", "b")


def canonical_json(payload) -> str:
    """The repo's canonical JSON rendering: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_address(payload) -> str:
    """sha256 of the canonical JSON of ``payload``, 32 hex chars."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:32]


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario: mission profile + kernel configs + arch + fault.

    ``mission`` is a JSON-safe profile dict (see
    :mod:`repro.scenarios.profiles`) or ``None`` for kernel-only
    scenarios like the VO frontend.  ``kernels`` are registry names, all
    priced under ``scalar`` on ``arch`` — derated by ``fault`` at
    ``severity`` when the fault has an arch seam.
    """

    name: str
    tier: str = "b"
    arch: str = "m33"
    mission: Optional[dict] = None
    kernels: Tuple[str, ...] = ()
    scalar: str = "f32"
    fault: Optional[str] = None
    severity: float = 0.0
    seed: int = 0

    def validated(self) -> "ScenarioSpec":
        """Return self after checking every coordinate is registered.

        Raises ``ValueError``/``KeyError`` naming the offending field:
        unknown tiers, archs, kernels, faults, out-of-range severities,
        and malformed mission profiles all fail here, before any
        expansion work starts.
        """
        from repro.backends import arch_names
        from repro.core import registry
        from repro.scalar import parse_scalar
        from repro.scenarios.profiles import validate_profile

        if self.tier not in TIERS:
            raise ValueError(
                f"scenario {self.name!r}: unknown tier {self.tier!r}; "
                f"available: {TIERS}"
            )
        if self.arch not in arch_names():
            raise KeyError(
                f"scenario {self.name!r}: unknown arch {self.arch!r}; "
                f"available: {sorted(arch_names())}"
            )
        for kernel in self.kernels:
            if not registry.is_registered(kernel):
                raise KeyError(
                    f"scenario {self.name!r}: unknown kernel {kernel!r}"
                )
        parse_scalar(self.scalar)  # raises on malformed scalar names
        if self.fault is not None:
            from repro.faults import get_fault

            get_fault(self.fault)  # raises KeyError on unknown faults
            if not 0.0 <= self.severity <= 1.0:
                raise ValueError(
                    f"scenario {self.name!r}: severity must be in [0, 1], "
                    f"got {self.severity!r}"
                )
        if self.mission is not None:
            validate_profile(self.mission)
        if self.mission is None and not self.kernels:
            raise ValueError(
                f"scenario {self.name!r} is empty: no mission profile "
                "and no kernels"
            )
        return self

    def to_dict(self) -> dict:
        """JSON-safe rendering (the inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "tier": self.tier,
            "arch": self.arch,
            "mission": self.mission,
            "kernels": list(self.kernels),
            "scalar": self.scalar,
            "fault": self.fault,
            "severity": self.severity,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        """Rebuild a spec from its :meth:`to_dict` rendering."""
        return cls(
            name=payload["name"],
            tier=payload.get("tier", "b"),
            arch=payload.get("arch", "m33"),
            mission=payload.get("mission"),
            kernels=tuple(payload.get("kernels", ())),
            scalar=payload.get("scalar", "f32"),
            fault=payload.get("fault"),
            severity=float(payload.get("severity", 0.0)),
            seed=int(payload.get("seed", 0)),
        )

    def key(self) -> str:
        """Content address of this scenario (name excluded: same workload
        under two names keys identically, like the engine's solve key)."""
        payload = self.to_dict()
        payload.pop("name")
        payload["format_version"] = SCENARIO_FORMAT_VERSION
        return content_address(payload)


@dataclass(frozen=True)
class ScenarioSet:
    """An ordered, content-addressed collection of scenarios.

    The unit the campaign layer executes and the CLI saves/loads: carries
    the provenance (tier, seed, generator id) to regenerate itself, and
    serializes canonically so the same generation is byte-identical
    across runs, processes, and machines.
    """

    scenarios: Tuple[ScenarioSpec, ...]
    tier: str = "b"
    seed: int = 0
    #: Identifier of whatever produced the set ("tier-a-registry",
    #: "mixed-profile-v1", ...), recorded for provenance.
    generator: str = ""

    def validated(self) -> "ScenarioSet":
        """Return self after validating every scenario and name uniqueness."""
        names: Dict[str, int] = {}
        for index, scenario in enumerate(self.scenarios):
            scenario.validated()
            if scenario.name in names:
                raise ValueError(
                    f"duplicate scenario name {scenario.name!r} at indices "
                    f"{names[scenario.name]} and {index}"
                )
            names[scenario.name] = index
        return self

    def __len__(self) -> int:
        return len(self.scenarios)

    def to_dict(self) -> dict:
        """JSON-safe rendering (the inverse of :meth:`from_dict`)."""
        return {
            "format_version": SCENARIO_FORMAT_VERSION,
            "tier": self.tier,
            "seed": self.seed,
            "generator": self.generator,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSet":
        """Rebuild a set from its :meth:`to_dict` rendering."""
        version = payload.get("format_version", SCENARIO_FORMAT_VERSION)
        if version != SCENARIO_FORMAT_VERSION:
            raise ValueError(
                f"scenario set format v{version} is not v"
                f"{SCENARIO_FORMAT_VERSION}; regenerate it"
            )
        return cls(
            scenarios=tuple(
                ScenarioSpec.from_dict(s) for s in payload.get("scenarios", ())
            ),
            tier=payload.get("tier", "b"),
            seed=int(payload.get("seed", 0)),
            generator=payload.get("generator", ""),
        )

    def to_json(self) -> str:
        """Canonical JSON text: the byte-identity determinism currency."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @property
    def address(self) -> str:
        """Content address of the whole set (canonical JSON, sha256)."""
        return content_address(self.to_dict())

    def save(self, path: Union[str, Path]) -> Path:
        """Write the set as canonical JSON; two equal sets ``cmp`` equal."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSet":
        """Read a set saved by :meth:`save` (validated)."""
        payload = json.loads(Path(path).read_text())
        return cls.from_dict(payload).validated()

    def mission_scenarios(self) -> List[ScenarioSpec]:
        """The scenarios carrying a mission profile, in set order."""
        return [s for s in self.scenarios if s.mission is not None]

    def kernel_scenarios(self) -> List[ScenarioSpec]:
        """The scenarios carrying kernel configs, in set order."""
        return [s for s in self.scenarios if s.kernels]
