"""Tier B: seeded synthetic scenario generation.

Campaign-scale studies need far more coverage than the four Tier-A
platforms: this module samples *mission profiles* (wind-gust schedules,
waypoint tours, swarm formations), *kernel-config mutations* (pool
subsets under different scalar types), and *arch variants* — optionally
under a fault — from a ``numpy.random.SeedSequence`` stream.

Determinism contract: scenario ``i`` of seed ``s`` is drawn from
``SeedSequence([s, i])``, so the same ``(seed, count)`` always yields the
same :class:`~repro.scenarios.spec.ScenarioSet` (byte-identical
serialization), and growing ``count`` only appends — scenario 17 of a
1000-scenario set equals scenario 17 of a 100-scenario set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scenarios.spec import ScenarioSet, ScenarioSpec

#: Generator identifier recorded in every set it produces; bump when the
#: sampling distributions change (addresses change with it).
#: v2: arch pool spans the backend registry's ISA families (Cortex-M and
#: RV32 cores) and kernel configs sample the quantized TinyML pack.
GENERATOR_ID = "mixed-profile-v2"

#: Kernels cheap enough to price inside thousand-scenario campaigns
#: (each solves in well under a second on the host).
KERNEL_POOL = (
    "mahony",
    "madgwick",
    "fourati",
    "p3p",
    "up2p",
    "dlt",
    "homography",
    "fly-lqr",
    "bee-geom",
    "bee-smac",
    "bee-ceekf",
    "fastbrief",
    "lkof",
)

#: Arch variants Tier B samples over — both ISA families of the backend
#: registry, so campaigns price cross-ISA by construction.
ARCH_POOL = ("m33", "m4", "m7", "rv32imafc", "rv32imc")

#: Scalar types Tier B mutates kernel configs across.
SCALAR_POOL = ("f32", "f64", "q7.24", "q15.16")

#: Quantized TinyML kernels mixed into kernel configs (the deployment
#: path priced against the float pool above).
QUANT_KERNEL_POOL = ("proximity-net-int8", "proximity-net-int16")

#: Probability a kernel-bearing scenario also prices a quantized kernel.
_QUANT_PROB = 0.35

#: Fault axis: ``None`` (clean) plus the fault models with mission or
#: arch seams that terminate quickly at campaign scale.
FAULT_POOL = (None, "battery", "brownout", "dvfs", "imu-dropout",
              "overrun-storm")

#: Control rates (Hz) Tier-B flapping profiles step at; kept at or below
#: the paper's 2 kHz so generated missions stay campaign-affordable.
FLAPPING_RATES = (500.0, 1000.0, 2000.0)

#: Mission kinds with their sampling weights: hover and tours dominate
#: (the paper's axes), swarms and kernel-only scenarios fill the tail.
_MISSION_KINDS = ("hover", "tour", "steer", "swarm", "kernel-only")
_MISSION_WEIGHTS = (0.3, 0.25, 0.15, 0.15, 0.15)


def _round(value) -> float:
    """JSON-friendly float: native type, six decimals, stable text."""
    return round(float(value), 6)


def _sample_hover(rng: np.random.Generator) -> dict:
    """A hover profile with 0-3 raised-cosine wind gusts.

    Durations start at 0.12 s — long enough for the initial transient to
    settle, so a *clean* hover completes and the failure-rate axis
    measures gusts and faults, not the takeoff transient.
    """
    duration = _round(rng.uniform(0.12, 0.25))
    gusts = []
    for _ in range(int(rng.integers(0, 4))):
        # Gusts hit in the first 60% so the scored tail measures the
        # *recovery*, not the excursion itself.
        t0 = _round(rng.uniform(0.0, 0.6 * duration))
        width = _round(rng.uniform(0.2, 0.4) * duration)
        direction = rng.normal(size=3)
        direction /= max(float(np.linalg.norm(direction)), 1e-9)
        magnitude = rng.uniform(0.02, 0.08)
        gusts.append([t0, width] + [_round(d * magnitude) for d in direction])
    return {
        "kind": "hover",
        "name": "gust-hover",
        "duration_s": duration,
        "control_rate_hz": float(rng.choice(FLAPPING_RATES)),
        "gusts": gusts,
        "success_rms_m": 0.1,
        "abort_error_m": 0.5,
        # A gust-chasing hover banks like a maneuver; a still hover must
        # actually settle.  Both bounds reject tumbling (mean tilt ~pi/2).
        "max_steady_tilt_rad": 1.2 if gusts else 0.35,
    }


def _sample_tour(rng: np.random.Generator) -> dict:
    """A waypoint tour: 2-4 small legs plus a terminal dwell.

    Generated tours are short, aggressive maneuvers: the vehicle banks
    hard to translate between close waypoints, so the steady-tilt gate is
    opened to an aggressive-maneuver envelope (0.9 rad) — it still
    rejects tumbling, which saturates near pi/2 — and the final waypoint
    repeats so the tour ends on a settling dwell.
    """
    legs = int(rng.integers(2, 5))
    waypoints = [[0.0, 0.0, 0.3]]
    for _ in range(legs - 1):
        prev = waypoints[-1]
        step = rng.uniform(-0.04, 0.04, size=3)
        waypoints.append([
            _round(prev[0] + step[0]),
            _round(prev[1] + step[1]),
            _round(min(max(prev[2] + 0.5 * step[2], 0.2), 0.45)),
        ])
    waypoints.append(list(waypoints[-1]))
    return {
        "kind": "tour",
        "name": "tour",
        "duration_s": _round(rng.uniform(0.15, 0.3)),
        "control_rate_hz": float(rng.choice(FLAPPING_RATES)),
        "waypoints": waypoints,
        "success_rms_m": 0.12,
        "abort_error_m": 0.6,
        "max_steady_tilt_rad": 0.9,
    }


def _sample_steer(rng: np.random.Generator) -> dict:
    """A water-strider course with a sampled turn rate."""
    return {
        "kind": "steer",
        "name": "steer",
        "duration_s": _round(rng.uniform(0.5, 1.5)),
        "control_rate_hz": float(rng.choice((100.0, 200.0))),
        "turn_rate_rad_s": _round(rng.uniform(0.4, 2.0)),
        "success_rms_rad": 0.3,
        "abort_error_rad": 1.5,
    }


def _sample_swarm(rng: np.random.Generator) -> dict:
    """A 2-4 agent formation of hover/tour profiles flown jointly."""
    agents = []
    for _ in range(int(rng.integers(2, 5))):
        if rng.random() < 0.6:
            agents.append(_sample_hover(rng))
        else:
            agents.append(_sample_tour(rng))
    return {"kind": "swarm", "name": "swarm", "agents": agents}


_PROFILE_SAMPLERS = {
    "hover": _sample_hover,
    "tour": _sample_tour,
    "steer": _sample_steer,
    "swarm": _sample_swarm,
}


@dataclass(frozen=True)
class ScenarioGenerator:
    """Deterministic Tier-B scenario sampler.

    Args:
        seed: Root of the ``SeedSequence`` stream; the only source of
            randomness (unseeded RNG is a lint error in this tree).
    """

    seed: int = 0

    def sample(self, index: int) -> ScenarioSpec:
        """Scenario ``index`` of this seed's stream (order-independent)."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, index])
        )
        kind = str(rng.choice(_MISSION_KINDS, p=_MISSION_WEIGHTS))
        mission = None
        if kind != "kernel-only":
            mission = _PROFILE_SAMPLERS[kind](rng)
        # Kernel-config mutation: a pool subset priced under one scalar.
        if kind == "kernel-only":
            n_kernels = int(rng.integers(1, 4))
        else:
            n_kernels = int(rng.integers(0, 3))
        kernels = ()
        if n_kernels:
            picked = [str(k) for k in
                      rng.choice(KERNEL_POOL, size=n_kernels, replace=False)]
            if rng.random() < _QUANT_PROB:
                picked.append(str(rng.choice(QUANT_KERNEL_POOL)))
            kernels = tuple(sorted(picked))
        fault = FAULT_POOL[int(rng.integers(0, len(FAULT_POOL)))]
        severity = _round(rng.uniform(0.2, 0.9)) if fault else 0.0
        if mission is None and fault in ("imu-dropout", "overrun-storm"):
            # Kernel-only scenarios only exercise arch-seam faults.
            fault, severity = None, 0.0
        return ScenarioSpec(
            name=f"b{index:05d}-{kind}",
            tier="b",
            arch=str(rng.choice(ARCH_POOL)),
            mission=mission,
            kernels=kernels,
            scalar=str(rng.choice(SCALAR_POOL)),
            fault=fault,
            severity=severity,
            seed=int(rng.integers(0, 2**31 - 1)),
        )

    def generate(self, count: int) -> ScenarioSet:
        """The first ``count`` scenarios of this seed's stream."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count!r}")
        return ScenarioSet(
            scenarios=tuple(self.sample(i) for i in range(count)),
            tier="b",
            seed=self.seed,
            generator=GENERATOR_ID,
        ).validated()


def generate_scenarios(
    tier: str = "b", count: int = 25, seed: int = 0
) -> ScenarioSet:
    """Generate a scenario set for either tier (the facade entry point).

    Tier A ignores ``count`` and ``seed``: it is the fixed registry of
    the paper's platforms.  Tier B samples ``count`` scenarios from the
    seeded stream.
    """
    from repro.scenarios.tier_a import tier_a_set

    if tier == "a":
        return tier_a_set()
    if tier == "b":
        return ScenarioGenerator(seed=seed).generate(count)
    from repro.scenarios.spec import TIERS

    raise ValueError(f"unknown tier {tier!r}; available: {TIERS}")
