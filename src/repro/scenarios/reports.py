"""Campaign reports: Pareto fronts, failure rates, canonical JSON.

A campaign's raw grids answer "what happened"; these reports answer the
paper's questions: which kernel configurations are energy–latency
Pareto-optimal across the sampled platforms, and how often do missions
fail, per fault model and per mission kind.  Everything derives from the
collated records in deterministic order, and :func:`save_report` writes
canonical JSON — two campaigns over the same scenario set ``cmp`` equal
whatever ``--jobs`` produced them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.scenarios.campaign import ScenarioCampaignResult

#: Bumped when the report schema changes.
#: v2: grid records carry an ``isa`` backend family and the Pareto
#: section adds per-ISA kernel fronts (``pareto.kernel_by_isa``).
REPORT_FORMAT_VERSION = 2


def pareto_front(
    records: List[dict], x_key: str, y_key: str
) -> List[dict]:
    """The non-dominated records, minimizing ``x_key`` and ``y_key``.

    Records missing either coordinate are excluded.  Output order is
    ascending ``x`` (so descending ``y``), with deterministic
    tie-breaking on the full sorted record tuple.
    """
    points = [r for r in records
              if r.get(x_key) is not None and r.get(y_key) is not None]
    points.sort(key=lambda r: (r[x_key], r[y_key],
                               json.dumps(r, sort_keys=True)))
    front: List[dict] = []
    best_y: Optional[float] = None
    for record in points:
        if best_y is None or record[y_key] < best_y:
            front.append(record)
            best_y = record[y_key]
    return front


def failure_rates(mission_grid: List[dict]) -> dict:
    """Completion statistics: overall, per fault model, per mission kind."""

    def _bucket(records: List[dict]) -> dict:
        total = len(records)
        completed = sum(1 for r in records if r["completed"])
        return {
            "total": total,
            "completed": completed,
            "failure_rate": round(1.0 - completed / total, 6) if total else 0.0,
        }

    by_fault: Dict[str, List[dict]] = {}
    by_kind: Dict[str, List[dict]] = {}
    for record in mission_grid:
        by_fault.setdefault(record["fault"] or "clean", []).append(record)
        by_kind.setdefault(record["kind"], []).append(record)
    return {
        "overall": _bucket(mission_grid),
        "by_fault": {name: _bucket(records)
                     for name, records in sorted(by_fault.items())},
        "by_kind": {name: _bucket(records)
                    for name, records in sorted(by_kind.items())},
    }


def pareto_by_isa(kernel_grid: List[dict]) -> Dict[str, List[dict]]:
    """Per-ISA-family energy–latency fronts (the cross-ISA comparison).

    Groups the kernel grid by each record's ``isa`` backend family and
    computes one front per family, so a report answers "what does the
    RV32 frontier look like next to the Cortex-M one" directly.
    """
    by_isa: Dict[str, List[dict]] = {}
    for record in kernel_grid:
        by_isa.setdefault(record.get("isa", "unknown"), []).append(record)
    return {
        isa: pareto_front(records, "unit_energy_uj", "unit_latency_us")
        for isa, records in sorted(by_isa.items())
    }


def build_report(result: ScenarioCampaignResult) -> dict:
    """The full campaign report: grids + Pareto fronts + failure rates."""
    kernel_front = pareto_front(
        result.kernel_grid, "unit_energy_uj", "unit_latency_us"
    )
    mission_front = pareto_front(
        [r for r in result.mission_grid if r["completed"]],
        "compute_energy_j", "compute_latency_s",
    )
    return {
        "format_version": REPORT_FORMAT_VERSION,
        "address": result.address,
        "tier": result.tier,
        "seed": result.seed,
        "generator": result.generator,
        "scenarios": result.scenarios,
        "counts": {
            "kernel_cells": len(result.kernel_grid),
            "mission_jobs": len(result.mission_grid),
        },
        "cache_stats": result.cache_stats,
        "kernel_grid": result.kernel_grid,
        "mission_grid": result.mission_grid,
        "pareto": {
            "kernel": kernel_front,
            "kernel_by_isa": pareto_by_isa(result.kernel_grid),
            "mission": mission_front,
        },
        "failure_rates": failure_rates(result.mission_grid),
    }


def save_report(report: dict, path: Union[str, Path]) -> Path:
    """Write a report as canonical JSON (sorted keys, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_report(report: dict) -> str:
    """Human-readable campaign summary for the CLI."""
    lines = [
        f"scenario campaign: tier {report['tier']}  "
        f"seed {report['seed']}  address {report['address']}",
        f"  scenarios: {report['scenarios']}  "
        f"kernel cells: {report['counts']['kernel_cells']}  "
        f"mission jobs: {report['counts']['mission_jobs']}",
    ]
    stats = report.get("cache_stats") or {}
    if stats:
        hits = stats.get("memory_hits", 0) + stats.get("disk_hits", 0)
        lines.append(f"  trace cache: {hits} hits, "
                     f"{stats.get('misses', 0)} misses")
    rates = report["failure_rates"]
    overall = rates["overall"]
    if overall["total"]:
        lines.append(
            f"  missions: {overall['completed']}/{overall['total']} "
            f"completed (failure rate {overall['failure_rate']:.3f})"
        )
        for fault, bucket in rates["by_fault"].items():
            lines.append(
                f"    {fault:<14} {bucket['completed']:>4}/"
                f"{bucket['total']:<4} failure {bucket['failure_rate']:.3f}"
            )
    kernel_front = report["pareto"]["kernel"]
    lines.append(f"  energy-latency Pareto front: "
                 f"{len(kernel_front)} kernel points, "
                 f"{len(report['pareto']['mission'])} mission points")
    by_isa = report["pareto"].get("kernel_by_isa") or {}
    for isa, front in by_isa.items():
        lines.append(f"    {isa:<14} front: {len(front)} points")
    for record in kernel_front[:8]:
        lines.append(
            f"    {record['kernel']:<14} {record['scalar']:<6} "
            f"{record['arch_label']:<22} "
            f"{record['unit_energy_uj']:>10.3f} uJ "
            f"{record['unit_latency_us']:>10.3f} us"
        )
    if len(kernel_front) > 8:
        lines.append(f"    ... {len(kernel_front) - 8} more")
    return "\n".join(lines)
