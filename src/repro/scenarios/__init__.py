"""Tiered scenario generation for campaign-scale studies.

The roadmap's answer to "the paper benchmarks four platforms; a design
study needs a thousand": **Tier A** pins the paper's real platforms
(RoboBee hover and waypoints, the water-strider course, the VO frontend)
as fixed scenario specs, and **Tier B** samples synthetic scenarios —
wind-gust schedules, waypoint tours, swarm formations, kernel-config
mutations, arch variants, optional faults — from a seeded
``SeedSequence`` stream.  Every scenario and every set is
content-addressed with the repo's canonical-JSON + sha256 scheme, and
campaigns execute through the sweep engine and closed-loop runners with
the fault layer's determinism contract: byte-identical reports across
runs, ``--jobs`` counts, and process boundaries.

Entry points: :func:`generate_scenarios` makes a set,
:func:`run_scenarios` executes one and returns its report (Pareto fronts
plus failure rates).  Both are re-exported by :mod:`repro.api`.
"""

from repro.scenarios.campaign import (
    MissionJob,
    ScenarioCampaignResult,
    plan_mission_jobs,
    run_kernel_grid,
    run_mission_jobs,
    run_scenario_set,
)
from repro.scenarios.generator import (
    GENERATOR_ID,
    ScenarioGenerator,
    generate_scenarios,
)
from repro.scenarios.profiles import (
    GustHoverMission,
    flatten_agents,
    mission_from_profile,
    validate_profile,
)
from repro.scenarios.reports import (
    build_report,
    failure_rates,
    pareto_front,
    render_report,
    save_report,
)
from repro.scenarios.spec import (
    SCENARIO_FORMAT_VERSION,
    TIERS,
    ScenarioSet,
    ScenarioSpec,
    content_address,
)
from repro.scenarios.tier_a import tier_a_names, tier_a_set


def run_scenarios(
    sset: ScenarioSet,
    jobs: int = 1,
    options=None,
    telemetry=None,
    *,
    vectorize: bool = True,
) -> dict:
    """Execute a scenario set and return its full campaign report.

    The one-call form the facade and CLI use: validates and runs the set
    (kernel grid + mission jobs) and derives the Pareto / failure-rate
    report, all deterministically — the same set yields a byte-identical
    report for any ``jobs`` and either price path (``vectorize`` picks
    the columnar batch pricer, the default, over the serial per-cell
    reference).
    """
    result = run_scenario_set(
        sset, jobs=jobs, options=options, telemetry=telemetry,
        vectorize=vectorize,
    )
    return build_report(result)


__all__ = [
    "GENERATOR_ID",
    "GustHoverMission",
    "MissionJob",
    "SCENARIO_FORMAT_VERSION",
    "ScenarioCampaignResult",
    "ScenarioGenerator",
    "ScenarioSet",
    "ScenarioSpec",
    "TIERS",
    "build_report",
    "content_address",
    "failure_rates",
    "flatten_agents",
    "generate_scenarios",
    "mission_from_profile",
    "pareto_front",
    "plan_mission_jobs",
    "render_report",
    "run_kernel_grid",
    "run_mission_jobs",
    "run_scenario_set",
    "run_scenarios",
    "save_report",
    "tier_a_names",
    "tier_a_set",
    "validate_profile",
]
