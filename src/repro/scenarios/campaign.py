"""Deterministic executor for scenario sets.

Expands a :class:`~repro.scenarios.spec.ScenarioSet` into concrete work
and runs it the same way the fault layer runs its campaigns:

* **kernel scenarios** coalesce into one engine sweep per scalar type —
  kernels priced across every (possibly fault-derated) arch the group
  references, all sweeps sharing one trace cache so a kernel's compute
  solves once per scalar for the whole campaign.
* **mission scenarios** flatten into per-agent jobs (a swarm is N jobs
  scored jointly) and run the closed-loop stack, fanned across a process
  pool when ``jobs > 1``.

Determinism contract, inherited from :mod:`repro.faults.campaign`: agent
seeds derive from ``SeedSequence([scenario_seed, agent])``; workers
return plain dicts; records collate in job order regardless of worker
count; metrics are derived at collation.  The same set therefore yields
a byte-identical campaign result for any ``--jobs``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import get_metrics, get_tracer
from repro.scenarios.profiles import (
    control_rate_of,
    flatten_agents,
    mission_from_profile,
    runner_kind_of,
)
from repro.scenarios.spec import ScenarioSet, ScenarioSpec


@dataclass(frozen=True)
class MissionJob:
    """One flattened closed-loop run: a single agent of one scenario."""

    index: int
    scenario: str
    tier: str
    #: Agent index within the scenario (0 for non-swarm profiles).
    agent: int
    #: Total agents in the scenario (swarm size; 1 otherwise).
    agents: int
    profile: dict
    arch: str
    scalar: str
    fault: Optional[str]
    severity: float
    seed: int


@dataclass
class ScenarioCampaignResult:
    """Everything a scenario campaign measured, in deterministic order."""

    address: str
    tier: str
    seed: int
    generator: str
    scenarios: int
    #: One record per (scenario, kernel): priced compute.
    kernel_grid: List[dict] = field(default_factory=list)
    #: One record per (scenario, agent): closed-loop outcome.
    mission_grid: List[dict] = field(default_factory=list)
    #: Trace-cache accounting for the kernel sweeps.
    cache_stats: Dict[str, int] = field(default_factory=dict)


def _job_seed(scenario_seed: int, agent: int) -> int:
    """Stable per-agent seed: independent of worker count and run order."""
    return int(
        np.random.SeedSequence([scenario_seed, agent]).generate_state(1)[0]
    )


def plan_mission_jobs(sset: ScenarioSet) -> List[MissionJob]:
    """The mission jobs in canonical order (set order, then agent order)."""
    jobs: List[MissionJob] = []
    for scenario in sset.mission_scenarios():
        agents = flatten_agents(scenario.mission)
        for agent_idx, profile in enumerate(agents):
            jobs.append(MissionJob(
                index=len(jobs),
                scenario=scenario.name,
                tier=scenario.tier,
                agent=agent_idx,
                agents=len(agents),
                profile=profile,
                arch=scenario.arch,
                scalar=scenario.scalar,
                fault=scenario.fault,
                severity=scenario.severity,
                seed=_job_seed(scenario.seed, agent_idx),
            ))
    return jobs


def _mission_worker(payload: tuple) -> dict:
    """Process-pool entry point: fly one agent job, return a plain dict.

    Rebuilds the mission from its JSON-safe profile via
    :func:`~repro.scenarios.profiles.mission_from_profile`, so a freshly
    imported worker produces records byte-identical to the in-process
    path — no registry state crosses the process boundary.
    """
    (scenario, tier, agent, profile, arch_name, scalar_name,
     fault_name, severity, seed) = payload
    import repro.faults  # noqa: F401 — populate the fault registry
    from repro.backends import backend_for
    from repro.closedloop.runner import RUNNER_CLASSES
    from repro.faults import get_fault
    from repro.mcu.arch import get_arch
    from repro.scalar import parse_scalar

    mission = mission_from_profile(profile)
    rate_hz = control_rate_of(profile)
    hook = None
    if fault_name is not None and severity > 0.0:
        fault = get_fault(fault_name)
        if "mission" in fault.kinds:
            hook = fault.mission_hook(
                severity, seed, mission.duration_s, 1.0 / rate_hz
            )
    runner_cls = RUNNER_CLASSES[runner_kind_of(profile)]
    runner = runner_cls(
        arch=get_arch(arch_name),
        scalar=parse_scalar(scalar_name),
        control_rate_hz=rate_hz,
        seed=seed,
        fault_hook=hook,
    )
    result = runner.run(mission)
    return {
        "scenario": scenario,
        "tier": tier,
        "agent": agent,
        "kind": profile["kind"],
        "arch": arch_name,
        "isa": backend_for(get_arch(arch_name)).name,
        "scalar": scalar_name,
        "fault": fault_name,
        "severity": severity,
        "seed": seed,
        "completed": bool(result.completed),
        "duration_s": float(result.duration_s),
        "path_error_rms": float(result.path_error_rms_m),
        "compute_energy_j": float(result.compute_energy_j),
        "compute_latency_s": float(result.compute_latency_s),
        "deadline_hit_rate": float(result.deadline_hit_rate),
        "effective_rate_hz": float(result.effective_rate_hz),
        "overruns": int(result.overruns),
        "aborted_by": result.aborted_by,
        "fault_events": int(result.fault_events),
    }


def _job_payload(job: MissionJob) -> tuple:
    return (job.scenario, job.tier, job.agent, job.profile, job.arch,
            job.scalar, job.fault, job.severity, job.seed)


def _job_track(job: MissionJob) -> str:
    """Trace-timeline lane for one agent job's sim-time spans."""
    if job.agents > 1:
        return f"scenario:{job.scenario}[{job.agent}]"
    return f"scenario:{job.scenario}"


def run_mission_jobs(
    sset: ScenarioSet,
    jobs: int = 1,
    telemetry=None,
) -> List[dict]:
    """Execute the mission jobs, collated in canonical job order.

    Observability mirrors the fault campaigns: in-process jobs trace
    per-step sim-time spans on their own ``scenario:<name>[agent]`` lane;
    pooled jobs get a synthesized ``mission.run`` summary span each.
    ``scenarios.*`` metrics are derived here at collation, in job order,
    so the aggregate is identical for any ``jobs``.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    planned = plan_mission_jobs(sset)
    if not planned:
        return []
    payloads = [_job_payload(job) for job in planned]
    if telemetry is not None:
        for job in planned:
            telemetry.emit("mission_started", kernel=job.scenario,
                           arch=job.arch, severity=job.severity)
    if jobs > 1 and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
            # map() preserves input order: collation is worker-count-proof.
            records = list(pool.map(_mission_worker, payloads))
        if tracer.enabled:
            for job, record in zip(planned, records):
                tracer.add_span(
                    "mission.run", 0.0, record["duration_s"], cat="scenarios",
                    track=_job_track(job), self_s=0.0,
                    scenario=job.scenario, agent=job.agent, arch=job.arch,
                    completed=record["completed"],
                    overruns=record["overruns"],
                )
    else:
        # In-process jobs trace per-step detail; the runners' own metrics
        # are suppressed so the campaign aggregate comes exclusively from
        # the collation loop below (identical to the multi-worker path).
        records = []
        with metrics.suspended():
            for job, payload in zip(planned, payloads):
                track = _job_track(job) if tracer.enabled else None
                with tracer.on_track(track):
                    records.append(_mission_worker(payload))
    if metrics.enabled:
        for record in records:
            metrics.inc("scenarios.mission_jobs")
            metrics.inc("scenarios.missions_completed" if record["completed"]
                        else "scenarios.missions_failed")
            metrics.inc("scenarios.fault_injections", record["fault_events"])
            metrics.observe("scenarios.mission_energy_uj",
                            record["compute_energy_j"] * 1e6)
    if telemetry is not None:
        for record in records:
            telemetry.emit(
                "mission_finished",
                kernel=record["scenario"], arch=record["arch"],
                severity=record["severity"],
                completed=record["completed"],
                aborted_by=record["aborted_by"],
            )
    return records


def _derated_arch(scenario: ScenarioSpec):
    """The (possibly fault-derated) ArchSpec a scenario prices on."""
    from repro.faults import get_fault
    from repro.mcu.arch import get_arch

    arch = get_arch(scenario.arch)
    if scenario.fault is not None and scenario.severity > 0.0:
        fault = get_fault(scenario.fault)
        if "arch" in fault.kinds:
            return fault.derate_arch(arch, scenario.severity)
    return arch


def run_kernel_grid(
    sset: ScenarioSet,
    options=None,
    telemetry=None,
) -> Tuple[List[dict], Dict[str, int]]:
    """Price every kernel scenario via the engine; one sweep per scalar.

    Returns ``(grid, cache_stats)``: one record per (scenario, kernel) in
    set order, plus the shared trace cache's hit/miss accounting.  All
    per-scalar sweeps share one :class:`~repro.engine.TraceCache`, so a
    kernel appearing in many scenarios solves once per scalar.
    """
    scenarios = sset.kernel_scenarios()
    if not scenarios:
        return [], {}
    from repro.core.config import HarnessConfig
    from repro.core.experiment import SweepSpec
    from repro.engine import EngineOptions, run_sweep_engine
    from repro.mcu.cache import CACHE_ON
    from repro.scalar import parse_scalar

    if options is None:
        options = EngineOptions()
    shared_cache = options.make_cache()
    options = replace(options, trace_cache=shared_cache)

    from repro.backends import backend_for

    # Coalesce: per scalar, the kernel union across every derated arch.
    label_of: Dict[str, str] = {}
    isa_of: Dict[str, str] = {}
    by_scalar: Dict[str, dict] = {}
    for scenario in scenarios:
        arch_obj = _derated_arch(scenario)
        label_of[scenario.name] = arch_obj.name
        isa_of[scenario.name] = backend_for(arch_obj).name
        group = by_scalar.setdefault(
            scenario.scalar, {"kernels": set(), "archs": {}}
        )
        group["kernels"].update(scenario.kernels)
        group["archs"][arch_obj.name] = arch_obj

    tracer = get_tracer()
    results_of: Dict[str, object] = {}
    for scalar_name in sorted(by_scalar):
        group = by_scalar[scalar_name]
        sweep = SweepSpec(
            kernels=sorted(group["kernels"]),
            archs=[group["archs"][name] for name in sorted(group["archs"])],
            caches=(CACHE_ON,),
            config=HarnessConfig(),
            overrides={"*": {"scalar": parse_scalar(scalar_name)}},
        )
        with tracer.span("scenarios.kernel_grid", cat="scenarios",
                         scalar=scalar_name, kernels=len(sweep.kernels),
                         archs=len(sweep.archs)):
            results_of[scalar_name] = run_sweep_engine(
                sweep, options=options, telemetry=telemetry
            )

    grid: List[dict] = []
    for scenario in scenarios:
        results = results_of[scenario.scalar]
        for kernel in scenario.kernels:
            # A missing cell is a planner bug: lookup raises a typed
            # ResultKeyError instead of handing back None.
            result = results.lookup(kernel, label_of[scenario.name])
            grid.append({
                "scenario": scenario.name,
                "tier": scenario.tier,
                "kernel": kernel,
                "arch": scenario.arch,
                "arch_label": label_of[scenario.name],
                "isa": isa_of[scenario.name],
                "scalar": scenario.scalar,
                "fault": scenario.fault,
                "severity": scenario.severity,
                "fits": bool(result.fits),
                "unit_latency_us": (
                    float(result.unit_latency_us) if result.fits else None
                ),
                "unit_energy_uj": (
                    float(result.unit_energy_uj) if result.fits else None
                ),
                "peak_power_mw": (
                    float(result.peak_power_mw) if result.fits else None
                ),
            })
    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("scenarios.kernel_cells", len(grid))
        metrics.inc("scenarios.cache_hits", shared_cache.stats.hits)
        metrics.inc("scenarios.cache_misses", shared_cache.stats.misses)
    stats = {
        "memory_hits": shared_cache.stats.memory_hits,
        "disk_hits": shared_cache.stats.disk_hits,
        "misses": shared_cache.stats.misses,
        "puts": shared_cache.stats.puts,
    }
    return grid, stats


def run_scenario_set(
    sset: ScenarioSet,
    jobs: int = 1,
    options=None,
    telemetry=None,
    *,
    vectorize: bool = True,
) -> ScenarioCampaignResult:
    """Execute one validated scenario set (kernel grid + mission jobs).

    The campaign's phase spans land on a per-tier lane
    (``scenarios:tier-<tier>``) so a mixed trace separates Tier-A anchor
    runs from Tier-B synthetics at a glance.  The same set and seed yield
    a byte-identical result for any ``jobs`` — and for either price
    path: ``vectorize`` picks the engine's columnar batch pricer
    (default) or the serial per-cell reference, and is ignored when an
    explicit ``options`` already carries the choice.
    """
    sset = sset.validated()
    if options is None and (jobs > 1 or not vectorize):
        from repro.engine import EngineOptions

        options = EngineOptions(jobs=jobs, vectorize=vectorize)
    tracer = get_tracer()
    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("scenarios.campaigns")
        metrics.inc(f"scenarios.tier_{sset.tier}_scenarios", len(sset))
    with tracer.on_track(f"scenarios:tier-{sset.tier}"):
        with tracer.span("scenarios.campaign", cat="scenarios",
                         tier=sset.tier, scenarios=len(sset),
                         address=sset.address):
            kernel_grid, cache_stats = run_kernel_grid(
                sset, options=options, telemetry=telemetry
            )
            mission_grid = run_mission_jobs(
                sset, jobs=jobs, telemetry=telemetry
            )
    return ScenarioCampaignResult(
        address=sset.address,
        tier=sset.tier,
        seed=sset.seed,
        generator=sset.generator,
        scenarios=len(sset),
        kernel_grid=kernel_grid,
        mission_grid=mission_grid,
        cache_stats=cache_stats,
    )
