"""Mission profiles: JSON-safe descriptions of flyable missions.

A *profile* is the wire form of a mission — a plain dict a scenario
carries, a worker process can rebuild from scratch, and a content
address can hash.  Four kinds:

* ``hover`` — hold a setpoint, optionally under a wind-gust schedule
  that drags the reference through raised-cosine excursions (the
  paper's disturbance-rejection axis, swept instead of fixed).
* ``tour`` — a waypoint tour (generated box tours stand in for the
  paper's waypoint mission at arbitrary dynamic range).
* ``steer`` — the water-strider heading course with a configurable
  turn rate.
* ``swarm`` — a multi-agent formation: N agent profiles flown
  independently and scored jointly (completed = every agent completed).

``mission_from_profile`` is the **worker-side reconstruction seam**: the
campaign layer ships profiles (not objects) to process-pool workers, so
a freshly imported worker builds byte-identical missions from the dict
alone — that is what keeps ``--jobs 1`` and ``--jobs N`` reports equal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.closedloop import HoverMission, SteeringCourse, WaypointMission

#: Profile kinds a scenario may carry (``swarm`` only at the top level).
PROFILE_KINDS = ("hover", "tour", "steer", "swarm")

#: Default control rates per runner kind, matching the built-in missions.
DEFAULT_RATE_HZ = {"flapping": 2000.0, "strider": 200.0}


@dataclass
class GustHoverMission(HoverMission):
    """Hover under a wind-gust schedule.

    Each gust ``(t0, duration, dx, dy, dz)`` drags the reference away
    from the setpoint along a raised-cosine bump — smooth in and out, so
    the controller sees a disturbance-like excursion with a bounded rate.
    The reference is a pure function of ``t``: byte-identical replay.
    """

    #: Gust schedule: (start_s, duration_s, dx_m, dy_m, dz_m) tuples.
    gusts: Tuple[Tuple[float, float, float, float, float], ...] = ()

    def reference(self, t: float) -> np.ndarray:
        """Setpoint plus the sum of all currently active gust bumps."""
        ref = np.array(self.setpoint, dtype=np.float64)
        for t0, duration, dx, dy, dz in self.gusts:
            if t0 <= t < t0 + duration and duration > 0.0:
                phase = (t - t0) / duration
                bump = 0.5 * (1.0 - math.cos(2.0 * math.pi * phase))
                ref = ref + bump * np.array([dx, dy, dz])
        return ref


def validate_profile(profile: dict, *, top_level: bool = True) -> None:
    """Check a profile dict is well-formed; raise ``ValueError`` if not.

    Args:
        profile: The profile dict to check.
        top_level: Swarm profiles may only appear at the top level
            (agents cannot nest swarms).
    """
    if not isinstance(profile, dict):
        raise ValueError(f"mission profile must be a dict, got {profile!r}")
    kind = profile.get("kind")
    if kind not in PROFILE_KINDS:
        raise ValueError(
            f"unknown mission profile kind {kind!r}; "
            f"available: {PROFILE_KINDS}"
        )
    if kind == "swarm":
        if not top_level:
            raise ValueError("swarm profiles cannot nest inside a swarm")
        agents = profile.get("agents")
        if not agents:
            raise ValueError("swarm profile needs a non-empty 'agents' list")
        for agent in agents:
            validate_profile(agent, top_level=False)
        return
    duration = profile.get("duration_s", 0.0)
    if not duration or duration <= 0.0:
        raise ValueError(f"{kind} profile needs a positive duration_s")
    rate = profile.get("control_rate_hz")
    if rate is not None and rate <= 0.0:
        raise ValueError(f"{kind} profile control_rate_hz must be positive")
    if kind == "tour" and not profile.get("waypoints"):
        raise ValueError("tour profile needs a non-empty 'waypoints' list")


def runner_kind_of(profile: dict) -> str:
    """The runner family a (non-swarm) profile flies on."""
    return "strider" if profile["kind"] == "steer" else "flapping"


def control_rate_of(profile: dict) -> float:
    """The control rate a (non-swarm) profile steps at (Hz)."""
    rate = profile.get("control_rate_hz")
    if rate is not None:
        return float(rate)
    return DEFAULT_RATE_HZ[runner_kind_of(profile)]


def mission_from_profile(profile: dict):
    """Build the mission object a (non-swarm) profile describes.

    Pure and import-safe: a process-pool worker calls this on the plain
    dict it received, producing a mission byte-identical to the parent's.
    Swarm profiles are flattened by the campaign planner before this
    point (one call per agent).
    """
    kind = profile["kind"]
    if kind == "hover":
        return GustHoverMission(
            name=profile.get("name", "gust-hover"),
            duration_s=float(profile["duration_s"]),
            setpoint=np.asarray(
                profile.get("setpoint", (0.0, 0.0, 0.3)), dtype=np.float64
            ),
            success_rms_m=float(profile.get("success_rms_m", 0.05)),
            abort_error_m=float(profile.get("abort_error_m", 0.5)),
            max_steady_tilt_rad=float(
                profile.get("max_steady_tilt_rad", 0.26)
            ),
            gusts=tuple(
                tuple(float(v) for v in gust)
                for gust in profile.get("gusts", ())
            ),
        )
    if kind == "tour":
        return WaypointMission(
            name=profile.get("name", "tour"),
            duration_s=float(profile["duration_s"]),
            waypoints=tuple(
                tuple(float(v) for v in wp) for wp in profile["waypoints"]
            ),
            success_rms_m=float(profile.get("success_rms_m", 0.09)),
            abort_error_m=float(profile.get("abort_error_m", 0.6)),
            max_steady_tilt_rad=float(
                profile.get("max_steady_tilt_rad", 0.35)
            ),
        )
    if kind == "steer":
        return SteeringCourse(
            name=profile.get("name", "steer"),
            duration_s=float(profile["duration_s"]),
            turn_rate_rad_s=float(profile.get("turn_rate_rad_s", 1.2)),
            success_rms_rad=float(profile.get("success_rms_rad", 0.25)),
            abort_error_rad=float(profile.get("abort_error_rad", 1.5)),
        )
    raise ValueError(f"cannot build a mission from profile kind {kind!r}")


def flatten_agents(profile: dict) -> List[dict]:
    """The flyable per-agent profiles of one top-level profile.

    A swarm expands to its agents (set order); every other kind is its
    own single agent.
    """
    if profile["kind"] == "swarm":
        return list(profile["agents"])
    return [profile]
