"""Columnar batch pricing for solved kernel profiles.

``repro.vecprice`` is the vectorized twin of the engine's per-cell
pricing stage.  It lowers op traces into ``(reps, 18)`` count matrices
(:mod:`.lowering`), materializes each backend's cost tables into dense
pricing vectors (:mod:`.tables`), and prices every cell of a sweep in
one batched NumPy pass (:mod:`.batch`) — byte-identical to
``engine.price_profile``, just ~10x faster at campaign scale.

Layering: this package sits beside :mod:`repro.mcu` below the engine —
it imports backends/mcu/core only, and the engine (plus the
:mod:`repro.api` facade) calls down into it.  Analysis code and
examples reach it through ``repro.api.price_batch``; see
``docs/pricing.md`` for the pricing model and the byte-identity
contract.
"""

from repro.vecprice import batch as _batch
from repro.vecprice import tables as _tables
from repro.vecprice.batch import PriceItem, price_batch
from repro.vecprice.lowering import ProfileMatrix, lower_profile, trace_matrix
from repro.vecprice.tables import pricing_tables


def clear_caches() -> None:
    """Drop every vecprice memo: pricing tables, statics, scalars.

    Test-isolation hook; the memos are pure-function caches, so
    clearing them never changes results, only re-pays the lowering.
    """
    _tables.clear_caches()
    _batch.clear_caches()

__all__ = [
    "PriceItem",
    "ProfileMatrix",
    "clear_caches",
    "lower_profile",
    "price_batch",
    "pricing_tables",
    "trace_matrix",
]
