"""Op-trace → columnar matrix lowering.

The serial pricing path walks one :class:`~repro.mcu.ops.OpTrace` at a
time, reading 18 attributes and four category-sum properties per
repetition.  This module lowers a solved profile's repetitions into one
``(reps, 18)`` int64 matrix — columns in :data:`~repro.mcu.ops.ALL_KINDS`
order — plus the integer category sums the stall and power formulas need.
All counts are integers well below 2**53, so they convert to float64
exactly and every product against a CPI entry is the same correctly
rounded value the serial path computes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Sequence, Tuple

import numpy as np

from repro.mcu.ops import (
    ALL_KINDS,
    FLOAT_KINDS,
    INT_KINDS,
    MEM_KINDS,
    OpTrace,
)

#: Column count of a lowered trace matrix (one column per op kind).
N_KINDS = len(ALL_KINDS)

#: Column group boundaries, derived from the kind tuples so the slices
#: can never drift from :mod:`repro.mcu.ops`.
FLOAT_END = len(FLOAT_KINDS)
INT_END = FLOAT_END + len(INT_KINDS)
MEM_END = INT_END + len(MEM_KINDS)

# The batch pricer rebuilds result traces positionally (OpTrace(*row)),
# which is only correct while the dataclass field order IS the kind
# order.  Guard it at import so a field reorder fails loudly, not as a
# silent byte-identity break.
_FIELD_ORDER = tuple(f.name for f in fields(OpTrace))
if _FIELD_ORDER != ALL_KINDS:
    raise RuntimeError(
        "OpTrace field order diverged from ALL_KINDS; "
        "repro.vecprice requires them identical"
    )


def trace_matrix(traces: Sequence[OpTrace]) -> np.ndarray:
    """Lower traces into an ``(n, 18)`` int64 op-count matrix.

    Args:
        traces: Op traces, one row each, in repetition order.

    Returns:
        Matrix with columns in :data:`~repro.mcu.ops.ALL_KINDS` order
        (shape ``(0, 18)`` for an empty input).
    """
    return np.array(
        [[getattr(t, k) for k in ALL_KINDS] for t in traces],
        dtype=np.int64,
    ).reshape(len(traces), N_KINDS)


@dataclass(frozen=True, eq=False)
class ProfileMatrix:
    """One solved profile's measured repetitions in columnar form."""

    #: ``(n, 18)`` int64 op-count matrix, ``ALL_KINDS`` columns.
    matrix: np.ndarray
    #: Per-row total dynamic op count (exact integer sums).
    totals: np.ndarray
    #: Per-row float-category count (``FLOAT_KINDS`` columns summed).
    n_float: np.ndarray
    #: Per-row memory-category count (``MEM_KINDS`` columns summed).
    n_mem: np.ndarray
    #: Per-row validation verdicts, in repetition order.
    valids: Tuple[bool, ...]
    #: ``matrix`` as plain Python ints, for positional ``OpTrace(*row)``
    #: reconstruction of result-record traces (keeps results JSON-safe —
    #: no numpy scalars leak into records).
    rows: List[List[int]]

    @property
    def n(self) -> int:
        """Number of measured repetitions (matrix rows)."""
        return len(self.valids)


def lower_profile(profile) -> ProfileMatrix:
    """Lower one solved kernel profile into its columnar form.

    Args:
        profile: A :class:`~repro.engine.KernelProfile`-shaped object —
            anything with a ``measured`` list of ``(OpTrace, valid)``
            pairs (duck-typed; this layer does not import the engine).

    Returns:
        The profile's repetitions as a :class:`ProfileMatrix`.
    """
    traces = [trace for trace, _ in profile.measured]
    matrix = trace_matrix(traces)
    return ProfileMatrix(
        matrix=matrix,
        totals=matrix.sum(axis=1),
        n_float=matrix[:, :FLOAT_END].sum(axis=1),
        n_mem=matrix[:, INT_END:MEM_END].sum(axis=1),
        valids=tuple(bool(valid) for _, valid in profile.measured),
        rows=matrix.tolist(),
    )


#: Attribute name the instance-level lowering memo hides behind.
_PM_ATTR = "_vecprice_matrix"


def cached_profile_matrix(profile) -> ProfileMatrix:
    """:func:`lower_profile`, memoized on the profile instance.

    A campaign re-prices the same solved profile across many batches
    (every core, cache state, scalar pass, and fault scenario), and the
    attribute-by-attribute trace walk is the most expensive part of
    lowering.  Solved profiles are immutable by engine convention, so
    the matrix is stashed on the instance (a private attribute the
    profile's explicit ``to_dict`` serialization never sees).  Profiles
    that reject attribute writes (``__slots__`` duck types) simply pay
    the lowering each call.
    """
    pm = getattr(profile, _PM_ATTR, None)
    if pm is None:
        pm = lower_profile(profile)
        try:
            setattr(profile, _PM_ATTR, pm)
        except AttributeError:
            pass
    return pm
