"""The columnar batch pricer: many (profile, arch, cache) cells, one pass.

``engine.price_profile`` prices one cell at a time: per repetition it
rebuilds cost tables, a cache model, and an energy model, and walks the
op trace attribute by attribute — microseconds of Python per repetition,
which is the wall-clock bottleneck of campaign-scale sweeps.  This module
prices **every cell of a batch in one set of NumPy ops**: op traces lower
to an int64 count matrix (:mod:`.lowering`), cost tables lower to
per-(core, scalar) CPI vectors (:mod:`.tables`), and cache hit-rate /
wait-state / power factors broadcast as per-row vectors.

**Byte-identity contract.**  Results are bit-identical to the serial
reference, not merely close.  Floating-point addition is not
associative, so the batch math replicates the serial op *order* exactly
(see ``docs/pricing.md`` for the worked formulas):

* float CPI terms accumulate sequentially over the 8 float kinds, then
  int / mem / branch sums are formed left-to-right and divided by the
  dual-issue overlap **after** summation — the order of
  ``PipelineModel.compute_cycles``;
* ``cpi_scale`` multiplies per row; the serial guard (skip when 1.0) is
  equivalent because IEEE-754 multiplication by 1.0 is exact;
* per-cell scalars (hit rates, static flash profile, cache activity)
  are computed with the same scalar Python expressions the serial models
  use, then broadcast — element-wise float64 ops on equal inputs in
  equal order round identically.

Integer op counts are far below 2**53, so every count converts to
float64 exactly and each ``count * cpi`` product is the same correctly
rounded value both paths compute.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import backend_for
from repro.core.results import BenchmarkResult, RunRecord
from repro.mcu.arch import ArchSpec
from repro.mcu.cache import CacheConfig
from repro.mcu.memory import check_fit
from repro.mcu.ops import OpTrace
from repro.mcu.static import StaticMix, static_profile
from repro.scalar import ScalarType, parse_scalar
from repro.vecprice.lowering import (
    FLOAT_END,
    INT_END,
    MEM_END,
    ProfileMatrix,
    cached_profile_matrix,
)
from repro.vecprice.tables import pricing_tables

#: One batch item: a solved kernel profile priced on one (core, cache
#: state) cell.  The profile is duck-typed (anything shaped like
#: ``engine.KernelProfile``) so this layer never imports the engine.
PriceItem = Tuple[object, ArchSpec, CacheConfig]

#: Memoized ``static_profile`` results.  The static code model is a pure
#: function of (kernel name, base core, base mix) — five sha256 jitters
#: per call — and a campaign re-prices the same (kernel, core) pair for
#: every cache state, severity, and scenario.  Keyed on ``base_name``
#: exactly as the model itself is, so fault-derated variants share their
#: base core's entry (they run the same compiled binary).
_STATICS: Dict[Tuple[str, str, StaticMix], StaticMix] = {}

_SCALARS: Dict[str, ScalarType] = {}

# Columns of the per-cell factor matrix built inside price_batch:
# the cache-independent prefix (computed once per profile x arch pair)
# followed by the cache-dependent suffix, in the order the
# factors.append(...) block emits them.
(
    _OVERLAP, _SCALE, _FF, _FW, _SW, _CLOCK, _IDLE, _DYN0, _SPAN,
    _IFMISS, _DMISS, _BACT, _HBACT,
) = range(13)

# Hot-path record assembly: a frozen dataclass pays object.__setattr__
# once per field in __init__, which dominates batch assembly at scale.
# Building via __new__ + __dict__ produces a structurally identical
# instance (dataclass eq/repr/asdict read fields, not __init__), and is
# only safe while RunRecord stores fields in an instance dict.
_FAST_RECORDS = not hasattr(RunRecord, "__slots__")
_record_new = RunRecord.__new__


def clear_caches() -> None:
    """Drop the memoized static profiles and parsed scalars (tests)."""
    _STATICS.clear()
    _SCALARS.clear()


def _static_for(kernel: str, mix: StaticMix, arch: ArchSpec) -> StaticMix:
    """Memoized per-(kernel, base core) static code profile."""
    key = (kernel, arch.base_name, mix)
    static = _STATICS.get(key)
    if static is None:
        # repro: lint-ignore[worker-shared-state] -- idempotent memo of a pure function; racing threads write the identical value
        static = _STATICS[key] = static_profile(kernel, mix, arch)
    return static


def _scalar_for(name: str) -> ScalarType:
    """Memoized scalar-type parse (profiles carry the scalar by name)."""
    scalar = _SCALARS.get(name)
    if scalar is None:
        # repro: lint-ignore[worker-shared-state] -- idempotent memo of a pure parse; racing threads write the identical value
        scalar = _SCALARS[name] = parse_scalar(name)
    return scalar


def _skip_result(profile, arch: ArchSpec, cache: CacheConfig) -> BenchmarkResult:
    """The does-not-fit result, byte-identical to ``engine.skip_result``.

    Mirrors ``repro.engine.profile.skip_result`` (same fields, same
    message) without importing the engine; ``tests/test_vecprice.py``
    pins the two against each other.
    """
    fit = check_fit(profile.footprint, arch)
    result = BenchmarkResult(
        kernel=profile.kernel,
        arch=arch.name,
        cache=cache.label,
        scalar=profile.scalar,
        dataset=profile.dataset,
        stage=profile.stage,
    )
    result.fits = False
    result.skip_reason = (
        f"needs {fit.flash_used} B flash / {fit.sram_used} B SRAM; "
        f"{arch.name} offers {fit.flash_available} / {fit.sram_available}"
    )
    return result


def price_batch(items: Sequence[PriceItem]) -> List[BenchmarkResult]:
    """Price every (profile, arch, cache) cell of a batch in one pass.

    Args:
        items: Batch cells.  Profiles may repeat across cells (the
            normal case: one solve re-priced on many cores and cache
            states); each is lowered to its count matrix once per call.

    Returns:
        One :class:`~repro.core.results.BenchmarkResult` per item, in
        item order, byte-identical to ``engine.price_profile`` on the
        same cell — including memory-misfit skip results.
    """
    results: List[Optional[BenchmarkResult]] = [None] * len(items)

    # Per-call memos keyed on object identity: a batch re-prices the
    # same few profiles and archs across many cells, and id-keyed
    # lookups dodge the deep dataclass hashing an ArchSpec key costs.
    lowered: Dict[int, ProfileMatrix] = {}
    pair_info: Dict[Tuple[int, int], Optional[tuple]] = {}
    local_tables: Dict[Tuple[int, str], object] = {}
    table_idx: Dict[int, int] = {}
    table_stack: List[np.ndarray] = []

    priced: List[Tuple[int, object, ArchSpec, CacheConfig, ProfileMatrix]] = []
    mats: List[np.ndarray] = []
    totals: List[np.ndarray] = []
    nfloats: List[np.ndarray] = []
    nmems: List[np.ndarray] = []
    reps: List[int] = []
    cell_groups: List[int] = []
    # One 13-wide row of per-cell pricing factors per priced cell, each
    # factor computed with the serial models' own scalar expressions.
    factors: List[Tuple[float, ...]] = []

    for i, (profile, arch, cache) in enumerate(items):
        pkey = (id(profile), id(arch))
        info = pair_info.get(pkey)
        if info is None and pkey not in pair_info:
            if check_fit(profile.footprint, arch).fits:
                pm = lowered.get(id(profile))
                if pm is None:
                    pm = lowered[id(profile)] = cached_profile_matrix(profile)
                tkey = (id(arch), profile.scalar)
                tables = local_tables.get(tkey)
                if tables is None:
                    tables = local_tables[tkey] = pricing_tables(
                        arch, _scalar_for(profile.scalar)
                    )
                t_idx = table_idx.get(id(tables))
                if t_idx is None:
                    t_idx = table_idx[id(tables)] = len(table_stack)
                    table_stack.append(tables.cpi)
                static = _static_for(profile.kernel, profile.static_mix, arch)
                # Cache-independent factor prefix, in column order.
                pre = (
                    tables.overlap,
                    tables.cpi_scale,
                    tables.fetch_fraction,
                    tables.flash_wait_cycles,
                    tables.sram_wait_cycles,
                    tables.clock_hz,
                    tables.idle_mw,
                    tables.active_mw - tables.idle_mw,
                    tables.activity_span_mw,
                )
                info = (
                    pm, t_idx, backend_for(arch), pre,
                    tables.cache_bonus_mw, 0.5 * tables.cache_bonus_mw,
                    static.flash_bytes, profile.footprint.data_bytes,
                )
            pair_info[pkey] = info
        if info is None:
            results[i] = _skip_result(profile, arch, cache)
            continue
        pm, t_idx, backend, pre, bonus, half_bonus, code_bytes, data_bytes = info
        enabled = cache.enabled
        i_hit = backend.ifetch_hit_rate(arch, enabled, code_bytes)
        d_hit = backend.dmem_hit_rate(arch, enabled, data_bytes)
        # CacheModel.activity: 0.0 disabled, else the mean of the same
        # two (enabled) hit rates the stall terms use.
        activity = 0.5 * (i_hit + d_hit) if enabled else 0.0

        priced.append((i, profile, arch, cache, pm))
        mats.append(pm.matrix)
        totals.append(pm.totals)
        nfloats.append(pm.n_float)
        nmems.append(pm.n_mem)
        reps.append(len(pm.valids))
        cell_groups.append(t_idx)
        # Association matches EnergyModel: (bonus * activity) * busy and
        # ((0.5 * bonus) * activity) respectively.
        factors.append(pre + (
            1.0 - i_hit,
            1.0 - d_hit,
            bonus * activity,
            half_bonus * activity,
        ))

    if not priced:
        return results  # type: ignore[return-value]

    counts = np.array(reps, dtype=np.int64)
    # Broadcast every per-cell factor to its cell's rows in one repeat;
    # column k of F is factor k, per row.
    F = np.repeat(np.array(factors, dtype=np.float64), counts, axis=0)

    def spread(col: int) -> np.ndarray:
        """Column ``col`` of the row-broadcast factor matrix."""
        return F[:, col]

    T = np.concatenate(mats)
    gr = np.repeat(np.array(cell_groups, dtype=np.intp), counts)
    cpi_rows = np.stack(table_stack)[gr]
    P = T * cpi_rows  # exact per-element products (see module docstring)

    # -- compute cycles: PipelineModel.compute_cycles, vectorized --------
    compute = np.zeros(len(T), dtype=np.float64)
    for k in range(FLOAT_END):
        compute = compute + P[:, k]
    int_cycles = P[:, FLOAT_END]
    for k in range(FLOAT_END + 1, INT_END):
        int_cycles = int_cycles + P[:, k]
    mem_cycles = P[:, INT_END] + P[:, INT_END + 1]
    branch_cycles = P[:, MEM_END] + P[:, MEM_END + 1] + P[:, MEM_END + 2]
    compute = compute + (int_cycles + mem_cycles + branch_cycles) / spread(_OVERLAP)
    compute = compute * spread(_SCALE)

    # -- stall cycles: CacheModel.ifetch_stalls / dmem_stalls ------------
    n_instr = np.maximum(np.concatenate(totals), 1)
    ifetch = ((n_instr * spread(_FF)) * spread(_IFMISS)) * spread(_FW)
    n_mem_ops = T[:, INT_END] + T[:, INT_END + 1]
    dmem = (n_mem_ops * spread(_DMISS)) * spread(_SW)
    total = compute + ifetch + dmem  # CycleBreakdown.total association

    # -- power / energy: EnergyModel.report ------------------------------
    latency = total / spread(_CLOCK)
    busy = compute / np.maximum(total, 1.0)
    f_intensity = np.concatenate(nfloats) / n_instr
    m_intensity = np.concatenate(nmems) / n_instr
    dyn_mw = spread(_DYN0) + spread(_SPAN) * f_intensity
    avg_mw = spread(_IDLE) + dyn_mw * (0.35 + 0.65 * busy) + spread(_BACT) * busy
    avg_w = avg_mw / 1e3
    burst_mw = (0.12 * dyn_mw + spread(_HBACT)) * (1.0 + 0.6 * m_intensity)
    peak_w = avg_w + burst_mw / 1e3
    energy = avg_w * latency

    # -- assemble records (plain Python floats/ints via tolist) ----------
    cyc_l = total.tolist()
    lat_l = latency.tolist()
    en_l = energy.tolist()
    avg_l = avg_w.tolist()
    pk_l = peak_w.tolist()
    r = 0
    for i, profile, arch, cache, pm in priced:
        result = BenchmarkResult(
            kernel=profile.kernel,
            arch=arch.name,
            cache=cache.label,
            scalar=profile.scalar,
            dataset=profile.dataset,
            stage=profile.stage,
        )
        result.work_units = profile.work_units
        runs = result.runs
        rows = pm.rows
        valids = pm.valids
        for rep in range(len(valids)):
            if _FAST_RECORDS:
                rec = _record_new(RunRecord)
                rec.__dict__.update({
                    "rep": rep,
                    "cycles": cyc_l[r],
                    "latency_s": lat_l[r],
                    "energy_j": en_l[r],
                    "avg_power_w": avg_l[r],
                    "peak_power_w": pk_l[r],
                    "trace": OpTrace(*rows[rep]),
                    "valid": valids[rep],
                })
            else:
                rec = RunRecord(
                    rep, cyc_l[r], lat_l[r], en_l[r], avg_l[r], pk_l[r],
                    OpTrace(*rows[rep]), valids[rep],
                )
            runs.append(rec)
            r += 1
        results[i] = result
    return results  # type: ignore[return-value]
