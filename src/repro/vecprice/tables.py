"""Memoized pricing-vector materialization per (core, scalar).

Each registered :class:`~repro.backends.ArchBackend` lowers its CPI /
wait-state / power tables into an :class:`~repro.backends.ArchTables`
record through the ``tables_as_arrays()`` hook.  The lowering is pure —
the same (core, scalar) always produces the same vectors — so this
module memoizes it: a campaign that re-prices the same cores across
thousands of scenario cells materializes each table exactly once.

Fault-derated arch variants are distinct keys on purpose: a derated
:class:`~repro.mcu.arch.ArchSpec` carries its own ``cpi_scale`` / clock
/ power figures, and those must flow into the vectors of that variant
only.  The cache is bounded by (distinct arch specs) x (scalar types)
seen in-process.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.backends import ArchTables, backend_for
from repro.mcu.arch import ArchSpec
from repro.scalar import ScalarType

_TABLES: Dict[Tuple[ArchSpec, str], ArchTables] = {}


def pricing_tables(arch: ArchSpec, scalar: ScalarType) -> ArchTables:
    """The memoized pricing vectors for one (core, scalar) pair.

    Args:
        arch: Core spec (nominal or fault-derated variant).
        scalar: Scalar type the kernel was solved with.

    Returns:
        The backend's :class:`~repro.backends.ArchTables` lowering,
        computed once per (arch spec, scalar name) and cached.
    """
    key = (arch, scalar.name)
    tables = _TABLES.get(key)
    if tables is None:
        # repro: lint-ignore[worker-shared-state] -- idempotent memo of a pure lowering; racing threads write the identical value
        tables = _TABLES[key] = backend_for(arch).tables_as_arrays(arch, scalar)
    return tables


def clear_caches() -> None:
    """Drop every memoized table (test isolation hook)."""
    _TABLES.clear()
