"""Span-based tracing with zero overhead when disabled.

The tracer is the observability layer's event source: code wraps units of
work in ``with tracer.span("solve", kernel="p3p"):`` blocks, and the
tracer records one :class:`Span` per completed block — name, category,
begin time, duration, self time (duration minus child spans), nesting
depth, and arbitrary key/value attributes.  Exporters
(:mod:`repro.obs.export`) turn the recorded spans into Chrome trace-event
JSON (loadable in Perfetto / ``chrome://tracing``) and text phase
reports.

Two timebases coexist:

* **wall clock** (default) — ``with tracer.span(...)`` stamps begin/end
  from a monotonic clock relative to tracer creation.  Used for host-side
  work: planning, solving, pricing, collation.
* **simulated time** — :meth:`Tracer.add_span` takes explicit begin/end
  seconds, so the closed-loop runners emit per-control-step spans on the
  *mission's* time axis.  Sim-time spans are deterministic: the same
  mission produces a byte-identical trace on every run.

Disabled tracing is free by construction: :meth:`Tracer.span` on a
disabled tracer returns one shared no-op context manager (no allocation,
no clock read, no list append), and the module-level default tracer
starts disabled.  Hot paths may also hoist ``tracer.enabled`` checks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
]


@dataclass
class Span:
    """One completed unit of traced work.

    Attributes:
        name: What ran (span names follow the dotted conventions in
            ``docs/observability.md``, e.g. ``engine.solve``).
        cat: Coarse category used for Chrome-trace filtering
            (``engine`` / ``mission`` / ``faults`` / ...).
        t0_s: Begin time in seconds on the span's track timebase.
        dur_s: Duration in seconds (end - begin, never negative).
        self_s: Duration minus the summed duration of direct child
            spans — the time attributable to this span alone.
        depth: Nesting depth at creation (0 = top level).
        track: Named timeline lane; each track exports as its own
            Chrome-trace thread row (e.g. ``main``, ``mission:hover``).
        args: Free-form attributes shown in the trace viewer's detail
            panel (kernel name, arch, cache key, severity, ...).
        seq: Monotone record sequence number, used as the deterministic
            tiebreak when sorting for export.
    """

    name: str
    cat: str
    t0_s: float
    dur_s: float
    self_s: float
    depth: int
    track: str
    args: Dict[str, object] = field(default_factory=dict)
    seq: int = 0


class _NoopSpan:
    """Shared do-nothing context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        """Enter the with-block without recording anything."""
        return self

    def __exit__(self, *exc) -> bool:
        """Leave the with-block; exceptions propagate."""
        return False

    def set(self, **args) -> "_NoopSpan":
        """Discard attributes (the enabled twin attaches them)."""
        return self


#: The single no-op span instance: ``span()`` on a disabled tracer always
#: returns this exact object, so the disabled path allocates nothing.
_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """Context manager recording one span on an enabled tracer."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0", "_child_s", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = 0.0
        self._child_s = 0.0
        self._depth = 0

    def set(self, **args) -> "_LiveSpan":
        """Attach (or overwrite) attributes while the span is open."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_LiveSpan":
        """Stamp the begin time and push onto the tracer's open stack."""
        tracer = self._tracer
        self._depth = len(tracer._stack)
        tracer._stack.append(self)
        self._t0 = tracer._now()
        return self

    def __exit__(self, *exc) -> bool:
        """Stamp the end time, record the span, credit the parent."""
        tracer = self._tracer
        dur = max(tracer._now() - self._t0, 0.0)
        tracer._stack.pop()
        if tracer._stack:
            tracer._stack[-1]._child_s += dur
        tracer._record(
            Span(
                name=self.name,
                cat=self.cat,
                t0_s=self._t0,
                dur_s=dur,
                self_s=max(dur - self._child_s, 0.0),
                depth=self._depth,
                track=tracer.track,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Collects spans, instant events, and counter samples for export.

    A tracer owns a monotonic clock (zeroed at construction), a stack of
    open wall-clock spans for self-time accounting, and flat lists of
    finished :class:`Span` records, instant events, and counter samples.

    Args:
        enabled: When False every recording method is a cheap no-op;
            :meth:`span` returns one shared no-op context manager.
        clock: Seconds-returning callable used for wall-clock spans
            (injectable for deterministic tests).
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.enabled = enabled
        self._clock = clock
        self._t0 = clock() if enabled else 0.0
        self.spans: List[Span] = []
        self.instants: List[dict] = []
        self.counters: List[dict] = []
        self._stack: List[_LiveSpan] = []
        self._seq = 0
        #: Track (timeline lane) new wall-clock spans land on.
        self.track = "main"

    # -- recording -----------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._t0

    def _record(self, span: Span) -> None:
        span.seq = self._seq
        self._seq += 1
        self.spans.append(span)

    def span(self, name: str, cat: str = "", **args):
        """Open a wall-clock span as a context manager.

        Args:
            name: Span name (dotted convention, e.g. ``engine.solve``).
            cat: Chrome-trace category for viewer filtering.
            **args: Attributes shown in the trace viewer detail panel.

        Returns:
            A context manager; on a disabled tracer, the shared no-op
            instance (identical object every call — zero allocation).
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _LiveSpan(self, name, cat, args)

    def add_span(
        self,
        name: str,
        t0_s: float,
        t1_s: float,
        cat: str = "",
        track: Optional[str] = None,
        depth: int = 0,
        self_s: Optional[float] = None,
        **args,
    ) -> None:
        """Record a span with explicit begin/end times (simulated time).

        The closed-loop runners use this to emit per-control-step spans on
        the mission's own time axis; the executor uses it to reconstruct
        worker-side solve spans from reported durations.

        Args:
            name: Span name.
            t0_s: Begin time in seconds on the target track's timebase.
            t1_s: End time in seconds (clamped to ``>= t0_s``).
            cat: Chrome-trace category.
            track: Timeline lane; defaults to the tracer's current track.
            depth: Nesting depth to record (explicit spans carry no
                stack, so the caller declares the hierarchy).
            self_s: Self time; defaults to the full duration.
            **args: Attributes for the trace viewer.
        """
        if not self.enabled:
            return
        dur = max(t1_s - t0_s, 0.0)
        self._record(
            Span(
                name=name,
                cat=cat,
                t0_s=t0_s,
                dur_s=dur,
                self_s=dur if self_s is None else self_s,
                depth=depth,
                track=track if track is not None else self.track,
                args=args,
            )
        )

    def instant(
        self,
        name: str,
        t_s: Optional[float] = None,
        cat: str = "",
        track: Optional[str] = None,
        **args,
    ) -> None:
        """Record a zero-duration event (fault injection, cache hit...).

        Args:
            name: Event name.
            t_s: Event time; defaults to the wall clock now.
            cat: Chrome-trace category.
            track: Timeline lane; defaults to the tracer's current track.
            **args: Attributes for the trace viewer.
        """
        if not self.enabled:
            return
        self.instants.append(
            {
                "name": name,
                "cat": cat,
                "t_s": self._now() if t_s is None else t_s,
                "track": track if track is not None else self.track,
                "args": args,
            }
        )

    def counter(self, name: str, value: float, t_s: Optional[float] = None) -> None:
        """Record one sample of a numeric time series (Chrome ``C`` event).

        Args:
            name: Counter name.
            value: Sample value.
            t_s: Sample time; defaults to the wall clock now.
        """
        if not self.enabled:
            return
        self.counters.append(
            {
                "name": name,
                "t_s": self._now() if t_s is None else t_s,
                "value": value,
                "track": self.track,
            }
        )

    @contextmanager
    def on_track(self, track: Optional[str]) -> Iterator["Tracer"]:
        """Temporarily switch the active timeline lane; restore on exit.

        The sanctioned seam for code that records a batch of spans on a
        named lane (campaign drivers routing each cell's mission spans
        onto ``mission:<cell>`` tracks).  ``track=None`` keeps the
        current lane, so call sites can pass a conditional without
        branching.  Using this instead of assigning :attr:`track`
        directly keeps the restore exception-safe and identical across
        ``--jobs`` modes — which is what the ``worker-shared-state``
        lint rule enforces.
        """
        previous = self.track
        if track is not None:
            self.track = track
        try:
            yield self
        finally:
            self.track = previous

    # -- introspection --------------------------------------------------------

    def now(self) -> float:
        """Seconds since tracer creation on the wall clock (0 if disabled)."""
        if not self.enabled:
            return 0.0
        return self._now()

    @property
    def depth(self) -> int:
        """Current wall-clock span nesting depth (open spans)."""
        return len(self._stack)

    def by_name(self, name: str) -> List[Span]:
        """All recorded spans with the given name, in record order."""
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        """Drop every recorded span, instant, and counter sample."""
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()
        self._seq = 0


#: Always-disabled tracer used as the process-wide default: importing
#: modules can call ``get_tracer().span(...)`` unconditionally and pay
#: nothing until someone opts in via :func:`enable_tracing`.
NULL_TRACER = Tracer(enabled=False)

_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide tracer (the disabled ``NULL_TRACER`` by default)."""
    return _current


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer and return it."""
    global _current
    _current = tracer
    return tracer


def enable_tracing(clock: Callable[[], float] = time.perf_counter) -> Tracer:
    """Install and return a fresh enabled process-wide tracer.

    Args:
        clock: Seconds-returning callable for wall-clock spans.

    Returns:
        The newly installed :class:`Tracer`.
    """
    return set_tracer(Tracer(enabled=True, clock=clock))


def disable_tracing() -> None:
    """Restore the disabled default tracer (recorded data is kept on the
    old tracer object if the caller still holds a reference)."""
    set_tracer(NULL_TRACER)
